// Quickstart: detect a thru-barrier voice attack in ~40 lines.
//
// Simulates one legitimate command and one thru-barrier replay attack in a
// living room, runs both through the VibGuard defense pipeline, and prints
// the correlation scores and decisions.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/pipeline.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

using namespace vibguard;

int main() {
  // A room with a glass window (paper's Room A), a user wearing a Fossil
  // Gen 5, and a VA device 2 m away.
  eval::ScenarioSimulator scenario(eval::ScenarioConfig{}, /*seed=*/1);
  Rng rng(2);
  const auto user = speech::sample_speaker(speech::Sex::kFemale, rng);
  const auto attacker = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto& command = speech::command_by_text("unlock the front door");

  // The defense system: training-free, threshold on 2-D correlation.
  core::DefenseSystem guard{core::DefenseConfig{}};

  // --- Legitimate use: the user speaks inside the room. ---
  const auto legit = scenario.legitimate_trial(command, user);
  core::OracleSegmenter legit_seg(legit.alignment,
                                  eval::reference_sensitive_set());
  Rng r1(3);
  const auto legit_result =
      guard.detect(legit.va, legit.wearable, &legit_seg, r1);
  std::printf("legitimate \"%s\": score %.3f -> %s\n", legit.command.c_str(),
              legit_result.score,
              legit_result.is_attack ? "REJECTED" : "accepted");

  // --- Attack: a loudspeaker replays the user's voice from outside the
  //     window. ---
  const auto attack = scenario.attack_trial(attacks::AttackType::kReplay,
                                            command, user, attacker);
  core::OracleSegmenter attack_seg(attack.alignment,
                                   eval::reference_sensitive_set());
  Rng r2(4);
  const auto attack_result =
      guard.detect(attack.va, attack.wearable, &attack_seg, r2);
  std::printf("thru-barrier replay of \"%s\": score %.3f -> %s\n",
              attack.command.c_str(), attack_result.score,
              attack_result.is_attack ? "ATTACK DETECTED" : "missed!");

  return legit_result.is_attack || !attack_result.is_attack ? 1 : 0;
}
