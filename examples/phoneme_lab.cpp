// Phoneme lab: explore what the barrier and the accelerometer do to each
// phoneme class.
//
// For a handful of representative phonemes, prints (a) where its audio
// energy lives, (b) how much survives a glass window, and (c) how strong the
// resulting wearable vibration is with and without the barrier — the raw
// ingredients of the paper's selection criteria.
#include <cstdio>

#include "acoustics/barrier.hpp"
#include "acoustics/propagation.hpp"
#include "common/db.hpp"
#include "device/wearable.hpp"
#include "dsp/spectral.hpp"
#include "speech/corpus.hpp"

using namespace vibguard;

int main() {
  speech::CorpusConfig ccfg;
  ccfg.segments_per_phoneme = 10;
  speech::PhonemeCorpus corpus(ccfg, 42);
  acoustics::Barrier window(acoustics::glass_window());
  device::Wearable wearable;
  Rng rng(5);

  std::printf(
      "%-6s %-10s %10s %10s %12s %14s %14s\n", "phon", "class",
      "centroid", "%>500Hz", "barrier(dB)", "vib (direct)",
      "vib (barrier)");

  const char* picks[] = {"aa", "ao", "ae", "ih", "iy", "er", "m",
                         "n",  "w",  "s",  "sh", "t",  "v", "hh"};
  for (const char* sym : picks) {
    const auto& p = speech::phoneme_by_symbol(sym);
    const char* cls = "";
    switch (p.cls) {
      case speech::PhonemeClass::kVowel: cls = "vowel"; break;
      case speech::PhonemeClass::kDiphthong: cls = "diphthong"; break;
      case speech::PhonemeClass::kGlide: cls = "glide"; break;
      case speech::PhonemeClass::kLiquid: cls = "liquid"; break;
      case speech::PhonemeClass::kNasal: cls = "nasal"; break;
      case speech::PhonemeClass::kFricative: cls = "fricative"; break;
      case speech::PhonemeClass::kPlosive: cls = "plosive"; break;
      case speech::PhonemeClass::kAffricate: cls = "affricate"; break;
    }

    double centroid = 0.0, hf_fraction = 0.0, barrier_db = 0.0;
    double vib_direct = 0.0, vib_barrier = 0.0;
    const auto segments = corpus.segments(sym);
    for (const auto& seg : segments) {
      Signal s = seg.audio;
      s.scale(spl_to_rms(75.0) / kReferenceRms);
      centroid += dsp::spectral_centroid(s);
      hf_fraction += dsp::band_energy_fraction(s, 500.0, 8000.0);

      const Signal through = window.transmit(s);
      barrier_db += amplitude_to_db(s.rms() / std::max(through.rms(), 1e-12));

      const Signal direct_at = acoustics::propagate(s, 0.25);
      const Signal through_at = acoustics::propagate(through, 0.25);
      vib_direct += wearable
                        .cross_domain_capture(
                            wearable.record(direct_at, rng), rng)
                        .rms();
      vib_barrier += wearable
                         .cross_domain_capture(
                             wearable.record(through_at, rng), rng)
                         .rms();
    }
    const auto n = static_cast<double>(segments.size());
    std::printf("%-6s %-10s %9.0fHz %9.0f%% %12.1f %14.5f %14.5f\n", sym,
                cls, centroid / n, 100.0 * hf_fraction / n, barrier_db / n,
                vib_direct / n, vib_barrier / n);
  }

  std::printf(
      "\nReading guide (paper Sec. V-A):\n"
      " * /aa/, /ao/ are loud and low: they still shake the accelerometer\n"
      "   AFTER the barrier -> fail Criterion I, excluded.\n"
      " * /m/, /n/, /w/, /iy/ cannot shake it even WITHOUT the barrier ->\n"
      "   fail Criterion II, excluded.\n"
      " * everything else converts cleanly when direct and dies behind the\n"
      "   barrier -> barrier-effect sensitive, selected.\n");
  return 0;
}
