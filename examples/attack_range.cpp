// Attack range study: how loud must the adversary be?
//
// From the attacker's perspective: sweep playback SPL and barrier material,
// print (a) the probability the wake word triggers each VA device and
// (b) whether the VibGuard defense would catch the command — showing the
// window in which attacks succeed against undefended devices and how the
// defense closes it.
#include <cstdio>

#include "core/pipeline.hpp"
#include "device/va_device.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

using namespace vibguard;

int main() {
  const std::vector<std::pair<const char*, acoustics::RoomConfig>> barriers =
      {{"glass window", acoustics::room_a()},
       {"wooden door", acoustics::room_b()}};

  core::DefenseSystem guard{core::DefenseConfig{}};

  for (const auto& [name, room] : barriers) {
    std::printf("\n=== Barrier: %s ===\n", name);
    std::printf("%-6s %-22s %-22s %-18s\n", "SPL", "Google Home trigger",
                "iPhone trigger", "defense verdict");
    for (double spl : {55.0, 65.0, 75.0, 85.0}) {
      eval::ScenarioConfig scfg;
      scfg.room = room;
      scfg.attack_spl = spl;
      eval::ScenarioSimulator sim(scfg,
                                  static_cast<std::uint64_t>(spl) * 31 + 7);
      Rng rng(static_cast<std::uint64_t>(spl));
      const auto victim = speech::sample_speaker(speech::Sex::kFemale, rng);
      const auto adversary = speech::sample_speaker(speech::Sex::kMale, rng);

      // Trigger probability of a replayed wake word at the VA device.
      attacks::AttackGenerator gen;
      const auto wake = gen.replay_attack(
          speech::command_by_text("ok google"), victim, rng);
      const Signal at_va = sim.attack_sound_at_va(wake.audio, spl);
      device::VaDevice gh(device::google_home());
      device::VaDevice ip(device::iphone());
      const double p_gh = gh.trigger_probability(
          at_va, device::CommandKind::kReplay, false);
      const double p_ip = ip.trigger_probability(
          at_va, device::CommandKind::kReplay, true);

      // Defense verdict on a full replayed command at this SPL.
      const auto trial = sim.attack_trial(
          attacks::AttackType::kReplay,
          speech::command_by_text("unlock the front door"), victim,
          adversary);
      core::OracleSegmenter seg(trial.alignment,
                                eval::reference_sensitive_set());
      Rng r(1234 + static_cast<std::uint64_t>(spl));
      const auto verdict = guard.detect(trial.va, trial.wearable, &seg, r);

      std::printf("%-6.0f %-22.2f %-22.2f %s (score %.3f)\n", spl, p_gh,
                  p_ip, verdict.is_attack ? "BLOCKED" : "not detected",
                  verdict.score);
    }
  }
  std::printf(
      "\nTakeaway: undefended smart speakers trigger from ~65 dB through\n"
      "either barrier (Table I), while the cross-domain defense flags the\n"
      "thru-barrier commands across the whole SPL range.\n");
  return 0;
}
