// vibguard_cli — command-line front end for the library.
//
//   vibguard_cli demo                      one legit + one attack detection
//   vibguard_cli selection [--segments N]  run offline phoneme selection
//   vibguard_cli experiment [--attack T] [--room R] [--trials N]
//                                          ROC/AUC/EER for all three arms
//   vibguard_cli attack-study              Table I style trigger study
//   vibguard_cli fault-sweep [--fault F] [--trials N]
//                                          EER-vs-fault-severity robustness
//   vibguard_cli load-sweep [--trials N] [--capacity N] [--deadline-ms N]
//                                          overload behavior vs offered load
//   vibguard_cli load-sweep --workers 1,2,4 [--batch N] [--batch-window-ms N]
//                                          sharded fleet scaling table
//   vibguard_cli stream-sweep [--attack T] [--room R] [--trials N]
//                                          early-exit fraction vs EER table
//   vibguard_cli chaos-sweep [--fleet N] [--rps R] [--trials N]
//                [--scenario NAME]         fleet resilience under worker faults
//   vibguard_cli export-audio [DIR]        write demo WAV files
//
// All subcommands are deterministic for a fixed --seed (default 42).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "acoustics/barrier.hpp"
#include "attacks/attack.hpp"
#include "common/error.hpp"
#include "common/wav.hpp"
#include "core/phoneme_selection.hpp"
#include "core/pipeline.hpp"
#include "core/session.hpp"
#include "eval/chaos_sweep.hpp"
#include "eval/confidence.hpp"
#include "eval/experiment.hpp"
#include "eval/fault_sweep.hpp"
#include "eval/load_sweep.hpp"
#include "eval/scenario.hpp"
#include "eval/stream_sweep.hpp"
#include "faults/fault.hpp"
#include "speech/corpus.hpp"

using namespace vibguard;

namespace {

struct Args {
  std::string command;
  std::string attack = "replay";
  std::string room = "A";
  std::string fault = "all";
  std::size_t trials = 20;
  std::size_t segments = 20;
  std::uint64_t seed = 42;
  std::size_t capacity = 8;
  std::uint64_t deadline_ms = 400;
  std::string workers;  ///< CSV worker grid; non-empty = sharded fleet sweep
  std::size_t batch = 4;
  std::uint64_t batch_window_ms = 20;
  std::size_t fleet = 4;       ///< chaos-sweep worker count
  std::uint64_t rps = 30;      ///< chaos-sweep offered load
  std::uint64_t chaos_seed = 0xC4A05;
  std::string scenario;  ///< chaos-sweep scenario filter; empty = all
  std::string dir = "vibguard_audio";
};

/// Parses a numeric flag value, turning every malformed shape — empty,
/// non-numeric, trailing junk, negative, out of range — into an
/// InvalidArgument with the flag name, instead of the uncaught std::stoul
/// exceptions (or silent partial parses) that would otherwise crash the CLI.
std::uint64_t parse_number(const std::string& flag, const std::string& text) {
  std::size_t pos = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (text.empty() || pos != text.size() || text[0] == '-') {
    throw InvalidArgument(flag + " needs a non-negative integer, got '" +
                          text + "'");
  }
  return value;
}

Args parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    auto number = [&]() { return parse_number(flag, next()); };
    if (flag == "--attack") args.attack = next();
    else if (flag == "--fault") args.fault = next();
    else if (flag == "--room") args.room = next();
    else if (flag == "--trials") args.trials = number();
    else if (flag == "--segments") args.segments = number();
    else if (flag == "--seed") args.seed = number();
    else if (flag == "--capacity") args.capacity = number();
    else if (flag == "--deadline-ms") args.deadline_ms = number();
    else if (flag == "--workers") args.workers = next();
    else if (flag == "--batch") args.batch = number();
    else if (flag == "--batch-window-ms") args.batch_window_ms = number();
    else if (flag == "--fleet") args.fleet = number();
    else if (flag == "--rps") args.rps = number();
    else if (flag == "--chaos-seed") args.chaos_seed = number();
    else if (flag == "--scenario") args.scenario = next();
    else if (flag[0] != '-') args.dir = flag;
    else throw InvalidArgument("unknown flag: " + flag);
  }
  return args;
}

attacks::AttackType attack_by_name(const std::string& name) {
  for (auto t : attacks::all_attack_types()) {
    if (attacks::attack_name(t) == name) return t;
  }
  throw InvalidArgument("unknown attack: " + name +
                        " (random|replay|synthesis|hidden_voice)");
}

int cmd_demo(const Args& args) {
  eval::ScenarioConfig scfg;
  scfg.room = acoustics::room_by_name(args.room);
  eval::ScenarioSimulator sim(scfg, args.seed);
  Rng rng(args.seed + 1);
  const auto user = speech::sample_speaker(speech::Sex::kFemale, rng);
  const auto adversary = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto& cmd = speech::command_by_text("unlock the front door");
  core::DefenseSession guard{core::DefenseConfig{}};

  const auto legit = sim.legitimate_trial(cmd, user);
  core::OracleSegmenter seg_l(legit.alignment,
                              eval::reference_sensitive_set());
  Rng r1(args.seed + 2);
  const auto ok =
      guard.process("legitimate command", legit.va, legit.wearable, &seg_l, r1);
  std::printf("legitimate command: score %.3f -> %s\n", ok.score,
              ok.verdict == core::Verdict::kAccepted ? "accepted"
                                                     : "REJECTED (false alarm)");

  const auto attack = sim.attack_trial(attack_by_name(args.attack), cmd,
                                       user, adversary);
  core::OracleSegmenter seg_a(attack.alignment,
                              eval::reference_sensitive_set());
  Rng r2(args.seed + 3);
  const auto bad = guard.process(args.attack + " attack", attack.va,
                                 attack.wearable, &seg_a, r2);
  std::printf("%s attack: score %.3f -> %s\n", args.attack.c_str(), bad.score,
              bad.verdict == core::Verdict::kAttackDetected ? "ATTACK DETECTED"
                                                            : "missed");

  std::printf("\n%s", guard.pipeline_stats().summary().c_str());
  return ok.verdict == core::Verdict::kAccepted &&
                 bad.verdict == core::Verdict::kAttackDetected
             ? 0
             : 1;
}

int cmd_selection(const Args& args) {
  speech::CorpusConfig ccfg;
  ccfg.segments_per_phoneme = args.segments;
  speech::PhonemeCorpus corpus(ccfg, args.seed);
  core::PhonemeSelector selector(core::SelectionConfig{},
                                 device::Wearable{});
  acoustics::Barrier barrier(
      acoustics::room_by_name(args.room).barrier_material);
  Rng rng(args.seed + 7);
  const auto result = selector.select(corpus, barrier, rng);
  std::printf("selected %zu of %zu phonemes (alpha %.4g):\n",
              result.sensitive.size(), result.phonemes.size(), result.alpha);
  for (const auto& p : result.phonemes) {
    std::printf("  /%s/\tC1 %s\tC2 %s\t%s\n", p.symbol.c_str(),
                p.passes_criterion1 ? "pass" : "FAIL",
                p.passes_criterion2 ? "pass" : "FAIL",
                p.selected ? "selected" : "-");
  }
  return 0;
}

int cmd_experiment(const Args& args) {
  eval::ExperimentConfig cfg;
  cfg.scenario.room = acoustics::room_by_name(args.room);
  cfg.legit_trials = args.trials;
  cfg.attack_trials = args.trials;
  eval::ExperimentRunner runner(cfg, args.seed);
  const auto pops = runner.run(
      attack_by_name(args.attack),
      {core::DefenseMode::kAudioBaseline,
       core::DefenseMode::kVibrationBaseline, core::DefenseMode::kFull});
  std::printf("%s attack, %s, %zu+%zu trials:\n", args.attack.c_str(),
              cfg.scenario.room.name.c_str(), args.trials, args.trials);
  std::printf("%-24s %22s %8s\n", "method", "AUC [95% CI]", "EER");
  for (const auto& [mode, p] : pops) {
    const auto ci = eval::bootstrap_auc(p.attack, p.legit);
    std::printf("%-24s %8.3f [%.3f, %.3f] %8.3f\n", core::mode_name(mode),
                ci.point, ci.lower, ci.upper, p.roc().eer);
  }
  return 0;
}

int cmd_attack_study(const Args& args) {
  eval::ScenarioConfig scfg;
  scfg.room = acoustics::room_by_name(args.room);
  eval::ScenarioSimulator sim(scfg, args.seed);
  Rng rng(args.seed + 11);
  const auto victim = speech::sample_speaker(speech::Sex::kFemale, rng);
  attacks::AttackGenerator gen;
  std::printf("trigger probability at the VA (replayed wake word, %s):\n",
              scfg.room.barrier_material.name.c_str());
  std::printf("%-14s %8s %8s %8s\n", "device", "65 dB", "75 dB", "85 dB");
  for (const auto& profile : device::all_va_devices()) {
    device::VaDevice dev(profile);
    std::printf("%-14s", profile.name.c_str());
    for (double spl : {65.0, 75.0, 85.0}) {
      const auto wake = gen.replay_attack(
          speech::command_by_text(profile.wake_word), victim, rng);
      const Signal at_va = sim.attack_sound_at_va(wake.audio, spl);
      std::printf(" %8.2f", dev.trigger_probability(
                                at_va, device::CommandKind::kReplay, false));
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_fault_sweep(const Args& args) {
  std::vector<faults::FaultKind> kinds;
  if (args.fault == "all") {
    kinds = faults::all_fault_kinds();
  } else {
    kinds.push_back(faults::fault_by_name(args.fault));
  }
  for (faults::FaultKind kind : kinds) {
    eval::FaultSweepConfig cfg;
    cfg.scenario.room = acoustics::room_by_name(args.room);
    cfg.attack = attack_by_name(args.attack);
    cfg.legit_trials = args.trials;
    cfg.attack_trials = args.trials;
    cfg.fault = kind;
    const auto result = eval::run_fault_sweep(cfg, args.seed);
    std::printf("%s", result.summary().c_str());
  }
  return 0;
}

/// Parses the --workers CSV ("1,2,4") into a worker-count grid, rejecting
/// empty elements and zeros with the same InvalidArgument shape as the
/// numeric flags.
std::vector<std::size_t> parse_workers(const std::string& csv) {
  std::vector<std::size_t> workers;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    const std::size_t n =
        parse_number("--workers", csv.substr(start, end - start));
    if (n == 0) throw InvalidArgument("--workers entries must be >= 1");
    workers.push_back(n);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return workers;
}

int cmd_load_sweep(const Args& args) {
  eval::LoadSweepConfig cfg;
  cfg.scenario.room = acoustics::room_by_name(args.room);
  cfg.attack = attack_by_name(args.attack);
  cfg.legit_trials = args.trials;
  cfg.attack_trials = args.trials;
  cfg.queue_capacity = args.capacity;
  cfg.deadline_us = args.deadline_ms * 1000;
  if (!args.workers.empty()) {
    eval::FleetSweepConfig fleet;
    fleet.base = cfg;
    fleet.workers = parse_workers(args.workers);
    fleet.batch_max = args.batch;
    fleet.batch_window_us = args.batch_window_ms * 1000;
    const auto result = eval::run_fleet_sweep(fleet, args.seed);
    std::printf("%s", result.summary().c_str());
    return 0;
  }
  const auto result = eval::run_load_sweep(cfg, args.seed);
  std::printf("%s", result.summary().c_str());
  return 0;
}

int cmd_chaos_sweep(const Args& args) {
  if (args.fleet < 2) {
    throw InvalidArgument("--fleet must be >= 2 (failover needs a survivor)");
  }
  eval::ChaosSweepConfig cfg;
  cfg.base.scenario.room = acoustics::room_by_name(args.room);
  cfg.base.attack = attack_by_name(args.attack);
  cfg.base.legit_trials = args.trials;
  cfg.base.attack_trials = args.trials;
  cfg.base.queue_capacity = args.capacity;
  cfg.base.deadline_us = args.deadline_ms * 1000;
  cfg.workers = args.fleet;
  cfg.offered_rps = static_cast<double>(args.rps);
  cfg.batch_max = args.batch;
  cfg.batch_window_us = args.batch_window_ms * 1000;
  cfg.chaos_seed = args.chaos_seed;
  // An unknown --scenario name throws InvalidArgument inside the sweep,
  // which main() maps to the usage-error exit code 2.
  cfg.scenario_filter = args.scenario;
  const auto result = eval::run_chaos_sweep(cfg, args.seed);
  std::printf("%s", result.summary().c_str());
  for (const auto& p : result.points) {
    if (!p.accounted) {
      std::fprintf(stderr,
                   "error: scenario %s lost requests (accounting broke)\n",
                   p.scenario.c_str());
      return 1;
    }
  }
  return 0;
}

int cmd_stream_sweep(const Args& args) {
  eval::StreamSweepConfig cfg;
  cfg.scenario.room = acoustics::room_by_name(args.room);
  cfg.attack = attack_by_name(args.attack);
  cfg.eval_trials = args.trials;
  const auto result = eval::run_stream_sweep(cfg, args.seed);
  std::printf("%s attack, %s, %zu calib + %zu eval trials", args.attack.c_str(),
              cfg.scenario.room.name.c_str(), result.calib_trials,
              result.eval_trials);
  if (result.unscored > 0) {
    std::printf(" (%zu unscored)", result.unscored);
  }
  std::printf(":\n%s", result.summary().c_str());
  return 0;
}

int cmd_export_audio(const Args& args) {
  std::filesystem::create_directories(args.dir);
  Rng rng(args.seed);
  speech::UtteranceBuilder builder;
  const auto spk = speech::sample_speaker(speech::Sex::kFemale, rng);
  auto utt = builder.build(speech::command_by_text("unlock the front door"),
                           spk, rng);
  Signal voice = utt.audio.scaled_to_rms(0.1);
  acoustics::Barrier window(
      acoustics::room_by_name(args.room).barrier_material);
  write_wav(args.dir + "/command_user.wav", voice);
  write_wav(args.dir + "/command_thru_barrier.wav",
            window.transmit(voice).scaled_to_rms(0.1));
  std::printf("wrote 2 WAV files to %s/\n", args.dir.c_str());
  return 0;
}

void usage() {
  std::printf(
      "usage: vibguard_cli <command> [options]\n"
      "  demo            detect one legit command and one attack\n"
      "  selection       run offline phoneme selection\n"
      "  experiment      ROC/AUC/EER for all three evaluation arms\n"
      "  attack-study    VA trigger probabilities vs SPL\n"
      "  fault-sweep     EER vs fault severity (robustness curves)\n"
      "  load-sweep      serving rates and EER vs offered load\n"
      "  chaos-sweep     fleet availability/EER under worker faults\n"
      "  stream-sweep    streaming early-exit fraction vs EER\n"
      "  export-audio    write demo WAV files\n"
      "options: --attack random|replay|synthesis|hidden_voice\n"
      "         --fault all|dropout|clipping|stuck_at|clock_drift|burst|\n"
      "                 truncation|non_finite\n"
      "         --room A|B|C|D  --trials N  --segments N  --seed S\n"
      "         --capacity N  --deadline-ms N  (load-sweep)\n"
      "         --workers CSV  --batch N  --batch-window-ms N\n"
      "                 (load-sweep: sharded fleet across the worker grid)\n"
      "         --fleet N  --rps R  --chaos-seed S  (chaos-sweep)\n"
      "         --scenario NAME  (chaos-sweep: run one scenario only)\n");
}

}  // namespace

int main(int argc, char** argv) {
  // parse() throws on malformed flags (bad numbers, unknown options), so it
  // runs inside the same guard as the subcommands: the user gets a usage
  // error and exit code 2, never an uncaught-exception crash.
  try {
    const Args args = parse(argc, argv);
    if (args.command == "demo") return cmd_demo(args);
    if (args.command == "selection") return cmd_selection(args);
    if (args.command == "experiment") return cmd_experiment(args);
    if (args.command == "attack-study") return cmd_attack_study(args);
    if (args.command == "fault-sweep") return cmd_fault_sweep(args);
    if (args.command == "load-sweep") return cmd_load_sweep(args);
    if (args.command == "chaos-sweep") return cmd_chaos_sweep(args);
    if (args.command == "stream-sweep") return cmd_stream_sweep(args);
    if (args.command == "export-audio") return cmd_export_audio(args);
    usage();
    return args.command.empty() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    usage();
    return 2;
  }
}
