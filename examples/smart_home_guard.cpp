// Smart-home guard: a day-in-the-life session.
//
// Simulates a stream of voice interactions with a smart speaker in Room B
// (wooden door): the resident issues routine commands, while an adversary
// outside the door periodically attempts random, replay, synthesis and
// hidden-voice attacks. The guard scores every command and prints an audit
// log plus end-of-day statistics.
#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

using namespace vibguard;

namespace {

struct Event {
  bool is_attack;
  attacks::AttackType type;  // valid when is_attack
  std::string command;
};

}  // namespace

int main() {
  eval::ScenarioConfig scfg;
  scfg.room = acoustics::room_b();  // wooden door
  eval::ScenarioSimulator scenario(scfg, 20250705);
  Rng rng(99);
  const auto resident = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto intruder = speech::sample_speaker(speech::Sex::kFemale, rng);

  core::DefenseSystem guard{core::DefenseConfig{}};

  const std::vector<Event> day = {
      {false, {}, "good morning"},
      {false, {}, "whats the weather"},
      {false, {}, "turn on the lights"},
      {true, attacks::AttackType::kRandom, "unlock the front door"},
      {false, {}, "play some music"},
      {true, attacks::AttackType::kReplay, "unlock the front door"},
      {false, {}, "volume down"},
      {true, attacks::AttackType::kSynthesis,
       "disarm the security system"},
      {false, {}, "add milk to the list"},
      {true, attacks::AttackType::kHiddenVoice, "open the garage"},
      {false, {}, "set an alarm"},
      {false, {}, "turn off the lights"},
  };

  int false_alarms = 0, missed = 0, caught = 0, accepted = 0;
  std::uint64_t trial_seed = 1;
  std::printf("%-4s %-30s %-10s %8s  %s\n", "#", "command", "source",
              "score", "decision");
  for (std::size_t i = 0; i < day.size(); ++i) {
    const Event& ev = day[i];
    const auto& cmd = speech::command_by_text(ev.command);
    const auto trial =
        ev.is_attack
            ? scenario.attack_trial(ev.type, cmd, resident, intruder)
            : scenario.legitimate_trial(cmd, resident);
    core::OracleSegmenter segmenter(trial.alignment,
                                    eval::reference_sensitive_set());
    Rng r(trial_seed++);
    const auto result = guard.detect(trial.va, trial.wearable, &segmenter, r);

    const char* source =
        ev.is_attack ? attacks::attack_name(ev.type).c_str() : "resident";
    const char* decision;
    if (ev.is_attack && result.is_attack) {
      decision = "BLOCKED (attack caught)";
      ++caught;
    } else if (ev.is_attack) {
      decision = "EXECUTED (attack missed!)";
      ++missed;
    } else if (result.is_attack) {
      decision = "BLOCKED (false alarm)";
      ++false_alarms;
    } else {
      decision = "executed";
      ++accepted;
    }
    std::printf("%-4zu %-30s %-10s %8.3f  %s\n", i + 1, ev.command.c_str(),
                source, result.score, decision);
  }

  std::printf(
      "\nsummary: %d legitimate commands executed, %d false alarms, "
      "%d attacks blocked, %d attacks missed\n",
      accepted, false_alarms, caught, missed);
  return missed == 0 && false_alarms == 0 ? 0 : 1;
}
