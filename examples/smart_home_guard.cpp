// Smart-home guard: a day-in-the-life session.
//
// Simulates a stream of voice interactions with a smart speaker in Room B
// (wooden door): the resident issues routine commands, while an adversary
// outside the door periodically attempts random, replay, synthesis and
// hidden-voice attacks. A DefenseSession scores every command, keeps the
// audit log, and reports end-of-day statistics plus per-stage pipeline
// timings.
#include <cstdio>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

using namespace vibguard;

namespace {

struct Event {
  bool is_attack;
  attacks::AttackType type;  // valid when is_attack
  std::string command;
};

}  // namespace

int main() {
  eval::ScenarioConfig scfg;
  scfg.room = acoustics::room_b();  // wooden door
  eval::ScenarioSimulator scenario(scfg, 20250705);
  Rng rng(99);
  const auto resident = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto intruder = speech::sample_speaker(speech::Sex::kFemale, rng);

  core::DefenseSession guard{core::DefenseConfig{}};

  const std::vector<Event> day = {
      {false, {}, "good morning"},
      {false, {}, "whats the weather"},
      {false, {}, "turn on the lights"},
      {true, attacks::AttackType::kRandom, "unlock the front door"},
      {false, {}, "play some music"},
      {true, attacks::AttackType::kReplay, "unlock the front door"},
      {false, {}, "volume down"},
      {true, attacks::AttackType::kSynthesis,
       "disarm the security system"},
      {false, {}, "add milk to the list"},
      {true, attacks::AttackType::kHiddenVoice, "open the garage"},
      {false, {}, "set an alarm"},
      {false, {}, "turn off the lights"},
  };

  int false_alarms = 0, missed = 0, caught = 0, accepted = 0;
  std::uint64_t trial_seed = 1;
  std::printf("%-4s %-30s %-10s %8s  %s\n", "#", "command", "source",
              "score", "decision");
  for (std::size_t i = 0; i < day.size(); ++i) {
    const Event& ev = day[i];
    const auto& cmd = speech::command_by_text(ev.command);
    const auto trial =
        ev.is_attack
            ? scenario.attack_trial(ev.type, cmd, resident, intruder)
            : scenario.legitimate_trial(cmd, resident);
    core::OracleSegmenter segmenter(trial.alignment,
                                    eval::reference_sensitive_set());
    Rng r(trial_seed++);
    const auto event =
        guard.process(ev.command, trial.va, trial.wearable, &segmenter, r);
    const bool flagged = event.verdict == core::Verdict::kAttackDetected;

    const char* source =
        ev.is_attack ? attacks::attack_name(ev.type).c_str() : "resident";
    const char* decision;
    if (ev.is_attack && flagged) {
      decision = "BLOCKED (attack caught)";
      ++caught;
    } else if (ev.is_attack) {
      decision = "EXECUTED (attack missed!)";
      ++missed;
    } else if (flagged) {
      decision = "BLOCKED (false alarm)";
      ++false_alarms;
    } else {
      decision = "executed";
      ++accepted;
    }
    std::printf("%-4zu %-30s %-10s %8.3f  %s\n", i + 1, ev.command.c_str(),
                source, event.score, decision);
  }

  const core::SessionStats& stats = guard.stats();
  std::printf(
      "\nsummary: %d legitimate commands executed, %d false alarms, "
      "%d attacks blocked, %d attacks missed\n",
      accepted, false_alarms, caught, missed);
  std::printf("session: %zu processed, %zu accepted, %zu flagged\n",
              stats.processed, stats.accepted, stats.attacks_detected);
  std::printf("\n%s", guard.pipeline_stats().summary().c_str());
  return missed == 0 && false_alarms == 0 ? 0 : 1;
}
