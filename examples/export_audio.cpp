// Export audible demos as WAV files: listen to what the simulation builds.
//
// Writes to ./vibguard_audio/ :
//   command_user.wav          — a synthesized command as the user speaks it
//   command_thru_barrier.wav  — the same command heard through a glass
//                               window (the "barrier effect")
//   hidden_voice.wav          — an obfuscated hidden-voice attack signal
//   chirp_vibration.wav       — the accelerometer's view of a 500-2500 Hz
//                               chirp (rendered at 200 Hz; pitch-shifted
//                               into audibility on playback by most players)
#include <cstdio>
#include <filesystem>

#include "acoustics/barrier.hpp"
#include "attacks/attack.hpp"
#include "common/db.hpp"
#include "common/wav.hpp"
#include "dsp/generate.hpp"
#include "sensors/accelerometer.hpp"
#include "speech/command.hpp"

using namespace vibguard;

int main() {
  const std::filesystem::path dir = "vibguard_audio";
  std::filesystem::create_directories(dir);
  Rng rng(2024);

  // A command in a synthetic female voice, normalized for playback.
  speech::UtteranceBuilder builder;
  const auto speaker = speech::sample_speaker(speech::Sex::kFemale, rng);
  auto utt = builder.build(
      speech::command_by_text("unlock the front door"), speaker, rng);
  Signal voice = utt.audio.scaled_to_rms(0.1);
  write_wav((dir / "command_user.wav").string(), voice);

  // The same waveform after the glass window. Re-normalized so the
  // *spectral* change is audible rather than just the level drop.
  acoustics::Barrier window(acoustics::glass_window());
  Signal through = window.transmit(voice).scaled_to_rms(0.1);
  write_wav((dir / "command_thru_barrier.wav").string(), through);

  // A hidden-voice attack signal (noise-like but speech-shaped).
  attacks::AttackGenerator gen;
  auto hidden = gen.hidden_voice_attack("unlock the front door", rng);
  write_wav((dir / "hidden_voice.wav").string(),
            hidden.audio.scaled_to_rms(0.1));

  // The accelerometer's capture of a chirp (Fig. 7's input).
  sensors::Accelerometer accel;
  const Signal chirp_sig = dsp::chirp(500.0, 2500.0, 4.0, 16000.0, 0.05);
  Signal vib = accel.capture(chirp_sig, rng).scaled_to_rms(0.1);
  write_wav((dir / "chirp_vibration.wav").string(), vib);

  std::printf("wrote 4 WAV files to %s/\n",
              std::filesystem::absolute(dir).c_str());
  std::printf(
      "compare command_user.wav vs command_thru_barrier.wav to HEAR the\n"
      "frequency-selective barrier effect the defense exploits.\n");
  return 0;
}
