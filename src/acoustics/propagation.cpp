#include "acoustics/propagation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/filter.hpp"

namespace vibguard::acoustics {

double spreading_gain(double distance_m) {
  VIBGUARD_REQUIRE(distance_m >= 0.0, "distance must be non-negative");
  return 1.0 / std::max(distance_m, 0.1);
}

double air_absorption_gain(double f_hz, double distance_m) {
  // ~0.005 dB/m at 1 kHz growing quadratically with frequency — a standard
  // room-temperature approximation; insignificant indoors but kept for
  // physical completeness.
  const double khz = f_hz / 1000.0;
  const double loss_db = 0.005 * khz * khz * distance_m;
  return std::pow(10.0, -loss_db / 20.0);
}

Signal propagate(const Signal& in, double distance_m) {
  const double spread = spreading_gain(distance_m);
  Signal out = dsp::apply_gain_curve(in, [distance_m](double f) {
    return air_absorption_gain(f, distance_m);
  });
  out.scale(spread);
  return out;
}

}  // namespace vibguard::acoustics
