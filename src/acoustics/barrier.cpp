#include "acoustics/barrier.hpp"

#include "common/db.hpp"
#include "common/error.hpp"
#include "dsp/filter.hpp"

namespace vibguard::acoustics {

Barrier::Barrier(Material material, double thickness_factor)
    : material_(std::move(material)), thickness_factor_(thickness_factor) {
  VIBGUARD_REQUIRE(thickness_factor > 0.0,
                   "thickness factor must be positive");
}

double Barrier::gain(double f_hz) const {
  return db_to_amplitude(-material_.transmission_loss_db(f_hz) *
                         thickness_factor_);
}

Signal Barrier::transmit(const Signal& in) const {
  return dsp::apply_gain_curve(in, [this](double f) { return gain(f); });
}

}  // namespace vibguard::acoustics
