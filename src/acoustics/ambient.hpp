// Ambient noise environments beyond the default pink floor.
//
// Rooms are rarely quiet: HVAC rumble, background music and multi-talker
// babble all occupy different bands and interact differently with the
// defense (babble contains real speech energy at the phoneme frequencies;
// HVAC is low-frequency like the attacks themselves). These generators
// drive the noise-robustness study.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/signal.hpp"

namespace vibguard::acoustics {

enum class AmbientKind {
  kQuiet,   ///< pink floor only (the Room default)
  kHvac,    ///< air-conditioning rumble: strong below ~150 Hz
  kMusic,   ///< broadband with rhythmic amplitude structure
  kBabble,  ///< overlapping distant conversations (speech-shaped)
};

/// Human-readable name.
std::string ambient_name(AmbientKind kind);

/// All ambient kinds, quietest character first.
std::vector<AmbientKind> all_ambient_kinds();

/// Generates `duration_s` of ambient noise at the given SPL.
Signal ambient_noise(AmbientKind kind, double duration_s,
                     double sample_rate, double spl_db, Rng& rng);

}  // namespace vibguard::acoustics
