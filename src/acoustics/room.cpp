#include "acoustics/room.hpp"

#include <cmath>

#include "common/db.hpp"
#include "common/error.hpp"
#include "acoustics/ambient.hpp"
#include "acoustics/propagation.hpp"
#include "dsp/generate.hpp"

namespace vibguard::acoustics {

RoomConfig room_a() {
  return RoomConfig{"Room A", 7.0, 6.0, glass_window(),
                    /*reverb_strength=*/0.25, /*reverb_time_s=*/0.35,
                    /*ambient_noise_spl=*/43.0};
}

RoomConfig room_b() {
  return RoomConfig{"Room B", 7.0, 7.0, wooden_door(),
                    /*reverb_strength=*/0.28, /*reverb_time_s=*/0.40,
                    /*ambient_noise_spl=*/44.0};
}

RoomConfig room_c() {
  return RoomConfig{"Room C", 6.0, 4.0, wooden_door(),
                    /*reverb_strength=*/0.22, /*reverb_time_s=*/0.28,
                    /*ambient_noise_spl=*/45.0};
}

RoomConfig room_d() {
  return RoomConfig{"Room D", 5.0, 3.0, glass_wall(),
                    /*reverb_strength=*/0.20, /*reverb_time_s=*/0.22,
                    /*ambient_noise_spl=*/44.5};
}

RoomConfig room_by_name(const std::string& name) {
  if (name == "Room A" || name == "A") return room_a();
  if (name == "Room B" || name == "B") return room_b();
  if (name == "Room C" || name == "C") return room_c();
  if (name == "Room D" || name == "D") return room_d();
  throw InvalidArgument("unknown room: " + name);
}

std::vector<RoomConfig> all_rooms() {
  return {room_a(), room_b(), room_c(), room_d()};
}

Room::Room(RoomConfig config, Rng rng)
    : config_(std::move(config)), rng_(rng) {
  // Sparse image-source-style early reflections. Delays scale with the room
  // dimensions (path differences of one to three wall bounces at 343 m/s);
  // gains decay exponentially with the room's reverberation time constant.
  const double c = 343.0;
  const double mean_dim = 0.5 * (config_.length_m + config_.width_m);
  const std::size_t count = 6;
  reflections_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double bounce = 1.0 + static_cast<double>(i) * 0.5;
    const double path = mean_dim * bounce * rng_.uniform(0.8, 1.2);
    const double delay = path / c;
    const double gain = config_.reverb_strength *
                        std::exp(-delay / config_.reverb_time_s) /
                        (1.0 + static_cast<double>(i));
    reflections_.push_back({delay, gain});
  }
}

Signal Room::render(const Signal& source, double distance_m) {
  Signal direct = propagate(source, distance_m);
  Signal out = direct;
  const double fs = source.sample_rate();
  // Each receiver position sees its own image-source pattern: jitter the
  // room's base reflections per render so two devices at different spots
  // get genuinely different colorations.
  for (const Reflection& r : reflections_) {
    const double delay = r.delay_s * rng_.uniform(0.92, 1.08);
    const double gain = r.gain * rng_.uniform(0.85, 1.15);
    const auto shift = static_cast<std::size_t>(std::round(delay * fs));
    for (std::size_t i = shift; i < out.size(); ++i) {
      out[i] += gain * direct[i - shift];
    }
  }
  Signal noise = ambient(out.duration(), fs);
  for (std::size_t i = 0; i < out.size() && i < noise.size(); ++i) {
    out[i] += noise[i];
  }
  return out;
}

Signal Room::ambient(double duration_s, double sample_rate) {
  return ambient_noise(config_.ambient_kind, duration_s, sample_rate,
                       config_.ambient_noise_spl, rng_);
}

}  // namespace vibguard::acoustics
