// Free-field propagation: spherical spreading loss and air absorption.
#pragma once

#include "common/signal.hpp"

namespace vibguard::acoustics {

/// Amplitude gain from spherical spreading over `distance_m`, relative to a
/// 1 m reference (inverse-distance law, clamped below 0.1 m).
double spreading_gain(double distance_m);

/// Frequency-dependent air absorption gain over `distance_m` (ISO 9613-style
/// approximation; negligible below 1 kHz at room scale).
double air_absorption_gain(double f_hz, double distance_m);

/// Propagates `in` over `distance_m`: spreading loss plus air absorption.
Signal propagate(const Signal& in, double distance_m);

}  // namespace vibguard::acoustics
