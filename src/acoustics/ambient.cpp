#include "acoustics/ambient.hpp"

#include <cmath>
#include <numbers>

#include "common/db.hpp"
#include "common/error.hpp"
#include "dsp/filter.hpp"
#include "dsp/generate.hpp"

namespace vibguard::acoustics {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

Signal speech_shaped_noise(double duration_s, double fs, Rng& rng) {
  // Long-term-average speech spectrum approximation: flat 100-500 Hz,
  // -9 dB/octave above.
  Signal noise = dsp::white_noise(duration_s, fs, 1.0, rng);
  return dsp::apply_gain_curve(noise, [](double f) {
    if (f < 100.0) return f / 100.0;
    if (f < 500.0) return 1.0;
    return std::pow(500.0 / f, 1.5);
  });
}

}  // namespace

std::string ambient_name(AmbientKind kind) {
  switch (kind) {
    case AmbientKind::kQuiet: return "quiet";
    case AmbientKind::kHvac: return "hvac";
    case AmbientKind::kMusic: return "music";
    case AmbientKind::kBabble: return "babble";
  }
  throw InvalidArgument("unknown ambient kind");
}

std::vector<AmbientKind> all_ambient_kinds() {
  return {AmbientKind::kQuiet, AmbientKind::kHvac, AmbientKind::kMusic,
          AmbientKind::kBabble};
}

Signal ambient_noise(AmbientKind kind, double duration_s,
                     double sample_rate, double spl_db, Rng& rng) {
  VIBGUARD_REQUIRE(duration_s >= 0.0, "duration must be non-negative");
  const double rms = spl_to_rms(spl_db);
  Signal out({}, sample_rate);
  switch (kind) {
    case AmbientKind::kQuiet:
      out = dsp::pink_noise(duration_s, sample_rate, 1.0, rng);
      break;
    case AmbientKind::kHvac: {
      // Rumble: noise low-passed hard at ~150 Hz plus a faint mains-ish hum.
      Signal noise = dsp::white_noise(duration_s, sample_rate, 1.0, rng);
      out = dsp::apply_gain_curve(noise, [](double f) {
        return 1.0 / (1.0 + std::pow(f / 150.0, 4.0));
      });
      const double hum_f = 120.0;
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] += 0.3 * std::sin(kTwoPi * hum_f *
                                 static_cast<double>(i) / sample_rate);
      }
      break;
    }
    case AmbientKind::kMusic: {
      // Broadband with a beat: pink noise amplitude-modulated at ~2 Hz and
      // a wandering melodic tone.
      out = dsp::pink_noise(duration_s, sample_rate, 1.0, rng);
      const double beat = rng.uniform(1.6, 2.4);
      double tone_f = rng.uniform(200.0, 600.0);
      double phase = 0.0;
      for (std::size_t i = 0; i < out.size(); ++i) {
        const double t = static_cast<double>(i) / sample_rate;
        const double env = 0.6 + 0.4 * std::sin(kTwoPi * beat * t);
        if (i % static_cast<std::size_t>(sample_rate / 2) == 0) {
          tone_f = rng.uniform(200.0, 600.0);  // new "note"
        }
        phase += kTwoPi * tone_f / sample_rate;
        out[i] = env * (out[i] + 0.4 * std::sin(phase));
      }
      break;
    }
    case AmbientKind::kBabble: {
      // Several overlapping speech-shaped streams with syllabic envelopes.
      out = Signal::zeros(
          static_cast<std::size_t>(std::round(duration_s * sample_rate)),
          sample_rate);
      for (int talker = 0; talker < 4; ++talker) {
        Signal stream = speech_shaped_noise(duration_s, sample_rate, rng);
        const double rate = rng.uniform(3.0, 6.0);
        const double phi = rng.uniform(0.0, kTwoPi);
        for (std::size_t i = 0; i < stream.size() && i < out.size(); ++i) {
          const double t = static_cast<double>(i) / sample_rate;
          const double env =
              0.5 + 0.5 * std::sin(kTwoPi * rate * t + phi);
          out[i] += env * stream[i];
        }
      }
      break;
    }
  }
  return out.scaled_to_rms(rms);
}

}  // namespace vibguard::acoustics
