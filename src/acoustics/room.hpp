// Room environments: early reflections, reverberation tail and ambient
// noise. Presets reproduce the paper's four evaluation rooms (Sec. VII-A):
//   Room A — 7×6 m residential apartment, glass window
//   Room B — 7×7 m university office, wooden door
//   Room C — 6×4 m university office, glass wall + wooden door
//   Room D — 5×3 m university office, glass wall
#pragma once

#include <string>
#include <vector>

#include "acoustics/ambient.hpp"
#include "acoustics/barrier.hpp"
#include "acoustics/material.hpp"
#include "common/rng.hpp"
#include "common/signal.hpp"

namespace vibguard::acoustics {

/// Static description of a room used in the evaluation.
struct RoomConfig {
  std::string name;
  double length_m;
  double width_m;
  Material barrier_material;
  double reverb_strength;   ///< overall early-reflection gain (0..1)
  double reverb_time_s;     ///< decay time constant of the reflection train
  double ambient_noise_spl; ///< background noise level in dB SPL
  /// Character of the background noise (quiet pink floor by default).
  AmbientKind ambient_kind = AmbientKind::kQuiet;
};

/// Paper room presets.
RoomConfig room_a();
RoomConfig room_b();
RoomConfig room_c();
RoomConfig room_d();
RoomConfig room_by_name(const std::string& name);
std::vector<RoomConfig> all_rooms();

/// Simulates in-room sound propagation: direct path + sparse early
/// reflections + ambient noise. Deterministic given the Rng.
class Room {
 public:
  Room(RoomConfig config, Rng rng);

  const RoomConfig& config() const { return config_; }

  /// Renders `source` heard at `distance_m` inside the room: spreading loss,
  /// image-source-style early reflections and ambient noise.
  Signal render(const Signal& source, double distance_m);

  /// Ambient noise alone, for noise-floor calibration.
  Signal ambient(double duration_s, double sample_rate);

 private:
  struct Reflection {
    double delay_s;
    double gain;
  };

  RoomConfig config_;
  Rng rng_;
  std::vector<Reflection> reflections_;
};

}  // namespace vibguard::acoustics
