// Barrier transmission: applies a material's frequency-selective loss to a
// signal passing through it (the paper's "barrier effect").
#pragma once

#include "acoustics/material.hpp"
#include "common/signal.hpp"

namespace vibguard::acoustics {

/// A physical barrier (window, door, wall) of a given material and relative
/// thickness. thickness_factor scales the dB loss linearly (Eq. 1's Δd);
/// 1.0 is the nominal thickness the Material curves were fit at.
class Barrier {
 public:
  explicit Barrier(Material material, double thickness_factor = 1.0);

  const Material& material() const { return material_; }
  double thickness_factor() const { return thickness_factor_; }

  /// Amplitude gain at frequency `f_hz` after passing the barrier.
  double gain(double f_hz) const;

  /// Filters `in` through the barrier (zero-phase frequency-domain filter).
  Signal transmit(const Signal& in) const;

 private:
  Material material_;
  double thickness_factor_;
};

}  // namespace vibguard::acoustics
