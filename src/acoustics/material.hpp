// Barrier materials and their frequency-dependent transmission loss.
//
// The paper (Sec. III-B) models thru-barrier attenuation as
// P(x+Δd) = P(x)·exp(-α(f,η)·Δd) with a frequency- and material-dependent
// coefficient, and reports that glass windows and wooden doors absorb high
// frequencies (>~500 Hz) far more than low frequencies (85–500 Hz), while
// brick walls absorb heavily across the board. We parameterize each material
// with a smooth transmission-loss curve that reproduces those properties:
//
//   loss_dB(f) = low_loss + high_loss · σ(log2(f/knee)/width)
//                + slope · max(0, log2(f/knee))
//
// σ is the logistic function; the three terms give a floor loss at low
// frequency, a knee transition around `knee_hz`, and a continuing per-octave
// roll-off above the knee.
#pragma once

#include <string>

namespace vibguard::acoustics {

/// Parametric frequency-dependent transmission loss of a barrier material.
struct Material {
  std::string name;
  double low_loss_db;         ///< loss for f << knee_hz
  double high_loss_db;        ///< additional asymptotic loss above the knee
  double knee_hz;             ///< transition center frequency
  double knee_width_octaves;  ///< transition width (logistic scale)
  double slope_db_per_octave; ///< extra roll-off per octave above the knee

  /// Transmission loss in dB at frequency `f_hz` (>= 0; larger = quieter).
  double transmission_loss_db(double f_hz) const;

  /// Amplitude transmission gain in (0, 1] at frequency `f_hz`.
  double transmission_gain(double f_hz) const;
};

/// Single-pane glass window: modest low-frequency loss, strong attenuation
/// above ~500 Hz.
Material glass_window();

/// Interior glass wall (office partition): similar to a window, slightly
/// lossier overall.
Material glass_wall();

/// Solid wooden door: lossier than glass at all frequencies, steeper knee.
Material wooden_door();

/// Brick/concrete wall: heavy broadband loss — thru-wall attacks are
/// impractical (paper Sec. III-B), included for completeness.
Material brick_wall();

/// Looks a material up by name ("glass_window", "glass_wall",
/// "wooden_door", "brick_wall"); throws InvalidArgument for unknown names.
Material material_by_name(const std::string& name);

}  // namespace vibguard::acoustics
