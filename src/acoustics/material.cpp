#include "acoustics/material.hpp"

#include <cmath>

#include "common/db.hpp"
#include "common/error.hpp"

namespace vibguard::acoustics {

double Material::transmission_loss_db(double f_hz) const {
  if (f_hz <= 0.0) return low_loss_db;
  const double octaves = std::log2(f_hz / knee_hz);
  const double sig = 1.0 / (1.0 + std::exp(-octaves / knee_width_octaves));
  const double rolloff = slope_db_per_octave * std::max(0.0, octaves);
  return low_loss_db + high_loss_db * sig + rolloff;
}

double Material::transmission_gain(double f_hz) const {
  return db_to_amplitude(-transmission_loss_db(f_hz));
}

Material glass_window() {
  return Material{"glass_window", /*low_loss_db=*/18.0,
                  /*high_loss_db=*/20.0, /*knee_hz=*/1100.0,
                  /*knee_width_octaves=*/0.40, /*slope_db_per_octave=*/10.0};
}

Material glass_wall() {
  return Material{"glass_wall", /*low_loss_db=*/19.0,
                  /*high_loss_db=*/21.0, /*knee_hz=*/1080.0,
                  /*knee_width_octaves=*/0.40, /*slope_db_per_octave=*/10.0};
}

Material wooden_door() {
  return Material{"wooden_door", /*low_loss_db=*/20.0,
                  /*high_loss_db=*/22.0, /*knee_hz=*/1050.0,
                  /*knee_width_octaves=*/0.38, /*slope_db_per_octave=*/11.0};
}

Material brick_wall() {
  return Material{"brick_wall", /*low_loss_db=*/45.0,
                  /*high_loss_db=*/15.0, /*knee_hz=*/500.0,
                  /*knee_width_octaves=*/0.8, /*slope_db_per_octave=*/5.0};
}

Material material_by_name(const std::string& name) {
  if (name == "glass_window") return glass_window();
  if (name == "glass_wall") return glass_wall();
  if (name == "wooden_door") return wooden_door();
  if (name == "brick_wall") return brick_wall();
  throw InvalidArgument("unknown barrier material: " + name);
}

}  // namespace vibguard::acoustics
