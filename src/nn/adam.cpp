#include "nn/adam.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vibguard::nn {

Adam::Adam(AdamConfig config) : config_(config) {
  VIBGUARD_REQUIRE(config_.learning_rate > 0.0,
                   "learning rate must be positive");
}

void Adam::attach(ParamBlock& block) {
  slots_.push_back({&block, std::vector<double>(block.size(), 0.0),
                    std::vector<double>(block.size(), 0.0)});
}

void Adam::step() {
  ++t_;
  const double b1t = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double b2t = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (Slot& s : slots_) {
    auto& val = s.block->value;
    auto& grad = s.block->grad;
    for (std::size_t i = 0; i < val.size(); ++i) {
      double g = grad[i];
      if (config_.grad_clip > 0.0) {
        g = std::clamp(g, -config_.grad_clip, config_.grad_clip);
      }
      s.m[i] = config_.beta1 * s.m[i] + (1.0 - config_.beta1) * g;
      s.v[i] = config_.beta2 * s.v[i] + (1.0 - config_.beta2) * g * g;
      const double mhat = s.m[i] / b1t;
      const double vhat = s.v[i] / b2t;
      val[i] -=
          config_.learning_rate * mhat / (std::sqrt(vhat) + config_.epsilon);
    }
    s.block->zero_grad();
  }
}

}  // namespace vibguard::nn
