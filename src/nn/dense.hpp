// Fully connected layer with explicit forward/backward passes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/params.hpp"

namespace vibguard::nn {

/// y = W x + b with W in R^{out×in} (row-major), trained by backprop.
class Dense {
 public:
  Dense(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }

  /// Forward pass for one vector.
  std::vector<double> forward(std::span<const double> x) const;

  /// Backward pass: given x (the forward input) and dL/dy, accumulates
  /// weight gradients and returns dL/dx.
  std::vector<double> backward(std::span<const double> x,
                               std::span<const double> dy);

  ParamBlock& weights() { return w_; }
  ParamBlock& bias() { return b_; }
  const ParamBlock& weights() const { return w_; }
  const ParamBlock& bias() const { return b_; }

  void zero_grad();

 private:
  std::size_t in_dim_;
  std::size_t out_dim_;
  ParamBlock w_;
  ParamBlock b_;
};

/// Numerically stable softmax.
std::vector<double> softmax(std::span<const double> logits);

/// Cross-entropy loss for a one-hot `label` given `probs` = softmax output.
double cross_entropy(std::span<const double> probs, std::size_t label);

/// Gradient of cross-entropy w.r.t. logits: probs - onehot(label).
std::vector<double> cross_entropy_grad(std::span<const double> probs,
                                       std::size_t label);

}  // namespace vibguard::nn
