#include "nn/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace vibguard::nn {
namespace {

constexpr const char* kMagic = "vibguard-brnn-v1";

}  // namespace

void save_brnn(const Brnn& model, std::ostream& out) {
  const BrnnConfig& cfg = model.config();
  out << kMagic << "\n"
      << cfg.in_dim << " " << cfg.hidden_dim << " " << cfg.num_classes
      << "\n";
  out << std::setprecision(17);
  for (const ParamBlock* block : model.parameter_blocks()) {
    out << block->size() << "\n";
    for (std::size_t i = 0; i < block->size(); ++i) {
      out << block->value[i] << (i + 1 == block->size() ? "\n" : " ");
    }
  }
  VIBGUARD_REQUIRE(out.good(), "stream write failed while saving model");
}

void save_brnn(const Brnn& model, const std::string& path) {
  std::ofstream file(path);
  VIBGUARD_REQUIRE(file.good(), "cannot open for writing: " + path);
  save_brnn(model, file);
}

Brnn load_brnn(std::istream& in) {
  std::string magic;
  in >> magic;
  VIBGUARD_REQUIRE(magic == kMagic,
                   "not a vibguard BRNN model (bad magic: " + magic + ")");
  BrnnConfig cfg;
  in >> cfg.in_dim >> cfg.hidden_dim >> cfg.num_classes;
  VIBGUARD_REQUIRE(in.good() && cfg.in_dim > 0 && cfg.hidden_dim > 0 &&
                       cfg.num_classes > 0,
                   "malformed model header");

  Brnn model(cfg, /*seed=*/0);
  for (ParamBlock* block : model.parameter_blocks()) {
    std::size_t n = 0;
    in >> n;
    VIBGUARD_REQUIRE(in.good() && n == block->size(),
                     "model parameter block size mismatch");
    for (std::size_t i = 0; i < n; ++i) in >> block->value[i];
  }
  VIBGUARD_REQUIRE(!in.fail(), "truncated model file");
  return model;
}

Brnn load_brnn(const std::string& path) {
  std::ifstream file(path);
  VIBGUARD_REQUIRE(file.good(), "cannot open for reading: " + path);
  return load_brnn(file);
}

}  // namespace vibguard::nn
