#include "nn/brnn.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vibguard::nn {
namespace {

std::vector<std::vector<double>> reversed(
    std::span<const std::vector<double>> xs) {
  return {xs.rbegin(), xs.rend()};
}

}  // namespace

Brnn::Brnn(BrnnConfig config, std::uint64_t seed)
    : config_(config),
      init_rng_(seed),
      forward_(config.in_dim, config.hidden_dim, init_rng_),
      backward_(config.in_dim, config.hidden_dim, init_rng_),
      head_(config.hidden_dim, config.num_classes, init_rng_),
      optimizer_(config.adam) {
  optimizer_.attach(forward_.wx());
  optimizer_.attach(forward_.wh());
  optimizer_.attach(forward_.bias());
  optimizer_.attach(backward_.wx());
  optimizer_.attach(backward_.wh());
  optimizer_.attach(backward_.bias());
  optimizer_.attach(head_.weights());
  optimizer_.attach(head_.bias());
}

std::vector<std::vector<double>> Brnn::forward_states(
    std::span<const std::vector<double>> features, Lstm::Cache& fwd_cache,
    Lstm::Cache& bwd_cache) const {
  const auto h_fwd = forward_.forward(features, fwd_cache);
  const auto rev = reversed(features);
  const auto h_bwd_rev = backward_.forward(rev, bwd_cache);
  const std::size_t T = features.size();
  std::vector<std::vector<double>> h(T,
                                     std::vector<double>(config_.hidden_dim));
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t j = 0; j < config_.hidden_dim; ++j) {
      h[t][j] = h_fwd[t][j] + h_bwd_rev[T - 1 - t][j];
    }
  }
  return h;
}

std::vector<std::vector<double>> Brnn::predict(
    std::span<const std::vector<double>> features) const {
  if (features.empty()) return {};
  Lstm::Cache fc, bc;
  const auto h = forward_states(features, fc, bc);
  std::vector<std::vector<double>> probs;
  probs.reserve(h.size());
  for (const auto& ht : h) probs.push_back(softmax(head_.forward(ht)));
  return probs;
}

std::vector<std::size_t> Brnn::classify(
    std::span<const std::vector<double>> features) const {
  const auto probs = predict(features);
  std::vector<std::size_t> labels(probs.size());
  for (std::size_t t = 0; t < probs.size(); ++t) {
    labels[t] = static_cast<std::size_t>(
        std::max_element(probs[t].begin(), probs[t].end()) -
        probs[t].begin());
  }
  return labels;
}

double Brnn::train_batch(std::span<const LabeledSequence> batch) {
  VIBGUARD_REQUIRE(!batch.empty(), "training batch must be non-empty");
  double total_loss = 0.0;
  std::size_t total_frames = 0;

  for (const LabeledSequence& seq : batch) {
    VIBGUARD_REQUIRE(seq.features.size() == seq.labels.size(),
                     "features/labels length mismatch");
    if (seq.features.empty()) continue;
    const std::size_t T = seq.features.size();

    Lstm::Cache fc, bc;
    const auto h = forward_states(seq.features, fc, bc);

    // Head forward/backward per frame.
    std::vector<std::vector<double>> dh(
        T, std::vector<double>(config_.hidden_dim, 0.0));
    for (std::size_t t = 0; t < T; ++t) {
      const auto logits = head_.forward(h[t]);
      const auto probs = softmax(logits);
      total_loss += cross_entropy(probs, seq.labels[t]);
      auto dlogits = cross_entropy_grad(probs, seq.labels[t]);
      // Normalize by sequence length so long sequences don't dominate.
      for (double& g : dlogits) g /= static_cast<double>(T);
      dh[t] = head_.backward(h[t], dlogits);
    }
    total_frames += T;

    // The summed hidden state distributes the gradient unchanged to both
    // directions; the backward LSTM sees time reversed.
    forward_.backward(fc, dh);
    std::vector<std::vector<double>> dh_rev(dh.rbegin(), dh.rend());
    backward_.backward(bc, dh_rev);
  }

  optimizer_.step();
  return total_frames > 0 ? total_loss / static_cast<double>(total_frames)
                          : 0.0;
}

std::vector<ParamBlock*> Brnn::parameter_blocks() {
  return {&forward_.wx(), &forward_.wh(), &forward_.bias(),
          &backward_.wx(), &backward_.wh(), &backward_.bias(),
          &head_.weights(), &head_.bias()};
}

std::vector<const ParamBlock*> Brnn::parameter_blocks() const {
  auto* self = const_cast<Brnn*>(this);
  std::vector<const ParamBlock*> out;
  for (ParamBlock* b : self->parameter_blocks()) out.push_back(b);
  return out;
}

double Brnn::evaluate(std::span<const LabeledSequence> data) const {
  std::size_t correct = 0;
  std::size_t total = 0;
  for (const LabeledSequence& seq : data) {
    const auto pred = classify(seq.features);
    for (std::size_t t = 0; t < pred.size(); ++t) {
      correct += pred[t] == seq.labels[t] ? 1 : 0;
    }
    total += pred.size();
  }
  return total > 0 ? static_cast<double>(correct) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace vibguard::nn
