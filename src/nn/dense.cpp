#include "nn/dense.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vibguard::nn {

Dense::Dense(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : in_dim_(in_dim), out_dim_(out_dim), w_(in_dim * out_dim), b_(out_dim) {
  VIBGUARD_REQUIRE(in_dim > 0 && out_dim > 0,
                   "layer dimensions must be positive");
  // Xavier/Glorot uniform initialization.
  const double limit =
      std::sqrt(6.0 / static_cast<double>(in_dim + out_dim));
  for (double& w : w_.value) w = rng.uniform(-limit, limit);
}

std::vector<double> Dense::forward(std::span<const double> x) const {
  VIBGUARD_REQUIRE(x.size() == in_dim_, "input dimension mismatch");
  std::vector<double> y(out_dim_);
  for (std::size_t o = 0; o < out_dim_; ++o) {
    double acc = b_.value[o];
    const double* row = &w_.value[o * in_dim_];
    for (std::size_t i = 0; i < in_dim_; ++i) acc += row[i] * x[i];
    y[o] = acc;
  }
  return y;
}

std::vector<double> Dense::backward(std::span<const double> x,
                                    std::span<const double> dy) {
  VIBGUARD_REQUIRE(x.size() == in_dim_ && dy.size() == out_dim_,
                   "backward dimension mismatch");
  std::vector<double> dx(in_dim_, 0.0);
  for (std::size_t o = 0; o < out_dim_; ++o) {
    const double g = dy[o];
    b_.grad[o] += g;
    double* wrow = &w_.grad[o * in_dim_];
    const double* vrow = &w_.value[o * in_dim_];
    for (std::size_t i = 0; i < in_dim_; ++i) {
      wrow[i] += g * x[i];
      dx[i] += g * vrow[i];
    }
  }
  return dx;
}

void Dense::zero_grad() {
  w_.zero_grad();
  b_.zero_grad();
}

std::vector<double> softmax(std::span<const double> logits) {
  std::vector<double> out(logits.size());
  const double m = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - m);
    sum += out[i];
  }
  for (double& v : out) v /= sum;
  return out;
}

double cross_entropy(std::span<const double> probs, std::size_t label) {
  VIBGUARD_REQUIRE(label < probs.size(), "label out of range");
  return -std::log(std::max(probs[label], 1e-12));
}

std::vector<double> cross_entropy_grad(std::span<const double> probs,
                                       std::size_t label) {
  VIBGUARD_REQUIRE(label < probs.size(), "label out of range");
  std::vector<double> g(probs.begin(), probs.end());
  g[label] -= 1.0;
  return g;
}

}  // namespace vibguard::nn
