// Model persistence: save/load trained networks as a simple, versioned,
// human-inspectable text format (one parameter block per line group).
//
// The segmentation BRNN is trained offline (Sec. V-B); deployments ship the
// trained weights, so round-trippable serialization is part of the public
// API.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/brnn.hpp"

namespace vibguard::nn {

/// Writes the network's configuration and weights. Throws Error on I/O
/// failure.
void save_brnn(const Brnn& model, std::ostream& out);
void save_brnn(const Brnn& model, const std::string& path);

/// Reads a network previously written by save_brnn. Throws Error on
/// malformed input or configuration mismatch with the stored header.
Brnn load_brnn(std::istream& in);
Brnn load_brnn(const std::string& path);

}  // namespace vibguard::nn
