#include "nn/lstm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vibguard::nn {
namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

Lstm::Lstm(std::size_t in_dim, std::size_t hidden_dim, Rng& rng)
    : in_dim_(in_dim),
      hidden_dim_(hidden_dim),
      wx_(4 * hidden_dim * in_dim),
      wh_(4 * hidden_dim * hidden_dim),
      b_(4 * hidden_dim) {
  VIBGUARD_REQUIRE(in_dim > 0 && hidden_dim > 0,
                   "LSTM dimensions must be positive");
  const double lx = std::sqrt(6.0 / static_cast<double>(in_dim + hidden_dim));
  const double lh = std::sqrt(3.0 / static_cast<double>(hidden_dim));
  for (double& w : wx_.value) w = rng.uniform(-lx, lx);
  for (double& w : wh_.value) w = rng.uniform(-lh, lh);
  // Forget-gate bias = 1 (gates are ordered [i, f, g, o]).
  for (std::size_t j = hidden_dim; j < 2 * hidden_dim; ++j) {
    b_.value[j] = 1.0;
  }
}

std::vector<std::vector<double>> Lstm::forward(
    std::span<const std::vector<double>> sequence, Cache& cache) const {
  const std::size_t T = sequence.size();
  const std::size_t h = hidden_dim_;
  cache.inputs.assign(sequence.begin(), sequence.end());
  cache.gates.assign(T, std::vector<double>(4 * h, 0.0));
  cache.cells.assign(T, std::vector<double>(h, 0.0));
  cache.hidden.assign(T, std::vector<double>(h, 0.0));

  std::vector<double> h_prev(h, 0.0);
  std::vector<double> c_prev(h, 0.0);
  std::vector<double> pre(4 * h);

  for (std::size_t t = 0; t < T; ++t) {
    const auto& x = sequence[t];
    VIBGUARD_REQUIRE(x.size() == in_dim_, "sequence feature dim mismatch");
    // pre = Wx x + Wh h_prev + b
    for (std::size_t j = 0; j < 4 * h; ++j) {
      double acc = b_.value[j];
      const double* wxr = &wx_.value[j * in_dim_];
      for (std::size_t i = 0; i < in_dim_; ++i) acc += wxr[i] * x[i];
      const double* whr = &wh_.value[j * h];
      for (std::size_t i = 0; i < h; ++i) acc += whr[i] * h_prev[i];
      pre[j] = acc;
    }
    auto& g = cache.gates[t];
    auto& c = cache.cells[t];
    auto& hh = cache.hidden[t];
    for (std::size_t j = 0; j < h; ++j) {
      const double i_g = sigmoid(pre[j]);
      const double f_g = sigmoid(pre[h + j]);
      const double g_g = std::tanh(pre[2 * h + j]);
      const double o_g = sigmoid(pre[3 * h + j]);
      g[j] = i_g;
      g[h + j] = f_g;
      g[2 * h + j] = g_g;
      g[3 * h + j] = o_g;
      c[j] = f_g * c_prev[j] + i_g * g_g;
      hh[j] = o_g * std::tanh(c[j]);
    }
    h_prev = hh;
    c_prev = c;
  }
  return cache.hidden;
}

std::vector<std::vector<double>> Lstm::backward(
    const Cache& cache, std::span<const std::vector<double>> dh_in) {
  const std::size_t T = cache.inputs.size();
  VIBGUARD_REQUIRE(dh_in.size() == T, "gradient sequence length mismatch");
  const std::size_t h = hidden_dim_;

  std::vector<std::vector<double>> dx(T, std::vector<double>(in_dim_, 0.0));
  std::vector<double> dh_next(h, 0.0);  // dL/dh_t from step t+1
  std::vector<double> dc_next(h, 0.0);  // dL/dc_t from step t+1
  std::vector<double> dpre(4 * h);

  for (std::size_t ti = T; ti-- > 0;) {
    const auto& g = cache.gates[ti];
    const auto& c = cache.cells[ti];
    const auto& x = cache.inputs[ti];
    const std::vector<double>* c_prev =
        ti > 0 ? &cache.cells[ti - 1] : nullptr;
    const std::vector<double>* h_prev =
        ti > 0 ? &cache.hidden[ti - 1] : nullptr;

    for (std::size_t j = 0; j < h; ++j) {
      const double dh = dh_in[ti][j] + dh_next[j];
      const double i_g = g[j];
      const double f_g = g[h + j];
      const double g_g = g[2 * h + j];
      const double o_g = g[3 * h + j];
      const double tc = std::tanh(c[j]);
      const double dc = dh * o_g * (1.0 - tc * tc) + dc_next[j];
      const double cp = c_prev ? (*c_prev)[j] : 0.0;

      const double di = dc * g_g;
      const double df = dc * cp;
      const double dg = dc * i_g;
      const double do_ = dh * tc;

      dpre[j] = di * i_g * (1.0 - i_g);
      dpre[h + j] = df * f_g * (1.0 - f_g);
      dpre[2 * h + j] = dg * (1.0 - g_g * g_g);
      dpre[3 * h + j] = do_ * o_g * (1.0 - o_g);

      dc_next[j] = dc * f_g;
    }

    // Parameter gradients and upstream gradients.
    std::fill(dh_next.begin(), dh_next.end(), 0.0);
    for (std::size_t j = 0; j < 4 * h; ++j) {
      const double dp = dpre[j];
      b_.grad[j] += dp;
      double* wxg = &wx_.grad[j * in_dim_];
      const double* wxv = &wx_.value[j * in_dim_];
      for (std::size_t i = 0; i < in_dim_; ++i) {
        wxg[i] += dp * x[i];
        dx[ti][i] += dp * wxv[i];
      }
      double* whg = &wh_.grad[j * h];
      const double* whv = &wh_.value[j * h];
      for (std::size_t i = 0; i < h; ++i) {
        if (h_prev) whg[i] += dp * (*h_prev)[i];
        dh_next[i] += dp * whv[i];
      }
    }
  }
  return dx;
}

void Lstm::zero_grad() {
  wx_.zero_grad();
  wh_.zero_grad();
  b_.zero_grad();
}

}  // namespace vibguard::nn
