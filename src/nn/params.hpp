// Trainable parameter block: a weight vector with its gradient accumulator.
#pragma once

#include <cstddef>
#include <vector>

namespace vibguard::nn {

/// A named flat block of trainable weights plus gradient storage.
struct ParamBlock {
  std::vector<double> value;
  std::vector<double> grad;

  explicit ParamBlock(std::size_t n = 0) : value(n, 0.0), grad(n, 0.0) {}

  std::size_t size() const { return value.size(); }
  void zero_grad() { std::fill(grad.begin(), grad.end(), 0.0); }
};

}  // namespace vibguard::nn
