// LSTM layer with full backpropagation through time.
//
// Gate layout inside the stacked weight matrices is [i, f, g, o] (input,
// forget, cell candidate, output). Forget-gate biases are initialized to 1
// (the standard trick easing gradient flow early in training).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/params.hpp"

namespace vibguard::nn {

/// Unidirectional LSTM processing sequences of feature vectors.
class Lstm {
 public:
  Lstm(std::size_t in_dim, std::size_t hidden_dim, Rng& rng);

  std::size_t in_dim() const { return in_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }

  /// Per-sequence activation cache needed by backward().
  struct Cache {
    std::vector<std::vector<double>> inputs;  // T × in
    std::vector<std::vector<double>> gates;   // T × 4h (post-activation)
    std::vector<std::vector<double>> cells;   // T × h
    std::vector<std::vector<double>> hidden;  // T × h
  };

  /// Runs the sequence (T × in_dim) from a zero initial state; returns the
  /// hidden states (T × hidden_dim) and fills `cache` for backward().
  std::vector<std::vector<double>> forward(
      std::span<const std::vector<double>> sequence, Cache& cache) const;

  /// BPTT: `dh` holds dL/dh_t for every step. Accumulates parameter
  /// gradients and returns dL/dx_t for every step (T × in_dim).
  std::vector<std::vector<double>> backward(const Cache& cache,
                                            std::span<const std::vector<double>> dh);

  ParamBlock& wx() { return wx_; }
  ParamBlock& wh() { return wh_; }
  ParamBlock& bias() { return b_; }
  const ParamBlock& wx() const { return wx_; }
  const ParamBlock& wh() const { return wh_; }
  const ParamBlock& bias() const { return b_; }

  void zero_grad();

 private:
  std::size_t in_dim_;
  std::size_t hidden_dim_;
  ParamBlock wx_;  // 4h × in (row-major)
  ParamBlock wh_;  // 4h × h
  ParamBlock b_;   // 4h
};

}  // namespace vibguard::nn
