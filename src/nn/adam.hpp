// ADAM optimizer (Kingma & Ba, 2015) over registered parameter blocks.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/params.hpp"

namespace vibguard::nn {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double grad_clip = 5.0;  ///< per-element gradient clipping (0 = off)
};

/// First/second-moment adaptive optimizer. Register every ParamBlock once;
/// each step() applies accumulated gradients and clears them.
class Adam {
 public:
  explicit Adam(AdamConfig config = {});

  /// Registers a block; the block must outlive the optimizer.
  void attach(ParamBlock& block);

  /// Applies one update using each block's accumulated gradient, then
  /// zeroes the gradients.
  void step();

  std::size_t step_count() const { return t_; }

 private:
  struct Slot {
    ParamBlock* block;
    std::vector<double> m;
    std::vector<double> v;
  };

  AdamConfig config_;
  std::vector<Slot> slots_;
  std::size_t t_ = 0;
};

}  // namespace vibguard::nn
