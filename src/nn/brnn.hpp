// Bidirectional recurrent network for frame-level binary classification
// (paper Sec. V-B): a forward LSTM and a backward LSTM whose hidden states
// are summed (h_t = h→_t + h←_t), followed by a 2-class dense + softmax head
// applied to every frame, trained with ADAM on cross-entropy.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/adam.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"

namespace vibguard::nn {

struct BrnnConfig {
  std::size_t in_dim = 14;      ///< MFCC order (paper Sec. V-B)
  std::size_t hidden_dim = 64;  ///< LSTM units (paper Sec. V-B)
  std::size_t num_classes = 2;  ///< effective-phoneme / other
  AdamConfig adam;
};

/// One labeled training sequence: frames of features with per-frame labels.
struct LabeledSequence {
  std::vector<std::vector<double>> features;  // T × in_dim
  std::vector<std::size_t> labels;            // T, values < num_classes
};

/// Bidirectional LSTM frame classifier.
class Brnn {
 public:
  Brnn(BrnnConfig config, std::uint64_t seed);

  const BrnnConfig& config() const { return config_; }

  /// Per-frame class probabilities (T × num_classes).
  std::vector<std::vector<double>> predict(
      std::span<const std::vector<double>> features) const;

  /// Per-frame argmax labels.
  std::vector<std::size_t> classify(
      std::span<const std::vector<double>> features) const;

  /// One optimization step on a mini-batch; returns the mean per-frame
  /// cross-entropy loss.
  double train_batch(std::span<const LabeledSequence> batch);

  /// Frame accuracy over a labeled set.
  double evaluate(std::span<const LabeledSequence> data) const;

  /// All trainable parameter blocks in a fixed order (forward LSTM wx/wh/b,
  /// backward LSTM wx/wh/b, head weights/bias) — used by serialization.
  std::vector<ParamBlock*> parameter_blocks();
  std::vector<const ParamBlock*> parameter_blocks() const;

 private:
  std::vector<std::vector<double>> forward_states(
      std::span<const std::vector<double>> features, Lstm::Cache& fwd_cache,
      Lstm::Cache& bwd_cache) const;

  BrnnConfig config_;
  Rng init_rng_;  ///< declared before the layers: initializes their weights
  Lstm forward_;
  Lstm backward_;
  Dense head_;
  Adam optimizer_;
};

}  // namespace vibguard::nn
