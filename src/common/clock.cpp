#include "common/clock.hpp"

#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace vibguard {

std::uint64_t SteadyClock::now_us() const {
  // Anchor the epoch at the first query so values stay small and uniform
  // across platforms whose steady_clock epochs differ.
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void SteadyClock::sleep_us(std::uint64_t us) const {
  if (us == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

const SteadyClock& SteadyClock::instance() {
  static const SteadyClock clock;
  return clock;
}

void VirtualClock::set(std::uint64_t us) const {
  const std::uint64_t current = now_.load(std::memory_order_relaxed);
  VIBGUARD_REQUIRE(us >= current, "virtual clock cannot move backwards");
  now_.store(us, std::memory_order_relaxed);
}

}  // namespace vibguard
