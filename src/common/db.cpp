#include "common/db.hpp"

#include <cmath>
#include <limits>

namespace vibguard {

double spl_to_rms(double spl_db) {
  return kReferenceRms * std::pow(10.0, (spl_db - kReferenceSpl) / 20.0);
}

double rms_to_spl(double rms) {
  if (rms <= 0.0) return -std::numeric_limits<double>::infinity();
  return kReferenceSpl + 20.0 * std::log10(rms / kReferenceRms);
}

double power_to_db(double power_ratio) {
  if (power_ratio <= 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(power_ratio);
}

double amplitude_to_db(double amplitude_ratio) {
  if (amplitude_ratio <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return 20.0 * std::log10(amplitude_ratio);
}

double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

}  // namespace vibguard
