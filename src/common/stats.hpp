// Small numeric-statistics helpers shared across subsystems.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vibguard {

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> xs);

/// Population variance; 0 for inputs shorter than 2.
double variance(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. Input need not be sorted.
/// Matches the common "linear" (type-7) definition used by NumPy/R.
double quantile(std::span<const double> xs, double q);

/// Third quartile (q = 0.75); the statistic used by the paper's phoneme
/// selection criteria (Sec. V-A).
double third_quartile(std::span<const double> xs);

/// Median (q = 0.5).
double median(std::span<const double> xs);

/// Pearson correlation coefficient of two equal-length sequences.
/// Returns 0 when either sequence has zero variance.
double pearson(std::span<const double> a, std::span<const double> b);

/// Largest element; -infinity for empty input.
double max_value(std::span<const double> xs);

/// Smallest element; +infinity for empty input.
double min_value(std::span<const double> xs);

/// Index of the largest element; 0 for empty input.
std::size_t argmax(std::span<const double> xs);

}  // namespace vibguard
