// Fixed-size thread pool for data-parallel loops.
//
// The pool targets VibGuard's evaluation workloads: score N independent
// trials over a fixed worker set. parallel_for hands out indices through an
// atomic cursor, so work is balanced without per-task queue traffic, and the
// calling thread blocks until the whole range is done. A pool constructed
// with fewer than two threads runs everything inline (the serial fallback),
// which keeps single-core and VIBGUARD_THREADS=1 runs free of thread
// overhead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vibguard {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; fewer than two means no workers and
  /// inline execution.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 in serial-fallback mode).
  std::size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, count) and blocks until all calls have
  /// returned. Iterations may run in any order and on any worker; the first
  /// exception thrown by fn is rethrown here after the loop drains — every
  /// iteration is attempted exactly once regardless of earlier failures,
  /// in the serial fallback as well as the threaded path, and an exception
  /// never reaches std::terminate.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Like parallel_for, but fn also receives the id of the worker running
  /// the iteration — a stable value in [0, max(1, num_threads())) — so
  /// callers can hand each worker its own reusable workspace. In the serial
  /// fallback every iteration runs inline with worker id 0.
  void parallel_for_indexed(
      std::size_t count,
      const std::function<void(std::size_t worker, std::size_t i)>& fn);

 private:
  void worker_loop(std::size_t worker_id);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;  ///< bumped once per parallel_for
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::atomic<std::size_t> next_{0};   ///< next unclaimed index
  std::size_t idle_workers_ = 0;       ///< workers finished with current job
  std::exception_ptr first_error_;
};

/// Worker count for parallel evaluation: the VIBGUARD_THREADS environment
/// variable when set to a positive integer, otherwise the hardware
/// concurrency (at least 1).
std::size_t recommended_threads();

}  // namespace vibguard
