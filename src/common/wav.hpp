// Minimal RIFF/WAVE I/O (16-bit PCM, mono) so signals can be exported for
// listening and imported from real recordings.
#pragma once

#include <string>

#include "common/signal.hpp"

namespace vibguard {

/// Writes `signal` as a mono 16-bit PCM WAV file. Samples are clipped to
/// [-1, 1] before quantization. Throws Error on I/O failure.
void write_wav(const std::string& path, const Signal& signal);

/// Reads a mono (or first-channel of a multichannel) 16-bit PCM WAV file.
/// Throws Error on malformed input or I/O failure.
Signal read_wav(const std::string& path);

}  // namespace vibguard
