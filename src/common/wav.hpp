// Minimal RIFF/WAVE I/O (16-bit PCM, mono) so signals can be exported for
// listening and imported from real recordings.
#pragma once

#include <string>

#include "common/signal.hpp"

namespace vibguard {

/// Writes `signal` as a mono 16-bit PCM WAV file. Samples are clipped to
/// [-1, 1] and quantized as round(s * 32767). Throws Error on I/O failure.
void write_wav(const std::string& path, const Signal& signal);

/// Reads a 16-bit PCM WAV file. Samples are rescaled by the same 32767
/// constant write_wav uses, so write_wav -> read_wav round trips are exact
/// for already-quantized signals and within 0.5/32767 otherwise.
/// Multichannel files are downmixed to mono by averaging the channels.
/// Throws Error on malformed input or I/O failure.
Signal read_wav(const std::string& path);

}  // namespace vibguard
