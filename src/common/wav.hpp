// Minimal RIFF/WAVE I/O (16-bit PCM, mono) so signals can be exported for
// listening and imported from real recordings.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/signal.hpp"

namespace vibguard {

/// Encodes `signal` as a mono 16-bit PCM WAV byte stream. Samples are
/// clipped to [-1, 1] and quantized as round(s * 32767).
std::vector<std::uint8_t> encode_wav(const Signal& signal);

/// Decodes a 16-bit PCM WAV byte stream. Samples are rescaled by the same
/// 32767 constant encode_wav uses, so encode -> decode round trips are
/// exact for already-quantized signals and within 0.5/32767 otherwise.
/// Multichannel streams are downmixed to mono by averaging the channels.
///
/// Hardened against malformed input — bad magic, short reads, chunk sizes
/// claiming more bytes than present, zero sample rates, unsupported
/// formats — every such stream raises Error (never UB or a crash). A final
/// data chunk cut off mid-stream (the classic interrupted-upload
/// truncation) is tolerated: the samples actually present are decoded.
/// `context` names the source in error messages (e.g. the file path).
Signal decode_wav(std::span<const std::uint8_t> bytes,
                  const std::string& context = "<memory>");

/// Writes `signal` as a mono 16-bit PCM WAV file (encode_wav + file I/O).
/// Throws Error on I/O failure.
void write_wav(const std::string& path, const Signal& signal);

/// Reads a WAV file through decode_wav. Throws Error on malformed input or
/// I/O failure.
Signal read_wav(const std::string& path);

}  // namespace vibguard
