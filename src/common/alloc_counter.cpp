#include "common/alloc_counter.hpp"

#include <cstdlib>
#include <new>

namespace {

thread_local std::uint64_t tls_allocations = 0;

void* counted_alloc(std::size_t size) noexcept {
  ++tls_allocations;
  return std::malloc(size > 0 ? size : 1);
}

}  // namespace

namespace vibguard {

std::uint64_t allocation_count() noexcept { return tls_allocations; }

}  // namespace vibguard

// Program-wide replacement of the scalar allocation functions (the array and
// nothrow forms forward here by default). Living in the same translation
// unit as allocation_count() guarantees the replacement is linked in
// whenever the counter is used.
void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
