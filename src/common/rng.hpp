// Deterministic random number generation.
//
// Every stochastic component in VibGuard draws randomness through an Rng
// seeded explicitly by the caller, so that experiments are reproducible
// bit-for-bit. The generator is xoshiro256** (public domain, Blackman &
// Vigna), which is fast, has a 256-bit state and passes BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace vibguard {

/// Deterministic pseudo-random generator with convenience distributions.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator. Two Rng instances constructed with the same seed
  /// produce identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit draw.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw (Box–Muller, cached spare).
  double gaussian();

  /// Normal draw with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Vector of n i.i.d. N(0, stddev^2) samples.
  std::vector<double> gaussian_vector(std::size_t n, double stddev = 1.0);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Derives an independent child generator. Children with distinct labels
  /// produce decorrelated streams; the parent stream is not advanced.
  Rng fork(std::uint64_t label) const;

 private:
  std::array<std::uint64_t, 4> state_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace vibguard
