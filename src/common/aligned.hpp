// Cache-line-aligned storage for SIMD workspaces.
//
// The vector kernels in dsp/simd use unaligned loads, so alignment is a
// throughput nicety rather than a correctness requirement — but the FFT
// twiddle/scratch tables and mel/DCT coefficient matrices live for the
// whole process and are streamed every trial, so pinning them to 64-byte
// boundaries keeps every vector touch within one cache line.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace vibguard {

/// Minimal C++17 allocator handing out `Align`-byte aligned blocks via the
/// aligned operator new. Allocators of any two types compare equal so
/// containers can propagate/swap freely.
template <typename T, std::size_t Align = 64>
struct AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// std::vector with 64-byte aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace vibguard
