// Discrete-time signal container.
//
// A Signal is a uniformly sampled, single-channel sequence of double-precision
// samples tagged with its sampling rate. It is the currency passed between
// all VibGuard subsystems (speech synthesis, acoustics, sensors, DSP).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vibguard {

/// Uniformly sampled single-channel signal.
class Signal {
 public:
  Signal() = default;

  /// Constructs a signal owning `samples` at `sample_rate_hz`.
  Signal(std::vector<double> samples, double sample_rate_hz);

  /// Constructs an all-zero signal of `n` samples.
  static Signal zeros(std::size_t n, double sample_rate_hz);

  /// Samples per second. Always > 0 for a non-default-constructed signal.
  double sample_rate() const { return sample_rate_hz_; }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Duration in seconds.
  double duration() const;

  double& operator[](std::size_t i) { return samples_[i]; }
  double operator[](std::size_t i) const { return samples_[i]; }

  std::span<const double> samples() const { return samples_; }
  std::span<double> samples() { return samples_; }
  const std::vector<double>& vector() const { return samples_; }
  std::vector<double>&& take() && { return std::move(samples_); }

  auto begin() { return samples_.begin(); }
  auto end() { return samples_.end(); }
  auto begin() const { return samples_.begin(); }
  auto end() const { return samples_.end(); }

  /// Root-mean-square amplitude; 0 for an empty signal.
  double rms() const;

  /// Largest absolute sample value; 0 for an empty signal.
  double peak() const;

  /// Multiplies every sample by `gain`.
  void scale(double gain);

  /// Returns a copy scaled so that rms() == target_rms. A silent signal is
  /// returned unchanged.
  Signal scaled_to_rms(double target_rms) const;

  /// Element-wise sum. Signals must share length and sample rate.
  void add(const Signal& other);

  /// Appends `other` (same sample rate required).
  void append(const Signal& other);

  /// Appends raw samples (assumed to be at this signal's rate).
  void append(std::span<const double> samples);

  /// Returns the half-open sample range [begin, end) as a new signal.
  Signal slice(std::size_t begin, std::size_t end) const;

  // In-place variants for allocation-free reuse: all of them keep the
  // existing heap buffer when its capacity suffices, so a Signal cycled
  // through a pipeline Workspace stops allocating once it has seen its
  // largest payload.

  /// Drops all samples (capacity retained) and sets the sample rate.
  void reset(double sample_rate_hz);

  /// Replaces the contents with a copy of `samples` at `sample_rate_hz`.
  void assign(std::span<const double> samples, double sample_rate_hz);

  /// Replaces the contents with `src`'s half-open range [begin, end)
  /// (clamped to src.size()), adopting src's sample rate. `src` must be a
  /// different signal object.
  void assign_slice(const Signal& src, std::size_t begin, std::size_t end);

  /// Resizes to `n` samples; new samples are zero.
  void resize(std::size_t n) { samples_.resize(n, 0.0); }

 private:
  std::vector<double> samples_;
  double sample_rate_hz_ = 0.0;
};

/// Concatenates signals sharing a sample rate; empty input gives an empty
/// signal.
Signal concatenate(std::span<const Signal> parts);

}  // namespace vibguard
