#include "common/wav.hpp"

#include <algorithm>
#include <cstdint>
#include <cmath>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace vibguard {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

}  // namespace

std::vector<std::uint8_t> encode_wav(const Signal& signal) {
  VIBGUARD_REQUIRE(signal.sample_rate() > 0.0,
                   "cannot encode a signal without a sample rate");
  const auto rate = static_cast<std::uint32_t>(signal.sample_rate());
  const auto n = static_cast<std::uint32_t>(signal.size());
  const std::uint32_t data_bytes = n * 2;

  std::vector<std::uint8_t> out;
  out.reserve(44 + data_bytes);
  const char* riff = "RIFF";
  out.insert(out.end(), riff, riff + 4);
  put_u32(out, 36 + data_bytes);
  const char* wavefmt = "WAVEfmt ";
  out.insert(out.end(), wavefmt, wavefmt + 8);
  put_u32(out, 16);            // fmt chunk size
  put_u16(out, 1);             // PCM
  put_u16(out, 1);             // mono
  put_u32(out, rate);
  put_u32(out, rate * 2);      // byte rate
  put_u16(out, 2);             // block align
  put_u16(out, 16);            // bits per sample
  const char* data = "data";
  out.insert(out.end(), data, data + 4);
  put_u32(out, data_bytes);
  for (double s : signal) {
    const double clipped = std::clamp(s, -1.0, 1.0);
    const auto q = static_cast<std::int16_t>(
        std::lround(clipped * 32767.0));
    put_u16(out, static_cast<std::uint16_t>(q));
  }
  return out;
}

Signal decode_wav(std::span<const std::uint8_t> bytes,
                  const std::string& context) {
  VIBGUARD_REQUIRE(bytes.size() >= 12,
                   "not a WAV stream (too short): " + context);
  VIBGUARD_REQUIRE(std::memcmp(bytes.data(), "RIFF", 4) == 0 &&
                       std::memcmp(bytes.data() + 8, "WAVE", 4) == 0,
                   "not a RIFF/WAVE stream: " + context);

  // Walk chunks to find fmt and data. Every size claim is validated
  // against the bytes actually present before it is dereferenced; a size
  // that would overflow position arithmetic is rejected the same way.
  std::size_t pos = 12;
  bool have_fmt = false;
  std::uint16_t channels = 0, bits = 0;
  std::uint32_t rate = 0;
  const std::uint8_t* data_ptr = nullptr;
  std::size_t data_len = 0;
  while (pos + 8 <= bytes.size()) {
    const std::size_t chunk_len = get_u32(bytes.data() + pos + 4);
    const std::uint8_t* body = bytes.data() + pos + 8;
    const std::size_t available = bytes.size() - pos - 8;
    if (std::memcmp(bytes.data() + pos, "fmt ", 4) == 0) {
      // The fmt chunk is tiny and load-bearing; a cut-off one is an error,
      // not something to skip past.
      VIBGUARD_REQUIRE(chunk_len >= 16 && chunk_len <= available,
                       "malformed fmt chunk: " + context);
      const std::uint16_t format = get_u16(body);
      VIBGUARD_REQUIRE(format == 1, "only PCM WAV supported: " + context);
      channels = get_u16(body + 2);
      rate = get_u32(body + 4);
      bits = get_u16(body + 14);
      have_fmt = true;
    } else if (std::memcmp(bytes.data() + pos, "data", 4) == 0 &&
               data_ptr == nullptr) {
      // First data chunk wins. A chunk claiming more bytes than the stream
      // holds is the interrupted-upload truncation: decode the samples
      // actually present instead of rejecting the whole capture.
      data_ptr = body;
      data_len = std::min(chunk_len, available);
    }
    if (chunk_len > available) break;  // truncated final chunk: stop walking
    pos += 8 + chunk_len + (chunk_len & 1);
  }
  VIBGUARD_REQUIRE(have_fmt, "missing fmt chunk: " + context);
  VIBGUARD_REQUIRE(data_ptr != nullptr, "missing data chunk: " + context);
  VIBGUARD_REQUIRE(rate > 0, "zero sample rate: " + context);
  VIBGUARD_REQUIRE(bits == 16, "only 16-bit PCM supported: " + context);
  VIBGUARD_REQUIRE(channels >= 1, "no channels: " + context);

  // One quantization convention for both directions: encode_wav scales by
  // 32767, so dividing by the same constant makes the round trip of any
  // already-quantized signal exact (see DESIGN.md). Multichannel streams
  // are downmixed by averaging the channels of each frame; a trailing
  // partial frame (truncation) is dropped.
  const std::size_t frames = data_len / (2 * channels);
  std::vector<double> samples(frames);
  const double scale = 32767.0 * static_cast<double>(channels);
  for (std::size_t i = 0; i < frames; ++i) {
    double acc = 0.0;
    for (std::size_t c = 0; c < channels; ++c) {
      acc += static_cast<std::int16_t>(
          get_u16(data_ptr + (i * channels + c) * 2));
    }
    samples[i] = acc / scale;
  }
  return Signal(std::move(samples), static_cast<double>(rate));
}

void write_wav(const std::string& path, const Signal& signal) {
  const std::vector<std::uint8_t> out = encode_wav(signal);
  std::ofstream file(path, std::ios::binary);
  VIBGUARD_REQUIRE(file.good(), "cannot open for writing: " + path);
  file.write(reinterpret_cast<const char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
  VIBGUARD_REQUIRE(file.good(), "write failed: " + path);
}

Signal read_wav(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  VIBGUARD_REQUIRE(file.good(), "cannot open for reading: " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(file)),
      std::istreambuf_iterator<char>());
  return decode_wav(bytes, path);
}

}  // namespace vibguard
