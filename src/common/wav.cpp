#include "common/wav.hpp"

#include <algorithm>
#include <cstdint>
#include <cmath>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace vibguard {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

}  // namespace

void write_wav(const std::string& path, const Signal& signal) {
  VIBGUARD_REQUIRE(signal.sample_rate() > 0.0,
                   "cannot write a signal without a sample rate");
  const auto rate = static_cast<std::uint32_t>(signal.sample_rate());
  const auto n = static_cast<std::uint32_t>(signal.size());
  const std::uint32_t data_bytes = n * 2;

  std::vector<std::uint8_t> out;
  out.reserve(44 + data_bytes);
  const char* riff = "RIFF";
  out.insert(out.end(), riff, riff + 4);
  put_u32(out, 36 + data_bytes);
  const char* wavefmt = "WAVEfmt ";
  out.insert(out.end(), wavefmt, wavefmt + 8);
  put_u32(out, 16);            // fmt chunk size
  put_u16(out, 1);             // PCM
  put_u16(out, 1);             // mono
  put_u32(out, rate);
  put_u32(out, rate * 2);      // byte rate
  put_u16(out, 2);             // block align
  put_u16(out, 16);            // bits per sample
  const char* data = "data";
  out.insert(out.end(), data, data + 4);
  put_u32(out, data_bytes);
  for (double s : signal) {
    const double clipped = std::clamp(s, -1.0, 1.0);
    const auto q = static_cast<std::int16_t>(
        std::lround(clipped * 32767.0));
    put_u16(out, static_cast<std::uint16_t>(q));
  }

  std::ofstream file(path, std::ios::binary);
  VIBGUARD_REQUIRE(file.good(), "cannot open for writing: " + path);
  file.write(reinterpret_cast<const char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
  VIBGUARD_REQUIRE(file.good(), "write failed: " + path);
}

Signal read_wav(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  VIBGUARD_REQUIRE(file.good(), "cannot open for reading: " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(file)),
      std::istreambuf_iterator<char>());
  VIBGUARD_REQUIRE(bytes.size() >= 44, "not a WAV file (too short): " + path);
  VIBGUARD_REQUIRE(std::memcmp(bytes.data(), "RIFF", 4) == 0 &&
                       std::memcmp(bytes.data() + 8, "WAVE", 4) == 0,
                   "not a RIFF/WAVE file: " + path);

  // Walk chunks to find fmt and data.
  std::size_t pos = 12;
  std::uint16_t channels = 0, bits = 0;
  std::uint32_t rate = 0;
  const std::uint8_t* data_ptr = nullptr;
  std::uint32_t data_len = 0;
  while (pos + 8 <= bytes.size()) {
    const std::uint32_t chunk_len = get_u32(bytes.data() + pos + 4);
    const std::uint8_t* body = bytes.data() + pos + 8;
    if (pos + 8 + chunk_len > bytes.size()) break;
    if (std::memcmp(bytes.data() + pos, "fmt ", 4) == 0 && chunk_len >= 16) {
      const std::uint16_t format = get_u16(body);
      VIBGUARD_REQUIRE(format == 1, "only PCM WAV supported: " + path);
      channels = get_u16(body + 2);
      rate = get_u32(body + 4);
      bits = get_u16(body + 14);
    } else if (std::memcmp(bytes.data() + pos, "data", 4) == 0) {
      data_ptr = body;
      data_len = chunk_len;
    }
    pos += 8 + chunk_len + (chunk_len & 1);
  }
  VIBGUARD_REQUIRE(data_ptr != nullptr && rate > 0,
                   "missing fmt/data chunk: " + path);
  VIBGUARD_REQUIRE(bits == 16, "only 16-bit PCM supported: " + path);
  VIBGUARD_REQUIRE(channels >= 1, "no channels: " + path);

  // One quantization convention for both directions: write_wav scales by
  // 32767, so dividing by the same constant makes the round trip of any
  // already-quantized signal exact (see DESIGN.md). Multichannel files are
  // downmixed by averaging the channels of each frame.
  const std::size_t frames = data_len / (2 * channels);
  std::vector<double> samples(frames);
  const double scale = 32767.0 * static_cast<double>(channels);
  for (std::size_t i = 0; i < frames; ++i) {
    double acc = 0.0;
    for (std::size_t c = 0; c < channels; ++c) {
      acc += static_cast<std::int16_t>(
          get_u16(data_ptr + (i * channels + c) * 2));
    }
    samples[i] = acc / scale;
  }
  return Signal(std::move(samples), static_cast<double>(rate));
}

}  // namespace vibguard
