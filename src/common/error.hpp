// Error handling primitives for the VibGuard library.
//
// The library reports precondition violations and unrecoverable internal
// errors with exceptions derived from vibguard::Error. Recoverable conditions
// (e.g. "detector score below threshold") are ordinary return values, never
// exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace vibguard {

/// Base class for all exceptions thrown by VibGuard.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant fails (a library bug, not a user error).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid_argument(const char* expr,
                                                const char* file, int line,
                                                const std::string& msg) {
  throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                        ": precondition `" + expr + "` failed: " + msg);
}
[[noreturn]] inline void throw_internal(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw InternalError(std::string(file) + ":" + std::to_string(line) +
                      ": invariant `" + expr + "` failed: " + msg);
}
}  // namespace detail

}  // namespace vibguard

/// Validates a documented precondition on a public API entry point.
#define VIBGUARD_REQUIRE(expr, msg)                                       \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::vibguard::detail::throw_invalid_argument(#expr, __FILE__,         \
                                                 __LINE__, (msg));        \
    }                                                                     \
  } while (false)

/// Validates an internal invariant; failure indicates a library bug.
#define VIBGUARD_ASSERT(expr, msg)                                        \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::vibguard::detail::throw_internal(#expr, __FILE__, __LINE__,       \
                                         (msg));                          \
    }                                                                     \
  } while (false)

/// Marks a path the program guarantees is never executed — typically after
/// a switch that covers every enumerator (kept honest by -Wswitch). The
/// optimizer drops the path; UBSan traps it if the guarantee is ever
/// violated. Falls back to throwing on compilers without the builtin.
#if defined(__GNUC__) || defined(__clang__)
#define VIBGUARD_UNREACHABLE() __builtin_unreachable()
#else
#define VIBGUARD_UNREACHABLE()                                            \
  ::vibguard::detail::throw_internal("false", __FILE__, __LINE__,         \
                                     "unreachable code executed")
#endif
