// Decibel / sound-pressure-level conversions.
//
// The simulation works in a normalized linear amplitude where an RMS of
// `kReferenceRms` corresponds to a sound pressure level of `kReferenceSpl`
// decibels (re 20 µPa). The paper specifies attack and speech volumes as SPL
// values (65/75/85 dB), so all workload generators express loudness in dB SPL
// and convert through these helpers.
#pragma once

namespace vibguard {

/// RMS amplitude assigned to the reference SPL in the normalized scale.
inline constexpr double kReferenceRms = 0.05;

/// SPL (dB re 20 µPa) assigned to kReferenceRms.
inline constexpr double kReferenceSpl = 65.0;

/// Converts a sound pressure level in dB to a normalized RMS amplitude.
double spl_to_rms(double spl_db);

/// Converts a normalized RMS amplitude to a sound pressure level in dB.
/// Returns -infinity for rms == 0.
double rms_to_spl(double rms);

/// Converts a power ratio to decibels (10·log10). Returns -infinity for 0.
double power_to_db(double power_ratio);

/// Converts an amplitude ratio to decibels (20·log10).
double amplitude_to_db(double amplitude_ratio);

/// Converts decibels to an amplitude ratio (10^(db/20)).
double db_to_amplitude(double db);

}  // namespace vibguard
