// Injectable time source and deadline budgets for the serving runtime.
//
// Every serving-layer feature that depends on time — per-command deadline
// budgets, retry backoff waits, circuit-breaker cooldowns, queue-time
// accounting — reads the clock through this abstraction instead of calling
// std::chrono directly. Production code injects SteadyClock (monotonic wall
// time); tests and the discrete-event load sweep inject VirtualClock, whose
// time only moves when the caller advances it, so every timeout, backoff
// schedule and breaker transition is bit-reproducible. Pipeline scoring
// itself never reads a clock unless a Deadline is supplied, which keeps the
// repo's determinism guarantee: with no deadline configured, scores are
// bit-identical whether or not a clock exists.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

namespace vibguard {

/// Monotonic microsecond time source. Implementations must be safe to share
/// across threads.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Microseconds since an arbitrary fixed epoch (monotonic, never
  /// decreasing).
  virtual std::uint64_t now_us() const = 0;

  /// Blocks (or, for virtual clocks, advances time) for `us` microseconds.
  virtual void sleep_us(std::uint64_t us) const = 0;
};

/// Wall-clock implementation over std::chrono::steady_clock. The epoch is
/// the first use within the process.
class SteadyClock final : public Clock {
 public:
  std::uint64_t now_us() const override;
  void sleep_us(std::uint64_t us) const override;

  /// Shared process-wide instance.
  static const SteadyClock& instance();
};

/// Deterministic manually-advanced clock for tests and simulation. Time
/// starts at `start_us` and moves only through advance()/set()/sleep_us().
/// Thread-safe: the current time is a single atomic.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(std::uint64_t start_us = 0) : now_(start_us) {}

  std::uint64_t now_us() const override {
    return now_.load(std::memory_order_relaxed);
  }

  /// Sleeping on a virtual clock advances it: code written against the
  /// Clock interface behaves identically under simulation.
  void sleep_us(std::uint64_t us) const override { advance(us); }

  /// Moves time forward by `us` microseconds.
  void advance(std::uint64_t us) const {
    now_.fetch_add(us, std::memory_order_relaxed);
  }

  /// Jumps to an absolute time; must not move backwards.
  void set(std::uint64_t us) const;

 private:
  mutable std::atomic<std::uint64_t> now_;
};

/// A point in time a unit of work must finish by, bound to the clock that
/// defines it. A default-constructed Deadline never expires (and reads no
/// clock at all), so APIs can accept `const Deadline*` with nullptr meaning
/// "no budget" at zero cost.
class Deadline {
 public:
  /// No deadline: never expires, never reads a clock.
  Deadline() = default;

  /// Expires when `clock` reaches `expires_at_us`.
  Deadline(const Clock& clock, std::uint64_t expires_at_us)
      : clock_(&clock), expires_at_us_(expires_at_us) {}

  /// Deadline `budget_us` from now on `clock`.
  static Deadline after(const Clock& clock, std::uint64_t budget_us) {
    return Deadline(clock, clock.now_us() + budget_us);
  }

  /// True when a finite budget is attached.
  bool bounded() const { return clock_ != nullptr; }

  /// True once the clock has reached the expiry time.
  bool expired() const {
    return clock_ != nullptr && clock_->now_us() >= expires_at_us_;
  }

  /// Microseconds left before expiry; 0 when expired, max() when unbounded.
  std::uint64_t remaining_us() const {
    if (clock_ == nullptr) return std::numeric_limits<std::uint64_t>::max();
    const std::uint64_t now = clock_->now_us();
    return now >= expires_at_us_ ? 0 : expires_at_us_ - now;
  }

  std::uint64_t expires_at_us() const { return expires_at_us_; }

 private:
  const Clock* clock_ = nullptr;
  std::uint64_t expires_at_us_ = 0;
};

}  // namespace vibguard
