// Per-thread heap-allocation counter.
//
// The staged pipeline advertises zero steady-state allocations per scored
// trial; this header is how that claim is measured rather than asserted.
// Linking vibguard_common replaces the global scalar `operator new` /
// `operator delete` with versions that bump a thread-local counter before
// delegating to malloc/free, so `allocation_count()` deltas around a code
// region report exactly how many heap allocations that region performed on
// the calling thread. The per-stage `allocations` field of StageTrace and
// the bench_score_batch steady-state check are both built on these deltas.
//
// The counter costs one thread-local increment per allocation — negligible
// next to malloc itself — and is always on.
#pragma once

#include <cstdint>

namespace vibguard {

/// Number of scalar operator-new calls made by the calling thread since it
/// started. Take deltas; the absolute value includes runtime startup noise.
std::uint64_t allocation_count() noexcept;

}  // namespace vibguard
