#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace vibguard {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double q) {
  VIBGUARD_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  VIBGUARD_REQUIRE(!xs.empty(), "quantile of empty range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double third_quartile(std::span<const double> xs) {
  return quantile(xs, 0.75);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double pearson(std::span<const double> a, std::span<const double> b) {
  VIBGUARD_REQUIRE(a.size() == b.size(),
                   "pearson requires equal-length sequences");
  if (a.empty()) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double xa = a[i] - ma;
    const double xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

double max_value(std::span<const double> xs) {
  double best = -std::numeric_limits<double>::infinity();
  for (double x : xs) best = std::max(best, x);
  return best;
}

double min_value(std::span<const double> xs) {
  double best = std::numeric_limits<double>::infinity();
  for (double x : xs) best = std::min(best, x);
  return best;
}

std::size_t argmax(std::span<const double> xs) {
  if (xs.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

}  // namespace vibguard
