#include "common/signal.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vibguard {

Signal::Signal(std::vector<double> samples, double sample_rate_hz)
    : samples_(std::move(samples)), sample_rate_hz_(sample_rate_hz) {
  VIBGUARD_REQUIRE(sample_rate_hz > 0.0, "sample rate must be positive");
}

Signal Signal::zeros(std::size_t n, double sample_rate_hz) {
  return Signal(std::vector<double>(n, 0.0), sample_rate_hz);
}

double Signal::duration() const {
  return sample_rate_hz_ > 0.0
             ? static_cast<double>(samples_.size()) / sample_rate_hz_
             : 0.0;
}

double Signal::rms() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (double s : samples_) acc += s * s;
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Signal::peak() const {
  double p = 0.0;
  for (double s : samples_) p = std::max(p, std::abs(s));
  return p;
}

void Signal::scale(double gain) {
  for (double& s : samples_) s *= gain;
}

Signal Signal::scaled_to_rms(double target_rms) const {
  VIBGUARD_REQUIRE(target_rms >= 0.0, "target RMS must be non-negative");
  const double current = rms();
  Signal out = *this;
  if (current > 0.0) out.scale(target_rms / current);
  return out;
}

void Signal::add(const Signal& other) {
  VIBGUARD_REQUIRE(other.size() == size(),
                   "cannot add signals of different lengths");
  VIBGUARD_REQUIRE(other.sample_rate() == sample_rate_hz_,
                   "cannot add signals with different sample rates");
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    samples_[i] += other.samples_[i];
  }
}

void Signal::append(const Signal& other) {
  if (other.empty()) return;
  if (empty() && sample_rate_hz_ == 0.0) {
    *this = other;
    return;
  }
  VIBGUARD_REQUIRE(other.sample_rate() == sample_rate_hz_,
                   "cannot append signals with different sample rates");
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

void Signal::append(std::span<const double> samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
}

void Signal::reset(double sample_rate_hz) {
  VIBGUARD_REQUIRE(sample_rate_hz > 0.0, "sample rate must be positive");
  samples_.clear();
  sample_rate_hz_ = sample_rate_hz;
}

void Signal::assign(std::span<const double> samples, double sample_rate_hz) {
  VIBGUARD_REQUIRE(sample_rate_hz > 0.0, "sample rate must be positive");
  samples_.assign(samples.begin(), samples.end());
  sample_rate_hz_ = sample_rate_hz;
}

void Signal::assign_slice(const Signal& src, std::size_t begin,
                          std::size_t end) {
  VIBGUARD_REQUIRE(&src != this,
                   "assign_slice source must be a different signal");
  const std::size_t hi = std::min(end, src.size());
  const std::size_t lo = std::min(begin, hi);
  samples_.assign(src.samples_.begin() + static_cast<std::ptrdiff_t>(lo),
                  src.samples_.begin() + static_cast<std::ptrdiff_t>(hi));
  sample_rate_hz_ = src.sample_rate_hz_;
}

Signal Signal::slice(std::size_t begin, std::size_t end) const {
  VIBGUARD_REQUIRE(begin <= end && end <= samples_.size(),
                   "slice range out of bounds");
  return Signal(std::vector<double>(samples_.begin() + begin,
                                    samples_.begin() + end),
                sample_rate_hz_);
}

Signal concatenate(std::span<const Signal> parts) {
  Signal out;
  for (const Signal& p : parts) out.append(p);
  return out;
}

}  // namespace vibguard
