#include "common/thread_pool.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace vibguard {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads < 2) return;  // serial fallback: run inline
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_indexed(
      count, [&fn](std::size_t /*worker*/, std::size_t i) { fn(i); });
}

void ThreadPool::parallel_for_indexed(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (workers_.empty() || count < 2) {
    // Same exception semantics as the threaded path: remember the first
    // failure, drain the remaining iterations, rethrow at the join point.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(0, i);
      } catch (...) {
        if (first_error == nullptr) first_error = std::current_exception();
      }
    }
    if (first_error != nullptr) std::rethrow_exception(first_error);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &fn;
  job_count_ = count;
  next_.store(0, std::memory_order_relaxed);
  idle_workers_ = 0;
  first_error_ = nullptr;
  ++generation_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return idle_workers_ == workers_.size(); });
  job_ = nullptr;
  if (first_error_ != nullptr) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const auto* fn = job_;
    const std::size_t count = job_count_;
    lock.unlock();
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        (*fn)(worker_id, i);
      } catch (...) {
        // Remember the first failure and drain the remaining iterations so
        // the range still completes deterministically.
        std::lock_guard<std::mutex> guard(mutex_);
        if (first_error_ == nullptr) first_error_ = std::current_exception();
      }
    }
    lock.lock();
    if (++idle_workers_ == workers_.size()) done_cv_.notify_all();
  }
}

std::size_t recommended_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  const std::size_t fallback = hc == 0 ? 1 : static_cast<std::size_t>(hc);
  const char* env = std::getenv("VIBGUARD_THREADS");
  if (env == nullptr) return fallback;
  // Guard against every malformed shape — non-numeric, trailing junk,
  // negative, zero, or overflowing strtol (ERANGE) — and against absurd
  // but representable counts that would exhaust the process spawning
  // threads. All of them fall back to the hardware default with one
  // warning rather than undefined behavior.
  constexpr long kMaxThreads = 4096;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || value <= 0 ||
      value > kMaxThreads) {
    std::fprintf(stderr,
                 "vibguard: ignoring invalid VIBGUARD_THREADS='%s' "
                 "(want an integer in 1..%ld); using %zu thread(s)\n",
                 env, kMaxThreads, fallback);
    return fallback;
  }
  return static_cast<std::size_t>(value);
}

}  // namespace vibguard
