#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace vibguard {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used only to expand the user seed into the 256-bit state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  VIBGUARD_REQUIRE(lo <= hi, "uniform bounds must satisfy lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  VIBGUARD_REQUIRE(lo <= hi, "uniform_int bounds must satisfy lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::gaussian(double mean, double stddev) {
  VIBGUARD_REQUIRE(stddev >= 0.0, "stddev must be non-negative");
  return mean + stddev * gaussian();
}

std::vector<double> Rng::gaussian_vector(std::size_t n, double stddev) {
  std::vector<double> out(n);
  for (auto& v : out) v = gaussian(0.0, stddev);
  return out;
}

bool Rng::bernoulli(double p) {
  VIBGUARD_REQUIRE(p >= 0.0 && p <= 1.0, "probability must be in [0, 1]");
  return uniform() < p;
}

Rng Rng::fork(std::uint64_t label) const {
  // Mix the current state with the label through splitmix to derive an
  // independent stream without advancing the parent.
  std::uint64_t s = state_[0] ^ rotl(state_[2], 13) ^
                    (label * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return Rng(splitmix64(s));
}

}  // namespace vibguard
