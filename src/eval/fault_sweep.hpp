// Fault-severity robustness sweep: EER-vs-fault-severity curves.
//
// Renders one fixed population of legitimate and attack trials, then — for
// each severity level of one fault kind — applies the canonical
// severity_plan corruption to deterministic per-trial copies of the
// recordings and scores them through the exception-safe outcome batch API.
// The sweep measures two things at once: how detection quality (EER/AUC)
// decays as captures degrade, and how much of the population the quality
// gate diverts into indeterminate outcomes instead of garbage verdicts. By
// construction the sweep never throws out of a trial: every trial ends
// scored, indeterminate, or as a captured per-trial error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/attack.hpp"
#include "core/pipeline.hpp"
#include "eval/scenario.hpp"
#include "faults/fault.hpp"

namespace vibguard::eval {

struct FaultSweepConfig {
  ScenarioConfig scenario;
  std::size_t num_speakers = 4;
  std::size_t legit_trials = 20;
  std::size_t attack_trials = 20;
  attacks::AttackType attack = attacks::AttackType::kReplay;
  core::DefenseConfig defense;  ///< quality gate and mode under test
  faults::FaultKind fault = faults::FaultKind::kDropout;
  /// Severity grid; 0 is the uninjected baseline.
  std::vector<double> severities = {0.0, 0.25, 0.5, 0.75, 1.0};
  /// Which channel(s) the fault corrupts.
  bool inject_va = true;
  bool inject_wearable = true;
  /// Worker threads: 0 = auto (VIBGUARD_THREADS / hardware), 1 = serial.
  /// Outcomes are bit-identical at every thread count.
  std::size_t threads = 0;
};

/// Results at one severity level.
struct FaultSweepPoint {
  double severity = 0.0;
  std::size_t scored = 0;         ///< trials that produced a real score
  std::size_t indeterminate = 0;  ///< gate-halted / degenerate trials
  std::size_t errors = 0;         ///< captured per-trial stage errors
  /// EER/AUC over the scored trials; NaN when either class kept fewer than
  /// two scores (the curve is meaningless there, not zero).
  double eer = 0.0;
  double auc = 0.0;
};

struct FaultSweepResult {
  faults::FaultKind fault;
  std::string fault_label;  ///< fault_name(fault)
  std::vector<FaultSweepPoint> points;

  /// Multi-line table: one row per severity.
  std::string summary() const;
};

/// Runs the sweep. Deterministic in `seed` (trial rendering, fault
/// corruption and scoring all derive from it) and exception-safe per trial.
FaultSweepResult run_fault_sweep(const FaultSweepConfig& config,
                                 std::uint64_t seed);

}  // namespace vibguard::eval
