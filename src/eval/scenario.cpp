#include "eval/scenario.hpp"

#include "common/db.hpp"
#include "common/error.hpp"

namespace vibguard::eval {

ScenarioSimulator::ScenarioSimulator(ScenarioConfig config,
                                     std::uint64_t seed)
    : config_(std::move(config)),
      rng_(seed),
      barrier_(config_.room.barrier_material, config_.barrier_thickness),
      room_(config_.room, rng_.fork(0xacc0)),
      wearable_(config_.wearable),
      va_mic_(config_.va_microphone),
      sync_(config_.sync) {}

TrialRecordings ScenarioSimulator::record_pair(const Signal& source,
                                               double to_va_m,
                                               double to_wearable_m) {
  TrialRecordings t;
  const Signal at_va = room_.render(source, to_va_m);
  const Signal at_wear = room_.render(source, to_wearable_m);
  t.va = va_mic_.record(at_va, rng_);
  Signal wear_rec = wearable_.record(at_wear, rng_);
  // Network notification delay: the wearable misses the first part.
  t.true_delay_s = sync_.sample_delay(rng_);
  t.wearable = sync_.delayed_view(wear_rec, t.true_delay_s);
  return t;
}

TrialRecordings ScenarioSimulator::legitimate_trial(
    const speech::VoiceCommand& command,
    const speech::SpeakerProfile& user) {
  speech::UtteranceBuilder builder;
  auto utt = builder.build(command, user, rng_);
  const double spl = rng_.uniform(config_.user_spl_min, config_.user_spl_max);
  Signal source = utt.audio.scaled_to_rms(spl_to_rms(spl));

  TrialRecordings t =
      record_pair(source, config_.user_to_va_m, config_.user_to_wearable_m);
  t.alignment = std::move(utt.alignment);
  t.is_attack = false;
  t.command = command.text;
  return t;
}

TrialRecordings ScenarioSimulator::attack_trial(
    attacks::AttackType type, const speech::VoiceCommand& command,
    const speech::SpeakerProfile& victim,
    const speech::SpeakerProfile& adversary) {
  auto attack = attack_gen_.generate(type, command, victim, adversary, rng_);
  Signal emitted = attack.audio.scaled_to_rms(spl_to_rms(config_.attack_spl));

  // Propagation: emitter -> barrier (short hop) -> through barrier ->
  // in-room path to each device. The barrier filter commutes with the
  // (linear) spreading losses, so apply it once and use total distances.
  Signal through = barrier_.transmit(emitted);
  const double d0 = config_.attacker_to_barrier_m;
  TrialRecordings t = record_pair(through, d0 + config_.barrier_to_va_m,
                                  d0 + config_.barrier_to_wearable_m);
  t.alignment = std::move(attack.alignment);
  t.is_attack = true;
  t.attack_type = type;
  t.command = attack.command;
  return t;
}

Signal ScenarioSimulator::attack_sound_at_va(const Signal& attack_audio,
                                             double attack_spl) {
  Signal emitted = attack_audio.scaled_to_rms(spl_to_rms(attack_spl));
  Signal through = barrier_.transmit(emitted);
  const Signal at_va = room_.render(
      through, config_.attacker_to_barrier_m + config_.barrier_to_va_m);
  return va_mic_.record(at_va, rng_);
}

}  // namespace vibguard::eval
