#include "eval/sweep_population.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "speech/command.hpp"
#include "speech/speaker.hpp"

namespace vibguard::eval {
namespace {

/// EER needs a minimally populated pair of score classes to mean anything.
constexpr std::size_t kMinClassScores = 2;

}  // namespace

double eer_or_nan(const std::vector<double>& attack,
                  const std::vector<double>& legit) {
  if (attack.size() < kMinClassScores || legit.size() < kMinClassScores) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return compute_roc(attack, legit).eer;
}

std::uint64_t percentile_nearest_rank(std::vector<std::uint64_t> values,
                                      double pct) {
  VIBGUARD_REQUIRE(pct > 0.0 && pct <= 100.0, "percentile must be in (0,100]");
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(values.size())));
  return values[rank - 1];
}

void render_sweep_population(const LoadSweepConfig& config,
                             std::uint64_t seed, SweepPopulation& pop) {
  VIBGUARD_REQUIRE(config.num_speakers >= 2,
                   "need at least two speakers (victim + adversary)");
  VIBGUARD_REQUIRE(!config.offered_rps.empty(),
                   "offered-load grid must be non-empty");
  for (const double rps : config.offered_rps) {
    VIBGUARD_REQUIRE(rps > 0.0, "offered load must be positive");
  }

  // Mirror the fault sweep's deterministic definition: one shared
  // simulator stream in a fixed order.
  Rng rng(seed);
  const auto speakers = speech::sample_population(config.num_speakers, rng);
  ScenarioSimulator sim(config.scenario, seed ^ 0x5ce9a21ULL);
  const auto lexicon = speech::command_lexicon();

  pop.trials.reserve(config.legit_trials + config.attack_trials);
  for (std::size_t i = 0; i < config.legit_trials; ++i) {
    const auto& user = speakers[i % speakers.size()];
    const auto& cmd = lexicon[i % lexicon.size()];
    pop.trials.push_back(sim.legitimate_trial(cmd, user));
  }
  for (std::size_t i = 0; i < config.attack_trials; ++i) {
    const auto& victim = speakers[i % speakers.size()];
    const auto& adversary = speakers[(i + 1) % speakers.size()];
    const auto& cmd = lexicon[(i * 3 + 1) % lexicon.size()];
    pop.trials.push_back(
        sim.attack_trial(config.attack, cmd, victim, adversary));
  }

  const auto& sensitive = reference_sensitive_set();
  pop.oracles.reserve(pop.trials.size());
  for (const TrialRecordings& trial : pop.trials) {
    pop.oracles.emplace_back(trial.alignment, sensitive);
  }

  pop.primary_cfg = config.defense;
  pop.primary_cfg.wearable = config.scenario.wearable;
  pop.primary_cfg.sync = config.scenario.sync;

  // Request order: one deterministic interleaving of the population,
  // shared by every load point so the points differ only in timing.
  pop.order.resize(pop.trials.size());
  for (std::size_t i = 0; i < pop.order.size(); ++i) pop.order[i] = i;
  Rng shuffle_rng = rng.fork(0x0de1ULL);
  for (std::size_t i = pop.order.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        shuffle_rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(pop.order[i - 1], pop.order[j]);
  }

  pop.score_rng = Rng(seed ^ 0x7e57ULL);
  pop.arrival_rng = Rng(seed ^ 0xa331a1ULL);
}

std::vector<std::uint64_t> poisson_arrivals(const Rng& arrival_rng,
                                            std::size_t point_index,
                                            double rps, std::size_t count) {
  Rng arrivals_rng = arrival_rng.fork(point_index);
  std::vector<std::uint64_t> arrival_us(count);
  std::uint64_t t_us = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const double gap_s = -std::log(1.0 - arrivals_rng.uniform()) / rps;
    t_us += std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(gap_s * 1e6)));
    arrival_us[i] = t_us;
  }
  return arrival_us;
}

}  // namespace vibguard::eval
