// Bootstrap confidence intervals for detection metrics, and score
// calibration for the streaming anytime-verdict layer.
//
// The paper reports point estimates; for a simulation-based reproduction
// the sampling uncertainty matters, so AUC/EER are accompanied by
// percentile-bootstrap intervals over resampled score populations.
#pragma once

#include <cstdint>
#include <span>

#include "core/streaming.hpp"

namespace vibguard::eval {

/// A two-sided percentile interval around a point estimate.
struct ConfidenceInterval {
  double point = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};

struct BootstrapConfig {
  std::size_t resamples = 500;
  double confidence = 0.95;  ///< e.g. 0.95 -> [2.5%, 97.5%] percentiles
  std::uint64_t seed = 0x9e3779b9ULL;
};

/// Bootstrap CI for the AUC of attack-vs-legit score populations.
ConfidenceInterval bootstrap_auc(std::span<const double> attack_scores,
                                 std::span<const double> legit_scores,
                                 const BootstrapConfig& config = {});

/// Bootstrap CI for the EER.
ConfidenceInterval bootstrap_eer(std::span<const double> attack_scores,
                                 std::span<const double> legit_scores,
                                 const BootstrapConfig& config = {});

/// Maps correlation scores to calibrated attack posteriors for the
/// streaming stopping rule (core::ConfidenceModel).
///
/// The model is class-conditional Gaussians with a pooled variance — i.e.
/// linear discriminant analysis — whose posterior is a logistic function of
/// the score: P(attack | s) = sigmoid(a * s + b) with a < 0 whenever the
/// attack population scores lower than the legitimate one (it always does
/// here). Two properties matter:
///   - the mapping is strictly MONOTONE in the score, so thresholding the
///     posterior is equivalent to thresholding the score and calibration
///     cannot change the EER of a score population it is applied to;
///   - it needs only the two means and the pooled variance, so a few dozen
///     calibration trials per class suffice.
class ScoreCalibration final : public core::ConfidenceModel {
 public:
  /// Uncalibrated model: posterior_attack returns 0.5 everywhere (never
  /// confident, so a stopping rule using it never fires).
  ScoreCalibration() = default;

  /// Fits the pooled-variance Gaussian model. Indeterminate scores
  /// (core::is_indeterminate_score) are skipped; both populations must
  /// retain at least two scores each.
  void fit(std::span<const double> attack_scores,
           std::span<const double> legit_scores);

  bool fitted() const { return fitted_; }
  double slope() const { return a_; }
  double intercept() const { return b_; }

  /// P(attack | score) = sigmoid(a * score + b); 0.5 until fitted.
  double posterior_attack(double score) const override;

 private:
  bool fitted_ = false;
  double a_ = 0.0;  ///< logistic slope (negative after any sane fit)
  double b_ = 0.0;  ///< logistic intercept
};

}  // namespace vibguard::eval
