// Bootstrap confidence intervals for detection metrics.
//
// The paper reports point estimates; for a simulation-based reproduction
// the sampling uncertainty matters, so AUC/EER are accompanied by
// percentile-bootstrap intervals over resampled score populations.
#pragma once

#include <cstdint>
#include <span>

namespace vibguard::eval {

/// A two-sided percentile interval around a point estimate.
struct ConfidenceInterval {
  double point = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};

struct BootstrapConfig {
  std::size_t resamples = 500;
  double confidence = 0.95;  ///< e.g. 0.95 -> [2.5%, 97.5%] percentiles
  std::uint64_t seed = 0x9e3779b9ULL;
};

/// Bootstrap CI for the AUC of attack-vs-legit score populations.
ConfidenceInterval bootstrap_auc(std::span<const double> attack_scores,
                                 std::span<const double> legit_scores,
                                 const BootstrapConfig& config = {});

/// Bootstrap CI for the EER.
ConfidenceInterval bootstrap_eer(std::span<const double> attack_scores,
                                 std::span<const double> legit_scores,
                                 const BootstrapConfig& config = {});

}  // namespace vibguard::eval
