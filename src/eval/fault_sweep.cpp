#include "eval/fault_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/segmentation.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "speech/command.hpp"
#include "speech/speaker.hpp"

namespace vibguard::eval {
namespace {

/// EER/AUC need a minimally populated pair of score classes to mean
/// anything; below this we report NaN instead of a fabricated number.
constexpr std::size_t kMinClassScores = 2;

double nan_metric() { return std::numeric_limits<double>::quiet_NaN(); }

}  // namespace

std::string FaultSweepResult::summary() const {
  std::string out = "fault sweep: " + fault_label + "\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %8s %7s %14s %7s %8s %8s\n",
                "severity", "scored", "indeterminate", "errors", "EER",
                "AUC");
  out += line;
  for (const FaultSweepPoint& p : points) {
    std::snprintf(line, sizeof(line),
                  "  %8.2f %7zu %14zu %7zu %8.3f %8.3f\n", p.severity,
                  p.scored, p.indeterminate, p.errors, p.eer, p.auc);
    out += line;
  }
  return out;
}

FaultSweepResult run_fault_sweep(const FaultSweepConfig& config,
                                 std::uint64_t seed) {
  VIBGUARD_REQUIRE(config.num_speakers >= 2,
                   "need at least two speakers (victim + adversary)");
  VIBGUARD_REQUIRE(!config.severities.empty(),
                   "severity grid must be non-empty");

  // Render the clean trial population once, mirroring ExperimentRunner's
  // deterministic definition: one shared simulator stream in a fixed order.
  Rng rng(seed);
  const auto speakers = speech::sample_population(config.num_speakers, rng);
  ScenarioSimulator sim(config.scenario, seed ^ 0x5ce9a21ULL);
  const auto lexicon = speech::command_lexicon();

  std::vector<TrialRecordings> trials;
  trials.reserve(config.legit_trials + config.attack_trials);
  for (std::size_t i = 0; i < config.legit_trials; ++i) {
    const auto& user = speakers[i % speakers.size()];
    const auto& cmd = lexicon[i % lexicon.size()];
    trials.push_back(sim.legitimate_trial(cmd, user));
  }
  for (std::size_t i = 0; i < config.attack_trials; ++i) {
    const auto& victim = speakers[i % speakers.size()];
    const auto& adversary = speakers[(i + 1) % speakers.size()];
    const auto& cmd = lexicon[(i * 3 + 1) % lexicon.size()];
    trials.push_back(
        sim.attack_trial(config.attack, cmd, victim, adversary));
  }

  const auto& sensitive = reference_sensitive_set();
  std::vector<core::OracleSegmenter> oracles;
  oracles.reserve(trials.size());
  for (const TrialRecordings& trial : trials) {
    oracles.emplace_back(trial.alignment, sensitive);
  }

  core::DefenseConfig defense = config.defense;
  defense.wearable = config.scenario.wearable;
  defense.sync = config.scenario.sync;
  const core::DefenseSystem system(defense);

  const std::size_t threads =
      config.threads != 0 ? config.threads : recommended_threads();
  ThreadPool pool(std::min(threads, trials.size()));
  std::vector<core::Workspace> workspaces(
      std::max<std::size_t>(1, pool.num_threads()));

  const Rng score_rng(seed ^ 0x7e57ULL);
  const Rng fault_rng(seed ^ 0xfa017ULL);

  FaultSweepResult result;
  result.fault = config.fault;
  result.fault_label = faults::fault_name(config.fault);

  std::vector<Signal> faulty_va(trials.size());
  std::vector<Signal> faulty_wear(trials.size());
  std::vector<core::ScoreRequest> requests(trials.size());
  std::vector<core::ScoreOutcome> outcomes(trials.size());

  for (std::size_t sev_idx = 0; sev_idx < config.severities.size();
       ++sev_idx) {
    const double severity = config.severities[sev_idx];
    const faults::FaultPlan plan = faults::severity_plan(config.fault,
                                                         severity);

    // Corrupt deterministic copies: each (severity, trial, channel) gets
    // its own fork, so the corruption is independent of execution order
    // and of which other severities were requested.
    for (std::size_t t = 0; t < trials.size(); ++t) {
      faulty_va[t] = trials[t].va;
      faulty_wear[t] = trials[t].wearable;
      if (!plan.empty()) {
        const std::uint64_t label = sev_idx * 2654435761ULL + t * 2ULL;
        if (config.inject_va) {
          Rng r = fault_rng.fork(label);
          plan.apply(faulty_va[t], r);
        }
        if (config.inject_wearable) {
          Rng r = fault_rng.fork(label + 1);
          plan.apply(faulty_wear[t], r);
        }
      }
      const std::size_t legit_before =
          trials[t].is_attack ? config.legit_trials : t;
      const std::size_t attack_before =
          trials[t].is_attack ? t - config.legit_trials : 0;
      requests[t].va = &faulty_va[t];
      requests[t].wearable = &faulty_wear[t];
      requests[t].segmenter = &oracles[t];
      requests[t].rng = score_rng.fork(
          static_cast<std::uint64_t>(defense.mode) * 7919 +
          legit_before * 31 + attack_before);
    }

    system.score_batch(requests, std::span<core::ScoreOutcome>(outcomes),
                       pool, workspaces);

    FaultSweepPoint point;
    point.severity = severity;
    std::vector<double> legit, attack;
    for (std::size_t t = 0; t < trials.size(); ++t) {
      switch (outcomes[t].status) {
        case core::ScoreStatus::kOk:
          ++point.scored;
          (trials[t].is_attack ? attack : legit)
              .push_back(outcomes[t].score);
          break;
        case core::ScoreStatus::kIndeterminate:
          ++point.indeterminate;
          break;
        case core::ScoreStatus::kError:
          ++point.errors;
          break;
        case core::ScoreStatus::kDeadlineExceeded:
          // Unreachable here (the sweep scores without a deadline), but the
          // status space must stay covered.
          ++point.errors;
          break;
      }
    }
    if (legit.size() >= kMinClassScores && attack.size() >= kMinClassScores) {
      const RocCurve roc = compute_roc(attack, legit);
      point.eer = roc.eer;
      point.auc = roc.auc;
    } else {
      point.eer = nan_metric();
      point.auc = nan_metric();
    }
    result.points.push_back(point);
  }
  return result;
}

}  // namespace vibguard::eval
