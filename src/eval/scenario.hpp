// Physical scenario simulation: renders legitimate-user and thru-barrier
// attack trials into paired (VA, wearable) recordings, replacing the paper's
// four instrumented rooms (Sec. VII-A).
#pragma once

#include <string>
#include <vector>

#include "acoustics/barrier.hpp"
#include "acoustics/room.hpp"
#include "attacks/attack.hpp"
#include "common/rng.hpp"
#include "common/signal.hpp"
#include "device/sync.hpp"
#include "device/wearable.hpp"
#include "sensors/microphone.hpp"
#include "speech/command.hpp"
#include "speech/speaker.hpp"

namespace vibguard::eval {

struct ScenarioConfig {
  acoustics::RoomConfig room = acoustics::room_a();
  double barrier_thickness = 1.0;

  // Geometry (paper Fig. 8 and Sec. VII-D defaults).
  double attacker_to_barrier_m = 0.1;  ///< loudspeaker 10 cm from barrier
  double barrier_to_va_m = 2.0;        ///< VA 2 m behind the barrier
  double barrier_to_wearable_m = 2.0;  ///< wearable 2 m behind the barrier
  double user_to_va_m = 2.0;           ///< user's speaking distance to VA
  double user_to_wearable_m = 0.4;     ///< mouth-to-wrist distance

  // Levels.
  double user_spl_min = 65.0;  ///< users speak at 65–75 dB
  double user_spl_max = 75.0;
  double attack_spl = 75.0;

  device::WearableConfig wearable = device::fossil_gen5();
  sensors::MicrophoneConfig va_microphone;
  device::SyncConfig sync;
};

/// The paired recordings of one trial plus its ground truth.
struct TrialRecordings {
  Signal va;        ///< VA device recording (16 kHz)
  Signal wearable;  ///< wearable recording, network-delayed (16 kHz)
  std::vector<speech::PhonemeSpan> alignment;  ///< source-timeline phonemes
  bool is_attack = false;
  attacks::AttackType attack_type = attacks::AttackType::kRandom;
  std::string command;
  double true_delay_s = 0.0;  ///< injected network delay
};

/// Simulates trials for one room/geometry configuration.
class ScenarioSimulator {
 public:
  ScenarioSimulator(ScenarioConfig config, std::uint64_t seed);

  const ScenarioConfig& config() const { return config_; }

  /// Legitimate user speaks `command` inside the room.
  TrialRecordings legitimate_trial(const speech::VoiceCommand& command,
                                   const speech::SpeakerProfile& user);

  /// Adversary launches `type` against `victim` through the room's barrier.
  TrialRecordings attack_trial(attacks::AttackType type,
                               const speech::VoiceCommand& command,
                               const speech::SpeakerProfile& victim,
                               const speech::SpeakerProfile& adversary);

  /// The sound arriving at the VA device for an arbitrary attack waveform
  /// (used by the Table I attack study).
  Signal attack_sound_at_va(const Signal& attack_audio, double attack_spl);

  Rng& rng() { return rng_; }

 private:
  /// Renders `source` at both device positions and packages recordings.
  TrialRecordings record_pair(const Signal& source, double to_va_m,
                              double to_wearable_m);

  ScenarioConfig config_;
  Rng rng_;
  acoustics::Barrier barrier_;
  acoustics::Room room_;
  device::Wearable wearable_;
  sensors::Microphone va_mic_;
  device::SyncChannel sync_;
  attacks::AttackGenerator attack_gen_;
};

}  // namespace vibguard::eval
