// Experiment runner: generates populations of legitimate and attack trials
// under a scenario, scores them with the defense pipeline in one or more
// modes, and reduces scores to ROC/AUC/EER (the machinery behind the
// paper's Figs. 9–11).
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "attacks/attack.hpp"
#include "core/pipeline.hpp"
#include "eval/metrics.hpp"
#include "eval/scenario.hpp"

namespace vibguard::eval {

struct ExperimentConfig {
  ScenarioConfig scenario;
  std::size_t num_speakers = 6;     ///< synthetic participant panel
  std::size_t legit_trials = 40;    ///< legitimate commands scored
  std::size_t attack_trials = 40;   ///< attack commands scored
  /// Barrier-effect-sensitive phonemes used by the full system's oracle
  /// segmenter (empty = use core's reference set).
  std::set<std::string> sensitive;
  core::DefenseConfig defense;      ///< base config; mode is overridden
  /// When non-null, kFull mode uses this segmenter for every trial instead
  /// of a per-trial ground-truth OracleSegmenter — e.g. a trained
  /// core::BrnnSegmenter for fully learned end-to-end evaluation. Borrowed;
  /// must outlive the runner.
  const core::Segmenter* segmenter = nullptr;
  /// Worker threads for trial scoring: 0 = auto (the VIBGUARD_THREADS
  /// environment variable, else hardware concurrency), 1 = serial. Scores
  /// are bit-identical at every thread count: each trial's RNG fork label
  /// is derived from its position, not from execution order.
  std::size_t threads = 0;
};

/// Attack and legitimate score populations for one defense mode. Trials
/// whose outcome was not a real score (quality-gated, degenerate, or a
/// captured per-trial error) are excluded from the populations and counted
/// in the *_unscored tallies, so one bad trial cannot poison the curve.
struct ScorePopulations {
  std::vector<double> legit;
  std::vector<double> attack;
  std::size_t legit_unscored = 0;
  std::size_t attack_unscored = 0;

  RocCurve roc() const;
};

/// Runs trials for one attack type and scores each trial under every
/// requested mode (trial recordings are shared across modes, as in the
/// paper's per-attack comparisons).
class ExperimentRunner {
 public:
  ExperimentRunner(ExperimentConfig config, std::uint64_t seed);

  /// Scores the trial populations for `attack` under each mode. Populations
  /// are cached per (attack, mode): repeated calls — including through
  /// eer() — return the cached scores instead of regenerating and rescoring
  /// trials. Caching is sound because a trial's scoring rng is forked from
  /// a position-derived label, making each mode's scores independent of
  /// which other modes were requested.
  std::map<core::DefenseMode, ScorePopulations> run(
      attacks::AttackType attack,
      const std::vector<core::DefenseMode>& modes);

  /// Convenience: EER of the given mode against one attack type. Served
  /// from the population cache when run() already scored the pair.
  double eer(attacks::AttackType attack, core::DefenseMode mode);

  const ExperimentConfig& config() const { return config_; }

  /// Score populations cached so far, keyed by (attack, mode).
  const std::map<std::pair<attacks::AttackType, core::DefenseMode>,
                 ScorePopulations>&
  cached_populations() const {
    return cache_;
  }

 private:
  ExperimentConfig config_;
  std::uint64_t seed_;
  std::vector<speech::SpeakerProfile> speakers_;
  std::map<std::pair<attacks::AttackType, core::DefenseMode>,
           ScorePopulations>
      cache_;
};

/// The sensitive-phoneme set produced by the reference selection run
/// (PhonemeSelector with default config against a glass window); cached
/// here so experiments need not rerun the offline study.
const std::set<std::string>& reference_sensitive_set();

}  // namespace vibguard::eval
