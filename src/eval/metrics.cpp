#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vibguard::eval {
namespace {

double fraction_below(std::span<const double> xs, double threshold) {
  if (xs.empty()) return 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x < threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

}  // namespace

double true_detection_rate(std::span<const double> attack_scores,
                           double threshold) {
  return fraction_below(attack_scores, threshold);
}

double false_detection_rate(std::span<const double> legit_scores,
                            double threshold) {
  return fraction_below(legit_scores, threshold);
}

RocCurve compute_roc(std::span<const double> attack_scores,
                     std::span<const double> legit_scores) {
  VIBGUARD_REQUIRE(!attack_scores.empty() && !legit_scores.empty(),
                   "both score populations must be non-empty");

  // Candidate thresholds: all distinct scores plus sentinels beyond range.
  std::vector<double> thresholds(attack_scores.begin(), attack_scores.end());
  thresholds.insert(thresholds.end(), legit_scores.begin(),
                    legit_scores.end());
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());
  thresholds.insert(thresholds.begin(), thresholds.front() - 1e-9);
  thresholds.push_back(thresholds.back() + 1e-9);

  RocCurve curve;
  curve.points.reserve(thresholds.size());
  for (double t : thresholds) {
    curve.points.push_back({t, false_detection_rate(legit_scores, t),
                            true_detection_rate(attack_scores, t)});
  }

  // AUC by trapezoidal integration over FDR (points are monotone in both
  // coordinates as the threshold increases).
  double auc = 0.0;
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    const auto& a = curve.points[i - 1];
    const auto& b = curve.points[i];
    auc += (b.fdr - a.fdr) * 0.5 * (a.tdr + b.tdr);
  }
  curve.auc = auc;

  // EER: the crossing of FDR(t) and miss rate 1 - TDR(t). The gap
  // g(t) = FDR(t) - miss(t) runs from -1 at the low sentinel to +1 at the
  // high one, so a sign change always exists; locate it and interpolate the
  // curve linearly between the bracketing grid points, which keeps the EER
  // smooth even for small score populations whose rates move in coarse
  // 1/n steps.
  double eer = 1.0;
  double eer_t = curve.points.front().threshold;
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    const double fdr = curve.points[i].fdr;
    const double miss = 1.0 - curve.points[i].tdr;
    const double gap = fdr - miss;
    if (gap < 0.0) continue;
    if (gap == 0.0 || i == 0) {
      eer = 0.5 * (fdr + miss);
      eer_t = curve.points[i].threshold;
    } else {
      const double prev_fdr = curve.points[i - 1].fdr;
      const double prev_miss = 1.0 - curve.points[i - 1].tdr;
      const double prev_gap = prev_fdr - prev_miss;
      // prev_gap < 0 <= gap, so the linear crossing parameter is in [0, 1).
      const double alpha = -prev_gap / (gap - prev_gap);
      eer = prev_fdr + alpha * (fdr - prev_fdr);
      eer_t = curve.points[i - 1].threshold +
              alpha * (curve.points[i].threshold -
                       curve.points[i - 1].threshold);
    }
    break;
  }
  curve.eer = eer;
  curve.eer_threshold = eer_t;
  return curve;
}

}  // namespace vibguard::eval
