#include "eval/chaos_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "eval/sweep_population.hpp"

namespace vibguard::eval {
namespace {

/// Simulation bound past the last arrival: a fleet that cannot drain
/// (e.g. every worker crashed with failover disabled) stops here and the
/// leftovers are counted as `stranded` instead of looping forever.
constexpr std::uint64_t kDrainBoundUs = 10'000'000;

/// Earliest time at or after `t` when worker `w` makes progress:
/// UINT64_MAX when it has crashed by then, the end of the covering stall
/// window while stalled, `t` itself otherwise.
std::uint64_t next_alive_at(const faults::ChaosController& chaos,
                            std::size_t w, std::uint64_t t) {
  for (;;) {
    if (chaos.crashed(w, t)) return UINT64_MAX;
    if (!chaos.stalled(w, t)) return t;
    std::uint64_t end = t;
    for (const faults::WorkerFault& fault : chaos.plan().faults()) {
      if (fault.kind == faults::WorkerFaultKind::kStall &&
          fault.worker == w && t >= fault.from_us && t < fault.until_us) {
        end = std::max(end, fault.until_us);
      }
    }
    t = end;  // re-check: windows may chain, or a crash may land inside
  }
}

}  // namespace

std::vector<ChaosScenario> default_chaos_scenarios(std::uint64_t horizon_us) {
  const std::uint64_t h = std::max<std::uint64_t>(horizon_us, 10);
  std::vector<ChaosScenario> scenarios;
  scenarios.push_back({"none", faults::ChaosPlan{}, std::nullopt});
  {
    ChaosScenario s;
    s.name = "stall_w1";
    s.plan.stall(1, 3 * h / 10, 6 * h / 10);
    scenarios.push_back(std::move(s));
  }
  {
    ChaosScenario s;
    s.name = "slow_w1";
    s.plan.slow(1, 2 * h / 10, 8 * h / 10, 4.0);
    scenarios.push_back(std::move(s));
  }
  {
    ChaosScenario s;
    s.name = "lossy_w1";
    s.plan.lossy(1, 2 * h / 10, 8 * h / 10, 0.3);
    scenarios.push_back(std::move(s));
  }
  {
    ChaosScenario s;
    s.name = "crash_w1";
    s.plan.crash(1, 35 * h / 100);
    scenarios.push_back(std::move(s));
  }
  {
    ChaosScenario s;
    s.name = "crash_grow";
    s.plan.crash(1, 35 * h / 100);
    s.grow_at_us = 6 * h / 10;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

std::vector<ChaosScenario> remediation_chaos_scenarios(
    std::uint64_t horizon_us, std::size_t workers) {
  const std::uint64_t h = std::max<std::uint64_t>(horizon_us, 10);
  std::vector<ChaosScenario> scenarios;
  {
    // Three 40 ms stalls: with a 20 ms poll, 10 ms slow and 50 ms wedged
    // threshold each stall yields exactly two SLOW polls (ages 20 and
    // 40 ms) and never crosses WEDGED — only the steal rung can fire.
    ChaosScenario s;
    s.name = "slow_steal";
    s.plan.stall(1, 2 * h / 10, 2 * h / 10 + 40'000)
        .stall(1, 4 * h / 10, 4 * h / 10 + 40'000)
        .stall(1, 6 * h / 10, 6 * h / 10 + 40'000);
    serving::RemediationConfig r;
    r.enabled = true;
    r.steal = true;
    r.steal_min_depth = 1;
    r.quarantine = false;
    r.grow = false;
    s.remediation = r;
    scenarios.push_back(std::move(s));
  }
  {
    // One 120 ms stall: the third silent poll crosses the 50 ms wedged
    // threshold → quarantine + pump restart; the stall ends well inside
    // the 200 ms probe window, the fresh-epoch beat lands, the worker is
    // restored.
    ChaosScenario s;
    s.name = "wedge_recover";
    s.plan = faults::wedge_then_recover_plan(1, 3 * h / 10, 120'000);
    serving::RemediationConfig r;
    r.enabled = true;
    r.steal = false;
    r.quarantine = true;
    r.probe_timeout_us = 200'000;
    r.grow = false;
    s.remediation = r;
    scenarios.push_back(std::move(s));
  }
  {
    // Every STARTING worker throttled 2x for the whole run (and drain) —
    // queue ages climb, the K-of-N window confirms, and the supervisor
    // grows the fleet; the grown workers are outside the throttle set.
    ChaosScenario s;
    s.name = "overload_grow";
    for (std::size_t w = 0; w < workers; ++w) {
      s.plan.slow(w, h / 20, 10 * h, 2.0);
    }
    serving::RemediationConfig r;
    r.enabled = true;
    r.steal = false;
    r.quarantine = false;
    r.grow = true;
    r.overload_window = 4;
    r.overload_confirm = 3;
    r.queue_age_threshold_us = 60'000;
    r.cooldown_us = std::max<std::uint64_t>(h / 4, 100'000);
    r.max_workers = workers + 4;
    // Pinning is exercised by its own test; keep it out of this
    // scenario's way.
    r.flap_actions = 64;
    s.remediation = r;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

std::string ChaosSweepResult::summary() const {
  std::string out = "chaos sweep\n";
  char line[320];
  std::snprintf(line, sizeof(line),
                "  %-13s %5s %5s %5s %5s %6s %5s %5s %4s %4s %3s %9s "
                "%6s %8s %7s %3s %8s\n",
                "scenario", "wrk", "arr", "ans", "rej", "dlmiss", "lost",
                "drop", "mig", "fo", "ok", "detect ms", "avail", "EERpri",
                "p95 ms", "rem", "rem ms");
  out += line;
  for (const ChaosSweepPoint& p : points) {
    char wrk[16];
    std::snprintf(wrk, sizeof(wrk), "%zu>%zu", p.workers_start,
                  p.workers_end);
    const std::size_t remediations = p.steals + p.quarantines +
                                     p.recoveries + p.escalations + p.grows +
                                     p.flap_suppressed;
    std::snprintf(line, sizeof(line),
                  "  %-13s %5s %5zu %5zu %5zu %6zu %5zu %5zu %4zu %4zu "
                  "%3s %9.1f %6.3f %8.3f %7.1f %3zu %8.1f\n",
                  p.scenario.c_str(), wrk, p.arrivals, p.answered,
                  p.rejected + p.quota_rejected + p.closed_rejected,
                  p.deadline_missed, p.results_lost, p.migration_dropped,
                  p.sessions_migrated, p.failovers,
                  p.accounted ? "yes" : "NO",
                  static_cast<double>(p.detect_us) / 1000.0, p.availability,
                  p.eer_primary,
                  static_cast<double>(p.queue_age_p95_us) / 1000.0,
                  remediations,
                  static_cast<double>(p.remediate_us) / 1000.0);
    out += line;
  }
  return out;
}

ChaosSweepResult run_chaos_sweep(const ChaosSweepConfig& config,
                                 std::uint64_t seed) {
  VIBGUARD_REQUIRE(config.workers >= 2,
                   "chaos sweep needs at least two workers to fail over");
  VIBGUARD_REQUIRE(config.offered_rps > 0.0, "offered load must be positive");
  VIBGUARD_REQUIRE(config.sessions > 0, "need at least one session");
  VIBGUARD_REQUIRE(config.tenants > 0, "need at least one tenant");

  SweepPopulation pop;
  render_sweep_population(config.base, seed, pop);
  const std::size_t num_requests = pop.order.size();
  constexpr std::uint64_t kSessionIdBase = 0xA000;

  const std::vector<std::uint64_t> arrival_us = poisson_arrivals(
      pop.arrival_rng, 0, config.offered_rps, num_requests);
  const std::uint64_t horizon_us = arrival_us.back();

  std::vector<ChaosScenario> all_scenarios;
  if (config.scenarios.empty()) {
    all_scenarios = default_chaos_scenarios(horizon_us);
    std::vector<ChaosScenario> remediation =
        remediation_chaos_scenarios(horizon_us, config.workers);
    for (ChaosScenario& s : remediation) {
      all_scenarios.push_back(std::move(s));
    }
  } else {
    all_scenarios = config.scenarios;
  }
  std::vector<ChaosScenario> scenarios;
  if (config.scenario_filter.empty()) {
    scenarios = std::move(all_scenarios);
  } else {
    for (ChaosScenario& s : all_scenarios) {
      if (s.name == config.scenario_filter) scenarios.push_back(std::move(s));
    }
    VIBGUARD_REQUIRE(!scenarios.empty(),
                     "unknown chaos scenario: " + config.scenario_filter);
  }

  ChaosSweepResult result;

  for (const ChaosScenario& scenario : scenarios) {
    VirtualClock clock;
    serving::ServerConfig server_cfg;
    server_cfg.defense = pop.primary_cfg;
    server_cfg.degraded_mode = config.base.degraded_mode;
    server_cfg.workers = config.workers;
    server_cfg.ring_replicas = config.ring_replicas;
    server_cfg.shard.queue_capacity = config.base.queue_capacity;
    server_cfg.shard.batch_max = config.batch_max;
    server_cfg.shard.batch_window_us = config.batch_window_us;
    server_cfg.shard.breaker = config.base.breaker;
    server_cfg.deadline_us = config.base.deadline_us;
    serving::Server server(server_cfg, clock);
    serving::SupervisorConfig supervisor_cfg = config.supervisor;
    if (scenario.remediation.has_value()) {
      supervisor_cfg.remediation = *scenario.remediation;
    }
    serving::Supervisor supervisor(server, supervisor_cfg, clock);
    const faults::ChaosController chaos(scenario.plan, config.chaos_seed);

    std::vector<serving::SessionHandle> handles(config.sessions);
    for (std::size_t s = 0; s < config.sessions; ++s) {
      handles[s] = server.open_session(
          kSessionIdBase + s,
          static_cast<std::uint32_t>(s) % config.tenants);
    }

    ChaosSweepPoint point;
    point.scenario = scenario.name.empty() ? scenario.plan.describe()
                                           : scenario.name;
    point.workers_start = config.workers;
    point.arrivals = num_requests;
    std::vector<double> legit_pri, attack_pri, legit_deg, attack_deg;
    std::vector<bool> answered_req(num_requests, false);
    std::vector<std::uint64_t> answered_queue_us;

    std::uint64_t last_failover_us = 0;
    bool any_failover = false;
    std::size_t events_seen = 0;

    // Results from migrations (supervisor poll or growth) fold into the
    // same buckets as batch results; rehome_items only emits expired or
    // requeue-rejected items.
    std::vector<serving::ServedResult> control_out;
    const auto account_migration_results = [&] {
      for (const serving::ServedResult& r : control_out) {
        if (r.outcome.status == core::ScoreStatus::kDeadlineExceeded) {
          ++point.deadline_missed;
        } else {
          ++point.migration_dropped;
        }
      }
      control_out.clear();
    };
    const auto apply_new_supervisor_events = [&] {
      const auto& events = supervisor.events();
      for (; events_seen < events.size(); ++events_seen) {
        const serving::SupervisorEvent& event = events[events_seen];
        // Any event can carry migrations now (failover, quarantine,
        // recovery, escalation, supervisor-driven growth) — the handle
        // updates apply regardless; failover bookkeeping stays gated.
        point.items_migrated += event.items_requeued;
        for (const auto& moved : event.migrations) {
          const std::size_t s = moved.session_id - kSessionIdBase;
          if (s < handles.size() && handles[s] == moved.old_handle) {
            handles[s] = moved.new_handle;
          }
        }
        if (!event.failover) continue;
        any_failover = true;
        last_failover_us = std::max(last_failover_us, event.at_us);
        const std::uint64_t crash_at = chaos.crash_at_us(event.worker);
        if (point.detect_us == 0 && crash_at != UINT64_MAX &&
            event.at_us >= crash_at) {
          point.detect_us = event.at_us - crash_at;
        }
      }
    };

    std::vector<std::uint64_t> free_us(config.workers, 0);
    std::uint64_t poll_t = config.supervisor_poll_us;
    // UINT64_MAX = no growth pending (plain sentinel; an optional here
    // draws a -Wmaybe-uninitialized false positive from GCC).
    std::uint64_t grow_t = scenario.grow_at_us.value_or(UINT64_MAX);
    const std::uint64_t bound_us = horizon_us + kDrainBoundUs;

    const auto total_depth = [&] {
      std::size_t depth = 0;
      for (std::size_t w = 0; w < server.workers(); ++w) {
        depth += server.shard(w).depth();
      }
      return depth;
    };

    std::vector<serving::ServedResult> results;
    std::vector<std::uint64_t> eff;

    std::size_t next_arrival = 0;
    while (next_arrival < num_requests || total_depth() > 0) {
      // Candidate events, earliest wins; control plane (growth, then the
      // supervisor) beats the data plane at equal times so failover and
      // re-placement happen before work lands on a retiring shard.
      const bool have_arrival = next_arrival < num_requests;

      bool have_service = false;
      std::size_t sw = 0;
      std::uint64_t s_start = 0;
      for (const std::size_t w : server.active_worker_ids()) {
        const auto ready = server.shard(w).batch_ready_us();
        if (!ready.has_value()) continue;
        std::uint64_t start = std::max({free_us[w], *ready, clock.now_us()});
        start = next_alive_at(chaos, w, start);
        if (start == UINT64_MAX) continue;  // crashed: waits for failover
        if (!have_service || start < s_start) {
          have_service = true;
          sw = w;
          s_start = start;
        }
      }

      std::uint64_t next_event = grow_t;
      if (have_arrival) next_event = std::min(next_event, arrival_us[next_arrival]);
      if (have_service) next_event = std::min(next_event, s_start);
      next_event = std::min(next_event, poll_t);

      if (next_event > bound_us) break;  // wedged fleet: bail to stranded

      if (grow_t == next_event) {
        clock.set(grow_t);
        serving::ResizeReport report;
        const std::size_t w = server.add_worker(control_out, &report);
        supervisor.watch(w);
        free_us.push_back(0);
        account_migration_results();
        point.items_migrated += report.items_requeued;
        point.sessions_migrated += report.sessions.size();
        for (const auto& moved : report.sessions) {
          const std::size_t s = moved.session_id - kSessionIdBase;
          if (s < handles.size() && handles[s] == moved.old_handle) {
            handles[s] = moved.new_handle;
          }
        }
        grow_t = UINT64_MAX;
        continue;
      }

      if (poll_t == next_event) {
        clock.set(poll_t);
        // Live workers stamp their heartbeat at the poll tick — the
        // discrete-time stand-in for the pump's per-iteration beat.
        // Quarantined workers beat too (their process is alive, merely
        // fenced off the ring): that fresh-epoch beat IS the probe signal
        // recovery waits for. Only retired workers stay silent.
        for (std::size_t w = 0; w < server.workers(); ++w) {
          if (server.worker_state(w) == serving::WorkerState::kRetired) {
            continue;
          }
          if (chaos.alive(w, poll_t)) server.shard(w).beat();
        }
        supervisor.poll(control_out);
        account_migration_results();
        apply_new_supervisor_events();
        // The supervisor may have grown the fleet inside poll().
        while (free_us.size() < server.workers()) free_us.push_back(0);
        poll_t += config.supervisor_poll_us;
        continue;
      }

      if (have_service && s_start == next_event) {
        clock.set(s_start);
        const auto planned = server.form_batch(sw);
        VIBGUARD_REQUIRE(planned.has_value(), "ready batch failed to form");

        const double slow = chaos.slowdown(sw, s_start);
        const std::uint64_t service_us = static_cast<std::uint64_t>(
            static_cast<double>(planned->degraded
                                    ? config.base.service_us_degraded
                                    : config.base.service_us_primary) *
            slow);
        std::uint64_t t_us = s_start + config.batch_setup_us;
        eff.clear();
        for (const serving::WorkItem& item : planned->items) {
          if (item.expired_in_queue) {
            ++point.deadline_missed;
            eff.push_back(item.deadline_at_us);
            continue;
          }
          if (item.deadline_at_us <= t_us) {
            eff.push_back(s_start);
            continue;
          }
          const std::uint64_t fin = t_us + service_us;
          if (fin > item.deadline_at_us) {
            eff.push_back(s_start);
            t_us = item.deadline_at_us;
          } else {
            eff.push_back(item.deadline_at_us);
            t_us = fin;
          }
        }
        results.clear();
        server.complete_batch(sw, results, eff);
        free_us[sw] = t_us;

        for (const serving::ServedResult& r : results) {
          if (r.expired_in_queue) continue;  // counted at formation
          if (r.outcome.status == core::ScoreStatus::kDeadlineExceeded) {
            ++point.deadline_missed;
            continue;
          }
          if (chaos.result_lost(sw, r.request_id, s_start)) {
            ++point.results_lost;
            continue;
          }
          ++point.answered;
          answered_req[r.request_id] = true;
          answered_queue_us.push_back(r.queue_us);
          if (r.migrated) ++point.served_migrated;
          const std::size_t t = pop.order[r.request_id];
          switch (r.outcome.status) {
            case core::ScoreStatus::kOk:
              if (r.degraded) {
                ++point.scored_degraded;
                (pop.trials[t].is_attack ? attack_deg : legit_deg)
                    .push_back(r.outcome.score);
              } else {
                ++point.scored_primary;
                (pop.trials[t].is_attack ? attack_pri : legit_pri)
                    .push_back(r.outcome.score);
              }
              break;
            case core::ScoreStatus::kIndeterminate:
              ++point.indeterminate;
              break;
            case core::ScoreStatus::kError:
              ++point.errors;
              break;
            case core::ScoreStatus::kDeadlineExceeded:
              break;  // handled above
          }
        }
        continue;
      }

      // Arrival.
      clock.set(arrival_us[next_arrival]);
      const std::size_t i = next_arrival;
      const std::size_t t = pop.order[i];
      const std::size_t s = i % config.sessions;
      serving::ServerRequest req;
      req.va = &pop.trials[t].va;
      req.wearable = &pop.trials[t].wearable;
      req.segmenter = &pop.oracles[t];
      req.rng = pop.score_rng.fork(t);
      req.request_id = i;
      switch (server.submit(kSessionIdBase + s, handles[s], req)) {
        case serving::SubmitStatus::kQueued:
          ++point.admitted;
          break;
        case serving::SubmitStatus::kRejectedQueueFull:
          ++point.rejected;
          break;
        case serving::SubmitStatus::kRejectedTenantQuota:
          ++point.quota_rejected;
          break;
        case serving::SubmitStatus::kRejectedClosed:
          ++point.closed_rejected;
          break;
        case serving::SubmitStatus::kStaleSession:
          VIBGUARD_REQUIRE(false,
                           "chaos sweep lost a session handle across "
                           "migration");
      }
      ++next_arrival;
    }

    // Whatever is still queued when the bound tripped (a fleet with no
    // live workers left) is accounted explicitly, never dropped on the
    // floor.
    for (std::size_t w = 0; w < server.workers(); ++w) {
      point.stranded += server.shard(w).depth();
    }

    point.workers_end = server.active_worker_ids().size();
    const serving::SupervisorStats& sup = supervisor.stats();
    point.failovers = sup.failovers;
    point.sessions_migrated += sup.sessions_migrated;
    point.steals = sup.steals;
    point.items_stolen = sup.items_stolen;
    point.quarantines = sup.quarantines;
    point.recoveries = sup.recoveries;
    point.escalations = sup.escalations;
    point.grows = sup.grows;
    point.flap_suppressed = sup.flap_suppressed;
    point.queue_age_p95_us =
        percentile_nearest_rank(answered_queue_us, 95.0);
    const auto& remediation_log = supervisor.remediation_log();
    if (!remediation_log.events().empty() && !scenario.plan.empty()) {
      std::uint64_t fault_onset = UINT64_MAX;
      for (const faults::WorkerFault& fault : scenario.plan.faults()) {
        fault_onset = std::min(fault_onset, fault.from_us);
      }
      const std::uint64_t first_action =
          remediation_log.events().front().at_us;
      if (first_action >= fault_onset) {
        point.remediate_us = first_action - fault_onset;
      }
    }
    for (std::size_t w = 0; w < server.workers(); ++w) {
      if (server.shard(w).breaker() != nullptr) {
        point.breaker_trips += server.shard(w).breaker()->trips();
      }
    }
    point.availability = num_requests > 0
                             ? static_cast<double>(point.answered) /
                                   static_cast<double>(num_requests)
                             : 0.0;
    if (any_failover) {
      std::size_t after = 0, answered_after = 0;
      for (std::size_t i = 0; i < num_requests; ++i) {
        if (arrival_us[i] <= last_failover_us) continue;
        ++after;
        if (answered_req[i]) ++answered_after;
      }
      point.post_failover_availability =
          after > 0 ? static_cast<double>(answered_after) /
                          static_cast<double>(after)
                    : std::numeric_limits<double>::quiet_NaN();
    } else {
      point.post_failover_availability =
          std::numeric_limits<double>::quiet_NaN();
    }
    point.eer_primary = eer_or_nan(attack_pri, legit_pri);
    point.eer_degraded = eer_or_nan(attack_deg, legit_deg);

    point.accounted =
        point.arrivals ==
        point.rejected + point.quota_rejected + point.closed_rejected +
            point.answered + point.deadline_missed +
            point.migration_dropped + point.results_lost + point.stranded;
    result.points.push_back(point);
  }
  return result;
}

}  // namespace vibguard::eval
