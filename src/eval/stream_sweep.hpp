// Early-exit fraction vs EER sweep for the streaming anytime-verdict layer.
//
// Quantifies the central trade-off of core/streaming.hpp: how much of the
// command can the stopping rule skip (time-to-verdict) before the detector's
// EER degrades? The sweep runs in three passes:
//
//   1. Calibration — stream a held-out trial population to completion with
//      the stopping rule disabled, recording each trial's final provisional
//      (segment) score, its coarse (whole-prefix) score AND its exact batch
//      score, then fit one ScoreCalibration per scale (the provisional
//      paths use their own feature grid and skip the global high-pass/
//      normalization, so each lives on its own scale).
//   2. Batch reference — score the evaluation trials through the exact
//      batch pipeline (bit-identical to what a run-to-completion
//      kExactBatch stream would report) for the no-exit EER row and the
//      decision score of trials that do not exit.
//   3. Live rule per row — for each exit confidence c, stream every
//      evaluation trial with the stopping rule armed at c, stopping pushes
//      the moment a verdict is rendered. Early-exited trials contribute
//      1 - posterior at the exit; completed trials contribute
//      1 - posterior(batch score) under the batch-scale calibration. All
//      calibrations are monotone, so at c high enough that nothing exits
//      the sweep's EER equals the batch EER exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/attack.hpp"
#include "core/pipeline.hpp"
#include "core/streaming.hpp"
#include "eval/scenario.hpp"

namespace vibguard::eval {

struct StreamSweepConfig {
  ScenarioConfig scenario;
  attacks::AttackType attack = attacks::AttackType::kRandom;
  std::size_t num_speakers = 6;

  /// Held-out calibration population (per class) and the evaluated one.
  std::size_t calib_trials = 24;
  std::size_t eval_trials = 40;

  core::DefenseConfig defense;  ///< wearable/sync overridden from scenario
  core::StreamingConfig streaming;

  /// Exit-confidence thresholds swept (applied to both rule sides).
  std::vector<double> exit_confidences = {0.80, 0.90, 0.95, 0.97, 0.99};

  /// Push granularity of the simulated stream.
  std::size_t frame_samples = 1024;
};

/// One row of the committed EXPERIMENTS.md table.
struct StreamSweepRow {
  double exit_confidence = 0.0;
  double eer = 0.0;              ///< over calibrated decision scores
  double early_exit_rate = 0.0;  ///< fraction of trials exiting early
  double median_fraction = 1.0;  ///< median consumed fraction at verdict
  double mean_fraction = 1.0;
};

struct StreamSweepResult {
  double batch_eer = 0.0;  ///< run-to-completion (exact batch) EER
  std::vector<StreamSweepRow> rows;
  std::size_t unscored = 0;  ///< eval trials without a real batch score
  std::size_t calib_trials = 0;
  std::size_t eval_trials = 0;

  /// Markdown table (one row per confidence, batch row first).
  std::string summary() const;
};

/// Runs the sweep. Deterministic in (config, seed).
StreamSweepResult run_stream_sweep(const StreamSweepConfig& config,
                                   std::uint64_t seed);

}  // namespace vibguard::eval
