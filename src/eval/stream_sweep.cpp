#include "eval/stream_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/error.hpp"
#include "core/segmentation.hpp"
#include "eval/confidence.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "speech/command.hpp"
#include "speech/speaker.hpp"

namespace vibguard::eval {
namespace {

struct EvalTrial {
  bool is_attack = false;
  bool scored = false;      ///< batch scoring produced a real score
  double batch_score = 0.0;
};

/// Result of streaming one trial: the finalize outcome plus the fraction of
/// the trial's VA samples that had been pushed when the verdict was
/// rendered (1.0 when the stream ran to completion).
struct StreamedTrial {
  core::StreamOutcome outcome;
  double fraction = 1.0;
};

/// Streams `trial` through `pipeline` in `frame_samples` pushes, stopping
/// as soon as the pipeline renders a verdict (early exit or fail-closed) —
/// exactly what a serving caller would do.
StreamedTrial stream_trial(core::StreamingPipeline& pipeline,
                           const TrialRecordings& trial,
                           const core::Segmenter* segmenter, const Rng& rng,
                           std::size_t frame_samples) {
  pipeline.begin(trial.va.sample_rate(), segmenter, rng);
  const std::size_t total =
      std::max(trial.va.size(), trial.wearable.size());
  const double va_total = static_cast<double>(trial.va.size());
  StreamedTrial result;
  for (std::size_t offset = 0; offset < total; offset += frame_samples) {
    const auto frame_of = [&](const Signal& s) {
      const std::size_t begin = std::min(offset, s.size());
      const std::size_t end = std::min(offset + frame_samples, s.size());
      return s.samples().subspan(begin, end - begin);
    };
    const core::StreamStatus st =
        pipeline.push(frame_of(trial.va), frame_of(trial.wearable));
    if (st.verdict != core::StreamVerdict::kPending) {
      const double consumed = static_cast<double>(
          std::min(offset + frame_samples, trial.va.size()));
      result.fraction = std::min(1.0, consumed / va_total);
      break;
    }
  }
  result.outcome = pipeline.finalize();
  return result;
}

double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

}  // namespace

StreamSweepResult run_stream_sweep(const StreamSweepConfig& config,
                                   std::uint64_t seed) {
  VIBGUARD_REQUIRE(config.calib_trials >= 2 && config.eval_trials >= 2,
                   "need at least two trials per class in each pass");
  VIBGUARD_REQUIRE(config.frame_samples > 0, "frame size must be positive");

  core::DefenseConfig defense = config.defense;
  defense.wearable = config.scenario.wearable;
  defense.sync = config.scenario.sync;
  const core::DefenseSystem system(defense);

  Rng speaker_rng(seed);
  const auto speakers =
      speech::sample_population(config.num_speakers, speaker_rng);
  const auto& lexicon = speech::command_lexicon();
  ScenarioSimulator sim(config.scenario, seed ^ 0x5ce9a21ULL);
  const Rng score_rng(seed ^ 0x7e57ULL);

  // Render calibration then evaluation trials (legit before attack within
  // each pass), consuming the simulator's one rng stream in a fixed order.
  std::vector<TrialRecordings> trials;
  const std::size_t per_pass_legit[2] = {config.calib_trials,
                                         config.eval_trials};
  for (int pass = 0; pass < 2; ++pass) {
    const std::size_t n = per_pass_legit[pass];
    for (std::size_t i = 0; i < n; ++i) {
      const auto& user = speakers[i % speakers.size()];
      const auto& cmd = lexicon[i % lexicon.size()];
      trials.push_back(sim.legitimate_trial(cmd, user));
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto& victim = speakers[i % speakers.size()];
      const auto& adversary = speakers[(i + 1) % speakers.size()];
      const auto& cmd = lexicon[(i * 3 + 1) % lexicon.size()];
      trials.push_back(
          sim.attack_trial(config.attack, cmd, victim, adversary));
    }
  }
  const std::size_t calib_count = 2 * config.calib_trials;

  std::vector<core::OracleSegmenter> oracles;
  oracles.reserve(trials.size());
  for (const TrialRecordings& trial : trials) {
    oracles.emplace_back(trial.alignment, reference_sensitive_set());
  }

  // Pass 1 — calibration: stream to completion, collect the provisional
  // (segment), coarse (whole-prefix) and exact batch score of every trial,
  // and fit one calibration per scale.
  core::StreamingConfig calib_cfg = config.streaming;
  calib_cfg.stop = core::StoppingRule{};  // disabled: run to completion
  calib_cfg.finalize = core::StreamingConfig::Finalize::kExactBatch;
  core::StreamingPipeline pipeline(system, calib_cfg);

  std::vector<double> prov_attack, prov_legit, coarse_attack, coarse_legit,
      batch_attack, batch_legit;
  for (std::size_t t = 0; t < calib_count; ++t) {
    const TrialRecordings& trial = trials[t];
    const StreamedTrial st = stream_trial(pipeline, trial, &oracles[t],
                                          score_rng.fork(t),
                                          config.frame_samples);
    // fit() skips indeterminate scores.
    (trial.is_attack ? prov_attack : prov_legit)
        .push_back(st.outcome.provisional_score);
    (trial.is_attack ? coarse_attack : coarse_legit)
        .push_back(st.outcome.coarse_score);
    if (st.outcome.outcome.ok()) {
      (trial.is_attack ? batch_attack : batch_legit)
          .push_back(st.outcome.outcome.score);
    }
  }
  ScoreCalibration prov_calib, coarse_calib, batch_calib;
  const auto determinate = [](const std::vector<double>& xs) {
    return static_cast<std::size_t>(
        std::count_if(xs.begin(), xs.end(), [](double s) {
          return !core::is_indeterminate_score(s);
        }));
  };
  if (determinate(prov_attack) >= 2 && determinate(prov_legit) >= 2) {
    prov_calib.fit(prov_attack, prov_legit);
  }
  const bool have_coarse =
      determinate(coarse_attack) >= 2 && determinate(coarse_legit) >= 2;
  if (have_coarse) coarse_calib.fit(coarse_attack, coarse_legit);
  if (batch_attack.size() >= 2 && batch_legit.size() >= 2) {
    batch_calib.fit(batch_attack, batch_legit);
  }

  // Pass 2 — exact batch scores of the evaluation trials (identical to a
  // run-to-completion kExactBatch stream, at a fraction of the cost).
  std::vector<EvalTrial> evals;
  evals.reserve(trials.size() - calib_count);
  {
    core::Workspace workspace;
    for (std::size_t t = calib_count; t < trials.size(); ++t) {
      const TrialRecordings& trial = trials[t];
      Rng rng = score_rng.fork(t);
      const core::ScoreOutcome out = system.try_score(
          trial.va, trial.wearable, &oracles[t], rng, workspace);
      EvalTrial ev;
      ev.is_attack = trial.is_attack;
      ev.scored = out.ok();
      ev.batch_score = out.score;
      evals.push_back(ev);
    }
  }

  StreamSweepResult result;
  result.calib_trials = calib_count;
  result.eval_trials = evals.size();

  std::vector<double> batch_a, batch_l;
  for (const EvalTrial& ev : evals) {
    if (!ev.scored) {
      ++result.unscored;
      continue;
    }
    (ev.is_attack ? batch_a : batch_l).push_back(ev.batch_score);
  }
  VIBGUARD_REQUIRE(!batch_a.empty() && !batch_l.empty(),
                   "evaluation pass produced an empty score population");
  result.batch_eer = compute_roc(batch_a, batch_l).eer;

  // Pass 3 — one live streaming run per exit-confidence row: the actual
  // stopping rule armed at that confidence, pushes stopping the moment a
  // verdict is rendered. An exited trial is decided by its posterior at
  // exit; a completed trial by its (calibrated) batch score. An exit at
  // confidence >= c is by construction a more extreme decision than any
  // completed trial (the rule never fired there), so completed decisions
  // are mapped into the open band (1-c, c) while exits land outside it:
  // attack exits in [0, 1-c], accept exits in [c, 1]. This preserves the
  // batch ROC ordering among completers and never ranks a completed trial
  // above (or below) an explicit early verdict.
  for (const double c : config.exit_confidences) {
    core::StreamingConfig row_cfg = config.streaming;
    row_cfg.stop.enabled = true;
    row_cfg.stop.attack_confidence = c;
    row_cfg.stop.accept_confidence = c;
    row_cfg.stop.confidence = &prov_calib;
    row_cfg.stop.coarse_confidence = have_coarse ? &coarse_calib : nullptr;
    // A completed stream's score comes from pass 2; skip the batch rerun.
    row_cfg.finalize = core::StreamingConfig::Finalize::kProvisional;
    pipeline.set_config(row_cfg);

    StreamSweepRow row;
    row.exit_confidence = c;
    std::vector<double> dec_a, dec_l, fractions;
    std::size_t exits = 0;
    for (std::size_t t = calib_count; t < trials.size(); ++t) {
      const EvalTrial& ev = evals[t - calib_count];
      const StreamedTrial st = stream_trial(pipeline, trials[t], &oracles[t],
                                            score_rng.fork(t),
                                            config.frame_samples);
      double decision = 0.0;
      double fraction = 1.0;
      if (st.outcome.early_exit) {
        decision = 1.0 - st.outcome.posterior_attack;
        fraction = st.fraction;
        ++exits;
      } else {
        if (!ev.scored) continue;  // completed but unscoreable: excluded
        const double p_legit =
            1.0 - batch_calib.posterior_attack(ev.batch_score);
        const double band = std::max(0.0, 2.0 * c - 1.0);
        decision = (1.0 - c) + p_legit * band;
      }
      fractions.push_back(fraction);
      (ev.is_attack ? dec_a : dec_l).push_back(decision);
    }
    row.eer = dec_a.empty() || dec_l.empty()
                  ? 1.0
                  : compute_roc(dec_a, dec_l).eer;
    row.early_exit_rate =
        evals.empty() ? 0.0
                      : static_cast<double>(exits) /
                            static_cast<double>(evals.size());
    row.median_fraction = median_of(fractions);
    double sum = 0.0;
    for (const double f : fractions) sum += f;
    row.mean_fraction =
        fractions.empty() ? 1.0 : sum / static_cast<double>(fractions.size());
    result.rows.push_back(row);
  }
  return result;
}

std::string StreamSweepResult::summary() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "| exit confidence | EER (%%) | dEER (pts) | early-exit rate "
                "| median fraction | mean fraction |\n"
                "|---|---|---|---|---|---|\n");
  out += line;
  std::snprintf(line, sizeof(line),
                "| batch (no exit) | %.2f | — | 0.00 | 1.00 | 1.00 |\n",
                100.0 * batch_eer);
  out += line;
  for (const StreamSweepRow& row : rows) {
    std::snprintf(line, sizeof(line),
                  "| %.2f | %.2f | %+.2f | %.2f | %.2f | %.2f |\n",
                  row.exit_confidence, 100.0 * row.eer,
                  100.0 * (row.eer - batch_eer), row.early_exit_rate,
                  row.median_fraction, row.mean_fraction);
    out += line;
  }
  return out;
}

}  // namespace vibguard::eval
