// Overload sweep: serving behavior and detection quality vs offered load.
//
// Renders one fixed population of legitimate and attack trials, then — for
// each offered arrival rate — replays the population as a Poisson request
// stream through a discrete-event simulation of a single-server serving
// node built from the src/serving/ primitives: a bounded admission queue
// with reject-on-full backpressure, a per-command deadline budget with
// cooperative cancellation, and a per-stage circuit breaker that routes
// commands to the cheap degraded DefenseMode while the primary pipeline is
// saturated. Service times are modeled (virtual microseconds on a
// VirtualClock; nothing ever sleeps), while the scores themselves come from
// the real pipeline, so each sweep point reports both the serving-side
// rates (accept / reject / deadline-miss / degraded) and the detection
// quality (EER) of whatever the node actually answered at that load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/attack.hpp"
#include "core/pipeline.hpp"
#include "eval/scenario.hpp"
#include "serving/admission.hpp"
#include "serving/circuit_breaker.hpp"

namespace vibguard::eval {

struct LoadSweepConfig {
  ScenarioConfig scenario;
  std::size_t num_speakers = 4;
  std::size_t legit_trials = 20;
  std::size_t attack_trials = 20;
  attacks::AttackType attack = attacks::AttackType::kReplay;
  core::DefenseConfig defense;  ///< primary mode under test

  /// Offered load grid, requests per (virtual) second.
  std::vector<double> offered_rps = {2.0, 5.0, 10.0, 20.0, 50.0};

  /// Modeled service time of one command, virtual microseconds. The primary
  /// pipeline is the expensive path; the degraded mode is the cheap one.
  std::uint64_t service_us_primary = 180'000;
  std::uint64_t service_us_degraded = 40'000;

  /// Per-request deadline budget from arrival, virtual microseconds.
  std::uint64_t deadline_us = 400'000;

  /// Admission queue bound (reject-on-full beyond it).
  std::size_t queue_capacity = 8;

  /// Breaker tripped by consecutive deadline misses on the primary route.
  serving::BreakerConfig breaker;

  /// Cheap route used while the breaker is open.
  core::DefenseMode degraded_mode = core::DefenseMode::kAudioBaseline;
};

/// Results at one offered load.
struct LoadSweepPoint {
  double offered_rps = 0.0;
  std::size_t arrivals = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;         ///< refused at the full queue
  std::size_t deadline_missed = 0;  ///< admitted but expired (queue or flight)
  std::size_t scored_primary = 0;   ///< real scores from the primary mode
  std::size_t scored_degraded = 0;  ///< real scores from the degraded mode
  std::size_t indeterminate = 0;    ///< quality-gated / degenerate trials
  std::size_t errors = 0;           ///< captured per-trial stage errors
  std::size_t breaker_trips = 0;    ///< closed->open transitions
  double mean_queue_us = 0.0;       ///< over served requests
  /// EER per answered route; NaN when either class kept fewer than two
  /// scores on that route (the curve is meaningless there, not zero).
  double eer_primary = 0.0;
  double eer_degraded = 0.0;
};

struct LoadSweepResult {
  std::vector<LoadSweepPoint> points;

  /// Multi-line table: one row per offered load.
  std::string summary() const;
};

/// Runs the sweep. Deterministic in `seed` (trial rendering, arrival
/// process, and scoring all derive from it); all time is virtual, so the
/// run never sleeps and never reads the wall clock.
LoadSweepResult run_load_sweep(const LoadSweepConfig& config,
                               std::uint64_t seed);

/// Fleet sweep: the same replayed population, served by a sharded
/// serving::Server instead of one logical node, across a workers × load
/// grid. Requests belong to a pool of long-lived sessions placed on
/// workers by the server's consistent-hash ring; each worker micro-batches
/// admitted requests into score_batch calls. Because every request scores
/// from its own rng fork (keyed by trial, not by placement), the scores at
/// a given load are bit-identical across worker counts and batch windows —
/// the fleet determinism contract the tests pin.
struct FleetSweepConfig {
  /// Population, service model, queue bound, deadline and breaker are all
  /// inherited from the single-node sweep so rows are comparable; the
  /// queue bound and breaker apply per shard.
  LoadSweepConfig base;

  /// Worker-count grid (rows = workers × base.offered_rps).
  std::vector<std::size_t> workers = {1, 2, 4, 8};

  /// Long-lived session pool; request i belongs to session i mod sessions.
  std::size_t sessions = 16;
  /// Tenants cycle over sessions (session s → tenant s mod tenants).
  std::uint32_t tenants = 4;
  /// Per-tenant queued-item quota per shard (SIZE_MAX = unlimited).
  std::size_t tenant_max_queued = SIZE_MAX;

  /// Micro-batch limits (see ShardConfig).
  std::size_t batch_max = 4;
  std::uint64_t batch_window_us = 20'000;
  /// Fixed per-batch overhead (virtual us) before the first item serves —
  /// what batching amortizes: per-item cost stays, setup is paid once.
  std::uint64_t batch_setup_us = 10'000;

  std::size_t ring_replicas = 64;
};

/// One (workers, offered load) grid cell.
struct FleetSweepPoint {
  std::size_t workers = 0;
  double offered_rps = 0.0;
  std::size_t arrivals = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;        ///< full shard queue
  std::size_t quota_rejected = 0;  ///< tenant over its queued quota
  std::size_t deadline_missed = 0; ///< expired in queue or mid-flight
  std::size_t scored_primary = 0;
  std::size_t scored_degraded = 0;
  std::size_t indeterminate = 0;
  std::size_t errors = 0;
  std::size_t breaker_trips = 0;   ///< summed over shards
  std::size_t batches = 0;
  double mean_batch = 0.0;
  double mean_queue_us = 0.0;      ///< over service dequeues (not expired)
  double mean_latency_us = 0.0;    ///< arrival → completion, scored requests
  double throughput_rps = 0.0;     ///< completions per virtual second
  double eer_primary = 0.0;
  double eer_degraded = 0.0;
};

struct FleetSweepResult {
  std::vector<FleetSweepPoint> points;

  /// Multi-line table: one row per (workers, offered load) cell.
  std::string summary() const;
};

/// Runs the fleet sweep. Deterministic in `seed`; the arrival process is
/// forked per load point only, so every worker count replays identical
/// arrivals and the scaling columns are directly comparable.
FleetSweepResult run_fleet_sweep(const FleetSweepConfig& config,
                                 std::uint64_t seed);

}  // namespace vibguard::eval
