// The deterministic trial population shared by the serving sweeps.
//
// The load sweep (single node), the fleet sweep (sharded server) and the
// chaos sweep (sharded server under fault injection) all replay the same
// rendered population: trials, oracle segmenters, one shared request
// interleaving, and the rng roots for scoring and arrivals. Extracting
// the renderer makes the cross-sweep comparison literal — identical rows
// mean identical requests, and any score difference is the serving
// topology's fault, not the population's.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "core/segmentation.hpp"
#include "eval/load_sweep.hpp"
#include "eval/scenario.hpp"

namespace vibguard::eval {

/// Rendered population: everything a sweep replays, derived purely from
/// (config, seed).
struct SweepPopulation {
  std::vector<TrialRecordings> trials;
  std::vector<core::OracleSegmenter> oracles;
  /// One deterministic interleaving of the population, shared by every
  /// sweep point so points differ only in timing.
  std::vector<std::size_t> order;
  core::DefenseConfig primary_cfg;
  Rng score_rng{0};
  Rng arrival_rng{0};
};

/// Renders the population for `config` at `seed`. Deterministic; mirrors
/// the fault sweep's definition (one shared simulator stream, fixed
/// order).
void render_sweep_population(const LoadSweepConfig& config,
                             std::uint64_t seed, SweepPopulation& pop);

/// Poisson arrivals at `rps`: i.i.d. exponential inter-arrival gaps,
/// quantized to >= 1 virtual microsecond. Forked from the arrival root by
/// `point_index` only, so every serving topology replays identical
/// arrivals.
std::vector<std::uint64_t> poisson_arrivals(const Rng& arrival_rng,
                                            std::size_t point_index,
                                            double rps, std::size_t count);

/// EER of attack-vs-legit score classes, or NaN when either class holds
/// fewer than two scores (the curve is meaningless there, not zero).
double eer_or_nan(const std::vector<double>& attack,
                  const std::vector<double>& legit);

/// Nearest-rank percentile (pct in (0, 100]) of `values`: the smallest
/// element with at least ceil(pct/100 * n) elements <= it. Exact sample
/// statistic — no interpolation, so sweeps report values that actually
/// occurred. Returns 0 for an empty sample. Sorts a copy; callers keep
/// their order.
std::uint64_t percentile_nearest_rank(std::vector<std::uint64_t> values,
                                      double pct);

}  // namespace vibguard::eval
