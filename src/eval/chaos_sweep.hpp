// Chaos sweep: fleet behavior under injected worker faults.
//
// Replays the shared sweep population (eval/sweep_population.hpp) through
// the sharded serving::Server on a VirtualClock — the fleet sweep's
// discrete-event machinery — while a seeded faults::ChaosController
// injects worker failures (stall / crash / slow / lossy) and a
// serving::Supervisor watches heartbeats and fails dead workers over.
// Each scenario row reports the full request accounting (every arrival
// ends in exactly one bucket: rejected, answered, expired, dropped in
// migration, or reply lost — `accounted` pins that the buckets sum to
// the arrivals), availability, failover detection latency, migration
// volume, and the detection quality (EER) of what the fleet actually
// answered while the chaos ran.
//
// Everything is deterministic in (seed, chaos_seed): the population, the
// arrivals, the fault windows, the supervisor's poll-by-poll decisions
// and the resulting migrations replay bit-identically — a chaos run is a
// regression test, not a dice roll. With an empty plan the scores are
// bit-identical to a fault-free fleet at the same seed (the fleet
// determinism contract).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "eval/load_sweep.hpp"
#include "faults/serving_faults.hpp"
#include "serving/supervisor.hpp"

namespace vibguard::eval {

/// One chaos scenario: a named fault plan, optionally with a mid-run
/// fleet growth event.
struct ChaosScenario {
  std::string name;
  faults::ChaosPlan plan;
  /// When set, one worker is added at this virtual time (growth
  /// migration: only sessions whose owner changed move).
  std::optional<std::uint64_t> grow_at_us;
};

struct ChaosSweepConfig {
  /// Population, service model, deadline and breaker (per shard);
  /// base.offered_rps is ignored — the chaos sweep runs one load.
  LoadSweepConfig base;
  double offered_rps = 30.0;

  std::size_t workers = 4;
  std::size_t sessions = 16;
  std::uint32_t tenants = 4;
  std::size_t batch_max = 4;
  std::uint64_t batch_window_us = 20'000;
  std::uint64_t batch_setup_us = 10'000;
  std::size_t ring_replicas = 64;

  serving::SupervisorConfig supervisor;
  /// Supervisor poll cadence on the virtual clock. Live workers stamp
  /// their heartbeat at each poll tick (modeling the pump's idle beat),
  /// so detection latency resolves at this granularity.
  std::uint64_t supervisor_poll_us = 20'000;

  std::uint64_t chaos_seed = 0xC4A05ULL;

  /// Scenarios to run; empty selects default_chaos_scenarios().
  std::vector<ChaosScenario> scenarios;
};

/// The canonical scenario set: a fault-free baseline plus one scenario
/// per worker fault kind on worker 1, and a crash followed by fleet
/// growth. `horizon_us` scales the fault windows (use the expected end
/// of the arrival stream).
std::vector<ChaosScenario> default_chaos_scenarios(std::uint64_t horizon_us);

/// One scenario's outcome. The accounting identity (checked in
/// `accounted`):
///   arrivals == rejected + quota_rejected + closed_rejected + answered
///             + deadline_missed + migration_dropped + results_lost
///             + stranded
struct ChaosSweepPoint {
  std::string scenario;
  std::size_t workers_start = 0;
  std::size_t workers_end = 0;  ///< active workers when the run finished

  std::size_t arrivals = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;         ///< full shard queue at submit
  std::size_t quota_rejected = 0;   ///< tenant over quota at submit
  std::size_t closed_rejected = 0;  ///< submitted to a retiring shard
  std::size_t answered = 0;         ///< a verdict reached the caller
  std::size_t scored_primary = 0;
  std::size_t scored_degraded = 0;
  std::size_t indeterminate = 0;
  std::size_t errors = 0;
  std::size_t deadline_missed = 0;    ///< queue, flight or migration expiry
  std::size_t migration_dropped = 0;  ///< new owner's queue refused it
  std::size_t results_lost = 0;       ///< lossy fault ate the reply
  std::size_t stranded = 0;           ///< unserved at the simulation bound
  bool accounted = false;             ///< the identity above held exactly

  std::size_t failovers = 0;
  std::size_t sessions_migrated = 0;
  std::size_t items_migrated = 0;   ///< queued items re-homed live
  std::size_t served_migrated = 0;  ///< answered after riding a migration
  /// Crash → failover completion, for the first failover of a crashed
  /// worker (0 when no crash was failed over): the time the fleet ran
  /// headless before the supervisor recovered it.
  std::uint64_t detect_us = 0;

  double availability = 0.0;  ///< answered / arrivals
  /// Answered fraction among arrivals after the last failover (NaN when
  /// no failover or no arrivals after it) — the recovered-fleet accept
  /// rate the acceptance test compares to baseline.
  double post_failover_availability = 0.0;
  std::size_t breaker_trips = 0;
  double eer_primary = 0.0;
  double eer_degraded = 0.0;
};

struct ChaosSweepResult {
  std::vector<ChaosSweepPoint> points;

  /// Multi-line table: one row per scenario.
  std::string summary() const;
};

/// Runs every scenario. Deterministic in (config, seed); all time is
/// virtual, nothing sleeps.
ChaosSweepResult run_chaos_sweep(const ChaosSweepConfig& config,
                                 std::uint64_t seed);

}  // namespace vibguard::eval
