// Chaos sweep: fleet behavior under injected worker faults.
//
// Replays the shared sweep population (eval/sweep_population.hpp) through
// the sharded serving::Server on a VirtualClock — the fleet sweep's
// discrete-event machinery — while a seeded faults::ChaosController
// injects worker failures (stall / crash / slow / lossy) and a
// serving::Supervisor watches heartbeats and fails dead workers over.
// Each scenario row reports the full request accounting (every arrival
// ends in exactly one bucket: rejected, answered, expired, dropped in
// migration, or reply lost — `accounted` pins that the buckets sum to
// the arrivals), availability, failover detection latency, migration
// volume, and the detection quality (EER) of what the fleet actually
// answered while the chaos ran.
//
// Everything is deterministic in (seed, chaos_seed): the population, the
// arrivals, the fault windows, the supervisor's poll-by-poll decisions
// and the resulting migrations replay bit-identically — a chaos run is a
// regression test, not a dice roll. With an empty plan the scores are
// bit-identical to a fault-free fleet at the same seed (the fleet
// determinism contract).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "eval/load_sweep.hpp"
#include "faults/serving_faults.hpp"
#include "serving/supervisor.hpp"

namespace vibguard::eval {

/// One chaos scenario: a named fault plan, optionally with a mid-run
/// fleet growth event and/or a supervisor remediation policy.
struct ChaosScenario {
  std::string name;
  faults::ChaosPlan plan;
  /// When set, one worker is added at this virtual time (growth
  /// migration: only sessions whose owner changed move).
  std::optional<std::uint64_t> grow_at_us;
  /// When set, overrides the sweep supervisor's remediation policy for
  /// this scenario only (the remediation scenarios turn exactly one rung
  /// on each). Unset inherits config.supervisor.remediation — disabled by
  /// default, which keeps every non-remediation scenario bit-identical to
  /// a supervisor without the ladder.
  std::optional<serving::RemediationConfig> remediation;
};

struct ChaosSweepConfig {
  /// Population, service model, deadline and breaker (per shard);
  /// base.offered_rps is ignored — the chaos sweep runs one load.
  LoadSweepConfig base;
  double offered_rps = 30.0;

  std::size_t workers = 4;
  std::size_t sessions = 16;
  std::uint32_t tenants = 4;
  std::size_t batch_max = 4;
  std::uint64_t batch_window_us = 20'000;
  std::uint64_t batch_setup_us = 10'000;
  std::size_t ring_replicas = 64;

  serving::SupervisorConfig supervisor;
  /// Supervisor poll cadence on the virtual clock. Live workers stamp
  /// their heartbeat at each poll tick (modeling the pump's idle beat),
  /// so detection latency resolves at this granularity.
  std::uint64_t supervisor_poll_us = 20'000;

  std::uint64_t chaos_seed = 0xC4A05ULL;

  /// Scenarios to run; empty selects default_chaos_scenarios() +
  /// remediation_chaos_scenarios().
  std::vector<ChaosScenario> scenarios;

  /// When non-empty, run only the scenario with this exact name. An
  /// unknown name throws InvalidArgument (the CLI maps it to a usage
  /// error, exit 2).
  std::string scenario_filter;
};

/// The canonical scenario set: a fault-free baseline plus one scenario
/// per worker fault kind on worker 1, and a crash followed by fleet
/// growth. `horizon_us` scales the fault windows (use the expected end
/// of the arrival stream).
std::vector<ChaosScenario> default_chaos_scenarios(std::uint64_t horizon_us);

/// The remediation trio, one scenario per ladder rung (each enables
/// exactly the rung it exercises):
///   slow_steal    — three short stalls on worker 1, each holding it SLOW
///                   for two polls; idle peers steal its queue.
///   wedge_recover — one finite stall crossing the wedged threshold; the
///                   worker is quarantined, restarts, beats under the new
///                   epoch, and is restored.
///   overload_grow — every starting worker throttled 2x for the run; the
///                   windowed overload score confirms and the supervisor
///                   grows the fleet (grown workers are not throttled).
/// `workers` is the starting fleet size (bounds the throttle set so grown
/// workers escape it). Window timings assume the default supervisor
/// thresholds and 20 ms poll.
std::vector<ChaosScenario> remediation_chaos_scenarios(
    std::uint64_t horizon_us, std::size_t workers);

/// One scenario's outcome. The accounting identity (checked in
/// `accounted`):
///   arrivals == rejected + quota_rejected + closed_rejected + answered
///             + deadline_missed + migration_dropped + results_lost
///             + stranded
struct ChaosSweepPoint {
  std::string scenario;
  std::size_t workers_start = 0;
  std::size_t workers_end = 0;  ///< active workers when the run finished

  std::size_t arrivals = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;         ///< full shard queue at submit
  std::size_t quota_rejected = 0;   ///< tenant over quota at submit
  std::size_t closed_rejected = 0;  ///< submitted to a retiring shard
  std::size_t answered = 0;         ///< a verdict reached the caller
  std::size_t scored_primary = 0;
  std::size_t scored_degraded = 0;
  std::size_t indeterminate = 0;
  std::size_t errors = 0;
  std::size_t deadline_missed = 0;    ///< queue, flight or migration expiry
  std::size_t migration_dropped = 0;  ///< new owner's queue refused it
  std::size_t results_lost = 0;       ///< lossy fault ate the reply
  std::size_t stranded = 0;           ///< unserved at the simulation bound
  bool accounted = false;             ///< the identity above held exactly

  std::size_t failovers = 0;
  std::size_t sessions_migrated = 0;
  std::size_t items_migrated = 0;   ///< queued items re-homed live
  std::size_t served_migrated = 0;  ///< answered after riding a migration
  /// Crash → failover completion, for the first failover of a crashed
  /// worker (0 when no crash was failed over): the time the fleet ran
  /// headless before the supervisor recovered it.
  std::uint64_t detect_us = 0;

  // Remediation ladder accounting (all zero when remediation is off).
  std::size_t steals = 0;        ///< steal passes that moved >= 1 item
  std::size_t items_stolen = 0;  ///< items moved to a thief shard
  std::size_t quarantines = 0;
  std::size_t recoveries = 0;
  std::size_t escalations = 0;
  std::size_t grows = 0;            ///< supervisor-driven fleet growth
  std::size_t flap_suppressed = 0;  ///< confirmed overload pinned instead
  /// First fault onset → first remediation action (0 when the log is
  /// empty or the plan has no faults): time-to-remediate.
  std::uint64_t remediate_us = 0;
  /// Nearest-rank p95 of queue wait among ANSWERED requests — the tail
  /// latency the steal rung exists to cut.
  std::uint64_t queue_age_p95_us = 0;

  double availability = 0.0;  ///< answered / arrivals
  /// Answered fraction among arrivals after the last failover (NaN when
  /// no failover or no arrivals after it) — the recovered-fleet accept
  /// rate the acceptance test compares to baseline.
  double post_failover_availability = 0.0;
  std::size_t breaker_trips = 0;
  double eer_primary = 0.0;
  double eer_degraded = 0.0;
};

struct ChaosSweepResult {
  std::vector<ChaosSweepPoint> points;

  /// Multi-line table: one row per scenario.
  std::string summary() const;
};

/// Runs every scenario. Deterministic in (config, seed); all time is
/// virtual, nothing sleeps.
ChaosSweepResult run_chaos_sweep(const ChaosSweepConfig& config,
                                 std::uint64_t seed);

}  // namespace vibguard::eval
