// Detection metrics (paper Sec. VII-A): TDR, FDR, ROC, AUC, EER.
//
// Convention: lower scores indicate attacks. At threshold θ an attack is
// detected when its score < θ. TDR is the fraction of attack scores below θ;
// FDR is the fraction of legitimate scores below θ (false alarms).
#pragma once

#include <span>
#include <vector>

namespace vibguard::eval {

struct RocPoint {
  double threshold;
  double fdr;  ///< false detection rate at this threshold
  double tdr;  ///< true detection rate at this threshold
};

struct RocCurve {
  std::vector<RocPoint> points;  ///< sorted by increasing threshold
  double auc = 0.0;              ///< area under TDR-vs-FDR
  double eer = 0.0;              ///< where FDR == 1 - TDR (miss rate)
  double eer_threshold = 0.0;    ///< operating threshold at the EER
};

/// TDR at a given threshold.
double true_detection_rate(std::span<const double> attack_scores,
                           double threshold);

/// FDR at a given threshold.
double false_detection_rate(std::span<const double> legit_scores,
                            double threshold);

/// Computes the full ROC, AUC and EER from the two score populations.
/// Both populations must be non-empty.
RocCurve compute_roc(std::span<const double> attack_scores,
                     std::span<const double> legit_scores);

}  // namespace vibguard::eval
