#include "eval/confidence.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "eval/metrics.hpp"

namespace vibguard::eval {
namespace {

std::vector<double> resample(std::span<const double> xs, Rng& rng) {
  std::vector<double> out(xs.size());
  for (double& v : out) {
    v = xs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(xs.size()) - 1))];
  }
  return out;
}

template <typename Metric>
ConfidenceInterval bootstrap_metric(std::span<const double> attack,
                                    std::span<const double> legit,
                                    const BootstrapConfig& config,
                                    Metric metric) {
  VIBGUARD_REQUIRE(!attack.empty() && !legit.empty(),
                   "both score populations must be non-empty");
  VIBGUARD_REQUIRE(config.resamples >= 10, "need at least 10 resamples");
  VIBGUARD_REQUIRE(config.confidence > 0.0 && config.confidence < 1.0,
                   "confidence must be in (0, 1)");

  ConfidenceInterval ci;
  ci.point = metric(attack, legit);

  Rng rng(config.seed);
  std::vector<double> stats;
  stats.reserve(config.resamples);
  for (std::size_t r = 0; r < config.resamples; ++r) {
    const auto a = resample(attack, rng);
    const auto l = resample(legit, rng);
    stats.push_back(metric(a, l));
  }
  const double alpha = 1.0 - config.confidence;
  ci.lower = quantile(stats, alpha / 2.0);
  ci.upper = quantile(stats, 1.0 - alpha / 2.0);
  return ci;
}

}  // namespace

ConfidenceInterval bootstrap_auc(std::span<const double> attack_scores,
                                 std::span<const double> legit_scores,
                                 const BootstrapConfig& config) {
  return bootstrap_metric(
      attack_scores, legit_scores, config,
      [](std::span<const double> a, std::span<const double> l) {
        return compute_roc(a, l).auc;
      });
}

ConfidenceInterval bootstrap_eer(std::span<const double> attack_scores,
                                 std::span<const double> legit_scores,
                                 const BootstrapConfig& config) {
  return bootstrap_metric(
      attack_scores, legit_scores, config,
      [](std::span<const double> a, std::span<const double> l) {
        return compute_roc(a, l).eer;
      });
}

}  // namespace vibguard::eval
