#include "eval/confidence.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/detector.hpp"
#include "eval/metrics.hpp"

namespace vibguard::eval {
namespace {

std::vector<double> resample(std::span<const double> xs, Rng& rng) {
  std::vector<double> out(xs.size());
  for (double& v : out) {
    v = xs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(xs.size()) - 1))];
  }
  return out;
}

template <typename Metric>
ConfidenceInterval bootstrap_metric(std::span<const double> attack,
                                    std::span<const double> legit,
                                    const BootstrapConfig& config,
                                    Metric metric) {
  VIBGUARD_REQUIRE(!attack.empty() && !legit.empty(),
                   "both score populations must be non-empty");
  VIBGUARD_REQUIRE(config.resamples >= 10, "need at least 10 resamples");
  VIBGUARD_REQUIRE(config.confidence > 0.0 && config.confidence < 1.0,
                   "confidence must be in (0, 1)");

  ConfidenceInterval ci;
  ci.point = metric(attack, legit);

  Rng rng(config.seed);
  std::vector<double> stats;
  stats.reserve(config.resamples);
  for (std::size_t r = 0; r < config.resamples; ++r) {
    const auto a = resample(attack, rng);
    const auto l = resample(legit, rng);
    stats.push_back(metric(a, l));
  }
  const double alpha = 1.0 - config.confidence;
  ci.lower = quantile(stats, alpha / 2.0);
  ci.upper = quantile(stats, 1.0 - alpha / 2.0);
  return ci;
}

}  // namespace

ConfidenceInterval bootstrap_auc(std::span<const double> attack_scores,
                                 std::span<const double> legit_scores,
                                 const BootstrapConfig& config) {
  return bootstrap_metric(
      attack_scores, legit_scores, config,
      [](std::span<const double> a, std::span<const double> l) {
        return compute_roc(a, l).auc;
      });
}

ConfidenceInterval bootstrap_eer(std::span<const double> attack_scores,
                                 std::span<const double> legit_scores,
                                 const BootstrapConfig& config) {
  return bootstrap_metric(
      attack_scores, legit_scores, config,
      [](std::span<const double> a, std::span<const double> l) {
        return compute_roc(a, l).eer;
      });
}

namespace {

struct ClassMoments {
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations (Welford)
  std::size_t n = 0;
};

ClassMoments moments_of(std::span<const double> scores) {
  ClassMoments m;
  for (const double s : scores) {
    if (core::is_indeterminate_score(s)) continue;
    ++m.n;
    const double d = s - m.mean;
    m.mean += d / static_cast<double>(m.n);
    m.m2 += d * (s - m.mean);
  }
  return m;
}

}  // namespace

void ScoreCalibration::fit(std::span<const double> attack_scores,
                           std::span<const double> legit_scores) {
  const ClassMoments a = moments_of(attack_scores);
  const ClassMoments l = moments_of(legit_scores);
  VIBGUARD_REQUIRE(a.n >= 2 && l.n >= 2,
                   "calibration needs >= 2 determinate scores per class");
  const double pooled_var =
      (a.m2 + l.m2) / static_cast<double>(a.n + l.n - 2);
  // Two identical constant populations carry no information; stay at the
  // never-confident default rather than fabricating an infinite slope.
  if (!(pooled_var > 1e-12)) {
    fitted_ = false;
    a_ = 0.0;
    b_ = 0.0;
    return;
  }
  // LDA log-odds: log P(attack|s)/P(legit|s) is linear in s under
  // equal-variance Gaussians, with empirical class priors.
  a_ = (a.mean - l.mean) / pooled_var;
  b_ = (l.mean * l.mean - a.mean * a.mean) / (2.0 * pooled_var) +
       std::log(static_cast<double>(a.n) / static_cast<double>(l.n));
  fitted_ = true;
}

double ScoreCalibration::posterior_attack(double score) const {
  if (!fitted_ || core::is_indeterminate_score(score)) return 0.5;
  const double t = a_ * score + b_;
  // Numerically stable logistic.
  if (t >= 0.0) {
    const double e = std::exp(-t);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(t);
  return e / (1.0 + e);
}

}  // namespace vibguard::eval
