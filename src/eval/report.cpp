#include "eval/report.hpp"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace vibguard::eval {

void write_roc_csv(const RocCurve& roc, const std::string& path) {
  std::ofstream out(path);
  VIBGUARD_REQUIRE(out.good(), "cannot open for writing: " + path);
  out << "threshold,fdr,tdr\n" << std::setprecision(10);
  for (const RocPoint& p : roc.points) {
    out << p.threshold << "," << p.fdr << "," << p.tdr << "\n";
  }
  VIBGUARD_REQUIRE(out.good(), "write failed: " + path);
}

void write_scores_csv(const ScorePopulations& pops,
                      const std::string& path) {
  std::ofstream out(path);
  VIBGUARD_REQUIRE(out.good(), "cannot open for writing: " + path);
  out << "label,score\n" << std::setprecision(10);
  for (double s : pops.legit) out << "legit," << s << "\n";
  for (double s : pops.attack) out << "attack," << s << "\n";
  VIBGUARD_REQUIRE(out.good(), "write failed: " + path);
}

std::string roc_summary_markdown(
    const std::map<core::DefenseMode, RocCurve>& rocs) {
  std::ostringstream out;
  out << "| method | AUC | EER |\n|---|---|---|\n" << std::fixed
      << std::setprecision(3);
  for (const auto& [mode, roc] : rocs) {
    out << "| " << core::mode_name(mode) << " | " << roc.auc << " | "
        << roc.eer << " |\n";
  }
  return out.str();
}

std::string csv_output_dir() {
  const char* env = std::getenv("VIBGUARD_CSV_DIR");
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace vibguard::eval
