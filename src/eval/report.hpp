// Result export: CSV and Markdown serialization of score populations and
// ROC curves, so experiment outputs can be consumed by external plotting
// tools (the paper's figures are line plots of exactly these series).
#pragma once

#include <map>
#include <string>

#include "core/pipeline.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"

namespace vibguard::eval {

/// Writes a ROC curve as CSV: "threshold,fdr,tdr" rows.
void write_roc_csv(const RocCurve& roc, const std::string& path);

/// Writes raw score populations as CSV: "label,score" rows with labels
/// "legit" and "attack".
void write_scores_csv(const ScorePopulations& pops, const std::string& path);

/// Renders per-mode ROC summaries as a Markdown table
/// (| method | AUC | EER |).
std::string roc_summary_markdown(
    const std::map<core::DefenseMode, RocCurve>& rocs);

/// Directory for benchmark CSV dumps, from $VIBGUARD_CSV_DIR; empty when
/// unset (dumping disabled).
std::string csv_output_dir();

}  // namespace vibguard::eval
