#include "eval/load_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "core/segmentation.hpp"
#include "eval/metrics.hpp"
#include "eval/sweep_population.hpp"
#include "serving/server.hpp"

namespace vibguard::eval {

// The population renderer, the Poisson arrival process and the EER
// guard live in eval/sweep_population.{hpp,cpp} — shared with the chaos
// sweep so rows are comparable trial for trial across all three sweeps.
using Population = SweepPopulation;

std::string LoadSweepResult::summary() const {
  std::string out = "load sweep\n";
  char line[200];
  std::snprintf(line, sizeof(line),
                "  %7s %5s %6s %6s %7s %8s %8s %6s %5s %10s %8s %8s\n",
                "rps", "arr", "reject", "dlmiss", "primary", "degraded",
                "indeterm", "error", "trips", "queue us", "EERpri",
                "EERdeg");
  out += line;
  for (const LoadSweepPoint& p : points) {
    std::snprintf(line, sizeof(line),
                  "  %7.1f %5zu %6zu %6zu %7zu %8zu %8zu %6zu %5zu %10.0f "
                  "%8.3f %8.3f\n",
                  p.offered_rps, p.arrivals, p.rejected, p.deadline_missed,
                  p.scored_primary, p.scored_degraded, p.indeterminate,
                  p.errors, p.breaker_trips, p.mean_queue_us, p.eer_primary,
                  p.eer_degraded);
    out += line;
  }
  return out;
}

LoadSweepResult run_load_sweep(const LoadSweepConfig& config,
                               std::uint64_t seed) {
  Population pop;
  render_sweep_population(config, seed, pop);
  const std::vector<TrialRecordings>& trials = pop.trials;
  const std::vector<core::OracleSegmenter>& oracles = pop.oracles;
  const std::vector<std::size_t>& order = pop.order;

  const core::DefenseSystem primary(pop.primary_cfg);
  core::DefenseConfig degraded_cfg = pop.primary_cfg;
  degraded_cfg.mode = config.degraded_mode;
  const core::DefenseSystem degraded(degraded_cfg);

  const Rng& score_rng = pop.score_rng;

  core::Workspace workspace;
  LoadSweepResult result;

  for (std::size_t p_idx = 0; p_idx < config.offered_rps.size(); ++p_idx) {
    const double rps = config.offered_rps[p_idx];
    const std::vector<std::uint64_t> arrival_us =
        poisson_arrivals(pop.arrival_rng, p_idx, rps, order.size());

    // One single-server serving node, simulated event by event in time
    // order on a virtual clock. `server_free_us` is the completion time of
    // the request in service; the clock itself tracks the latest processed
    // event (an arrival or a service start), so queue times and breaker
    // cooldowns are exact without ever sleeping.
    VirtualClock clock;
    serving::AdmissionController admission({config.queue_capacity}, clock);
    serving::CircuitBreaker breaker(config.breaker, clock);
    std::vector<std::uint64_t> deadline_at(order.size(), 0);
    std::uint64_t server_free_us = 0;

    LoadSweepPoint point;
    point.offered_rps = rps;
    point.arrivals = order.size();
    std::uint64_t total_queue_us = 0;
    std::size_t served = 0;
    std::vector<double> legit_pri, attack_pri, legit_deg, attack_deg;

    std::size_t next_arrival = 0;
    while (next_arrival < order.size() || admission.depth() > 0) {
      const bool have_arrival = next_arrival < order.size();
      // Serve the queue head whenever its start would precede the next
      // arrival (departures at equal times win the tie, freeing queue
      // space before the arrival is offered).
      if (admission.depth() > 0 &&
          (!have_arrival || server_free_us <= arrival_us[next_arrival])) {
        const std::uint64_t start = std::max(server_free_us, clock.now_us());
        clock.set(start);

        // Expired while queued: dropped before any service is consumed.
        // Accounted through the expired path — never a service dequeue, so
        // it cannot pollute the mean queue time of served requests — and
        // never reported to the breaker: a request that was never run says
        // nothing about the pipeline's health.
        if (start >= deadline_at[*admission.peek()]) {
          admission.next_expired();
          ++point.deadline_missed;
          continue;
        }

        const auto admitted = admission.next();
        const std::size_t slot = admitted->request_id;
        const std::size_t t = order[slot];
        total_queue_us += admitted->queue_us;
        ++served;

        const bool on_primary = breaker.allow_primary();
        const core::DefenseSystem& route = on_primary ? primary : degraded;
        const std::uint64_t service_us =
            on_primary ? config.service_us_primary : config.service_us_degraded;
        const std::uint64_t expires = deadline_at[slot];

        // The service time is modeled, so mid-flight expiry cannot be
        // observed by really running the clock into the deadline (that
        // would reorder events against later arrivals). Instead the expiry
        // is decided analytically and, for a doomed request, the pipeline
        // runs under an already-expired Deadline: cooperative cancellation
        // trips at the first stage boundary, exactly the observable
        // behavior of a cancelled command, while the server stays occupied
        // until the cancellation instant.
        core::ScoreOutcome outcome;
        Rng trial_rng = score_rng.fork(t);
        if (start + service_us > expires) {
          // Would miss mid-flight: cancelled at the deadline instant.
          const Deadline dl(clock, start);
          outcome = route.try_score(trials[t].va, trials[t].wearable,
                                    &oracles[t], trial_rng, workspace, nullptr,
                                    &dl);
          server_free_us = expires;
        } else {
          const Deadline dl(clock, expires);
          outcome = route.try_score(trials[t].va, trials[t].wearable,
                                    &oracles[t], trial_rng, workspace, nullptr,
                                    &dl);
          server_free_us = start + service_us;
        }

        switch (outcome.status) {
          case core::ScoreStatus::kOk:
            if (on_primary) {
              ++point.scored_primary;
              (trials[t].is_attack ? attack_pri : legit_pri)
                  .push_back(outcome.score);
            } else {
              ++point.scored_degraded;
              (trials[t].is_attack ? attack_deg : legit_deg)
                  .push_back(outcome.score);
            }
            break;
          case core::ScoreStatus::kIndeterminate:
            ++point.indeterminate;
            break;
          case core::ScoreStatus::kError:
            ++point.errors;
            break;
          case core::ScoreStatus::kDeadlineExceeded:
            ++point.deadline_missed;
            break;
        }
        // Breaker accounting mirrors the session: only primary-route hard
        // failures indict the pipeline; quality-gated trials stay neutral
        // (but still release a half-open probe slot).
        if (on_primary) {
          if (outcome.status == core::ScoreStatus::kError ||
              outcome.status == core::ScoreStatus::kDeadlineExceeded) {
            breaker.record_failure(outcome.reason);
          } else if (outcome.status == core::ScoreStatus::kOk) {
            breaker.record_success();
          } else {
            breaker.record_indeterminate();
          }
        }
        continue;
      }

      // Next event is an arrival: offer it to the bounded queue.
      clock.set(arrival_us[next_arrival]);
      deadline_at[next_arrival] = arrival_us[next_arrival] + config.deadline_us;
      if (admission.try_admit(next_arrival)) {
        ++point.admitted;
      } else {
        ++point.rejected;
      }
      ++next_arrival;
    }

    point.breaker_trips = breaker.trips();
    point.mean_queue_us =
        served > 0
            ? static_cast<double>(total_queue_us) / static_cast<double>(served)
            : 0.0;
    point.eer_primary = eer_or_nan(attack_pri, legit_pri);
    point.eer_degraded = eer_or_nan(attack_deg, legit_deg);
    result.points.push_back(point);
  }
  return result;
}

std::string FleetSweepResult::summary() const {
  std::string out = "fleet load sweep\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "  %3s %7s %5s %6s %6s %6s %7s %8s %8s %6s %5s %7s %6s "
                "%9s %9s %8s %8s\n",
                "wrk", "rps", "arr", "reject", "quota", "dlmiss", "primary",
                "degraded", "indeterm", "error", "trips", "batches", "avg_b",
                "queue us", "thr rps", "EERpri", "EERdeg");
  out += line;
  for (const FleetSweepPoint& p : points) {
    std::snprintf(line, sizeof(line),
                  "  %3zu %7.1f %5zu %6zu %6zu %6zu %7zu %8zu %8zu %6zu "
                  "%5zu %7zu %6.2f %9.0f %9.2f %8.3f %8.3f\n",
                  p.workers, p.offered_rps, p.arrivals, p.rejected,
                  p.quota_rejected, p.deadline_missed, p.scored_primary,
                  p.scored_degraded, p.indeterminate, p.errors,
                  p.breaker_trips, p.batches, p.mean_batch, p.mean_queue_us,
                  p.throughput_rps, p.eer_primary, p.eer_degraded);
    out += line;
  }
  return out;
}

FleetSweepResult run_fleet_sweep(const FleetSweepConfig& config,
                                 std::uint64_t seed) {
  VIBGUARD_REQUIRE(!config.workers.empty(), "worker grid must be non-empty");
  for (const std::size_t w : config.workers) {
    VIBGUARD_REQUIRE(w > 0, "worker count must be positive");
  }
  VIBGUARD_REQUIRE(config.sessions > 0, "need at least one session");
  VIBGUARD_REQUIRE(config.tenants > 0, "need at least one tenant");

  Population pop;
  render_sweep_population(config.base, seed, pop);
  const std::size_t num_requests = pop.order.size();
  constexpr std::uint64_t kSessionIdBase = 0xA000;

  FleetSweepResult result;

  for (const std::size_t num_workers : config.workers) {
    for (std::size_t p_idx = 0; p_idx < config.base.offered_rps.size();
         ++p_idx) {
      const double rps = config.base.offered_rps[p_idx];
      // Forked by load index only: every worker count replays the exact
      // same arrival times, so the scaling columns are comparable.
      const std::vector<std::uint64_t> arrival_us =
          poisson_arrivals(pop.arrival_rng, p_idx, rps, num_requests);

      VirtualClock clock;
      serving::ServerConfig server_cfg;
      server_cfg.defense = pop.primary_cfg;
      server_cfg.degraded_mode = config.base.degraded_mode;
      server_cfg.workers = num_workers;
      server_cfg.ring_replicas = config.ring_replicas;
      server_cfg.shard.queue_capacity = config.base.queue_capacity;
      server_cfg.shard.batch_max = config.batch_max;
      server_cfg.shard.batch_window_us = config.batch_window_us;
      server_cfg.shard.tenant_max_queued = config.tenant_max_queued;
      server_cfg.shard.breaker = config.base.breaker;
      server_cfg.deadline_us = config.base.deadline_us;
      serving::Server server(server_cfg, clock);

      std::vector<serving::SessionHandle> handles(config.sessions);
      for (std::size_t s = 0; s < config.sessions; ++s) {
        handles[s] = server.open_session(
            kSessionIdBase + s, static_cast<std::uint32_t>(s) %
                                    config.tenants);
      }

      FleetSweepPoint point;
      point.workers = num_workers;
      point.offered_rps = rps;
      point.arrivals = num_requests;
      std::vector<double> legit_pri, attack_pri, legit_deg, attack_deg;
      std::uint64_t total_latency_us = 0;
      std::size_t latency_n = 0;
      std::uint64_t makespan_us = 0;

      std::vector<std::uint64_t> free_us(num_workers, 0);
      std::vector<serving::ServedResult> results;
      std::vector<std::uint64_t> eff;

      const auto total_depth = [&] {
        std::size_t depth = 0;
        for (std::size_t w = 0; w < num_workers; ++w) {
          depth += server.shard(w).depth();
        }
        return depth;
      };

      std::size_t next_arrival = 0;
      while (next_arrival < num_requests || total_depth() > 0) {
        // The earliest batch start across workers: a worker can begin when
        // it is free, its batch window has elapsed (or the batch is full),
        // and — since queue state only changes at events — never before
        // the last processed event. Lowest worker index wins time ties.
        bool have_service = false;
        std::size_t sw = 0;
        std::uint64_t s_start = 0;
        for (std::size_t w = 0; w < num_workers; ++w) {
          const auto ready = server.shard(w).batch_ready_us();
          if (!ready.has_value()) continue;
          const std::uint64_t start =
              std::max({free_us[w], *ready, clock.now_us()});
          if (!have_service || start < s_start) {
            have_service = true;
            sw = w;
            s_start = start;
          }
        }
        const bool have_arrival = next_arrival < num_requests;

        if (have_service &&
            (!have_arrival || s_start <= arrival_us[next_arrival])) {
          clock.set(s_start);
          const auto planned = server.form_batch(sw);
          // s_start >= the shard's ready time and the queue is untouched
          // since it was computed, so the batch always forms.
          VIBGUARD_REQUIRE(planned.has_value(), "ready batch failed to form");

          // Walk the batch serially: one setup cost, then per-item
          // service. Expiry is decided analytically exactly as in the
          // single-node sweep — a doomed item scores under an
          // already-expired deadline (cancellation at the first stage
          // boundary) while the worker stays occupied until the
          // cancellation instant.
          std::uint64_t t_us = s_start + config.batch_setup_us;
          const std::uint64_t service_us =
              planned->degraded ? config.base.service_us_degraded
                                : config.base.service_us_primary;
          eff.clear();
          for (const serving::WorkItem& item : planned->items) {
            if (item.expired_in_queue) {
              ++point.deadline_missed;
              eff.push_back(item.deadline_at_us);
              continue;
            }
            if (item.deadline_at_us <= t_us) {
              // Expires before its service begins (earlier batch items
              // occupy the worker past it): cancelled at zero cost.
              eff.push_back(s_start);
              continue;
            }
            const std::uint64_t fin = t_us + service_us;
            if (fin > item.deadline_at_us) {
              // Mid-flight miss: cancelled at the deadline instant.
              eff.push_back(s_start);
              t_us = item.deadline_at_us;
            } else {
              eff.push_back(item.deadline_at_us);
              total_latency_us += fin - item.enqueued_us;
              ++latency_n;
              t_us = fin;
            }
          }
          results.clear();
          server.complete_batch(sw, results, eff);
          free_us[sw] = t_us;
          makespan_us = std::max(makespan_us, t_us);

          for (const serving::ServedResult& r : results) {
            if (r.expired_in_queue) continue;  // counted at formation
            const std::size_t t = pop.order[r.request_id];
            switch (r.outcome.status) {
              case core::ScoreStatus::kOk:
                if (r.degraded) {
                  ++point.scored_degraded;
                  (pop.trials[t].is_attack ? attack_deg : legit_deg)
                      .push_back(r.outcome.score);
                } else {
                  ++point.scored_primary;
                  (pop.trials[t].is_attack ? attack_pri : legit_pri)
                      .push_back(r.outcome.score);
                }
                break;
              case core::ScoreStatus::kIndeterminate:
                ++point.indeterminate;
                break;
              case core::ScoreStatus::kError:
                ++point.errors;
                break;
              case core::ScoreStatus::kDeadlineExceeded:
                ++point.deadline_missed;
                break;
            }
          }
          continue;
        }

        // Next event is an arrival: route it to its session's shard.
        clock.set(arrival_us[next_arrival]);
        const std::size_t i = next_arrival;
        const std::size_t t = pop.order[i];
        const std::size_t s = i % config.sessions;
        serving::ServerRequest req;
        req.va = &pop.trials[t].va;
        req.wearable = &pop.trials[t].wearable;
        req.segmenter = &pop.oracles[t];
        req.rng = pop.score_rng.fork(t);
        req.request_id = i;
        switch (server.submit(kSessionIdBase + s, handles[s], req)) {
          case serving::SubmitStatus::kQueued:
            ++point.admitted;
            break;
          case serving::SubmitStatus::kRejectedQueueFull:
            ++point.rejected;
            break;
          case serving::SubmitStatus::kRejectedTenantQuota:
            ++point.quota_rejected;
            break;
          case serving::SubmitStatus::kStaleSession:
            VIBGUARD_REQUIRE(false, "fleet sweep session went stale");
          case serving::SubmitStatus::kRejectedClosed:
            VIBGUARD_REQUIRE(false, "fleet sweep has no retiring shards");
        }
        ++next_arrival;
      }

      // Fold the per-shard accounting into the grid cell.
      std::uint64_t dequeued = 0;
      std::uint64_t total_queue_us = 0;
      std::uint64_t batched_items = 0;
      for (std::size_t w = 0; w < num_workers; ++w) {
        const serving::ShardStats stats = server.shard(w).stats();
        dequeued += stats.admission.dequeued;
        total_queue_us += stats.admission.total_queue_us;
        point.batches += stats.batches;
        batched_items += stats.batched_items;
        if (server.shard(w).breaker() != nullptr) {
          point.breaker_trips += server.shard(w).breaker()->trips();
        }
      }
      point.mean_batch =
          point.batches > 0 ? static_cast<double>(batched_items) /
                                  static_cast<double>(point.batches)
                            : 0.0;
      point.mean_queue_us =
          dequeued > 0 ? static_cast<double>(total_queue_us) /
                             static_cast<double>(dequeued)
                       : 0.0;
      point.mean_latency_us =
          latency_n > 0 ? static_cast<double>(total_latency_us) /
                              static_cast<double>(latency_n)
                        : 0.0;
      point.throughput_rps =
          makespan_us > 0 ? static_cast<double>(point.admitted) /
                                (static_cast<double>(makespan_us) * 1e-6)
                          : 0.0;
      point.eer_primary = eer_or_nan(attack_pri, legit_pri);
      point.eer_degraded = eer_or_nan(attack_deg, legit_deg);
      result.points.push_back(point);
    }
  }
  return result;
}

}  // namespace vibguard::eval
