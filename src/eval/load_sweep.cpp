#include "eval/load_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "core/segmentation.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "speech/command.hpp"
#include "speech/speaker.hpp"

namespace vibguard::eval {
namespace {

/// EER needs a minimally populated pair of score classes to mean anything;
/// below this we report NaN instead of a fabricated number.
constexpr std::size_t kMinClassScores = 2;

double nan_metric() { return std::numeric_limits<double>::quiet_NaN(); }

double eer_or_nan(const std::vector<double>& attack,
                  const std::vector<double>& legit) {
  if (attack.size() < kMinClassScores || legit.size() < kMinClassScores) {
    return nan_metric();
  }
  return compute_roc(attack, legit).eer;
}

}  // namespace

std::string LoadSweepResult::summary() const {
  std::string out = "load sweep\n";
  char line[200];
  std::snprintf(line, sizeof(line),
                "  %7s %5s %6s %6s %7s %8s %8s %6s %5s %10s %8s %8s\n",
                "rps", "arr", "reject", "dlmiss", "primary", "degraded",
                "indeterm", "error", "trips", "queue us", "EERpri",
                "EERdeg");
  out += line;
  for (const LoadSweepPoint& p : points) {
    std::snprintf(line, sizeof(line),
                  "  %7.1f %5zu %6zu %6zu %7zu %8zu %8zu %6zu %5zu %10.0f "
                  "%8.3f %8.3f\n",
                  p.offered_rps, p.arrivals, p.rejected, p.deadline_missed,
                  p.scored_primary, p.scored_degraded, p.indeterminate,
                  p.errors, p.breaker_trips, p.mean_queue_us, p.eer_primary,
                  p.eer_degraded);
    out += line;
  }
  return out;
}

LoadSweepResult run_load_sweep(const LoadSweepConfig& config,
                               std::uint64_t seed) {
  VIBGUARD_REQUIRE(config.num_speakers >= 2,
                   "need at least two speakers (victim + adversary)");
  VIBGUARD_REQUIRE(!config.offered_rps.empty(),
                   "offered-load grid must be non-empty");
  for (const double rps : config.offered_rps) {
    VIBGUARD_REQUIRE(rps > 0.0, "offered load must be positive");
  }

  // Render the trial population once, mirroring the fault sweep's
  // deterministic definition: one shared simulator stream in a fixed order.
  Rng rng(seed);
  const auto speakers = speech::sample_population(config.num_speakers, rng);
  ScenarioSimulator sim(config.scenario, seed ^ 0x5ce9a21ULL);
  const auto lexicon = speech::command_lexicon();

  std::vector<TrialRecordings> trials;
  trials.reserve(config.legit_trials + config.attack_trials);
  for (std::size_t i = 0; i < config.legit_trials; ++i) {
    const auto& user = speakers[i % speakers.size()];
    const auto& cmd = lexicon[i % lexicon.size()];
    trials.push_back(sim.legitimate_trial(cmd, user));
  }
  for (std::size_t i = 0; i < config.attack_trials; ++i) {
    const auto& victim = speakers[i % speakers.size()];
    const auto& adversary = speakers[(i + 1) % speakers.size()];
    const auto& cmd = lexicon[(i * 3 + 1) % lexicon.size()];
    trials.push_back(sim.attack_trial(config.attack, cmd, victim, adversary));
  }

  const auto& sensitive = reference_sensitive_set();
  std::vector<core::OracleSegmenter> oracles;
  oracles.reserve(trials.size());
  for (const TrialRecordings& trial : trials) {
    oracles.emplace_back(trial.alignment, sensitive);
  }

  core::DefenseConfig primary_cfg = config.defense;
  primary_cfg.wearable = config.scenario.wearable;
  primary_cfg.sync = config.scenario.sync;
  const core::DefenseSystem primary(primary_cfg);
  core::DefenseConfig degraded_cfg = primary_cfg;
  degraded_cfg.mode = config.degraded_mode;
  const core::DefenseSystem degraded(degraded_cfg);

  // Request order: one deterministic interleaving of the population, shared
  // by every load point so the points differ only in timing.
  std::vector<std::size_t> order(trials.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng shuffle_rng = rng.fork(0x0de1ULL);
  for (std::size_t i = order.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        shuffle_rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }

  const Rng score_rng(seed ^ 0x7e57ULL);
  const Rng arrival_rng(seed ^ 0xa331a1ULL);

  core::Workspace workspace;
  LoadSweepResult result;

  for (std::size_t p_idx = 0; p_idx < config.offered_rps.size(); ++p_idx) {
    const double rps = config.offered_rps[p_idx];

    // Poisson arrival process: i.i.d. exponential inter-arrival gaps at the
    // offered rate, quantized to >= 1 virtual microsecond.
    Rng arrivals_rng = arrival_rng.fork(p_idx);
    std::vector<std::uint64_t> arrival_us(order.size());
    std::uint64_t t_us = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const double gap_s = -std::log(1.0 - arrivals_rng.uniform()) / rps;
      t_us += std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::llround(gap_s * 1e6)));
      arrival_us[i] = t_us;
    }

    // One single-server serving node, simulated event by event in time
    // order on a virtual clock. `server_free_us` is the completion time of
    // the request in service; the clock itself tracks the latest processed
    // event (an arrival or a service start), so queue times and breaker
    // cooldowns are exact without ever sleeping.
    VirtualClock clock;
    serving::AdmissionController admission({config.queue_capacity}, clock);
    serving::CircuitBreaker breaker(config.breaker, clock);
    std::vector<std::uint64_t> deadline_at(order.size(), 0);
    std::uint64_t server_free_us = 0;

    LoadSweepPoint point;
    point.offered_rps = rps;
    point.arrivals = order.size();
    std::uint64_t total_queue_us = 0;
    std::size_t served = 0;
    std::vector<double> legit_pri, attack_pri, legit_deg, attack_deg;

    std::size_t next_arrival = 0;
    while (next_arrival < order.size() || admission.depth() > 0) {
      const bool have_arrival = next_arrival < order.size();
      // Serve the queue head whenever its start would precede the next
      // arrival (departures at equal times win the tie, freeing queue
      // space before the arrival is offered).
      if (admission.depth() > 0 &&
          (!have_arrival || server_free_us <= arrival_us[next_arrival])) {
        const std::uint64_t start = std::max(server_free_us, clock.now_us());
        clock.set(start);
        const auto admitted = admission.next();
        const std::size_t slot = admitted->request_id;
        const std::size_t t = order[slot];
        total_queue_us += admitted->queue_us;
        ++served;

        const bool on_primary = breaker.allow_primary();
        const core::DefenseSystem& route = on_primary ? primary : degraded;
        const std::uint64_t service_us =
            on_primary ? config.service_us_primary : config.service_us_degraded;
        const std::uint64_t expires = deadline_at[slot];

        // The service time is modeled, so mid-flight expiry cannot be
        // observed by really running the clock into the deadline (that
        // would reorder events against later arrivals). Instead the expiry
        // is decided analytically and, for a doomed request, the pipeline
        // runs under an already-expired Deadline: cooperative cancellation
        // trips at the first stage boundary, exactly the observable
        // behavior of a cancelled command, while the server stays occupied
        // until the cancellation instant.
        core::ScoreOutcome outcome;
        Rng trial_rng = score_rng.fork(t);
        if (start >= expires) {
          // Expired while queued: cancelled before consuming any service.
          const Deadline dl(clock, expires);
          outcome = route.try_score(trials[t].va, trials[t].wearable,
                                    &oracles[t], trial_rng, workspace, nullptr,
                                    &dl);
          server_free_us = start;
        } else if (start + service_us > expires) {
          // Would miss mid-flight: cancelled at the deadline instant.
          const Deadline dl(clock, start);
          outcome = route.try_score(trials[t].va, trials[t].wearable,
                                    &oracles[t], trial_rng, workspace, nullptr,
                                    &dl);
          server_free_us = expires;
        } else {
          const Deadline dl(clock, expires);
          outcome = route.try_score(trials[t].va, trials[t].wearable,
                                    &oracles[t], trial_rng, workspace, nullptr,
                                    &dl);
          server_free_us = start + service_us;
        }

        switch (outcome.status) {
          case core::ScoreStatus::kOk:
            if (on_primary) {
              ++point.scored_primary;
              (trials[t].is_attack ? attack_pri : legit_pri)
                  .push_back(outcome.score);
            } else {
              ++point.scored_degraded;
              (trials[t].is_attack ? attack_deg : legit_deg)
                  .push_back(outcome.score);
            }
            break;
          case core::ScoreStatus::kIndeterminate:
            ++point.indeterminate;
            break;
          case core::ScoreStatus::kError:
            ++point.errors;
            break;
          case core::ScoreStatus::kDeadlineExceeded:
            ++point.deadline_missed;
            break;
        }
        // Breaker accounting mirrors the session: only primary-route hard
        // failures indict the pipeline; quality-gated trials stay neutral.
        if (on_primary) {
          if (outcome.status == core::ScoreStatus::kError ||
              outcome.status == core::ScoreStatus::kDeadlineExceeded) {
            breaker.record_failure(outcome.reason);
          } else if (outcome.status == core::ScoreStatus::kOk) {
            breaker.record_success();
          }
        }
        continue;
      }

      // Next event is an arrival: offer it to the bounded queue.
      clock.set(arrival_us[next_arrival]);
      deadline_at[next_arrival] = arrival_us[next_arrival] + config.deadline_us;
      if (admission.try_admit(next_arrival)) {
        ++point.admitted;
      } else {
        ++point.rejected;
      }
      ++next_arrival;
    }

    point.breaker_trips = breaker.trips();
    point.mean_queue_us =
        served > 0
            ? static_cast<double>(total_queue_us) / static_cast<double>(served)
            : 0.0;
    point.eer_primary = eer_or_nan(attack_pri, legit_pri);
    point.eer_degraded = eer_or_nan(attack_deg, legit_deg);
    result.points.push_back(point);
  }
  return result;
}

}  // namespace vibguard::eval
