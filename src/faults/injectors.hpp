// Concrete fault injectors (see faults/fault.hpp for the contract).
//
// Each injector is a small config struct + apply(). Parameters are chosen in
// physical units (seconds, rates, fractions of peak) so plans transfer
// between the 16 kHz audio recordings and the 200 Hz accelerometer domain.
#pragma once

#include "faults/fault.hpp"

namespace vibguard::faults {

/// Dropped samples / transmission gaps: gap starts arrive as a Poisson
/// process at `drops_per_second`; each gap's length is exponentially
/// distributed around `mean_gap_seconds` (at least one sample). The gap is
/// filled with zeros (packet loss) or the last good sample (sample-and-hold
/// codecs).
class DropoutInjector final : public FaultInjector {
 public:
  enum class Fill { kZero, kHold };

  DropoutInjector(double drops_per_second, double mean_gap_seconds,
                  Fill fill = Fill::kZero);

  const char* name() const override { return "dropout"; }
  void apply(Signal& signal, Rng& rng) const override;

 private:
  double drops_per_second_;
  double mean_gap_seconds_;
  Fill fill_;
};

/// Amplitude saturation: clamps every sample to ±(level_fraction · peak),
/// the overdriven-microphone / limited-ADC failure. level_fraction >= 1 or a
/// silent signal is a no-op.
class ClippingInjector final : public FaultInjector {
 public:
  explicit ClippingInjector(double level_fraction);

  const char* name() const override { return "clipping"; }
  void apply(Signal& signal, Rng& rng) const override;

 private:
  double level_fraction_;
};

/// Stuck sensor: from a uniformly drawn start position, holds the reading
/// constant for `duration_seconds` (clamped to the end of the capture).
class StuckAtInjector final : public FaultInjector {
 public:
  explicit StuckAtInjector(double duration_seconds);

  const char* name() const override { return "stuck_at"; }
  void apply(Signal& signal, Rng& rng) const override;

 private:
  double duration_seconds_;
};

/// Clock skew and sampling jitter: the device's real sampling clock runs
/// `drift_ppm` parts-per-million fast, so the capture is resampled onto the
/// skewed grid (shortening it and desynchronizing it gradually) while the
/// nominal rate label is kept. `jitter_std_samples` adds zero-mean Gaussian
/// timing noise to each resampling position.
class ClockDriftInjector final : public FaultInjector {
 public:
  ClockDriftInjector(double drift_ppm, double jitter_std_samples = 0.0);

  const char* name() const override { return "clock_drift"; }
  void apply(Signal& signal, Rng& rng) const override;

 private:
  double drift_ppm_;
  double jitter_std_samples_;
};

/// Burst interference: short additive uniform-noise bursts of `amplitude`,
/// arriving as a Poisson process at `bursts_per_second`, each
/// `burst_seconds` long.
class BurstInjector final : public FaultInjector {
 public:
  BurstInjector(double bursts_per_second, double burst_seconds,
                double amplitude);

  const char* name() const override { return "burst"; }
  void apply(Signal& signal, Rng& rng) const override;

 private:
  double bursts_per_second_;
  double burst_seconds_;
  double amplitude_;
};

/// Early end of capture: keeps only the leading `keep_fraction` of the
/// samples (possibly none — downstream layers must treat an empty capture
/// as unscoreable, not crash).
class TruncationInjector final : public FaultInjector {
 public:
  explicit TruncationInjector(double keep_fraction);

  const char* name() const override { return "truncation"; }
  void apply(Signal& signal, Rng& rng) const override;

 private:
  double keep_fraction_;
};

/// NaN/Inf contamination: each sample independently becomes non-finite with
/// `probability`; a contaminated sample is ±Inf with `inf_fraction`, NaN
/// otherwise.
class NonFiniteInjector final : public FaultInjector {
 public:
  NonFiniteInjector(double probability, double inf_fraction = 0.25);

  const char* name() const override { return "non_finite"; }
  void apply(Signal& signal, Rng& rng) const override;

 private:
  double probability_;
  double inf_fraction_;
};

}  // namespace vibguard::faults
