#include "faults/serving_faults.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace vibguard::faults {
namespace {

// splitmix64 finalizer, local copy: this layer sits below serving/ (which
// exposes the same mix as serving::mix64) and must not link against it.
std::uint64_t chaos_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string format_ms(std::uint64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fms",
                static_cast<double>(us) / 1000.0);
  return buf;
}

}  // namespace

const char* worker_fault_name(WorkerFaultKind kind) {
  switch (kind) {
    case WorkerFaultKind::kStall:
      return "stall";
    case WorkerFaultKind::kCrash:
      return "crash";
    case WorkerFaultKind::kSlow:
      return "slow";
    case WorkerFaultKind::kLossy:
      return "lossy";
  }
  VIBGUARD_UNREACHABLE();
}

WorkerFaultKind worker_fault_by_name(const std::string& name) {
  for (WorkerFaultKind kind : all_worker_fault_kinds()) {
    if (name == worker_fault_name(kind)) return kind;
  }
  throw InvalidArgument("unknown worker fault kind: " + name);
}

std::vector<WorkerFaultKind> all_worker_fault_kinds() {
  return {WorkerFaultKind::kStall, WorkerFaultKind::kCrash,
          WorkerFaultKind::kSlow, WorkerFaultKind::kLossy};
}

ChaosPlan& ChaosPlan::stall(std::size_t worker, std::uint64_t from_us,
                            std::uint64_t until_us) {
  VIBGUARD_REQUIRE(from_us < until_us, "stall window must be non-empty");
  WorkerFault fault;
  fault.kind = WorkerFaultKind::kStall;
  fault.worker = worker;
  fault.from_us = from_us;
  fault.until_us = until_us;
  return add(fault);
}

ChaosPlan& ChaosPlan::crash(std::size_t worker, std::uint64_t at_us) {
  WorkerFault fault;
  fault.kind = WorkerFaultKind::kCrash;
  fault.worker = worker;
  fault.from_us = at_us;
  return add(fault);
}

ChaosPlan& ChaosPlan::slow(std::size_t worker, std::uint64_t from_us,
                           std::uint64_t until_us, double factor) {
  VIBGUARD_REQUIRE(from_us < until_us, "slow window must be non-empty");
  VIBGUARD_REQUIRE(factor >= 1.0, "slowdown factor must be >= 1");
  WorkerFault fault;
  fault.kind = WorkerFaultKind::kSlow;
  fault.worker = worker;
  fault.from_us = from_us;
  fault.until_us = until_us;
  fault.factor = factor;
  return add(fault);
}

ChaosPlan& ChaosPlan::lossy(std::size_t worker, std::uint64_t from_us,
                            std::uint64_t until_us, double loss) {
  VIBGUARD_REQUIRE(from_us < until_us, "lossy window must be non-empty");
  VIBGUARD_REQUIRE(loss >= 0.0 && loss <= 1.0, "loss must be in [0, 1]");
  WorkerFault fault;
  fault.kind = WorkerFaultKind::kLossy;
  fault.worker = worker;
  fault.from_us = from_us;
  fault.until_us = until_us;
  fault.loss = loss;
  return add(fault);
}

ChaosPlan& ChaosPlan::add(const WorkerFault& fault) {
  faults_.push_back(fault);
  return *this;
}

std::string ChaosPlan::describe() const {
  if (faults_.empty()) return "none";
  std::string out;
  for (const WorkerFault& fault : faults_) {
    if (!out.empty()) out += '+';
    out += worker_fault_name(fault.kind);
    out += "(w";
    out += std::to_string(fault.worker);
    switch (fault.kind) {
      case WorkerFaultKind::kCrash:
        out += "@" + format_ms(fault.from_us);
        break;
      case WorkerFaultKind::kStall:
        out += "," + format_ms(fault.from_us) + "-" +
               format_ms(fault.until_us);
        break;
      case WorkerFaultKind::kSlow: {
        char buf[24];
        std::snprintf(buf, sizeof(buf), ",x%.1f", fault.factor);
        out += buf;
        break;
      }
      case WorkerFaultKind::kLossy: {
        char buf[24];
        std::snprintf(buf, sizeof(buf), ",p%.2f", fault.loss);
        out += buf;
        break;
      }
    }
    out += ')';
  }
  return out;
}

ChaosPlan worker_severity_plan(WorkerFaultKind kind, double severity,
                               std::size_t worker, std::uint64_t from_us,
                               std::uint64_t horizon_us) {
  VIBGUARD_REQUIRE(from_us < horizon_us, "fault window must be non-empty");
  ChaosPlan plan;
  // Same NaN-safe gate as the signal-domain severity_plan.
  if (!(severity > 0.0)) return plan;
  const double s = std::min(severity, 1.0);
  const std::uint64_t span = horizon_us - from_us;
  switch (kind) {
    case WorkerFaultKind::kStall:
      // Stall for up to 80% of the remaining horizon.
      plan.stall(worker, from_us,
                 from_us + std::max<std::uint64_t>(
                               1, static_cast<std::uint64_t>(
                                      0.8 * s * static_cast<double>(span))));
      break;
    case WorkerFaultKind::kCrash:
      // More severe = dies earlier (s=1 crashes right at from_us).
      plan.crash(worker,
                 from_us + static_cast<std::uint64_t>(
                               (1.0 - s) * static_cast<double>(span)));
      break;
    case WorkerFaultKind::kSlow:
      plan.slow(worker, from_us, horizon_us, 1.0 + 7.0 * s);
      break;
    case WorkerFaultKind::kLossy:
      plan.lossy(worker, from_us, horizon_us, 0.5 * s);
      break;
  }
  return plan;
}

ChaosPlan wedge_then_recover_plan(std::size_t worker, std::uint64_t at_us,
                                  std::uint64_t wedge_for_us) {
  VIBGUARD_REQUIRE(wedge_for_us > 0, "wedge window must be non-empty");
  ChaosPlan plan;
  plan.stall(worker, at_us, at_us + wedge_for_us);
  return plan;
}

ChaosController::ChaosController(ChaosPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed) {}

bool ChaosController::stalled(std::size_t w, std::uint64_t now_us) const {
  if (crashed(w, now_us)) return false;
  for (const WorkerFault& fault : plan_.faults()) {
    if (fault.kind == WorkerFaultKind::kStall && fault.worker == w &&
        now_us >= fault.from_us && now_us < fault.until_us) {
      return true;
    }
  }
  return false;
}

std::uint64_t ChaosController::crash_at_us(std::size_t w) const {
  std::uint64_t at = UINT64_MAX;
  for (const WorkerFault& fault : plan_.faults()) {
    if (fault.kind == WorkerFaultKind::kCrash && fault.worker == w) {
      at = std::min(at, fault.from_us);
    }
  }
  return at;
}

bool ChaosController::crashed(std::size_t w, std::uint64_t now_us) const {
  return now_us >= crash_at_us(w);
}

double ChaosController::slowdown(std::size_t w, std::uint64_t now_us) const {
  double factor = 1.0;
  for (const WorkerFault& fault : plan_.faults()) {
    if (fault.kind == WorkerFaultKind::kSlow && fault.worker == w &&
        now_us >= fault.from_us && now_us < fault.until_us) {
      factor *= fault.factor;
    }
  }
  return factor;
}

bool ChaosController::result_lost(std::size_t w, std::uint64_t request_id,
                                  std::uint64_t now_us) const {
  for (const WorkerFault& fault : plan_.faults()) {
    if (fault.kind != WorkerFaultKind::kLossy || fault.worker != w ||
        now_us < fault.from_us || now_us >= fault.until_us) {
      continue;
    }
    // The draw hashes (seed, worker, request) — never the time or any
    // call counter — so every replay and every completion order agrees
    // on which replies the network ate.
    const std::uint64_t h = chaos_mix64(
        seed_ ^ chaos_mix64((static_cast<std::uint64_t>(w) << 48) ^
                            request_id));
    const double draw =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (draw < fault.loss) return true;
  }
  return false;
}

}  // namespace vibguard::faults
