// Deterministic fault injection for cross-domain sensing signals.
//
// Real deployments of the defense see degraded captures: wearables drop
// accelerometer samples over BLE, VA microphones clip, cheap sensor clocks
// drift, recordings arrive truncated or contaminated with NaN/Inf after a
// firmware hiccup. This library models those failure modes as composable,
// seeded injectors so the robustness of the whole pipeline — signal-quality
// gating, graceful degradation, fault-severity sweeps — can be exercised
// reproducibly. All randomness flows through a caller-supplied vibguard::Rng;
// applying the same plan with the same seed yields bit-identical corruption.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/signal.hpp"

namespace vibguard::faults {

/// The modeled wearable/VA capture failure modes.
enum class FaultKind {
  kDropout,     ///< dropped samples / transmission gaps (zero or held fill)
  kClipping,    ///< amplitude saturation at a fraction of the peak
  kStuckAt,     ///< sensor stuck at one reading for a stretch
  kClockDrift,  ///< clock skew + sampling jitter (gradual desync)
  kBurst,       ///< short loud interference bursts
  kTruncation,  ///< capture ends early
  kNonFinite,   ///< NaN/Inf contamination
};

/// Stable lower_snake name of a fault kind (CLI and report currency).
const char* fault_name(FaultKind kind);

/// Parses a fault_name string; throws InvalidArgument for unknown names.
FaultKind fault_by_name(const std::string& name);

/// All fault kinds in declaration order.
std::vector<FaultKind> all_fault_kinds();

/// One failure mode applied in place to a Signal. Implementations are
/// immutable after construction and thread-safe to share; all randomness
/// comes from the Rng argument.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual const char* name() const = 0;
  virtual void apply(Signal& signal, Rng& rng) const = 0;
};

/// An ordered, composable sequence of injectors. Copyable (injectors are
/// shared immutable objects); apply() runs each injector in order, drawing
/// from one Rng stream so the composition is deterministic.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Appends an injector; returns *this for chaining.
  FaultPlan& add(std::shared_ptr<const FaultInjector> injector);

  bool empty() const { return injectors_.empty(); }
  std::size_t size() const { return injectors_.size(); }

  /// Applies every injector to `signal` in order.
  void apply(Signal& signal, Rng& rng) const;

  /// "dropout+clipping" style summary ("none" when empty).
  std::string describe() const;

 private:
  std::vector<std::shared_ptr<const FaultInjector>> injectors_;
};

/// Canonical severity parameterization used by the fault-sweep experiment:
/// maps `severity` in [0, 1] to one `kind` injector with increasingly harsh
/// parameters. Severity <= 0 — and NaN — returns an empty plan (the
/// uninjected baseline); severity is clamped to 1 above.
FaultPlan severity_plan(FaultKind kind, double severity);

}  // namespace vibguard::faults
