#include "faults/injectors.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace vibguard::faults {
namespace {

/// Exponential draw with the given mean, guarded against log(0).
double exponential(Rng& rng, double mean) {
  const double u = std::max(rng.uniform(), 1e-12);
  return -std::log(u) * mean;
}

std::size_t seconds_to_samples(double seconds, double rate) {
  return static_cast<std::size_t>(std::max(0.0, seconds) * rate);
}

}  // namespace

DropoutInjector::DropoutInjector(double drops_per_second,
                                 double mean_gap_seconds, Fill fill)
    : drops_per_second_(drops_per_second),
      mean_gap_seconds_(mean_gap_seconds),
      fill_(fill) {
  VIBGUARD_REQUIRE(drops_per_second >= 0.0 && mean_gap_seconds >= 0.0,
                   "dropout rate and gap length must be non-negative");
}

void DropoutInjector::apply(Signal& signal, Rng& rng) const {
  const double rate = signal.sample_rate();
  if (signal.empty() || rate <= 0.0 || drops_per_second_ <= 0.0) return;
  std::size_t i = 0;
  for (;;) {
    const double spacing_s = exponential(rng, 1.0 / drops_per_second_);
    i += seconds_to_samples(spacing_s, rate) + 1;
    if (i >= signal.size()) break;
    const std::size_t gap = std::max<std::size_t>(
        1, seconds_to_samples(exponential(rng, mean_gap_seconds_), rate));
    const double hold = fill_ == Fill::kHold ? signal[i - 1] : 0.0;
    const std::size_t end = std::min(signal.size(), i + gap);
    for (; i < end; ++i) signal[i] = hold;
    if (i >= signal.size()) break;
  }
}

ClippingInjector::ClippingInjector(double level_fraction)
    : level_fraction_(level_fraction) {
  VIBGUARD_REQUIRE(level_fraction >= 0.0,
                   "clipping level must be non-negative");
}

void ClippingInjector::apply(Signal& signal, Rng& /*rng*/) const {
  const double peak = signal.peak();
  if (peak <= 0.0 || level_fraction_ >= 1.0) return;
  const double level = level_fraction_ * peak;
  for (double& v : signal) v = std::clamp(v, -level, level);
}

StuckAtInjector::StuckAtInjector(double duration_seconds)
    : duration_seconds_(duration_seconds) {
  VIBGUARD_REQUIRE(duration_seconds >= 0.0,
                   "stuck duration must be non-negative");
}

void StuckAtInjector::apply(Signal& signal, Rng& rng) const {
  const double rate = signal.sample_rate();
  if (signal.empty() || rate <= 0.0 || duration_seconds_ <= 0.0) return;
  const auto start = static_cast<std::size_t>(
      rng.uniform() * static_cast<double>(signal.size()));
  if (start >= signal.size()) return;
  const std::size_t len =
      std::max<std::size_t>(1, seconds_to_samples(duration_seconds_, rate));
  const std::size_t end = std::min(signal.size(), start + len);
  const double held = signal[start];
  for (std::size_t i = start; i < end; ++i) signal[i] = held;
}

ClockDriftInjector::ClockDriftInjector(double drift_ppm,
                                       double jitter_std_samples)
    : drift_ppm_(drift_ppm), jitter_std_samples_(jitter_std_samples) {
  VIBGUARD_REQUIRE(drift_ppm >= 0.0 && jitter_std_samples >= 0.0,
                   "drift and jitter must be non-negative");
}

void ClockDriftInjector::apply(Signal& signal, Rng& rng) const {
  if (signal.size() < 2) return;
  if (drift_ppm_ <= 0.0 && jitter_std_samples_ <= 0.0) return;
  // The device clock runs `factor` fast: output sample i reads the true
  // waveform at position i * factor (plus timing jitter), linearly
  // interpolated. The capture keeps its nominal rate label — the point of
  // the fault is that the samples no longer line up with it.
  const double factor = 1.0 + drift_ppm_ * 1e-6;
  const double last = static_cast<double>(signal.size() - 1);
  std::vector<double> out;
  out.reserve(signal.size());
  for (std::size_t i = 0;; ++i) {
    double pos = static_cast<double>(i) * factor;
    if (jitter_std_samples_ > 0.0) {
      pos += rng.gaussian(0.0, jitter_std_samples_);
    }
    if (pos > last) break;
    pos = std::clamp(pos, 0.0, last);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, signal.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out.push_back(signal[lo] + frac * (signal[hi] - signal[lo]));
    if (out.size() >= signal.size()) break;  // jitter cannot extend a capture
  }
  signal = Signal(std::move(out), signal.sample_rate());
}

BurstInjector::BurstInjector(double bursts_per_second, double burst_seconds,
                             double amplitude)
    : bursts_per_second_(bursts_per_second),
      burst_seconds_(burst_seconds),
      amplitude_(amplitude) {
  VIBGUARD_REQUIRE(
      bursts_per_second >= 0.0 && burst_seconds >= 0.0 && amplitude >= 0.0,
      "burst parameters must be non-negative");
}

void BurstInjector::apply(Signal& signal, Rng& rng) const {
  const double rate = signal.sample_rate();
  if (signal.empty() || rate <= 0.0 || bursts_per_second_ <= 0.0 ||
      amplitude_ <= 0.0) {
    return;
  }
  std::size_t i = 0;
  for (;;) {
    i += seconds_to_samples(exponential(rng, 1.0 / bursts_per_second_),
                            rate) +
         1;
    if (i >= signal.size()) break;
    const std::size_t len =
        std::max<std::size_t>(1, seconds_to_samples(burst_seconds_, rate));
    const std::size_t end = std::min(signal.size(), i + len);
    for (; i < end; ++i) {
      signal[i] += rng.uniform(-amplitude_, amplitude_);
    }
    if (i >= signal.size()) break;
  }
}

TruncationInjector::TruncationInjector(double keep_fraction)
    : keep_fraction_(keep_fraction) {
  VIBGUARD_REQUIRE(keep_fraction >= 0.0 && keep_fraction <= 1.0,
                   "keep fraction must be in [0, 1]");
}

void TruncationInjector::apply(Signal& signal, Rng& /*rng*/) const {
  const auto keep = static_cast<std::size_t>(
      keep_fraction_ * static_cast<double>(signal.size()));
  if (keep >= signal.size()) return;
  signal = signal.slice(0, keep);
}

NonFiniteInjector::NonFiniteInjector(double probability, double inf_fraction)
    : probability_(probability), inf_fraction_(inf_fraction) {
  VIBGUARD_REQUIRE(probability >= 0.0 && probability <= 1.0,
                   "contamination probability must be in [0, 1]");
  VIBGUARD_REQUIRE(inf_fraction >= 0.0 && inf_fraction <= 1.0,
                   "inf fraction must be in [0, 1]");
}

void NonFiniteInjector::apply(Signal& signal, Rng& rng) const {
  if (probability_ <= 0.0) return;
  for (double& v : signal) {
    if (!rng.bernoulli(probability_)) continue;
    if (rng.bernoulli(inf_fraction_)) {
      v = rng.bernoulli(0.5) ? std::numeric_limits<double>::infinity()
                             : -std::numeric_limits<double>::infinity();
    } else {
      v = std::numeric_limits<double>::quiet_NaN();
    }
  }
}

}  // namespace vibguard::faults
