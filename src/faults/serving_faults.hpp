// Serving-domain fault injection: worker-level failure modes.
//
// The signal-domain injectors (fault.hpp) corrupt what a request *carries*;
// this layer corrupts what the fleet *does* with it. Four worker failure
// modes cover the standard chaos menagerie:
//
//   stall  — the worker stops making progress for a window, then resumes
//            (a GC pause, a cold cache, a noisy neighbor). Heartbeats
//            freeze for the window; queued work waits.
//   crash  — the worker dies at a point in time and never comes back. The
//            supervisor must notice (heartbeat age) and fail it over.
//   slow   — every batch the worker serves takes `factor`× its nominal
//            service time for the window (thermal throttling, contention).
//   lossy  — the worker drops each completed result with probability
//            `loss`, as if the reply path ate it (the request was still
//            *served* — loss is observed downstream).
//
// Faults compose into a ChaosPlan — the serving-side analogue of a
// FaultPlan — and a seeded ChaosController answers the questions a fleet
// driver asks ("is worker w stalled at t?", "did this result get lost?")
// deterministically: the same plan and seed reproduce the exact same
// event sequence, which is what makes a chaos sweep a regression test
// rather than a dice roll. Loss draws hash (seed, worker, request id), so
// the verdict is a pure function of the request — independent of the
// order results complete in, which threads race, or how batches formed.
//
// This layer is pure data + arithmetic: it depends on nothing above
// vibguard_common, and in particular not on serving/ — the fleet driver
// (eval/chaos_sweep) is the one that binds controller verdicts to shard
// actions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vibguard::faults {

/// The modeled worker failure modes.
enum class WorkerFaultKind {
  kStall,  ///< no progress (frozen heartbeat) for a window
  kCrash,  ///< dies at a point in time, permanently
  kSlow,   ///< service time multiplied for a window
  kLossy,  ///< completed results dropped with a probability
};

/// Stable lower_snake name (CLI and report currency).
const char* worker_fault_name(WorkerFaultKind kind);

/// Parses a worker_fault_name string; throws InvalidArgument for unknown
/// names.
WorkerFaultKind worker_fault_by_name(const std::string& name);

/// All worker fault kinds in declaration order.
std::vector<WorkerFaultKind> all_worker_fault_kinds();

/// One scheduled fault on one worker. Windows are absolute times on the
/// fleet clock; `until_us` is exclusive and ignored for kCrash (a crash
/// has no end).
struct WorkerFault {
  WorkerFaultKind kind = WorkerFaultKind::kStall;
  std::size_t worker = 0;
  std::uint64_t from_us = 0;
  std::uint64_t until_us = 0;  ///< exclusive; unused for kCrash
  double factor = 1.0;         ///< kSlow: service-time multiplier (>= 1)
  double loss = 0.0;           ///< kLossy: per-result drop probability [0,1]
};

/// An ordered collection of worker faults — the serving-side FaultPlan.
/// Copyable plain data; build with the chainable adders.
class ChaosPlan {
 public:
  ChaosPlan() = default;

  ChaosPlan& stall(std::size_t worker, std::uint64_t from_us,
                   std::uint64_t until_us);
  ChaosPlan& crash(std::size_t worker, std::uint64_t at_us);
  ChaosPlan& slow(std::size_t worker, std::uint64_t from_us,
                  std::uint64_t until_us, double factor);
  ChaosPlan& lossy(std::size_t worker, std::uint64_t from_us,
                   std::uint64_t until_us, double loss);
  ChaosPlan& add(const WorkerFault& fault);

  bool empty() const { return faults_.empty(); }
  std::size_t size() const { return faults_.size(); }
  const std::vector<WorkerFault>& faults() const { return faults_; }

  /// "crash(w1@40ms)+slow(w2,x3)" style summary ("none" when empty).
  std::string describe() const;

 private:
  std::vector<WorkerFault> faults_;
};

/// Canonical severity parameterization for the chaos sweep: maps
/// `severity` in [0, 1] to one `kind` fault on `worker` inside
/// [from_us, horizon_us) with increasingly harsh parameters (longer
/// stall/slow windows, higher slowdown and loss; a crash fires earlier
/// the more severe). Severity <= 0 — and NaN — returns an empty plan;
/// severity is clamped to 1 above.
ChaosPlan worker_severity_plan(WorkerFaultKind kind, double severity,
                               std::size_t worker, std::uint64_t from_us,
                               std::uint64_t horizon_us);

/// Wedge-then-recover: a single finite stall on `worker` starting at
/// `at_us` and lasting `wedge_for_us` — long enough (by the caller's
/// choice) to cross a supervisor's wedged threshold, after which the
/// worker resumes on its own. The canonical probe-recovery fixture: a
/// remediating supervisor should quarantine the worker mid-stall, observe
/// the post-restart heartbeat once the stall ends, and restore it — while
/// a non-remediating one rides it out (or fails over, if the stall
/// outlives dead_after_us).
ChaosPlan wedge_then_recover_plan(std::size_t worker, std::uint64_t at_us,
                                  std::uint64_t wedge_for_us);

/// Seeded, deterministic oracle over a ChaosPlan. All queries are pure
/// functions of (plan, seed, arguments) — no internal mutable state — so
/// any driver (threaded or simulated) observing the same times and
/// request ids sees the same faults.
class ChaosController {
 public:
  ChaosController(ChaosPlan plan, std::uint64_t seed);

  const ChaosPlan& plan() const { return plan_; }
  std::uint64_t seed() const { return seed_; }

  /// Worker `w` is inside a stall window at `now_us` (crashed workers are
  /// not "stalled" — they are dead).
  bool stalled(std::size_t w, std::uint64_t now_us) const;

  /// Worker `w` has crashed at or before `now_us`.
  bool crashed(std::size_t w, std::uint64_t now_us) const;

  /// The crash time for worker `w`, or UINT64_MAX when it never crashes.
  std::uint64_t crash_at_us(std::size_t w) const;

  /// Worker `w` makes progress (heartbeats, serves batches) at `now_us`.
  bool alive(std::size_t w, std::uint64_t now_us) const {
    return !crashed(w, now_us) && !stalled(w, now_us);
  }

  /// Service-time multiplier for a batch worker `w` starts at `now_us`
  /// (1.0 outside slow windows; overlapping windows multiply).
  double slowdown(std::size_t w, std::uint64_t now_us) const;

  /// True when the reply for (worker, request_id) is eaten by an active
  /// lossy fault covering `now_us`. Deterministic per (seed, w, request):
  /// independent of completion order.
  bool result_lost(std::size_t w, std::uint64_t request_id,
                   std::uint64_t now_us) const;

 private:
  ChaosPlan plan_;
  std::uint64_t seed_;
};

}  // namespace vibguard::faults
