#include "faults/fault.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "faults/injectors.hpp"

namespace vibguard::faults {

const char* fault_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropout:
      return "dropout";
    case FaultKind::kClipping:
      return "clipping";
    case FaultKind::kStuckAt:
      return "stuck_at";
    case FaultKind::kClockDrift:
      return "clock_drift";
    case FaultKind::kBurst:
      return "burst";
    case FaultKind::kTruncation:
      return "truncation";
    case FaultKind::kNonFinite:
      return "non_finite";
  }
  VIBGUARD_UNREACHABLE();
}

FaultKind fault_by_name(const std::string& name) {
  for (FaultKind kind : all_fault_kinds()) {
    if (name == fault_name(kind)) return kind;
  }
  throw InvalidArgument("unknown fault kind: " + name);
}

std::vector<FaultKind> all_fault_kinds() {
  return {FaultKind::kDropout,    FaultKind::kClipping,
          FaultKind::kStuckAt,    FaultKind::kClockDrift,
          FaultKind::kBurst,      FaultKind::kTruncation,
          FaultKind::kNonFinite};
}

FaultPlan& FaultPlan::add(std::shared_ptr<const FaultInjector> injector) {
  VIBGUARD_REQUIRE(injector != nullptr, "FaultPlan::add: null injector");
  injectors_.push_back(std::move(injector));
  return *this;
}

void FaultPlan::apply(Signal& signal, Rng& rng) const {
  for (const auto& injector : injectors_) {
    injector->apply(signal, rng);
  }
}

std::string FaultPlan::describe() const {
  if (injectors_.empty()) return "none";
  std::string out;
  for (const auto& injector : injectors_) {
    if (!out.empty()) out += '+';
    out += injector->name();
  }
  return out;
}

FaultPlan severity_plan(FaultKind kind, double severity) {
  FaultPlan plan;
  // !(x > 0) rather than (x <= 0): NaN must land in the empty-plan branch
  // too, not leak into the injector parameters below.
  if (!(severity > 0.0)) return plan;
  const double s = std::min(severity, 1.0);
  switch (kind) {
    case FaultKind::kDropout:
      plan.add(std::make_shared<DropoutInjector>(
          /*drops_per_second=*/20.0 * s,
          /*mean_gap_seconds=*/0.005 + 0.045 * s));
      break;
    case FaultKind::kClipping:
      plan.add(std::make_shared<ClippingInjector>(
          /*level_fraction=*/1.0 - 0.9 * s));
      break;
    case FaultKind::kStuckAt:
      plan.add(std::make_shared<StuckAtInjector>(
          /*duration_seconds=*/2.0 * s));
      break;
    case FaultKind::kClockDrift:
      plan.add(std::make_shared<ClockDriftInjector>(
          /*drift_ppm=*/20000.0 * s,
          /*jitter_std_samples=*/0.5 * s));
      break;
    case FaultKind::kBurst:
      plan.add(std::make_shared<BurstInjector>(
          /*bursts_per_second=*/8.0 * s,
          /*burst_seconds=*/0.02 + 0.03 * s,
          /*amplitude=*/2.0 * s));
      break;
    case FaultKind::kTruncation:
      plan.add(std::make_shared<TruncationInjector>(
          /*keep_fraction=*/1.0 - 0.95 * s));
      break;
    case FaultKind::kNonFinite:
      plan.add(std::make_shared<NonFiniteInjector>(
          /*probability=*/1e-5 + 1e-3 * s));
      break;
  }
  return plan;
}

}  // namespace vibguard::faults
