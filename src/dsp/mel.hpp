// Mel filterbanks and MFCC extraction.
//
// The paper's phoneme detector uses 40 mel filterbank channels and 14th-order
// cepstral coefficients computed on 25 ms frames with a 10 ms hop, restricted
// to 0–900 Hz so detection still works on barrier-attenuated sound
// (Sec. V-B). Those values are the defaults of MfccConfig.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/signal.hpp"

namespace vibguard::dsp {

/// Hz -> mel (HTK formula).
double hz_to_mel(double hz);

/// mel -> Hz (HTK formula).
double mel_to_hz(double mel);

/// Triangular mel filterbank stored as one contiguous row-major matrix
/// (filters × one-sided FFT bins) — no per-row allocations — plus the
/// precomputed nonzero column range of each triangle, which lets apply()
/// skip the zero tails and run each filter as one dense dot product
/// through the SIMD dispatch layer.
class MelFilterbank {
 public:
  MelFilterbank() = default;
  MelFilterbank(std::size_t filters, std::size_t bins);

  /// Number of filters (rows). Named size() so row iteration code written
  /// for the old vector-of-vectors return type keeps working.
  std::size_t size() const { return filters_; }
  std::size_t filters() const { return filters_; }
  std::size_t bins() const { return bins_; }
  bool empty() const { return filters_ == 0; }

  /// Dense row view (bins() weights, zero tails included).
  std::span<const double> operator[](std::size_t m) const {
    return {weights_.data() + m * bins_, bins_};
  }
  std::span<double> row(std::size_t m) {
    return {weights_.data() + m * bins_, bins_};
  }

  /// Flat row-major weight matrix.
  std::span<const double> values() const { return weights_; }

  /// First nonzero column of filter m (bins() if the row is all zero).
  std::size_t first_bin(std::size_t m) const { return first_[m]; }
  /// One past the last nonzero column of filter m.
  std::size_t last_bin(std::size_t m) const { return last_[m]; }

  /// out[m] = sum_k weight(m, k) * power[k] for every filter, skipping each
  /// triangle's zero tails. power must have bins() entries, out filters().
  void apply(std::span<const double> power, std::span<double> out) const;

  /// Recomputes the nonzero ranges after rows were filled in.
  void seal();

  // Row iteration (ranged-for compatibility with the old nested-vector
  // bank: each element is a row span).
  class RowIterator {
   public:
    RowIterator(const MelFilterbank* bank, std::size_t m)
        : bank_(bank), m_(m) {}
    std::span<const double> operator*() const { return (*bank_)[m_]; }
    RowIterator& operator++() {
      ++m_;
      return *this;
    }
    bool operator!=(const RowIterator& o) const { return m_ != o.m_; }
    bool operator==(const RowIterator& o) const { return m_ == o.m_; }

   private:
    const MelFilterbank* bank_;
    std::size_t m_;
  };
  RowIterator begin() const { return {this, 0}; }
  RowIterator end() const { return {this, filters_}; }

 private:
  std::size_t filters_ = 0;
  std::size_t bins_ = 0;
  AlignedVector<double> weights_;  ///< row-major filters_ × bins_
  std::vector<std::size_t> first_;
  std::vector<std::size_t> last_;
};

/// Triangular mel filterbank: `num_filters` filters over the one-sided bins
/// of an `fft_size`-point transform at `sample_rate`, spanning
/// [low_hz, high_hz].
MelFilterbank mel_filterbank(std::size_t num_filters, std::size_t fft_size,
                             double sample_rate, double low_hz,
                             double high_hz);

/// DCT-II of `x`, keeping the first `num_coeffs` outputs (orthonormal
/// scaling).
std::vector<double> dct2(std::span<const double> x, std::size_t num_coeffs);

/// Allocation-free DCT-II: writes out.size() coefficients (truncated to
/// x.size()) using a thread-local cached cosine table, so steady-state
/// calls never touch the heap. The table rows are pre-scaled by the
/// orthonormal factors; each coefficient is one dot product through the
/// SIMD dispatch layer.
void dct2_into(std::span<const double> x, std::span<double> out);

struct MfccConfig {
  double frame_seconds = 0.025;  ///< 25 ms analysis frames
  double hop_seconds = 0.010;    ///< 10 ms frame shift
  std::size_t num_filters = 40;  ///< mel filterbank channels
  std::size_t num_coeffs = 14;   ///< cepstral coefficients per frame
  double low_hz = 0.0;           ///< filterbank lower edge
  double high_hz = 900.0;        ///< filterbank upper edge (barrier-robust)
};

/// Frame-by-frame MFCC matrix (frames × num_coeffs).
std::vector<std::vector<double>> compute_mfcc(const Signal& signal,
                                              const MfccConfig& cfg = {});

}  // namespace vibguard::dsp
