// Mel filterbanks and MFCC extraction.
//
// The paper's phoneme detector uses 40 mel filterbank channels and 14th-order
// cepstral coefficients computed on 25 ms frames with a 10 ms hop, restricted
// to 0–900 Hz so detection still works on barrier-attenuated sound
// (Sec. V-B). Those values are the defaults of MfccConfig.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/signal.hpp"

namespace vibguard::dsp {

/// Hz -> mel (HTK formula).
double hz_to_mel(double hz);

/// mel -> Hz (HTK formula).
double mel_to_hz(double mel);

/// Triangular mel filterbank: `num_filters` rows over `num_bins` one-sided
/// FFT bins for an `fft_size`-point transform at `sample_rate`, spanning
/// [low_hz, high_hz].
std::vector<std::vector<double>> mel_filterbank(std::size_t num_filters,
                                                std::size_t fft_size,
                                                double sample_rate,
                                                double low_hz, double high_hz);

/// DCT-II of `x`, keeping the first `num_coeffs` outputs (orthonormal
/// scaling).
std::vector<double> dct2(std::span<const double> x, std::size_t num_coeffs);

struct MfccConfig {
  double frame_seconds = 0.025;  ///< 25 ms analysis frames
  double hop_seconds = 0.010;    ///< 10 ms frame shift
  std::size_t num_filters = 40;  ///< mel filterbank channels
  std::size_t num_coeffs = 14;   ///< cepstral coefficients per frame
  double low_hz = 0.0;           ///< filterbank lower edge
  double high_hz = 900.0;        ///< filterbank upper edge (barrier-robust)
};

/// Frame-by-frame MFCC matrix (frames × num_coeffs).
std::vector<std::vector<double>> compute_mfcc(const Signal& signal,
                                              const MfccConfig& cfg = {});

}  // namespace vibguard::dsp
