// Runtime-dispatched SIMD kernels for the DSP hot paths.
//
// Every vectorizable inner loop in the DSP layer (FFT butterflies, the fused
// STFT frame kernel, mel filterbank/DCT dot products, the resampler's linear
// interpolation and FIR convolution, and the fused 2-D Pearson moments) is
// routed through one of the kernel entry points below. Each entry point
// dispatches through a per-process table of function pointers selected once
// at first use:
//
//   - scalar   : always compiled, byte-for-byte the pre-SIMD loops. Running
//                with VIBGUARD_SIMD=scalar reproduces the pre-dispatch
//                pipeline scores bit-identically.
//   - avx2     : x86-64 with AVX2+FMA, compiled in its own translation unit
//                (simd_avx2.cpp) with -mavx2 -mfma so the rest of the binary
//                stays baseline-ISA; selected only when cpuid reports both
//                features.
//   - neon     : aarch64 (NEON is baseline there); vectorizes the reduction
//                kernels, scalar for the rest.
//
// The VIBGUARD_SIMD environment variable (scalar|avx2|neon|auto) overrides
// auto-detection — the differential fuzz harness uses it (and set_level) to
// cross-check every dispatch level against the scalar reference.
//
// Numerical contract: kernels that map each output to an independent
// expression (multiply, butterfly_stage, fft_stage2_4, fft_stages,
// complex_multiply_to, rfft_split_power, linear_interp) are bit-identical
// across all levels —
// the vector lanes perform the same operations in the same order as the
// scalar code, and the SIMD translation units disable FP contraction. The
// reduction kernels (dot, dot_reverse, pearson_moments) reassociate their
// accumulation (vector lanes + FMA) and agree with scalar only to ULP-scaled
// tolerance; callers needing cross-level bit-identity must not rely on them.
#pragma once

#include <atomic>
#include <complex>
#include <cstddef>
#include <vector>

namespace vibguard::dsp::simd {

using Complex = std::complex<double>;

enum class Level {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
};

/// Human-readable level name ("scalar", "neon", "avx2").
const char* level_name(Level level);

/// Five raw moments of a paired sample, accumulated in one pass:
/// sum(a), sum(b), sum(a^2), sum(b^2), sum(a*b).
struct PearsonMoments {
  double sa = 0.0;
  double sb = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  double sab = 0.0;
};

/// The dispatch table: one function pointer per vectorized kernel. All
/// pointers are always valid (levels without a vector implementation of a
/// kernel point at the scalar one).
struct Ops {
  Level level;

  /// out[i] = a[i] * b[i] for i in [0, n). out may alias a or b.
  void (*multiply)(const double* a, const double* b, double* out,
                   std::size_t n);

  /// One radix-2 FFT stage over `half` butterflies:
  ///   v     = hi[j] * w_j   (w_j = tw[j], conjugated when `inverse`)
  ///   lo[j] = lo[j] + v,  hi[j] = lo[j] - v
  void (*butterfly_stage)(Complex* lo, Complex* hi, const Complex* tw,
                          std::size_t half, bool inverse);

  /// The fused multiplication-free len = 2 and len = 4 FFT stages over the
  /// whole bit-reversed buffer (twiddles are 1 and ∓i, so the butterflies
  /// reduce to adds/subs and a re/im swap). n must be a power of two.
  void (*fft_stage2_4)(Complex* d, std::size_t n, bool inverse);

  /// All remaining radix-2 stages (len = 8 .. n) over the whole buffer.
  /// `tw` is the plan's twiddle table laid out stage-major: half entries for
  /// len = 8 first, then len = 16, and so on (n - 4 entries total). One
  /// dispatch call per transform instead of one per butterfly block — the
  /// per-block loop runs inside the kernel so the butterfly inlines.
  void (*fft_stages)(Complex* d, std::size_t n, const Complex* tw,
                     bool inverse);

  /// out[i] = a[i] * b[i] (textbook complex product; out may alias a).
  void (*complex_multiply_to)(Complex* out, const Complex* a, const Complex* b,
                              std::size_t n);

  /// Conjugate-symmetric split of a packed half-length real-FFT spectrum
  /// straight into one-sided power bins k = 1..h-1:
  ///   even  = 0.5 * (z[k] + conj(z[h-k]))
  ///   odd   = (0, -0.5) * (z[k] - conj(z[h-k]))
  ///   X     = even + rtw[k] * odd
  ///   out[k] = |X|^2 * norm2
  /// Bins 0 and h are the caller's (they need only z[0]).
  void (*rfft_split_power)(const Complex* z, const Complex* rtw,
                           std::size_t h, double norm2, double* out);

  /// sum(a[i] * b[i]) for i in [0, n). Reduction: level-dependent rounding.
  double (*dot)(const double* a, const double* b, std::size_t n);

  /// sum(taps[t] * x[-t]) for t in [0, n) — the FIR convolution step, with
  /// x pointing at the newest sample. Reduction: level-dependent rounding.
  double (*dot_reverse)(const double* taps, const double* x, std::size_t n);

  /// Linear interpolation at a fixed rate ratio:
  ///   pos = i * ratio; lo = floor(pos); hi = min(lo + 1, in_size - 1)
  ///   out[i] = in[lo] * (1 - frac) + in[hi] * frac
  /// Requires floor((n - 1) * ratio) < in_size (the resampler's invariant).
  void (*linear_interp)(const double* in, std::size_t in_size, double ratio,
                        double* out, std::size_t n);

  /// Fused five-moment accumulation over paired samples. Reduction:
  /// level-dependent rounding.
  PearsonMoments (*pearson_moments)(const double* a, const double* b,
                                    std::size_t n);
};

namespace detail {
extern std::atomic<const Ops*> g_ops;
const Ops* resolve();
}  // namespace detail

/// The active dispatch table. Resolved once from VIBGUARD_SIMD + CPU
/// detection on first use; hot loops should hoist the reference.
inline const Ops& ops() {
  const Ops* p = detail::g_ops.load(std::memory_order_relaxed);
  return *(p != nullptr ? p : detail::resolve());
}

/// The level the active table implements.
Level active_level();

/// Best level this build + CPU supports (ignores the env override).
Level detect_level();

/// Levels available in this build on this CPU, best first. Always contains
/// kScalar.
std::vector<Level> available_levels();

/// Forces the dispatch table to `level`. Returns false (and leaves the
/// table unchanged) if the level is not available. Not synchronized with
/// concurrently running kernels — call from a quiescent point (tests do).
bool set_level(Level level);

/// Parses a VIBGUARD_SIMD-style string ("scalar", "avx2", "neon", "auto",
/// case-insensitive). Returns true and writes `out` on success; "auto" maps
/// to detect_level().
bool parse_level(const char* text, Level& out);

// Convenience wrappers for single call sites (hot loops hoist ops()).
inline void multiply(const double* a, const double* b, double* out,
                     std::size_t n) {
  ops().multiply(a, b, out, n);
}
inline double dot(const double* a, const double* b, std::size_t n) {
  return ops().dot(a, b, n);
}
inline double dot_reverse(const double* taps, const double* x,
                          std::size_t n) {
  return ops().dot_reverse(taps, x, n);
}
inline void linear_interp(const double* in, std::size_t in_size, double ratio,
                          double* out, std::size_t n) {
  ops().linear_interp(in, in_size, ratio, out, n);
}
inline PearsonMoments pearson_moments(const double* a, const double* b,
                                      std::size_t n) {
  return ops().pearson_moments(a, b, n);
}

/// The always-available scalar implementations, exported so tests can
/// compare any level's kernels against them directly.
namespace scalar {
extern const Ops kOps;
void multiply(const double* a, const double* b, double* out, std::size_t n);
void butterfly_stage(Complex* lo, Complex* hi, const Complex* tw,
                     std::size_t half, bool inverse);
void fft_stage2_4(Complex* d, std::size_t n, bool inverse);
void fft_stages(Complex* d, std::size_t n, const Complex* tw, bool inverse);
void complex_multiply_to(Complex* out, const Complex* a, const Complex* b,
                         std::size_t n);
void rfft_split_power(const Complex* z, const Complex* rtw, std::size_t h,
                      double norm2, double* out);
double dot(const double* a, const double* b, std::size_t n);
double dot_reverse(const double* taps, const double* x, std::size_t n);
void linear_interp(const double* in, std::size_t in_size, double ratio,
                   double* out, std::size_t n);
PearsonMoments pearson_moments(const double* a, const double* b,
                               std::size_t n);
}  // namespace scalar

#if VIBGUARD_SIMD_AVX2
namespace avx2 {
extern const Ops kOps;
}
#endif
#if VIBGUARD_SIMD_NEON
namespace neon {
extern const Ops kOps;
}
#endif

}  // namespace vibguard::dsp::simd
