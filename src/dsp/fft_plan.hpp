// Reusable FFT plans.
//
// An FftPlan precomputes everything about a transform size that the naive
// path recomputes on every call: the bit-reversal permutation, per-stage
// twiddle factors, and — for non-power-of-two sizes — the Bluestein chirp
// sequence and the spectrum of its convolution kernel. Plans also provide a
// real-input transform (rfft) that computes an even-N real FFT through an
// N/2-point complex one, roughly halving the work of every
// magnitude/power-spectrum call.
//
// Plans are cached per thread by size (get_plan), so hot loops such as the
// STFT pay the setup cost once per (thread, size) and the cache needs no
// locking.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/aligned.hpp"

namespace vibguard::dsp {

using Complex = std::complex<double>;

/// Precomputed transform of one fixed size. A plan's scratch buffers make it
/// safe for repeated use from one thread but not for concurrent calls;
/// get_plan hands each thread its own instance.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place complex DFT of exactly size() points (Bluestein for
  /// non-power-of-two sizes). `inverse` selects the inverse transform
  /// (scaled by 1/N).
  void transform(std::span<Complex> data, bool inverse) const;

  /// Real-input DFT: writes the one-sided spectrum X[0..n/2] (n/2 + 1 bins)
  /// of the size()-point input. Even sizes run through an n/2-point complex
  /// transform; odd sizes fall back to the complex path.
  void rfft(std::span<const double> in, std::span<Complex> out) const;

  /// One-sided magnitude spectrum |X[k]|/n into `out` (n/2 + 1 bins),
  /// matching magnitude_spectrum's normalization.
  void magnitude(std::span<const double> in, std::span<double> out) const;

  /// One-sided power spectrum (|X[k]|/n)^2 into `out` (n/2 + 1 bins) —
  /// the STFT inner loop's quantity, computed without the square root.
  void power(std::span<const double> in, std::span<double> out) const;

  /// Fused STFT frame kernel: power spectrum of in[i] * window[i] without
  /// materializing the windowed frame (in and window both size() long).
  void windowed_power(const double* in, const double* window,
                      std::span<double> out) const;

 private:
  // Nested plans (the rfft half plan, the Bluestein work plan) skip their
  // own real-input setup; only transform() is ever called on them.
  FftPlan(std::size_t n, bool build_real);
  void init(bool build_real);

  /// Radix-2 pass over a power-of-two buffer using the precomputed tables
  /// (size pow2_n_: n_ itself when it is a power of two, else the Bluestein
  /// work size m_).
  void run_pow2(std::span<Complex> data, bool inverse) const;

  /// Transforms the packed even/odd sequence already in rscratch_ and
  /// writes one-sided power-spectrum bins (scaled by norm2) into out.
  /// Even-size real-input fast path shared by power/windowed_power.
  void packed_power(std::span<double> out, double norm2) const;

  std::size_t n_ = 0;
  bool is_pow2_ = false;

  // Power-of-two machinery (for n_ or, when Bluestein, for m_). The
  // Complex tables are 64-byte aligned: the SIMD butterfly/split kernels
  // stream them every transform.
  std::size_t pow2_n_ = 0;
  std::vector<std::size_t> bitrev_;
  AlignedVector<Complex> twiddles_;  ///< stages concatenated: len=8,16,...,n

  // Bluestein machinery (non-power-of-two sizes).
  std::size_t m_ = 0;                ///< next_pow2(2n - 1) work size
  AlignedVector<Complex> chirp_;     ///< w[k] = exp(-i*pi*k^2/n)
  AlignedVector<Complex> bspec_;     ///< forward FFT of the chirp kernel b
  mutable AlignedVector<Complex> work_;  ///< length-m_ convolution scratch

  // Real-input machinery (even n_ only).
  std::unique_ptr<FftPlan> half_;       ///< n_/2-point complex plan
  AlignedVector<Complex> rtwiddle_;     ///< exp(-2*pi*i*k/n), k = 0..n/2
  mutable AlignedVector<Complex> rscratch_;  ///< packed half-length buffer
};

/// Thread-local size-keyed plan cache. The returned reference stays valid
/// for the calling thread's lifetime.
const FftPlan& get_plan(std::size_t n);

}  // namespace vibguard::dsp
