// Reusable scratch storage for the allocation-free DSP entry points.
//
// The `_into`/scratch overloads scattered through dsp, sensors and device
// all write their temporaries into caller-owned buffers instead of fresh
// vectors. Scratch bundles those buffers so a pipeline Workspace (one per
// scoring thread) can own the whole set: after a few warm-up trials every
// vector has reached its high-water capacity and repeated scoring performs
// zero steady-state heap allocations.
//
// A Scratch instance is not thread-safe; give each thread its own (the
// core::Workspace does exactly that).
#pragma once

#include <complex>
#include <vector>

#include "common/signal.hpp"

namespace vibguard::dsp {

/// Buffers for FFT-based cross-correlation (cross_correlate /
/// estimate_delay scratch overloads).
struct CorrelationScratch {
  std::vector<std::complex<double>> fa;
  std::vector<std::complex<double>> fb;
  std::vector<double> corr;
};

/// The full scratch set used by one scoring thread.
struct Scratch {
  /// FFT work buffer for apply_gain_curve-style zero-phase filtering.
  std::vector<std::complex<double>> cwork;
  /// One-sided magnitude spectrum buffer (band-energy measurements).
  std::vector<double> mag;
  /// Cross-correlation buffers for delay estimation.
  CorrelationScratch corr;
  /// Intermediate signals: a speaker-rendered waveform and its coupled
  /// (pre-decimation) vibration, plus the feature extractor's high-pass
  /// filtered copy. Each is private to one call; callers must not rely on
  /// their contents across entry points.
  Signal rendered;
  Signal coupled;
  Signal filtered;
};

}  // namespace vibguard::dsp
