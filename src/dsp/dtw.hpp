// Dynamic time warping over feature-vector sequences.
//
// Used by the wake-word matcher to compare MFCC sequences of different
// lengths; exposed generally since alignment of variable-rate sequences is
// a recurring need (e.g. comparing utterances across speakers).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vibguard::dsp {

/// Result of a DTW alignment.
struct DtwResult {
  double distance = 0.0;       ///< accumulated cost along the optimal path
  double normalized = 0.0;     ///< distance / path length
  std::size_t path_length = 0; ///< number of alignment steps
};

/// DTW with Euclidean local cost and the standard step pattern
/// (match/insert/delete). `window` is an optional Sakoe–Chiba band half
/// width in frames (0 = unconstrained). Either sequence may be empty, in
/// which case the distance is +infinity with an empty path.
DtwResult dtw(std::span<const std::vector<double>> a,
              std::span<const std::vector<double>> b,
              std::size_t window = 0);

/// Euclidean distance between two equal-length feature vectors.
double euclidean(std::span<const double> x, std::span<const double> y);

}  // namespace vibguard::dsp
