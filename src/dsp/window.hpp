// Analysis window functions for short-time spectral processing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vibguard::dsp {

enum class WindowType {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
};

/// Returns the n-point window of the given type (periodic form, suitable for
/// STFT analysis).
std::vector<double> make_window(WindowType type, std::size_t n);

/// Thread-local cached window table: computed once per (thread, type, n) and
/// reused, so STFT hot loops pay no per-call window allocation. The returned
/// reference stays valid for the calling thread's lifetime.
const std::vector<double>& cached_window(WindowType type, std::size_t n);

/// Multiplies `frame` element-wise by `window` (equal lengths required).
void apply_window(std::span<double> frame, std::span<const double> window);

/// Sum of window samples (used for amplitude normalization).
double window_sum(std::span<const double> window);

}  // namespace vibguard::dsp
