// NEON kernel implementations for aarch64, where NEON is baseline ISA (no
// runtime detection needed). Only the kernels where 2-lane float64 clearly
// pays are vectorized — the reductions and the elementwise multiply; the
// structured complex kernels dispatch to scalar, which the compiler already
// vectorizes reasonably on aarch64.
//
// Like the AVX2 unit, this file is built with -ffp-contract=off so its
// scalar tails round identically to the scalar reference; the vector
// reductions (dot, dot_reverse, pearson_moments) reassociate and agree with
// scalar only to tolerance.
#include "dsp/simd.hpp"

#if VIBGUARD_SIMD_NEON

#include <arm_neon.h>

#include <cstddef>

namespace vibguard::dsp::simd::neon {
namespace {

void multiply(const double* a, const double* b, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

double dot(const double* a, const double* b, std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
  }
  for (; i + 2 <= n; i += 2) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
  }
  double s = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

double dot_reverse(const double* taps, const double* x, std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t t = 0;
  for (; t + 2 <= n; t += 2) {
    const float64x2_t vt = vld1q_f64(taps + t);
    // x[-t-1], x[-t] loaded ascending then swapped to tap order.
    const float64x2_t vx = vld1q_f64(x - t - 1);
    acc = vfmaq_f64(acc, vt, vextq_f64(vx, vx, 1));
  }
  double s = vaddvq_f64(acc);
  for (; t < n; ++t) s += taps[t] * x[-static_cast<std::ptrdiff_t>(t)];
  return s;
}

PearsonMoments pearson_moments(const double* a, const double* b,
                               std::size_t n) {
  float64x2_t sa = vdupq_n_f64(0.0);
  float64x2_t sb = vdupq_n_f64(0.0);
  float64x2_t saa = vdupq_n_f64(0.0);
  float64x2_t sbb = vdupq_n_f64(0.0);
  float64x2_t sab = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t va = vld1q_f64(a + i);
    const float64x2_t vb = vld1q_f64(b + i);
    sa = vaddq_f64(sa, va);
    sb = vaddq_f64(sb, vb);
    saa = vfmaq_f64(saa, va, va);
    sbb = vfmaq_f64(sbb, vb, vb);
    sab = vfmaq_f64(sab, va, vb);
  }
  PearsonMoments m;
  m.sa = vaddvq_f64(sa);
  m.sb = vaddvq_f64(sb);
  m.saa = vaddvq_f64(saa);
  m.sbb = vaddvq_f64(sbb);
  m.sab = vaddvq_f64(sab);
  for (; i < n; ++i) {
    const double xa = a[i];
    const double xb = b[i];
    m.sa += xa;
    m.sb += xb;
    m.saa += xa * xa;
    m.sbb += xb * xb;
    m.sab += xa * xb;
  }
  return m;
}

}  // namespace

const Ops kOps = {
    .level = Level::kNeon,
    .multiply = &multiply,
    .butterfly_stage = &scalar::butterfly_stage,
    .fft_stage2_4 = &scalar::fft_stage2_4,
    .fft_stages = &scalar::fft_stages,
    .complex_multiply_to = &scalar::complex_multiply_to,
    .rfft_split_power = &scalar::rfft_split_power,
    .dot = &dot,
    .dot_reverse = &dot_reverse,
    .linear_interp = &scalar::linear_interp,
    .pearson_moments = &pearson_moments,
};

}  // namespace vibguard::dsp::simd::neon

#endif  // VIBGUARD_SIMD_NEON
