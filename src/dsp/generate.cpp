#include "dsp/generate.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.hpp"

namespace vibguard::dsp {
namespace {

std::size_t sample_count(double duration_s, double sample_rate) {
  VIBGUARD_REQUIRE(duration_s >= 0.0, "duration must be non-negative");
  VIBGUARD_REQUIRE(sample_rate > 0.0, "sample rate must be positive");
  return static_cast<std::size_t>(std::round(duration_s * sample_rate));
}

}  // namespace

Signal tone(double frequency_hz, double duration_s, double sample_rate,
            double amplitude, double phase) {
  const std::size_t n = sample_count(duration_s, sample_rate);
  std::vector<double> out(n);
  const double w = 2.0 * std::numbers::pi * frequency_hz / sample_rate;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = amplitude * std::sin(w * static_cast<double>(i) + phase);
  }
  return Signal(std::move(out), sample_rate);
}

Signal chirp(double f0_hz, double f1_hz, double duration_s,
             double sample_rate, double amplitude) {
  const std::size_t n = sample_count(duration_s, sample_rate);
  std::vector<double> out(n);
  const double k = n > 1 ? (f1_hz - f0_hz) / duration_s : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / sample_rate;
    const double phase =
        2.0 * std::numbers::pi * (f0_hz * t + 0.5 * k * t * t);
    out[i] = amplitude * std::sin(phase);
  }
  return Signal(std::move(out), sample_rate);
}

Signal white_noise(double duration_s, double sample_rate, double stddev,
                   Rng& rng) {
  const std::size_t n = sample_count(duration_s, sample_rate);
  return Signal(rng.gaussian_vector(n, stddev), sample_rate);
}

Signal pink_noise(double duration_s, double sample_rate, double stddev,
                  Rng& rng) {
  const std::size_t n = sample_count(duration_s, sample_rate);
  constexpr std::size_t kRows = 16;
  std::vector<double> rows(kRows, 0.0);
  for (double& r : rows) r = rng.gaussian();
  std::vector<double> out(n);
  double running = 0.0;
  for (double r : rows) running += r;
  for (std::size_t i = 0; i < n; ++i) {
    // Update the row whose bit toggles at this index (Voss–McCartney).
    std::size_t row = 0;
    std::size_t idx = i;
    while (row + 1 < kRows && (idx & 1) == 0 && idx != 0) {
      idx >>= 1;
      ++row;
    }
    running -= rows[row];
    rows[row] = rng.gaussian();
    running += rows[row];
    out[i] = running / std::sqrt(static_cast<double>(kRows));
  }
  Signal sig(std::move(out), sample_rate);
  const double current = sig.rms();
  if (current > 0.0) sig.scale(stddev / current);
  return sig;
}

}  // namespace vibguard::dsp
