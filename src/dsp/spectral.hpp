// Spectral summary statistics used by the attack study and the phoneme
// selection criteria.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/signal.hpp"

namespace vibguard::dsp {

/// Signal energy (sum of squared magnitude-spectrum values) within
/// [low_hz, high_hz].
double band_energy(const Signal& signal, double low_hz, double high_hz);

/// Fraction of total spectral energy within [low_hz, high_hz]; 0 for a
/// silent signal.
double band_energy_fraction(const Signal& signal, double low_hz,
                            double high_hz);

/// Allocation-free overload: computes the magnitude spectrum once into the
/// caller-owned `mag` buffer (reusing capacity) and accumulates band and
/// total energy from it. Bit-identical to the allocating overload.
double band_energy_fraction(const Signal& signal, double low_hz,
                            double high_hz, std::vector<double>& mag);

/// Magnitude-weighted mean frequency; 0 for a silent signal.
double spectral_centroid(const Signal& signal);

/// Element-wise mean of several equal-length magnitude spectra.
std::vector<double> average_spectra(
    std::span<const std::vector<double>> spectra);

/// Magnitude spectrum interpolated onto `num_points` uniformly spaced
/// frequencies in [0, max_hz] — used to average spectra of signals with
/// different lengths (the paper's Figs. 3/4/6 average 100 segments).
std::vector<double> magnitude_spectrum_resampled(const Signal& signal,
                                                 double max_hz,
                                                 std::size_t num_points);

}  // namespace vibguard::dsp
