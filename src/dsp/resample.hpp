// Sample-rate conversion.
//
// Two deliberately different paths are provided:
//   * resample()      — band-limited conversion with an anti-alias FIR, used
//                       where a faithful rate change is wanted.
//   * decimate_alias()— naive decimation with NO anti-alias filter. This is
//                       not an oversight: a MEMS accelerometer sampling a
//                       wideband mechanical excitation at 200 Hz folds
//                       high-frequency content into [0, 100] Hz, and that
//                       aliasing is exactly the signal path the paper's
//                       cross-domain sensing exploits (Sec. IV-B).
#pragma once

#include "common/signal.hpp"

namespace vibguard::dsp {

/// Band-limited resampling to `target_rate` (anti-alias FIR + linear
/// interpolation on the filtered signal).
Signal resample(const Signal& in, double target_rate);

/// Point-samples `in` at `target_rate` without an anti-alias filter,
/// intentionally folding content above target_rate/2 into the output band.
Signal decimate_alias(const Signal& in, double target_rate);

/// Allocation-free overload: writes the decimated signal into `out`,
/// reusing its capacity. Passing the same Signal object as `in` and `out`
/// is safe: the input is staged through a thread-local scratch copy first.
void decimate_alias_into(const Signal& in, double target_rate, Signal& out);

/// Linear-interpolated sampling at arbitrary positions (no filtering).
Signal sample_linear(const Signal& in, double target_rate);

}  // namespace vibguard::dsp
