#include "dsp/simd.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace vibguard::dsp::simd {

// ---------------------------------------------------------------------------
// Scalar kernels. These are the pre-SIMD inner loops moved verbatim: the
// expressions and accumulation order must not change, because
// VIBGUARD_SIMD=scalar is the repo's bit-identical reference path.
// ---------------------------------------------------------------------------
namespace scalar {

void multiply(const double* a, const double* b, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void butterfly_stage(Complex* lo, Complex* hi, const Complex* tw,
                     std::size_t half, bool inverse) {
  // Spelled out on raw doubles so the compiler can vectorize without the
  // NaN-handling branches of complex operator*.
  for (std::size_t j = 0; j < half; ++j) {
    const double wr = tw[j].real();
    const double wi = inverse ? -tw[j].imag() : tw[j].imag();
    const double xr = hi[j].real();
    const double xi = hi[j].imag();
    const double vr = xr * wr - xi * wi;
    const double vi = xr * wi + xi * wr;
    const double ur = lo[j].real();
    const double ui = lo[j].imag();
    lo[j] = Complex(ur + vr, ui + vi);
    hi[j] = Complex(ur - vr, ui - vi);
  }
}

void fft_stage2_4(Complex* d, std::size_t n, bool inverse) {
  // Stage len = 2: butterflies with w = 1.
  for (std::size_t i = 0; i + 1 < n; i += 2) {
    const Complex u = d[i];
    const Complex v = d[i + 1];
    d[i] = u + v;
    d[i + 1] = u - v;
  }
  // Stage len = 4: w is 1 or -i (forward) / +i (inverse).
  if (n >= 4) {
    for (std::size_t i = 0; i < n; i += 4) {
      const Complex u0 = d[i];
      const Complex v0 = d[i + 2];
      d[i] = u0 + v0;
      d[i + 2] = u0 - v0;
      const Complex x = d[i + 3];
      const Complex v1 = inverse ? Complex(-x.imag(), x.real())
                                 : Complex(x.imag(), -x.real());
      const Complex u1 = d[i + 1];
      d[i + 1] = u1 + v1;
      d[i + 3] = u1 - v1;
    }
  }
}

void fft_stages(Complex* d, std::size_t n, const Complex* tw, bool inverse) {
  for (std::size_t len = 8; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
      butterfly_stage(d + i, d + i + half, tw, half, inverse);
    }
    tw += half;
  }
}

void complex_multiply_to(Complex* out, const Complex* a, const Complex* b,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ar = a[i].real();
    const double ai = a[i].imag();
    const double br = b[i].real();
    const double bi = b[i].imag();
    out[i] = Complex(ar * br - ai * bi, ar * bi + ai * br);
  }
}

void rfft_split_power(const Complex* z, const Complex* rtw, std::size_t h,
                      double norm2, double* out) {
  for (std::size_t k = 1; k < h; ++k) {
    const Complex zk = z[k];
    const Complex zc = std::conj(z[h - k]);
    const Complex even = 0.5 * (zk + zc);
    const Complex odd = Complex(0.0, -0.5) * (zk - zc);
    const Complex x = even + rtw[k] * odd;
    out[k] = (x.real() * x.real() + x.imag() * x.imag()) * norm2;
  }
}

double dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double dot_reverse(const double* taps, const double* x, std::size_t n) {
  double acc = 0.0;
  for (std::size_t t = 0; t < n; ++t) acc += taps[t] * x[-static_cast<std::ptrdiff_t>(t)];
  return acc;
}

void linear_interp(const double* in, std::size_t in_size, double ratio,
                   double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double pos = static_cast<double>(i) * ratio;
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = lo + 1 < in_size ? lo + 1 : lo;
    const double frac = pos - static_cast<double>(lo);
    out[i] = in[lo] * (1.0 - frac) + in[hi] * frac;
  }
}

PearsonMoments pearson_moments(const double* a, const double* b,
                               std::size_t n) {
  PearsonMoments m;
  for (std::size_t i = 0; i < n; ++i) {
    const double xa = a[i];
    const double xb = b[i];
    m.sa += xa;
    m.sb += xb;
    m.saa += xa * xa;
    m.sbb += xb * xb;
    m.sab += xa * xb;
  }
  return m;
}

const Ops kOps = {
    .level = Level::kScalar,
    .multiply = &multiply,
    .butterfly_stage = &butterfly_stage,
    .fft_stage2_4 = &fft_stage2_4,
    .fft_stages = &fft_stages,
    .complex_multiply_to = &complex_multiply_to,
    .rfft_split_power = &rfft_split_power,
    .dot = &dot,
    .dot_reverse = &dot_reverse,
    .linear_interp = &linear_interp,
    .pearson_moments = &pearson_moments,
};

}  // namespace scalar

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------
namespace {

const Ops* table_for(Level level) {
  switch (level) {
    case Level::kScalar:
      return &scalar::kOps;
#if VIBGUARD_SIMD_AVX2
    case Level::kAvx2:
      return &avx2::kOps;
#endif
#if VIBGUARD_SIMD_NEON
    case Level::kNeon:
      return &neon::kOps;
#endif
    default:
      return nullptr;
  }
}

bool level_supported(Level level) {
  if (level == Level::kScalar) return true;
#if VIBGUARD_SIMD_AVX2
  if (level == Level::kAvx2) {
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }
#endif
#if VIBGUARD_SIMD_NEON
  if (level == Level::kNeon) return true;  // NEON is baseline on aarch64
#endif
  return false;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kNeon:
      return "neon";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Level detect_level() {
  if (level_supported(Level::kAvx2)) return Level::kAvx2;
  if (level_supported(Level::kNeon)) return Level::kNeon;
  return Level::kScalar;
}

std::vector<Level> available_levels() {
  std::vector<Level> out;
  for (Level l : {Level::kAvx2, Level::kNeon}) {
    if (level_supported(l)) out.push_back(l);
  }
  out.push_back(Level::kScalar);
  return out;
}

bool parse_level(const char* text, Level& out) {
  if (text == nullptr) return false;
  std::string s(text);
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (s == "auto") {
    out = detect_level();
    return true;
  }
  if (s == "scalar") {
    out = Level::kScalar;
    return true;
  }
  if (s == "avx2") {
    out = Level::kAvx2;
    return true;
  }
  if (s == "neon") {
    out = Level::kNeon;
    return true;
  }
  return false;
}

namespace detail {

std::atomic<const Ops*> g_ops{nullptr};

const Ops* resolve() {
  // First use: honor VIBGUARD_SIMD, then fall back to detection. The CAS
  // makes concurrent first calls converge on one table; set_level wins if
  // it already stored one.
  Level level = detect_level();
  if (const char* env = std::getenv("VIBGUARD_SIMD")) {
    Level requested;
    if (!parse_level(env, requested)) {
      std::fprintf(stderr,
                   "vibguard: ignoring invalid VIBGUARD_SIMD=%s "
                   "(want scalar|avx2|neon|auto)\n",
                   env);
    } else if (!level_supported(requested)) {
      std::fprintf(stderr,
                   "vibguard: VIBGUARD_SIMD=%s not supported on this "
                   "build/CPU; using %s\n",
                   env, level_name(level));
    } else {
      level = requested;
    }
  }
  const Ops* expected = nullptr;
  g_ops.compare_exchange_strong(expected, table_for(level),
                                std::memory_order_acq_rel);
  return g_ops.load(std::memory_order_relaxed);
}

}  // namespace detail

Level active_level() { return ops().level; }

bool set_level(Level level) {
  if (!level_supported(level)) return false;
  detail::g_ops.store(table_for(level), std::memory_order_release);
  return true;
}

}  // namespace vibguard::dsp::simd
