// Digital filters: biquad IIR sections, windowed-sinc FIR design, and
// FFT-based zero-phase filtering with arbitrary frequency-gain curves.
//
// The gain-curve filter is the workhorse of the physical simulation: barrier
// transmission, loudspeaker/microphone responses, and accelerometer coupling
// are all specified as |H(f)| curves and applied in the frequency domain.
#pragma once

#include <complex>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/signal.hpp"

namespace vibguard::dsp {

/// Direct-form-II-transposed biquad section.
class Biquad {
 public:
  /// Coefficients normalized so a0 == 1.
  Biquad(double b0, double b1, double b2, double a1, double a2);

  /// RBJ-cookbook second-order Butterworth-style low-pass.
  static Biquad low_pass(double cutoff_hz, double sample_rate, double q);

  /// RBJ-cookbook second-order Butterworth-style high-pass.
  static Biquad high_pass(double cutoff_hz, double sample_rate, double q);

  /// Processes one sample, updating internal state.
  double process(double x);

  /// Processes a buffer in place.
  void process(std::span<double> xs);

  /// Clears internal state.
  void reset();

  /// Magnitude response at normalized angular frequency w = 2*pi*f/fs.
  double magnitude_response(double omega) const;

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double z1_ = 0.0, z2_ = 0.0;
};

/// Cascade of biquads forming a higher-order Butterworth filter.
class ButterworthFilter {
 public:
  enum class Kind { kLowPass, kHighPass };

  /// `order` must be even and >= 2 (cascaded second-order sections).
  ButterworthFilter(Kind kind, std::size_t order, double cutoff_hz,
                    double sample_rate);

  double process(double x);
  void process(std::span<double> xs);

  /// Applies the filter to a copy of `in` (stateless convenience).
  Signal filtered(const Signal& in) const;

  void reset();

 private:
  std::vector<Biquad> sections_;
};

/// Windowed-sinc low-pass FIR taps (Hamming window, odd length).
std::vector<double> design_fir_lowpass(double cutoff_hz, double sample_rate,
                                       std::size_t num_taps);

/// Linear convolution of `x` with `taps`, truncated to |x| outputs with
/// group-delay compensation (output aligned with input).
std::vector<double> fir_filter(std::span<const double> x,
                               std::span<const double> taps);

/// Zero-phase filter applying an arbitrary magnitude gain curve.
/// `gain(f_hz)` is sampled on the FFT grid; the signal is transformed,
/// scaled bin-by-bin (conjugate-symmetrically) and inverse-transformed.
Signal apply_gain_curve(const Signal& in,
                        const std::function<double(double)>& gain);

/// Allocation-free overload: writes the filtered signal into `out` and uses
/// `work` as the FFT buffer, both reusing existing capacity. `out` may alias
/// `in` (in-place filtering); `work` must not be read afterwards.
void apply_gain_curve(const Signal& in,
                      const std::function<double(double)>& gain, Signal& out,
                      std::vector<std::complex<double>>& work);

}  // namespace vibguard::dsp
