// Fast Fourier transforms.
//
// Provides an in-place iterative radix-2 Cooley–Tukey FFT for power-of-two
// lengths and a Bluestein chirp-z fallback for arbitrary lengths, so callers
// never need to pad. Real-signal helpers return one-sided magnitude spectra,
// the representation used throughout the paper's figures.
//
// All entry points run on cached per-size plans (see fft_plan.hpp): the
// bit-reversal table, per-stage twiddles and Bluestein chirp spectra are
// computed once per (thread, size) instead of on every call.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace vibguard::dsp {

using Complex = std::complex<double>;

/// In-place FFT of a power-of-two-length buffer.
/// `inverse` selects the inverse transform (scaled by 1/N).
void fft_pow2(std::span<Complex> data, bool inverse);

/// FFT of arbitrary length (Bluestein for non-power-of-two sizes).
std::vector<Complex> fft(std::span<const Complex> data, bool inverse = false);

/// FFT of a real signal; returns the full complex spectrum of length n.
std::vector<Complex> fft_real(std::span<const double> data);

/// Real-input FFT: the one-sided spectrum X[0..n/2] (n/2 + 1 bins) of a
/// real signal, computed through an n/2-point complex transform for even n.
std::vector<Complex> rfft(std::span<const double> data);

/// One-sided magnitude spectrum of a real signal: |X[k]| for
/// k = 0..floor(n/2), normalized by n so magnitudes are amplitude-like.
std::vector<double> magnitude_spectrum(std::span<const double> data);

/// In-place overload: fills `out` (which must hold n/2 + 1 values) without
/// allocating — the STFT/MFCC frame-loop workhorse.
void magnitude_spectrum(std::span<const double> data, std::span<double> out);

/// Frequency in Hz of one-sided bin k for an n-point transform at
/// `sample_rate` Hz.
double bin_frequency(std::size_t k, std::size_t n, double sample_rate);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

}  // namespace vibguard::dsp
