// Elementary test-signal generators: tones, linear chirps and noise.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "common/signal.hpp"

namespace vibguard::dsp {

/// Sine tone of `frequency_hz` at unit amplitude.
Signal tone(double frequency_hz, double duration_s, double sample_rate,
            double amplitude = 1.0, double phase = 0.0);

/// Linear chirp sweeping f0 -> f1 over the duration (paper Fig. 7 uses a
/// 500–2500 Hz chirp to characterize the accelerometer).
Signal chirp(double f0_hz, double f1_hz, double duration_s,
             double sample_rate, double amplitude = 1.0);

/// White Gaussian noise with the given standard deviation.
Signal white_noise(double duration_s, double sample_rate, double stddev,
                   Rng& rng);

/// Pink-ish noise (-3 dB/octave) via the Voss–McCartney row algorithm.
Signal pink_noise(double duration_s, double sample_rate, double stddev,
                  Rng& rng);

}  // namespace vibguard::dsp
