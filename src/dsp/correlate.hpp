// Cross-correlation and time-delay estimation.
//
// Implements the paper's cross-device synchronization (Eq. 5): the residual
// network delay between the VA and wearable recordings is estimated as the
// lag maximizing the cross-correlation of the two audio signals.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/signal.hpp"
#include "dsp/scratch.hpp"

namespace vibguard::dsp {

/// Cross-correlation values for lags in [-max_lag, +max_lag].
/// out[i] corresponds to lag (i - max_lag); correlation is the raw inner
/// product sum_n a(n) * b(n + lag).
std::vector<double> cross_correlate(std::span<const double> a,
                                    std::span<const double> b,
                                    std::size_t max_lag);

/// Allocation-free overload: computes into scratch.corr (reusing capacity)
/// and returns a reference to it, valid until the next call on `scratch`.
const std::vector<double>& cross_correlate(std::span<const double> a,
                                           std::span<const double> b,
                                           std::size_t max_lag,
                                           CorrelationScratch& scratch);

/// Lag (in samples, possibly negative) maximizing the cross-correlation of
/// `a` against `b`. Positive result means `b` is delayed relative to `a`.
std::ptrdiff_t estimate_delay(std::span<const double> a,
                              std::span<const double> b, std::size_t max_lag);

/// Allocation-free overload reusing `scratch` buffers.
std::ptrdiff_t estimate_delay(std::span<const double> a,
                              std::span<const double> b, std::size_t max_lag,
                              CorrelationScratch& scratch);

/// Removes the first `delay` samples of `b` (paper Sec. VI-A) so both
/// signals start at the same instant; negative delay trims `a` instead.
/// Returns the aligned pair trimmed to equal length.
std::pair<Signal, Signal> align_by_delay(const Signal& a, const Signal& b,
                                         std::ptrdiff_t delay);

/// Normalized cross-correlation peak value in [-1, 1] at the best lag.
double peak_normalized_correlation(std::span<const double> a,
                                   std::span<const double> b,
                                   std::size_t max_lag);

}  // namespace vibguard::dsp
