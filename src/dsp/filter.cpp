#include "dsp/filter.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "dsp/fft.hpp"
#include "dsp/simd.hpp"

namespace vibguard::dsp {

Biquad::Biquad(double b0, double b1, double b2, double a1, double a2)
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

Biquad Biquad::low_pass(double cutoff_hz, double sample_rate, double q) {
  VIBGUARD_REQUIRE(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0,
                   "cutoff must be in (0, fs/2)");
  VIBGUARD_REQUIRE(q > 0.0, "Q must be positive");
  const double w0 = 2.0 * std::numbers::pi * cutoff_hz / sample_rate;
  const double cw = std::cos(w0);
  const double sw = std::sin(w0);
  const double alpha = sw / (2.0 * q);
  const double a0 = 1.0 + alpha;
  return Biquad((1.0 - cw) / 2.0 / a0, (1.0 - cw) / a0, (1.0 - cw) / 2.0 / a0,
                -2.0 * cw / a0, (1.0 - alpha) / a0);
}

Biquad Biquad::high_pass(double cutoff_hz, double sample_rate, double q) {
  VIBGUARD_REQUIRE(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0,
                   "cutoff must be in (0, fs/2)");
  VIBGUARD_REQUIRE(q > 0.0, "Q must be positive");
  const double w0 = 2.0 * std::numbers::pi * cutoff_hz / sample_rate;
  const double cw = std::cos(w0);
  const double sw = std::sin(w0);
  const double alpha = sw / (2.0 * q);
  const double a0 = 1.0 + alpha;
  return Biquad((1.0 + cw) / 2.0 / a0, -(1.0 + cw) / a0,
                (1.0 + cw) / 2.0 / a0, -2.0 * cw / a0, (1.0 - alpha) / a0);
}

double Biquad::process(double x) {
  const double y = b0_ * x + z1_;
  z1_ = b1_ * x - a1_ * y + z2_;
  z2_ = b2_ * x - a2_ * y;
  return y;
}

void Biquad::process(std::span<double> xs) {
  for (double& x : xs) x = process(x);
}

void Biquad::reset() { z1_ = z2_ = 0.0; }

double Biquad::magnitude_response(double omega) const {
  const Complex z = std::polar(1.0, omega);
  const Complex z2 = z * z;
  const Complex num = b0_ * z2 + b1_ * z + b2_;
  const Complex den = z2 + a1_ * z + a2_;
  return std::abs(num / den);
}

ButterworthFilter::ButterworthFilter(Kind kind, std::size_t order,
                                     double cutoff_hz, double sample_rate) {
  VIBGUARD_REQUIRE(order >= 2 && order % 2 == 0,
                   "Butterworth order must be even and >= 2");
  const std::size_t pairs = order / 2;
  sections_.reserve(pairs);
  for (std::size_t k = 0; k < pairs; ++k) {
    // Standard Butterworth pole-pair Q values.
    const double theta = std::numbers::pi *
                         (2.0 * static_cast<double>(k) + 1.0) /
                         (2.0 * static_cast<double>(order));
    const double q = 1.0 / (2.0 * std::sin(theta));
    sections_.push_back(kind == Kind::kLowPass
                            ? Biquad::low_pass(cutoff_hz, sample_rate, q)
                            : Biquad::high_pass(cutoff_hz, sample_rate, q));
  }
}

double ButterworthFilter::process(double x) {
  for (Biquad& s : sections_) x = s.process(x);
  return x;
}

void ButterworthFilter::process(std::span<double> xs) {
  for (double& x : xs) x = process(x);
}

Signal ButterworthFilter::filtered(const Signal& in) const {
  ButterworthFilter copy = *this;
  copy.reset();
  Signal out = in;
  copy.process(out.samples());
  return out;
}

void ButterworthFilter::reset() {
  for (Biquad& s : sections_) s.reset();
}

std::vector<double> design_fir_lowpass(double cutoff_hz, double sample_rate,
                                       std::size_t num_taps) {
  VIBGUARD_REQUIRE(num_taps % 2 == 1, "FIR length must be odd");
  VIBGUARD_REQUIRE(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0,
                   "cutoff must be in (0, fs/2)");
  const double fc = cutoff_hz / sample_rate;  // normalized cutoff
  const auto mid = static_cast<double>(num_taps - 1) / 2.0;
  std::vector<double> taps(num_taps);
  double sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double m = static_cast<double>(i) - mid;
    const double sinc =
        m == 0.0 ? 2.0 * fc
                 : std::sin(2.0 * std::numbers::pi * fc * m) /
                       (std::numbers::pi * m);
    const double hamming =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi *
                               static_cast<double>(i) /
                               static_cast<double>(num_taps - 1));
    taps[i] = sinc * hamming;
    sum += taps[i];
  }
  for (double& t : taps) t /= sum;  // unity DC gain
  return taps;
}

std::vector<double> fir_filter(std::span<const double> x,
                               std::span<const double> taps) {
  VIBGUARD_REQUIRE(!taps.empty(), "FIR taps must be non-empty");
  const std::size_t n = x.size();
  const std::size_t num_taps = taps.size();
  const std::size_t delay = (num_taps - 1) / 2;
  std::vector<double> y(n, 0.0);
  const simd::Ops& ops = simd::ops();
  for (std::size_t i = 0; i < n; ++i) {
    // Output index i corresponds to convolution index i + delay.
    const std::size_t conv = i + delay;
    if (conv + 1 >= num_taps && conv < n) {
      // Interior sample: every tap lands in-bounds, so the whole
      // convolution is one reverse dot product.
      y[i] = ops.dot_reverse(taps.data(), x.data() + conv, num_taps);
      continue;
    }
    double acc = 0.0;
    for (std::size_t t = 0; t < num_taps; ++t) {
      if (conv >= t && conv - t < n) acc += taps[t] * x[conv - t];
    }
    y[i] = acc;
  }
  return y;
}

Signal apply_gain_curve(const Signal& in,
                        const std::function<double(double)>& gain) {
  Signal out;
  std::vector<Complex> work;
  apply_gain_curve(in, gain, out, work);
  return out;
}

void apply_gain_curve(const Signal& in,
                      const std::function<double(double)>& gain, Signal& out,
                      std::vector<std::complex<double>>& work) {
  if (in.empty()) {
    if (&out != &in) out = in;
    return;
  }
  const std::size_t n = in.size();
  const std::size_t m = next_pow2(n);
  const double fs = in.sample_rate();
  work.assign(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < n; ++i) work[i] = Complex(in[i], 0.0);
  fft_pow2(work, false);
  // Scale bins conjugate-symmetrically so the inverse transform stays real.
  for (std::size_t k = 0; k <= m / 2; ++k) {
    const double f = static_cast<double>(k) * fs / static_cast<double>(m);
    const double g = gain(f);
    work[k] *= g;
    if (k != 0 && k != m / 2) work[m - k] *= g;
  }
  fft_pow2(work, true);
  // `in` is fully consumed; writing `out` now makes in-place calls safe.
  if (&out != &in) out.reset(fs);
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = work[i].real();
}

}  // namespace vibguard::dsp
