#include "dsp/resample.hpp"

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "dsp/filter.hpp"
#include "dsp/simd.hpp"

namespace vibguard::dsp {
namespace {

void interpolate_at_rate_into(const Signal& in, double target_rate,
                              Signal& out) {
  if (in.empty()) {
    // Avoids the 0/0 ratio below when `in` is empty (a default-constructed
    // Signal also has sample rate 0, making the ratio NaN).
    out.reset(target_rate);
    return;
  }
  if (&in == &out) {
    // Self-aliasing: out.reset()/resize() below would destroy the input
    // before it is read, so interpolate from a scratch copy instead. The
    // copy is thread-local so repeated aliased calls stay allocation-free
    // at steady state.
    thread_local Signal scratch;
    scratch.assign(in.samples(), in.sample_rate());
    interpolate_at_rate_into(scratch, target_rate, out);
    return;
  }
  const double ratio = in.sample_rate() / target_rate;
  const auto out_len = static_cast<std::size_t>(
      std::floor(static_cast<double>(in.size()) / ratio));
  out.reset(target_rate);
  out.resize(out_len);
  simd::linear_interp(in.samples().data(), in.size(), ratio,
                      out.samples().data(), out_len);
}

Signal interpolate_at_rate(const Signal& in, double target_rate) {
  Signal out;
  interpolate_at_rate_into(in, target_rate, out);
  return out;
}

}  // namespace

Signal resample(const Signal& in, double target_rate) {
  VIBGUARD_REQUIRE(target_rate > 0.0, "target rate must be positive");
  if (in.empty() || target_rate == in.sample_rate()) {
    return Signal(std::vector<double>(in.begin(), in.end()),
                  in.empty() ? target_rate : in.sample_rate());
  }
  if (target_rate < in.sample_rate()) {
    // Anti-alias below the new Nyquist before decimating.
    const double cutoff = 0.45 * target_rate;
    const auto taps = design_fir_lowpass(cutoff, in.sample_rate(), 101);
    Signal filtered(fir_filter(in.samples(), taps), in.sample_rate());
    return interpolate_at_rate(filtered, target_rate);
  }
  return interpolate_at_rate(in, target_rate);
}

Signal decimate_alias(const Signal& in, double target_rate) {
  Signal out;
  decimate_alias_into(in, target_rate, out);
  return out;
}

void decimate_alias_into(const Signal& in, double target_rate, Signal& out) {
  VIBGUARD_REQUIRE(target_rate > 0.0, "target rate must be positive");
  VIBGUARD_REQUIRE(target_rate <= in.sample_rate(),
                   "decimate_alias cannot upsample");
  interpolate_at_rate_into(in, target_rate, out);
}

Signal sample_linear(const Signal& in, double target_rate) {
  VIBGUARD_REQUIRE(target_rate > 0.0, "target rate must be positive");
  return interpolate_at_rate(in, target_rate);
}

}  // namespace vibguard::dsp
