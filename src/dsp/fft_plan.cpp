#include "dsp/fft_plan.hpp"

#include <cmath>
#include <cstring>
#include <numbers>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "dsp/fft.hpp"
#include "dsp/simd.hpp"

namespace vibguard::dsp {
namespace {

// exp(-2*pi*i * j / len) — forward-transform twiddle.
Complex unit_root(std::size_t j, std::size_t len) {
  const double angle =
      -2.0 * std::numbers::pi * static_cast<double>(j) /
      static_cast<double>(len);
  return Complex(std::cos(angle), std::sin(angle));
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n) { init(/*build_real=*/true); }

FftPlan::FftPlan(std::size_t n, bool build_real) : n_(n) { init(build_real); }

void FftPlan::init(bool build_real) {
  VIBGUARD_REQUIRE(n_ > 0, "FFT plan size must be positive");
  is_pow2_ = is_pow2(n_);
  pow2_n_ = is_pow2_ ? n_ : next_pow2(2 * n_ - 1);

  // Bit-reversal permutation, stored as the swap pairs (i < j) the in-place
  // pass applies, so the hot loop touches each pair exactly once.
  const std::size_t pn = pow2_n_;
  bitrev_.clear();
  for (std::size_t i = 1, j = 0; i < pn; ++i) {
    std::size_t bit = pn >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      bitrev_.push_back(i);
      bitrev_.push_back(j);
    }
  }

  // Per-stage twiddles for stages len = 8..pn (the len = 2 and len = 4
  // stages are multiplication-free and handled inline).
  twiddles_.clear();
  for (std::size_t len = 8; len <= pn; len <<= 1) {
    for (std::size_t j = 0; j < len / 2; ++j) {
      twiddles_.push_back(unit_root(j, len));
    }
  }

  if (!is_pow2_) {
    // Bluestein: cache the chirp w[k] = exp(-i*pi*k^2/n) and the forward
    // FFT of the convolution kernel b[k] = conj(w[|k|]).
    m_ = pow2_n_;
    chirp_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      // k^2 mod 2n avoids precision loss for large k.
      const auto k2 = static_cast<double>((k * k) % (2 * n_));
      const double angle =
          -std::numbers::pi * k2 / static_cast<double>(n_);
      chirp_[k] = Complex(std::cos(angle), std::sin(angle));
    }
    bspec_.assign(m_, Complex(0.0, 0.0));
    bspec_[0] = std::conj(chirp_[0]);
    for (std::size_t k = 1; k < n_; ++k) {
      bspec_[k] = bspec_[m_ - k] = std::conj(chirp_[k]);
    }
    run_pow2(bspec_, false);
    work_.resize(m_);
  }

  if (build_real && n_ % 2 == 0) {
    const std::size_t h = n_ / 2;
    half_ = std::unique_ptr<FftPlan>(new FftPlan(h, /*build_real=*/false));
    rtwiddle_.resize(h + 1);
    for (std::size_t k = 0; k <= h; ++k) rtwiddle_[k] = unit_root(k, n_);
    rscratch_.resize(h);
  }
}

void FftPlan::run_pow2(std::span<Complex> data, bool inverse) const {
  const std::size_t n = data.size();
  Complex* d = data.data();
  for (std::size_t p = 0; p + 1 < bitrev_.size(); p += 2) {
    std::swap(d[bitrev_[p]], d[bitrev_[p + 1]]);
  }

  const simd::Ops& ops = simd::ops();

  // The len = 2 and len = 4 stages have multiplication-free twiddles (1 and
  // ∓i) and run fused through one dispatched kernel.
  ops.fft_stage2_4(d, n, inverse);

  // Remaining stages read twiddles from the table and run fused through one
  // dispatched kernel (scalar fallback is the pre-SIMD loop).
  ops.fft_stages(d, n, twiddles_.data(), inverse);

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) d[i] *= inv_n;
  }
}

void FftPlan::transform(std::span<Complex> data, bool inverse) const {
  VIBGUARD_REQUIRE(data.size() == n_, "buffer size must match plan size");
  if (is_pow2_) {
    run_pow2(data, inverse);
    return;
  }

  // Bluestein via the cached chirp. The inverse transform reuses the
  // forward chirp through DFT^-1(x) = conj(DFT(conj(x))) / n.
  if (inverse) {
    for (Complex& x : data) x = std::conj(x);
  }
  std::fill(work_.begin() + static_cast<std::ptrdiff_t>(n_), work_.end(),
            Complex(0.0, 0.0));
  const simd::Ops& ops = simd::ops();
  ops.complex_multiply_to(work_.data(), data.data(), chirp_.data(), n_);
  run_pow2(work_, false);
  ops.complex_multiply_to(work_.data(), work_.data(), bspec_.data(), m_);
  run_pow2(work_, true);
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      data[k] = std::conj(work_[k] * chirp_[k]) * inv_n;
    }
  } else {
    for (std::size_t k = 0; k < n_; ++k) data[k] = work_[k] * chirp_[k];
  }
}

void FftPlan::rfft(std::span<const double> in, std::span<Complex> out) const {
  VIBGUARD_REQUIRE(in.size() == n_, "input size must match plan size");
  VIBGUARD_REQUIRE(out.size() == n_ / 2 + 1,
                   "rfft output needs n/2 + 1 bins");
  if (n_ == 1) {
    out[0] = Complex(in[0], 0.0);
    return;
  }
  if (n_ % 2 != 0) {
    // Odd length: no conjugate-symmetric split; run the complex path.
    rscratch_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) rscratch_[i] = Complex(in[i], 0.0);
    transform(rscratch_, false);
    for (std::size_t k = 0; k < out.size(); ++k) out[k] = rscratch_[k];
    return;
  }

  // Pack adjacent real samples into one complex sequence of half length,
  // transform, then split the even/odd sub-spectra by conjugate symmetry:
  //   X[k] = E[k] + exp(-2*pi*i*k/n) * O[k].
  const std::size_t h = n_ / 2;
  rscratch_.resize(h);
  for (std::size_t j = 0; j < h; ++j) {
    rscratch_[j] = Complex(in[2 * j], in[2 * j + 1]);
  }
  half_->transform(rscratch_, false);

  const Complex z0 = rscratch_[0];
  out[0] = Complex(z0.real() + z0.imag(), 0.0);
  out[h] = Complex(z0.real() - z0.imag(), 0.0);
  for (std::size_t k = 1; k < h; ++k) {
    const Complex zk = rscratch_[k];
    const Complex zc = std::conj(rscratch_[h - k]);
    const Complex even = 0.5 * (zk + zc);
    const Complex odd = Complex(0.0, -0.5) * (zk - zc);
    out[k] = even + rtwiddle_[k] * odd;
  }
}

void FftPlan::magnitude(std::span<const double> in,
                        std::span<double> out) const {
  power(in, out);
  for (double& v : out) v = std::sqrt(v);
}

void FftPlan::packed_power(std::span<double> out, double norm2) const {
  const std::size_t h = n_ / 2;
  half_->transform(rscratch_, false);
  const Complex z0 = rscratch_[0];
  const double x0 = z0.real() + z0.imag();
  const double xh = z0.real() - z0.imag();
  out[0] = x0 * x0 * norm2;
  out[h] = xh * xh * norm2;
  simd::ops().rfft_split_power(rscratch_.data(), rtwiddle_.data(), h, norm2,
                               out.data());
}

void FftPlan::power(std::span<const double> in, std::span<double> out) const {
  VIBGUARD_REQUIRE(in.size() == n_, "input size must match plan size");
  VIBGUARD_REQUIRE(out.size() == n_ / 2 + 1,
                   "power spectrum needs n/2 + 1 bins");
  const double norm = 1.0 / static_cast<double>(n_);
  const double norm2 = norm * norm;
  if (n_ > 1 && n_ % 2 == 0) {
    // Packing adjacent real samples into complex pairs is a straight copy.
    const std::size_t h = n_ / 2;
    rscratch_.resize(h);
    std::memcpy(reinterpret_cast<double*>(rscratch_.data()), in.data(),
                n_ * sizeof(double));
    packed_power(out, norm2);
    return;
  }
  thread_local std::vector<Complex> spec;
  spec.resize(n_ / 2 + 1);
  rfft(in, spec);
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = std::norm(spec[k]) * norm2;
  }
}

void FftPlan::windowed_power(const double* in, const double* window,
                             std::span<double> out) const {
  VIBGUARD_REQUIRE(out.size() == n_ / 2 + 1,
                   "power spectrum needs n/2 + 1 bins");
  const double norm = 1.0 / static_cast<double>(n_);
  const double norm2 = norm * norm;
  if (n_ > 1 && n_ % 2 == 0) {
    // Window while packing: the windowed frame never hits memory. A
    // complex<double> array is array-of-double compatible, so the packed
    // buffer is just the elementwise product written in place.
    const std::size_t h = n_ / 2;
    rscratch_.resize(h);
    simd::multiply(in, window, reinterpret_cast<double*>(rscratch_.data()),
                   n_);
    packed_power(out, norm2);
    return;
  }
  thread_local std::vector<double> frame;
  frame.resize(n_);
  simd::multiply(in, window, frame.data(), n_);
  power(frame, out);
}

const FftPlan& get_plan(std::size_t n) {
  thread_local std::unordered_map<std::size_t, std::unique_ptr<FftPlan>>
      cache;
  auto& slot = cache[n];
  if (slot == nullptr) slot = std::make_unique<FftPlan>(n);
  return *slot;
}

}  // namespace vibguard::dsp
