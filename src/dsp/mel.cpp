#include "dsp/mel.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/window.hpp"

namespace vibguard::dsp {

double hz_to_mel(double hz) { return 2595.0 * std::log10(1.0 + hz / 700.0); }

double mel_to_hz(double mel) {
  return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

std::vector<std::vector<double>> mel_filterbank(std::size_t num_filters,
                                                std::size_t fft_size,
                                                double sample_rate,
                                                double low_hz,
                                                double high_hz) {
  VIBGUARD_REQUIRE(num_filters > 0, "need at least one mel filter");
  VIBGUARD_REQUIRE(high_hz > low_hz, "high_hz must exceed low_hz");
  VIBGUARD_REQUIRE(high_hz <= sample_rate / 2.0,
                   "high_hz must not exceed Nyquist");
  const std::size_t num_bins = fft_size / 2 + 1;
  const double mel_lo = hz_to_mel(low_hz);
  const double mel_hi = hz_to_mel(high_hz);

  // num_filters + 2 edge points uniformly spaced on the mel scale.
  std::vector<double> edges_hz(num_filters + 2);
  for (std::size_t i = 0; i < edges_hz.size(); ++i) {
    const double mel = mel_lo + (mel_hi - mel_lo) * static_cast<double>(i) /
                                    static_cast<double>(num_filters + 1);
    edges_hz[i] = mel_to_hz(mel);
  }

  std::vector<std::vector<double>> bank(num_filters,
                                        std::vector<double>(num_bins, 0.0));
  for (std::size_t m = 0; m < num_filters; ++m) {
    const double f_lo = edges_hz[m];
    const double f_mid = edges_hz[m + 1];
    const double f_hi = edges_hz[m + 2];
    for (std::size_t k = 0; k < num_bins; ++k) {
      const double f = bin_frequency(k, fft_size, sample_rate);
      if (f >= f_lo && f <= f_mid && f_mid > f_lo) {
        bank[m][k] = (f - f_lo) / (f_mid - f_lo);
      } else if (f > f_mid && f <= f_hi && f_hi > f_mid) {
        bank[m][k] = (f_hi - f) / (f_hi - f_mid);
      }
    }
  }
  return bank;
}

std::vector<double> dct2(std::span<const double> x, std::size_t num_coeffs) {
  const std::size_t n = x.size();
  VIBGUARD_REQUIRE(n > 0, "DCT of empty input");
  num_coeffs = std::min(num_coeffs, n);
  std::vector<double> out(num_coeffs, 0.0);
  const double scale0 = std::sqrt(1.0 / static_cast<double>(n));
  const double scale = std::sqrt(2.0 / static_cast<double>(n));
  for (std::size_t k = 0; k < num_coeffs; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += x[i] * std::cos(std::numbers::pi / static_cast<double>(n) *
                             (static_cast<double>(i) + 0.5) *
                             static_cast<double>(k));
    }
    out[k] = acc * (k == 0 ? scale0 : scale);
  }
  return out;
}

std::vector<std::vector<double>> compute_mfcc(const Signal& signal,
                                              const MfccConfig& cfg) {
  VIBGUARD_REQUIRE(!signal.empty(), "MFCC of empty signal");
  const double fs = signal.sample_rate();
  const auto frame_len =
      static_cast<std::size_t>(std::round(cfg.frame_seconds * fs));
  const auto hop = static_cast<std::size_t>(std::round(cfg.hop_seconds * fs));
  VIBGUARD_REQUIRE(frame_len > 0 && hop > 0,
                   "frame and hop must be at least one sample");
  const std::size_t fft_size = next_pow2(frame_len);
  const auto bank = mel_filterbank(cfg.num_filters, fft_size, fs, cfg.low_hz,
                                   std::min(cfg.high_hz, fs / 2.0));
  const auto window = make_window(WindowType::kHamming, frame_len);

  std::vector<std::vector<double>> mfcc;
  if (signal.size() < frame_len) return mfcc;
  const std::size_t frames = 1 + (signal.size() - frame_len) / hop;
  mfcc.reserve(frames);

  // Hoist everything frame-invariant out of the loop.
  //
  // Triangular mel filters are nonzero on a short contiguous bin range, so
  // store each filter as (first bin, weights) and skip the zero tails.
  const std::size_t num_bins = fft_size / 2 + 1;
  struct SparseFilter {
    std::size_t first = 0;
    std::vector<double> weights;
  };
  std::vector<SparseFilter> sparse(cfg.num_filters);
  for (std::size_t m = 0; m < cfg.num_filters; ++m) {
    std::size_t first = 0;
    while (first < num_bins && bank[m][first] == 0.0) ++first;
    std::size_t last = num_bins;
    while (last > first && bank[m][last - 1] == 0.0) --last;
    sparse[m].first = first;
    sparse[m].weights.assign(bank[m].begin() + static_cast<std::ptrdiff_t>(first),
                             bank[m].begin() + static_cast<std::ptrdiff_t>(last));
  }

  // DCT-II as a (num_coeffs x num_filters) coefficient table: the per-frame
  // transform becomes a small matrix-vector product instead of
  // num_coeffs * num_filters cosine evaluations.
  const std::size_t num_coeffs = std::min(cfg.num_coeffs, cfg.num_filters);
  const double nf = static_cast<double>(cfg.num_filters);
  const double scale0 = std::sqrt(1.0 / nf);
  const double scale = std::sqrt(2.0 / nf);
  std::vector<double> dct_table(num_coeffs * cfg.num_filters);
  for (std::size_t k = 0; k < num_coeffs; ++k) {
    const double row_scale = k == 0 ? scale0 : scale;
    for (std::size_t i = 0; i < cfg.num_filters; ++i) {
      dct_table[k * cfg.num_filters + i] =
          row_scale * std::cos(std::numbers::pi / nf *
                               (static_cast<double>(i) + 0.5) *
                               static_cast<double>(k));
    }
  }

  const FftPlan& plan = get_plan(fft_size);
  const double* samples = signal.samples().data();
  // The zero padding beyond frame_len is written once; every frame only
  // overwrites the first frame_len entries.
  std::vector<double> frame(fft_size, 0.0);
  std::vector<double> power(num_bins);
  std::vector<double> log_mel(cfg.num_filters);
  for (std::size_t f = 0; f < frames; ++f) {
    const double* src = samples + f * hop;
    for (std::size_t i = 0; i < frame_len; ++i) {
      frame[i] = src[i] * window[i];
    }
    plan.power(frame, power);
    for (std::size_t m = 0; m < cfg.num_filters; ++m) {
      const SparseFilter& flt = sparse[m];
      const double* p = power.data() + flt.first;
      double acc = 0.0;
      for (std::size_t k = 0; k < flt.weights.size(); ++k) {
        acc += flt.weights[k] * p[k];
      }
      log_mel[m] = std::log(acc + 1e-12);
    }
    std::vector<double> coeffs(num_coeffs);
    for (std::size_t k = 0; k < num_coeffs; ++k) {
      const double* row = dct_table.data() + k * cfg.num_filters;
      double acc = 0.0;
      for (std::size_t i = 0; i < cfg.num_filters; ++i) {
        acc += row[i] * log_mel[i];
      }
      coeffs[k] = acc;
    }
    mfcc.push_back(std::move(coeffs));
  }
  return mfcc;
}

}  // namespace vibguard::dsp
