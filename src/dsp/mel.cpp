#include "dsp/mel.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/simd.hpp"
#include "dsp/window.hpp"

namespace vibguard::dsp {

double hz_to_mel(double hz) { return 2595.0 * std::log10(1.0 + hz / 700.0); }

double mel_to_hz(double mel) {
  return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

MelFilterbank::MelFilterbank(std::size_t filters, std::size_t bins)
    : filters_(filters),
      bins_(bins),
      weights_(filters * bins, 0.0),
      first_(filters, bins),
      last_(filters, bins) {}

void MelFilterbank::seal() {
  for (std::size_t m = 0; m < filters_; ++m) {
    const double* w = weights_.data() + m * bins_;
    std::size_t first = 0;
    while (first < bins_ && w[first] == 0.0) ++first;
    std::size_t last = bins_;
    while (last > first && w[last - 1] == 0.0) --last;
    first_[m] = first;
    last_[m] = last;
  }
}

void MelFilterbank::apply(std::span<const double> power,
                          std::span<double> out) const {
  VIBGUARD_REQUIRE(power.size() == bins_, "power size must match filterbank");
  VIBGUARD_REQUIRE(out.size() == filters_, "output size must match filters");
  const simd::Ops& ops = simd::ops();
  for (std::size_t m = 0; m < filters_; ++m) {
    const std::size_t first = first_[m];
    out[m] = ops.dot(weights_.data() + m * bins_ + first,
                     power.data() + first, last_[m] - first);
  }
}

MelFilterbank mel_filterbank(std::size_t num_filters, std::size_t fft_size,
                             double sample_rate, double low_hz,
                             double high_hz) {
  VIBGUARD_REQUIRE(num_filters > 0, "need at least one mel filter");
  VIBGUARD_REQUIRE(high_hz > low_hz, "high_hz must exceed low_hz");
  VIBGUARD_REQUIRE(high_hz <= sample_rate / 2.0,
                   "high_hz must not exceed Nyquist");
  const std::size_t num_bins = fft_size / 2 + 1;
  const double mel_lo = hz_to_mel(low_hz);
  const double mel_hi = hz_to_mel(high_hz);

  // num_filters + 2 edge points uniformly spaced on the mel scale.
  std::vector<double> edges_hz(num_filters + 2);
  for (std::size_t i = 0; i < edges_hz.size(); ++i) {
    const double mel = mel_lo + (mel_hi - mel_lo) * static_cast<double>(i) /
                                    static_cast<double>(num_filters + 1);
    edges_hz[i] = mel_to_hz(mel);
  }

  MelFilterbank bank(num_filters, num_bins);
  for (std::size_t m = 0; m < num_filters; ++m) {
    const double f_lo = edges_hz[m];
    const double f_mid = edges_hz[m + 1];
    const double f_hi = edges_hz[m + 2];
    std::span<double> row = bank.row(m);
    for (std::size_t k = 0; k < num_bins; ++k) {
      const double f = bin_frequency(k, fft_size, sample_rate);
      if (f >= f_lo && f <= f_mid && f_mid > f_lo) {
        row[k] = (f - f_lo) / (f_mid - f_lo);
      } else if (f > f_mid && f <= f_hi && f_hi > f_mid) {
        row[k] = (f_hi - f) / (f_hi - f_mid);
      }
    }
  }
  bank.seal();
  return bank;
}

namespace {

// Thread-local cache of the n x n orthonormal DCT-II coefficient table,
// rows pre-scaled by sqrt(1/n) (k = 0) / sqrt(2/n) (k > 0). Rebuilt only
// when the transform length changes, so per-frame MFCC extraction never
// recomputes cosines.
const double* cached_dct_table(std::size_t n) {
  thread_local std::size_t cached_n = 0;
  thread_local AlignedVector<double> table;
  if (cached_n != n) {
    table.resize(n * n);
    const double nf = static_cast<double>(n);
    const double scale0 = std::sqrt(1.0 / nf);
    const double scale = std::sqrt(2.0 / nf);
    for (std::size_t k = 0; k < n; ++k) {
      const double row_scale = k == 0 ? scale0 : scale;
      for (std::size_t i = 0; i < n; ++i) {
        table[k * n + i] =
            row_scale * std::cos(std::numbers::pi / nf *
                                 (static_cast<double>(i) + 0.5) *
                                 static_cast<double>(k));
      }
    }
    cached_n = n;
  }
  return table.data();
}

}  // namespace

void dct2_into(std::span<const double> x, std::span<double> out) {
  const std::size_t n = x.size();
  VIBGUARD_REQUIRE(n > 0, "DCT of empty input");
  const std::size_t num_coeffs = std::min(out.size(), n);
  const double* table = cached_dct_table(n);
  const simd::Ops& ops = simd::ops();
  for (std::size_t k = 0; k < num_coeffs; ++k) {
    out[k] = ops.dot(table + k * n, x.data(), n);
  }
  // Coefficients past the transform length do not exist; zero-fill so the
  // output span is fully defined.
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(num_coeffs), out.end(),
            0.0);
}

std::vector<double> dct2(std::span<const double> x, std::size_t num_coeffs) {
  VIBGUARD_REQUIRE(!x.empty(), "DCT of empty input");
  std::vector<double> out(std::min(num_coeffs, x.size()));
  dct2_into(x, out);
  return out;
}

std::vector<std::vector<double>> compute_mfcc(const Signal& signal,
                                              const MfccConfig& cfg) {
  VIBGUARD_REQUIRE(!signal.empty(), "MFCC of empty signal");
  const double fs = signal.sample_rate();
  const auto frame_len =
      static_cast<std::size_t>(std::round(cfg.frame_seconds * fs));
  const auto hop = static_cast<std::size_t>(std::round(cfg.hop_seconds * fs));
  VIBGUARD_REQUIRE(frame_len > 0 && hop > 0,
                   "frame and hop must be at least one sample");
  const std::size_t fft_size = next_pow2(frame_len);
  const MelFilterbank bank = mel_filterbank(
      cfg.num_filters, fft_size, fs, cfg.low_hz, std::min(cfg.high_hz, fs / 2.0));
  const auto window = make_window(WindowType::kHamming, frame_len);

  std::vector<std::vector<double>> mfcc;
  if (signal.size() < frame_len) return mfcc;
  const std::size_t frames = 1 + (signal.size() - frame_len) / hop;
  mfcc.reserve(frames);

  const std::size_t num_bins = fft_size / 2 + 1;
  const std::size_t num_coeffs = std::min(cfg.num_coeffs, cfg.num_filters);
  const FftPlan& plan = get_plan(fft_size);
  const double* samples = signal.samples().data();
  // The zero padding beyond frame_len is written once; every frame only
  // overwrites the first frame_len entries.
  AlignedVector<double> frame(fft_size, 0.0);
  AlignedVector<double> power(num_bins);
  AlignedVector<double> mel_energy(cfg.num_filters);
  AlignedVector<double> log_mel(cfg.num_filters);
  for (std::size_t f = 0; f < frames; ++f) {
    simd::multiply(samples + f * hop, window.data(), frame.data(), frame_len);
    plan.power(frame, power);
    bank.apply(power, mel_energy);
    for (std::size_t m = 0; m < cfg.num_filters; ++m) {
      log_mel[m] = std::log(mel_energy[m] + 1e-12);
    }
    std::vector<double> coeffs(num_coeffs);
    dct2_into(log_mel, coeffs);
    mfcc.push_back(std::move(coeffs));
  }
  return mfcc;
}

}  // namespace vibguard::dsp
