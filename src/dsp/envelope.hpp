// Amplitude envelopes and cepstral analysis.
//
// The analytic (Hilbert) envelope serves the hidden-voice generator's
// syllabic-structure checks and voice-activity style gating; the real
// cepstrum supports pitch/F0 analysis of the synthetic speech.
#pragma once

#include <cstddef>
#include <vector>

#include "common/signal.hpp"

namespace vibguard::dsp {

/// Analytic-signal magnitude |x + i·H(x)| computed via the FFT (one-sided
/// spectrum doubling). Output has the same length and rate as the input.
Signal hilbert_envelope(const Signal& in);

/// Short-window RMS envelope: one value per `window` samples, advanced by
/// `hop` samples, at the implied decimated rate.
Signal rms_envelope(const Signal& in, std::size_t window, std::size_t hop);

/// Real cepstrum: IFFT(log|FFT(x)|). Returns the first `num_bins`
/// quefrency bins.
std::vector<double> real_cepstrum(const Signal& in, std::size_t num_bins);

/// Fundamental-frequency estimate via the cepstral peak within
/// [f_min, f_max]; returns 0 when no voiced peak stands out (peak less
/// than `min_prominence` times the local mean).
double cepstral_pitch(const Signal& in, double f_min = 60.0,
                      double f_max = 400.0, double min_prominence = 4.0);

/// Goertzel single-bin DFT magnitude at `frequency_hz`, normalized like
/// magnitude_spectrum (|X|/n). Cheaper than a full FFT when only a few
/// frequencies are needed.
double goertzel_magnitude(const Signal& in, double frequency_hz);

}  // namespace vibguard::dsp
