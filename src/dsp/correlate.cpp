#include "dsp/correlate.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/fft.hpp"

namespace vibguard::dsp {
namespace {

void cross_correlate_direct(std::span<const double> a,
                            std::span<const double> b, std::size_t max_lag,
                            std::vector<double>& out) {
  out.assign(2 * max_lag + 1, 0.0);
  const auto na = static_cast<std::ptrdiff_t>(a.size());
  const auto nb = static_cast<std::ptrdiff_t>(b.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto lag = static_cast<std::ptrdiff_t>(i) -
                     static_cast<std::ptrdiff_t>(max_lag);
    double acc = 0.0;
    for (std::ptrdiff_t n = 0; n < na; ++n) {
      const std::ptrdiff_t m = n + lag;
      if (m >= 0 && m < nb) acc += a[static_cast<std::size_t>(n)] *
                                   b[static_cast<std::size_t>(m)];
    }
    out[i] = acc;
  }
}

void cross_correlate_fft(std::span<const double> a, std::span<const double> b,
                         std::size_t max_lag, CorrelationScratch& scratch) {
  // corr(lag) = sum_n a(n) b(n+lag) = IFFT(conj(FFT(a)) * FFT(b)) with
  // enough zero padding to avoid circular wrap.
  const std::size_t m = next_pow2(a.size() + b.size() + 2 * max_lag);
  std::vector<Complex>& fa = scratch.fa;
  std::vector<Complex>& fb = scratch.fb;
  fa.assign(m, Complex(0.0, 0.0));
  fb.assign(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = Complex(a[i], 0.0);
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = Complex(b[i], 0.0);
  fft_pow2(fa, false);
  fft_pow2(fb, false);
  for (std::size_t i = 0; i < m; ++i) fa[i] = std::conj(fa[i]) * fb[i];
  fft_pow2(fa, true);
  std::vector<double>& out = scratch.corr;
  out.assign(2 * max_lag + 1, 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto lag = static_cast<std::ptrdiff_t>(i) -
                     static_cast<std::ptrdiff_t>(max_lag);
    const std::size_t idx =
        lag >= 0 ? static_cast<std::size_t>(lag)
                 : m - static_cast<std::size_t>(-lag);
    out[i] = fa[idx].real();
  }
}

}  // namespace

const std::vector<double>& cross_correlate(std::span<const double> a,
                                           std::span<const double> b,
                                           std::size_t max_lag,
                                           CorrelationScratch& scratch) {
  // Direct evaluation is cheaper for short inputs; FFT wins decisively for
  // the second-scale 16 kHz recordings the synchronizer handles.
  const std::size_t work = std::min(a.size(), b.size()) * (2 * max_lag + 1);
  if (work < 1u << 18) {
    cross_correlate_direct(a, b, max_lag, scratch.corr);
  } else {
    cross_correlate_fft(a, b, max_lag, scratch);
  }
  return scratch.corr;
}

std::vector<double> cross_correlate(std::span<const double> a,
                                    std::span<const double> b,
                                    std::size_t max_lag) {
  CorrelationScratch scratch;
  cross_correlate(a, b, max_lag, scratch);
  return std::move(scratch.corr);
}

std::ptrdiff_t estimate_delay(std::span<const double> a,
                              std::span<const double> b, std::size_t max_lag,
                              CorrelationScratch& scratch) {
  const auto& corr = cross_correlate(a, b, max_lag, scratch);
  const auto best =
      std::max_element(corr.begin(), corr.end()) - corr.begin();
  return best - static_cast<std::ptrdiff_t>(max_lag);
}

std::ptrdiff_t estimate_delay(std::span<const double> a,
                              std::span<const double> b,
                              std::size_t max_lag) {
  CorrelationScratch scratch;
  return estimate_delay(a, b, max_lag, scratch);
}

std::pair<Signal, Signal> align_by_delay(const Signal& a, const Signal& b,
                                         std::ptrdiff_t delay) {
  VIBGUARD_REQUIRE(a.sample_rate() == b.sample_rate(),
                   "alignment requires matching sample rates");
  Signal ta = a, tb = b;
  if (delay > 0) {
    const auto d = std::min<std::size_t>(static_cast<std::size_t>(delay),
                                         tb.size());
    tb = tb.slice(d, tb.size());
  } else if (delay < 0) {
    const auto d = std::min<std::size_t>(static_cast<std::size_t>(-delay),
                                         ta.size());
    ta = ta.slice(d, ta.size());
  }
  const std::size_t n = std::min(ta.size(), tb.size());
  return {ta.slice(0, n), tb.slice(0, n)};
}

double peak_normalized_correlation(std::span<const double> a,
                                   std::span<const double> b,
                                   std::size_t max_lag) {
  double ea = 0.0, eb = 0.0;
  for (double x : a) ea += x * x;
  for (double x : b) eb += x * x;
  if (ea <= 0.0 || eb <= 0.0) return 0.0;
  const auto corr = cross_correlate(a, b, max_lag);
  double best = 0.0;
  for (double c : corr) best = std::max(best, std::abs(c));
  return best / std::sqrt(ea * eb);
}

}  // namespace vibguard::dsp
