// Short-time Fourier transform and the Spectrogram container.
//
// The paper's vibration-domain features are power spectrograms computed with
// a 64-point window / 64-point FFT on 200 Hz accelerometer data (Sec. VI-B).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/signal.hpp"
#include "dsp/window.hpp"

namespace vibguard::dsp {

/// Time–frequency magnitude/power grid: frames (rows) × bins (columns).
class Spectrogram {
 public:
  Spectrogram() = default;

  /// `bins` one-sided frequency bins per frame, spaced `bin_hz` apart,
  /// frames `hop_seconds` apart.
  Spectrogram(std::size_t frames, std::size_t bins, double bin_hz,
              double hop_seconds);

  std::size_t frames() const { return frames_; }
  std::size_t bins() const { return bins_; }
  double bin_hz() const { return bin_hz_; }
  double hop_seconds() const { return hop_seconds_; }

  double& at(std::size_t frame, std::size_t bin);
  double at(std::size_t frame, std::size_t bin) const;

  /// Raw pointer to one frame's `bins()` contiguous values — the unchecked
  /// fast path for inner loops (`frame` must be < frames()).
  double* row(std::size_t frame) { return data_.data() + frame * bins_; }
  const double* row(std::size_t frame) const {
    return data_.data() + frame * bins_;
  }

  /// Row-major flat view (frame-major).
  std::span<const double> values() const { return data_; }
  std::span<double> values() { return data_; }

  /// Largest cell value; 0 for an empty spectrogram.
  double max_value() const;

  /// Divides all cells by the maximum value (no-op if max <= 0). This is the
  /// paper's vibration-domain normalization (Sec. VI-C).
  void normalize_by_max();

  /// Returns a copy with bins whose center frequency is <= cutoff_hz
  /// removed. Implements the accelerometer-artifact crop (Sec. VI-B).
  Spectrogram crop_low_frequencies(double cutoff_hz) const;

  /// In-place variant of crop_low_frequencies: compacts the surviving bins
  /// within the existing storage (no allocation).
  void crop_low_frequencies_in_place(double cutoff_hz);

  /// Reconfigures shape and metadata in place, reusing storage capacity.
  /// All cells are reset to zero and bin 0 is re-centered at 0 Hz.
  void reshape(std::size_t frames, std::size_t bins, double bin_hz,
               double hop_seconds);

  /// Truncates/zero-pads along time to exactly `frames` rows.
  Spectrogram resized_frames(std::size_t frames) const;

  /// Mean over frames for each bin (average spectrum).
  std::vector<double> mean_over_time() const;

 private:
  std::size_t frames_ = 0;
  std::size_t bins_ = 0;
  double bin_hz_ = 0.0;
  double hop_seconds_ = 0.0;
  double bin0_hz_ = 0.0;  // center frequency of column 0
  std::vector<double> data_;

  friend Spectrogram stft_power(const Signal&, std::size_t, std::size_t,
                                WindowType);
};

/// Power spectrogram: squared one-sided FFT magnitudes of windowed frames.
/// `window_size` samples per frame, advanced by `hop` samples; FFT length
/// equals window_size (the paper uses window = FFT = 64).
Spectrogram stft_power(const Signal& signal, std::size_t window_size,
                       std::size_t hop,
                       WindowType window = WindowType::kHann);

/// Allocation-free overload: reshapes `out` (reusing its storage) and fills
/// it with the power spectrogram. Uses the thread-local window/plan caches,
/// so repeated calls at steady state perform no heap allocations.
void stft_power_into(const Signal& signal, std::size_t window_size,
                     std::size_t hop, Spectrogram& out,
                     WindowType window = WindowType::kHann);

/// 2-D Pearson correlation of two equal-shaped spectrograms (paper Eq. 6).
/// Shorter inputs are compared over the overlapping frame range; returns 0
/// if the correlation is degenerate (see correlation_2d_ex).
double correlation_2d(const Spectrogram& a, const Spectrogram& b);

/// correlation_2d result with an explicit degeneracy flag. `degenerate` is
/// true when no meaningful correlation exists: the overlap is empty, either
/// operand has zero variance over it, or the inputs contain non-finite
/// values; `value` is 0 in that case. Callers that must distinguish "truly
/// uncorrelated" from "cannot be correlated" (core/detector.hpp) use this
/// instead of the plain wrapper.
struct Correlation2dResult {
  double value = 0.0;
  bool degenerate = false;
};

Correlation2dResult correlation_2d_ex(const Spectrogram& a,
                                      const Spectrogram& b);

/// Frame-at-a-time STFT with carried overlap state, for push pipelines.
///
/// Samples arrive in arbitrarily sized chunks (down to single samples);
/// every time enough samples accumulate for a full window, the frame's
/// power spectrum is computed through the same fused plan kernel the batch
/// stft_power_into uses and appended to the internal row store. Because
/// each emitted frame is the kernel applied to exactly the samples batch
/// processing would hand it, the emitted rows are bit-identical to the
/// batch spectrogram's rows for any chunking of the input (the one batch
/// behavior not reproduced is the zero-pad of inputs shorter than one
/// window — a stream that short has simply not produced a frame yet).
class StreamingStft {
 public:
  StreamingStft() = default;

  /// Resets the carried state for a new stream (capacity retained).
  void reset(std::size_t window_size, std::size_t hop,
             WindowType window = WindowType::kHann);

  /// Appends samples to the stream; returns the number of frames emitted by
  /// this push.
  std::size_t push(std::span<const double> samples);

  std::size_t window_size() const { return window_; }
  std::size_t hop() const { return hop_; }
  std::size_t frames() const { return frames_; }
  std::size_t bins() const { return bins_; }

  /// One emitted frame's `bins()` contiguous power values.
  const double* row(std::size_t frame) const {
    return rows_.data() + frame * bins_;
  }

  /// All emitted frames, row-major.
  std::span<const double> values() const {
    return {rows_.data(), frames_ * bins_};
  }

 private:
  std::size_t window_ = 0;
  std::size_t hop_ = 0;
  std::size_t bins_ = 0;
  std::size_t frames_ = 0;
  WindowType type_ = WindowType::kHann;
  std::vector<double> pending_;  ///< carried samples not yet consumed
  std::vector<double> rows_;     ///< emitted power frames, row-major
};

/// Incremental 2-D Pearson: the five sufficient statistics of Eq. 6
/// (Σa, Σb, Σa², Σb², Σab) updated per pushed span, so a streaming pipeline
/// can score a growing spectrogram pair in O(new cells) per push. Chunks
/// accumulate through the dispatched SIMD moment kernel; the running value
/// applies the same degeneracy rules as correlation_2d_ex. Pearson is
/// scale-invariant, so callers may feed unnormalized power cells.
class StreamingPearson {
 public:
  void reset() { *this = StreamingPearson{}; }

  /// Folds `n` paired cells into the running moments.
  void add(const double* a, const double* b, std::size_t n);

  /// Cells accumulated so far.
  std::size_t count() const { return count_; }

  /// Correlation over everything accumulated so far (degenerate while empty
  /// or constant, exactly as correlation_2d_ex).
  Correlation2dResult value() const;

 private:
  double sa_ = 0.0, sb_ = 0.0, saa_ = 0.0, sbb_ = 0.0, sab_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace vibguard::dsp
