// AVX2+FMA kernel implementations. Compiled as the only translation unit
// with -mavx2 -mfma (and -ffp-contract=off so scalar tail loops round
// exactly like the scalar reference); entered only after cpuid confirms
// both features.
//
// Lane discipline: the elementwise kernels (multiply, butterfly_stage,
// fft_stage2_4, fft_stages, complex_multiply_to, rfft_split_power,
// linear_interp) evaluate per-output
// expressions with the same operations in the same order as the scalar
// kernels — multiplication/addition operand swaps only where IEEE-754
// results are bitwise unchanged — so they are bit-identical to scalar. The
// reductions (dot, dot_reverse, pearson_moments) use 4-lane FMA
// accumulators and differ from scalar by reassociation only.
#include "dsp/simd.hpp"

#if VIBGUARD_SIMD_AVX2

#include <immintrin.h>

#include <cstddef>

namespace vibguard::dsp::simd::avx2 {
namespace {

// Two complex<double> per __m256d: [re0 im0 re1 im1].
// Textbook complex product per lane-pair:
//   re = xr*wr - xi*wi, im = xi*wr + xr*wi
inline __m256d cmul(__m256d x, __m256d w) {
  const __m256d wr = _mm256_movedup_pd(w);          // [wr0 wr0 wr1 wr1]
  const __m256d wi = _mm256_permute_pd(w, 0xF);     // [wi0 wi0 wi1 wi1]
  const __m256d xs = _mm256_permute_pd(x, 0x5);     // [xi0 xr0 xi1 xr1]
  return _mm256_addsub_pd(_mm256_mul_pd(x, wr), _mm256_mul_pd(xs, wi));
}

// Sign mask that conjugates both packed complexes (negates lanes 1 and 3).
inline __m256d conj_mask() { return _mm256_set_pd(-0.0, 0.0, -0.0, 0.0); }

inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

void multiply(const double* a, const double* b, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void butterfly_stage(Complex* lo, Complex* hi, const Complex* tw,
                     std::size_t half, bool inverse) {
  double* plo = reinterpret_cast<double*>(lo);
  double* phi = reinterpret_cast<double*>(hi);
  const double* ptw = reinterpret_cast<const double*>(tw);
  const __m256d cm = conj_mask();
  std::size_t j = 0;
  for (; j + 4 <= half; j += 4) {
    __m256d w0 = _mm256_loadu_pd(ptw + 2 * j);
    __m256d w1 = _mm256_loadu_pd(ptw + 2 * j + 4);
    if (inverse) {
      w0 = _mm256_xor_pd(w0, cm);
      w1 = _mm256_xor_pd(w1, cm);
    }
    const __m256d v0 = cmul(_mm256_loadu_pd(phi + 2 * j), w0);
    const __m256d v1 = cmul(_mm256_loadu_pd(phi + 2 * j + 4), w1);
    const __m256d u0 = _mm256_loadu_pd(plo + 2 * j);
    const __m256d u1 = _mm256_loadu_pd(plo + 2 * j + 4);
    _mm256_storeu_pd(plo + 2 * j, _mm256_add_pd(u0, v0));
    _mm256_storeu_pd(plo + 2 * j + 4, _mm256_add_pd(u1, v1));
    _mm256_storeu_pd(phi + 2 * j, _mm256_sub_pd(u0, v0));
    _mm256_storeu_pd(phi + 2 * j + 4, _mm256_sub_pd(u1, v1));
  }
  for (; j + 2 <= half; j += 2) {
    __m256d w = _mm256_loadu_pd(ptw + 2 * j);
    if (inverse) w = _mm256_xor_pd(w, cm);
    const __m256d v = cmul(_mm256_loadu_pd(phi + 2 * j), w);
    const __m256d u = _mm256_loadu_pd(plo + 2 * j);
    _mm256_storeu_pd(plo + 2 * j, _mm256_add_pd(u, v));
    _mm256_storeu_pd(phi + 2 * j, _mm256_sub_pd(u, v));
  }
  if (j < half) {
    scalar::butterfly_stage(lo + j, hi + j, tw + j, half - j, inverse);
  }
}

void fft_stages(Complex* d, std::size_t n, const Complex* tw, bool inverse) {
  // Stages run fused in pairs (radix-2^2 blocking): stage `len` and stage
  // `2*len` butterflies are computed in registers before storing, halving
  // the memory round-trips. Per element this is exactly the scalar
  // arithmetic in the scalar stage order — only the intermediate store/load
  // between the two stages is elided — so the result stays bit-identical.
  const __m256d cm = conj_mask();
  std::size_t len = 8;
  while (len <= n) {
    const std::size_t half = len / 2;
    if (2 * len <= n) {
      const std::size_t len2 = 2 * len;
      const double* ptw1 = reinterpret_cast<const double*>(tw);
      const double* ptw2 = reinterpret_cast<const double*>(tw + half);
      for (std::size_t i = 0; i < n; i += len2) {
        double* p = reinterpret_cast<double*>(d + i);
        // half >= 4 and a power of two here, so the j loop has no tail.
        for (std::size_t j = 0; j + 2 <= half; j += 2) {
          __m256d w1 = _mm256_loadu_pd(ptw1 + 2 * j);
          __m256d w2a = _mm256_loadu_pd(ptw2 + 2 * j);
          __m256d w2b = _mm256_loadu_pd(ptw2 + 2 * (j + half));
          if (inverse) {
            w1 = _mm256_xor_pd(w1, cm);
            w2a = _mm256_xor_pd(w2a, cm);
            w2b = _mm256_xor_pd(w2b, cm);
          }
          const __m256d alo = _mm256_loadu_pd(p + 2 * j);
          const __m256d ahi = _mm256_loadu_pd(p + 2 * (j + half));
          const __m256d blo = _mm256_loadu_pd(p + 2 * (j + len));
          const __m256d bhi = _mm256_loadu_pd(p + 2 * (j + len + half));
          // Stage `len` on both sub-blocks.
          const __m256d va = cmul(ahi, w1);
          const __m256d vb = cmul(bhi, w1);
          const __m256d a0 = _mm256_add_pd(alo, va);
          const __m256d a1 = _mm256_sub_pd(alo, va);
          const __m256d b0 = _mm256_add_pd(blo, vb);
          const __m256d b1 = _mm256_sub_pd(blo, vb);
          // Stage `2*len`: lo halves pair up, hi halves pair up.
          const __m256d v0 = cmul(b0, w2a);
          const __m256d v1 = cmul(b1, w2b);
          _mm256_storeu_pd(p + 2 * j, _mm256_add_pd(a0, v0));
          _mm256_storeu_pd(p + 2 * (j + len), _mm256_sub_pd(a0, v0));
          _mm256_storeu_pd(p + 2 * (j + half), _mm256_add_pd(a1, v1));
          _mm256_storeu_pd(p + 2 * (j + len + half), _mm256_sub_pd(a1, v1));
        }
      }
      tw += half + len;
      len <<= 2;
    } else {
      for (std::size_t i = 0; i < n; i += len) {
        butterfly_stage(d + i, d + i + half, tw, half, inverse);
      }
      tw += half;
      len <<= 1;
    }
  }
}

void fft_stage2_4(Complex* d, std::size_t n, bool inverse) {
  if (n < 4) {
    scalar::fft_stage2_4(d, n, inverse);
    return;
  }
  double* pd = reinterpret_cast<double*>(d);
  // len-4 stage twiddle is -i (forward) / +i (inverse): a re/im swap with
  // one sign flip. Negating via XOR matches the scalar code's negation
  // bit-for-bit.
  const __m256d v1_sign = inverse ? _mm256_set_pd(0.0, -0.0, 0.0, 0.0)
                                  : _mm256_set_pd(-0.0, 0.0, 0.0, 0.0);
  for (std::size_t i = 0; i < n; i += 4) {
    const __m256d a = _mm256_loadu_pd(pd + 2 * i);      // [c0 c1]
    const __m256d b = _mm256_loadu_pd(pd + 2 * i + 4);  // [c2 c3]
    // len-2 butterflies within each pair: [x y] -> [x+y, x-y].
    const __m256d aswap = _mm256_permute2f128_pd(a, a, 0x01);
    const __m256d bswap = _mm256_permute2f128_pd(b, b, 0x01);
    const __m256d t =
        _mm256_permute2f128_pd(_mm256_add_pd(a, aswap),
                               _mm256_sub_pd(a, aswap), 0x20);
    const __m256d u =
        _mm256_permute2f128_pd(_mm256_add_pd(b, bswap),
                               _mm256_sub_pd(b, bswap), 0x20);
    // len-4: v = [u0, (∓i)*u1]; the swap moves im/re of u1 into place.
    const __m256d uswap = _mm256_permute_pd(u, 0x5);
    const __m256d v =
        _mm256_xor_pd(_mm256_blend_pd(u, uswap, 0b1100), v1_sign);
    _mm256_storeu_pd(pd + 2 * i, _mm256_add_pd(t, v));
    _mm256_storeu_pd(pd + 2 * i + 4, _mm256_sub_pd(t, v));
  }
}

void complex_multiply_to(Complex* out, const Complex* a, const Complex* b,
                         std::size_t n) {
  double* po = reinterpret_cast<double*>(out);
  const double* pa = reinterpret_cast<const double*>(a);
  const double* pb = reinterpret_cast<const double*>(b);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm256_storeu_pd(po + 2 * i, cmul(_mm256_loadu_pd(pa + 2 * i),
                                      _mm256_loadu_pd(pb + 2 * i)));
  }
  if (i < n) scalar::complex_multiply_to(out + i, a + i, b + i, n - i);
}

void rfft_split_power(const Complex* z, const Complex* rtw, std::size_t h,
                      double norm2, double* out) {
  const double* pz = reinterpret_cast<const double*>(z);
  const double* ptw = reinterpret_cast<const double*>(rtw);
  const __m256d cm = conj_mask();
  const __m256d halfv = _mm256_set1_pd(0.5);
  // The odd-part twiddle (0, -0.5) packed for both lanes.
  const __m256d w1 = _mm256_set_pd(-0.5, 0.0, -0.5, 0.0);
  const __m256d n2 = _mm256_set1_pd(norm2);
  std::size_t k = 1;
  for (; k + 4 <= h; k += 4) {
    const __m256d zk0 = _mm256_loadu_pd(pz + 2 * k);
    const __m256d zk1 = _mm256_loadu_pd(pz + 2 * (k + 2));
    __m256d zc0 = _mm256_loadu_pd(pz + 2 * (h - k - 1));
    __m256d zc1 = _mm256_loadu_pd(pz + 2 * (h - k - 3));
    zc0 = _mm256_xor_pd(_mm256_permute2f128_pd(zc0, zc0, 0x01), cm);
    zc1 = _mm256_xor_pd(_mm256_permute2f128_pd(zc1, zc1, 0x01), cm);
    const __m256d even0 = _mm256_mul_pd(halfv, _mm256_add_pd(zk0, zc0));
    const __m256d even1 = _mm256_mul_pd(halfv, _mm256_add_pd(zk1, zc1));
    const __m256d odd0 = cmul(_mm256_sub_pd(zk0, zc0), w1);
    const __m256d odd1 = cmul(_mm256_sub_pd(zk1, zc1), w1);
    const __m256d x0 =
        _mm256_add_pd(even0, cmul(odd0, _mm256_loadu_pd(ptw + 2 * k)));
    const __m256d x1 =
        _mm256_add_pd(even1, cmul(odd1, _mm256_loadu_pd(ptw + 2 * (k + 2))));
    const __m256d sq0 = _mm256_mul_pd(x0, x0);
    const __m256d sq1 = _mm256_mul_pd(x1, x1);
    // hadd interleaves the four bins as [k, k+2, k+1, k+3]; permute back to
    // ascending order for one packed store.
    const __m256d bins = _mm256_permute4x64_pd(_mm256_hadd_pd(sq0, sq1),
                                               _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_pd(out + k, _mm256_mul_pd(bins, n2));
  }
  for (; k + 2 <= h; k += 2) {
    const __m256d zk = _mm256_loadu_pd(pz + 2 * k);
    // z[h-k], z[h-k-1] loaded forward then lane-swapped into descending
    // order so lane pair p holds conj(z[h - (k+p)]).
    __m256d zc = _mm256_loadu_pd(pz + 2 * (h - k - 1));
    zc = _mm256_permute2f128_pd(zc, zc, 0x01);
    zc = _mm256_xor_pd(zc, cm);
    const __m256d even = _mm256_mul_pd(halfv, _mm256_add_pd(zk, zc));
    const __m256d odd = cmul(_mm256_sub_pd(zk, zc), w1);
    const __m256d x =
        _mm256_add_pd(even, cmul(odd, _mm256_loadu_pd(ptw + 2 * k)));
    const __m256d sq = _mm256_mul_pd(x, x);
    // hadd pairs re^2+im^2 within each 128-bit lane.
    const __m256d p = _mm256_mul_pd(_mm256_hadd_pd(sq, sq), n2);
    out[k] = _mm256_cvtsd_f64(p);
    out[k + 1] = _mm_cvtsd_f64(_mm256_extractf128_pd(p, 1));
  }
  for (; k < h; ++k) {
    const Complex zk = z[k];
    const Complex zc = std::conj(z[h - k]);
    const Complex even = 0.5 * (zk + zc);
    const Complex odd = Complex(0.0, -0.5) * (zk - zc);
    const Complex x = even + rtw[k] * odd;
    out[k] = (x.real() * x.real() + x.imag() * x.imag()) * norm2;
  }
}

double dot(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  double s = hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

double dot_reverse(const double* taps, const double* x, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    const __m256d vt = _mm256_loadu_pd(taps + t);
    // x[-t-3..-t] loaded ascending, then reversed to match tap order.
    __m256d vx = _mm256_loadu_pd(x - t - 3);
    vx = _mm256_permute4x64_pd(vx, _MM_SHUFFLE(0, 1, 2, 3));
    acc = _mm256_fmadd_pd(vt, vx, acc);
  }
  double s = hsum(acc);
  for (; t < n; ++t) s += taps[t] * x[-static_cast<std::ptrdiff_t>(t)];
  return s;
}

void linear_interp(const double* in, std::size_t in_size, double ratio,
                   double* out, std::size_t n) {
  const __m256d vratio = _mm256_set1_pd(ratio);
  const __m256d ones = _mm256_set1_pd(1.0);
  // floor(pos) -> int64 lanes via the 2^52 mantissa trick (indices are far
  // below 2^51).
  const __m256d magic = _mm256_set1_pd(4503599627370496.0);  // 2^52
  const __m256i magic_bits = _mm256_castpd_si256(magic);
  const __m256i vsize = _mm256_set1_epi64x(static_cast<long long>(in_size));
  const __m256i one64 = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d idx = _mm256_set_pd(
        static_cast<double>(i + 3), static_cast<double>(i + 2),
        static_cast<double>(i + 1), static_cast<double>(i));
    const __m256d pos = _mm256_mul_pd(idx, vratio);
    const __m256d flo = _mm256_floor_pd(pos);
    const __m256d frac = _mm256_sub_pd(pos, flo);
    const __m256i lo = _mm256_sub_epi64(
        _mm256_castpd_si256(_mm256_add_pd(flo, magic)), magic_bits);
    const __m256i lop1 = _mm256_add_epi64(lo, one64);
    // hi = lo + 1 where lo + 1 < in_size, else lo (cmp mask is -1/0).
    const __m256i hi =
        _mm256_sub_epi64(lo, _mm256_cmpgt_epi64(vsize, lop1));
    const __m256d vlo = _mm256_i64gather_pd(in, lo, 8);
    const __m256d vhi = _mm256_i64gather_pd(in, hi, 8);
    const __m256d r =
        _mm256_add_pd(_mm256_mul_pd(vlo, _mm256_sub_pd(ones, frac)),
                      _mm256_mul_pd(vhi, frac));
    _mm256_storeu_pd(out + i, r);
  }
  // Tail keeps the global output index: pos depends on i, so the generic
  // scalar kernel (which restarts at index 0) cannot be reused here.
  for (; i < n; ++i) {
    const double pos = static_cast<double>(i) * ratio;
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = lo + 1 < in_size ? lo + 1 : lo;
    const double frac = pos - static_cast<double>(lo);
    out[i] = in[lo] * (1.0 - frac) + in[hi] * frac;
  }
}

PearsonMoments pearson_moments(const double* a, const double* b,
                               std::size_t n) {
  __m256d sa = _mm256_setzero_pd();
  __m256d sb = _mm256_setzero_pd();
  __m256d saa = _mm256_setzero_pd();
  __m256d sbb = _mm256_setzero_pd();
  __m256d sab = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    sa = _mm256_add_pd(sa, va);
    sb = _mm256_add_pd(sb, vb);
    saa = _mm256_fmadd_pd(va, va, saa);
    sbb = _mm256_fmadd_pd(vb, vb, sbb);
    sab = _mm256_fmadd_pd(va, vb, sab);
  }
  PearsonMoments m;
  m.sa = hsum(sa);
  m.sb = hsum(sb);
  m.saa = hsum(saa);
  m.sbb = hsum(sbb);
  m.sab = hsum(sab);
  for (; i < n; ++i) {
    const double xa = a[i];
    const double xb = b[i];
    m.sa += xa;
    m.sb += xb;
    m.saa += xa * xa;
    m.sbb += xb * xb;
    m.sab += xa * xb;
  }
  return m;
}

}  // namespace

const Ops kOps = {
    .level = Level::kAvx2,
    .multiply = &multiply,
    .butterfly_stage = &butterfly_stage,
    .fft_stage2_4 = &fft_stage2_4,
    .fft_stages = &fft_stages,
    .complex_multiply_to = &complex_multiply_to,
    .rfft_split_power = &rfft_split_power,
    .dot = &dot,
    .dot_reverse = &dot_reverse,
    .linear_interp = &linear_interp,
    .pearson_moments = &pearson_moments,
};

}  // namespace vibguard::dsp::simd::avx2

#endif  // VIBGUARD_SIMD_AVX2
