#include "dsp/window.hpp"

#include <cmath>
#include <map>
#include <numbers>

#include "common/error.hpp"

namespace vibguard::dsp {

std::vector<double> make_window(WindowType type, std::size_t n) {
  VIBGUARD_REQUIRE(n > 0, "window length must be positive");
  std::vector<double> w(n, 1.0);
  const double denom = static_cast<double>(n);
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  switch (type) {
    case WindowType::kRectangular:
      break;
    case WindowType::kHann:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * static_cast<double>(i) / denom);
      }
      break;
    case WindowType::kHamming:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] =
            0.54 - 0.46 * std::cos(kTwoPi * static_cast<double>(i) / denom);
      }
      break;
    case WindowType::kBlackman:
      for (std::size_t i = 0; i < n; ++i) {
        const double x = kTwoPi * static_cast<double>(i) / denom;
        w[i] = 0.42 - 0.5 * std::cos(x) + 0.08 * std::cos(2.0 * x);
      }
      break;
  }
  return w;
}

const std::vector<double>& cached_window(WindowType type, std::size_t n) {
  struct Key {
    WindowType type;
    std::size_t n;
    bool operator<(const Key& o) const {
      return type != o.type ? type < o.type : n < o.n;
    }
  };
  thread_local std::map<Key, std::vector<double>> cache;
  auto it = cache.find(Key{type, n});
  if (it == cache.end()) {
    it = cache.emplace(Key{type, n}, make_window(type, n)).first;
  }
  return it->second;
}

void apply_window(std::span<double> frame, std::span<const double> window) {
  VIBGUARD_REQUIRE(frame.size() == window.size(),
                   "frame and window lengths must match");
  for (std::size_t i = 0; i < frame.size(); ++i) frame[i] *= window[i];
}

double window_sum(std::span<const double> window) {
  double acc = 0.0;
  for (double w : window) acc += w;
  return acc;
}

}  // namespace vibguard::dsp
