#include "dsp/stft.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "common/error.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/simd.hpp"

namespace vibguard::dsp {

Spectrogram::Spectrogram(std::size_t frames, std::size_t bins, double bin_hz,
                         double hop_seconds)
    : frames_(frames),
      bins_(bins),
      bin_hz_(bin_hz),
      hop_seconds_(hop_seconds),
      data_(frames * bins, 0.0) {}

double& Spectrogram::at(std::size_t frame, std::size_t bin) {
  VIBGUARD_REQUIRE(frame < frames_ && bin < bins_,
                   "spectrogram index out of range");
  return data_[frame * bins_ + bin];
}

double Spectrogram::at(std::size_t frame, std::size_t bin) const {
  VIBGUARD_REQUIRE(frame < frames_ && bin < bins_,
                   "spectrogram index out of range");
  return data_[frame * bins_ + bin];
}

double Spectrogram::max_value() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, v);
  return best;
}

void Spectrogram::normalize_by_max() {
  const double m = max_value();
  if (m <= 0.0) return;
  for (double& v : data_) v /= m;
}

Spectrogram Spectrogram::crop_low_frequencies(double cutoff_hz) const {
  // Count bins at or below the cutoff, starting from bin0.
  std::size_t drop = 0;
  while (drop < bins_ &&
         bin0_hz_ + static_cast<double>(drop) * bin_hz_ <= cutoff_hz) {
    ++drop;
  }
  Spectrogram out(frames_, bins_ - drop, bin_hz_, hop_seconds_);
  out.bin0_hz_ = bin0_hz_ + static_cast<double>(drop) * bin_hz_;
  // Each cropped frame is a contiguous run of the source frame.
  for (std::size_t f = 0; f < frames_; ++f) {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(f * bins_ + drop),
                out.bins_,
                out.data_.begin() + static_cast<std::ptrdiff_t>(f * out.bins_));
  }
  return out;
}

void Spectrogram::crop_low_frequencies_in_place(double cutoff_hz) {
  std::size_t drop = 0;
  while (drop < bins_ &&
         bin0_hz_ + static_cast<double>(drop) * bin_hz_ <= cutoff_hz) {
    ++drop;
  }
  if (drop == 0) return;
  const std::size_t new_bins = bins_ - drop;
  // Each destination run starts strictly before its source run, so a
  // forward copy compacts safely.
  for (std::size_t f = 0; f < frames_; ++f) {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(f * bins_ + drop),
                new_bins,
                data_.begin() + static_cast<std::ptrdiff_t>(f * new_bins));
  }
  bin0_hz_ += static_cast<double>(drop) * bin_hz_;
  bins_ = new_bins;
  data_.resize(frames_ * bins_);
}

void Spectrogram::reshape(std::size_t frames, std::size_t bins, double bin_hz,
                          double hop_seconds) {
  frames_ = frames;
  bins_ = bins;
  bin_hz_ = bin_hz;
  hop_seconds_ = hop_seconds;
  bin0_hz_ = 0.0;
  data_.assign(frames * bins, 0.0);
}

Spectrogram Spectrogram::resized_frames(std::size_t frames) const {
  Spectrogram out(frames, bins_, bin_hz_, hop_seconds_);
  out.bin0_hz_ = bin0_hz_;
  const std::size_t copy = std::min(frames, frames_);
  std::copy_n(data_.begin(), copy * bins_, out.data_.begin());
  return out;
}

std::vector<double> Spectrogram::mean_over_time() const {
  std::vector<double> avg(bins_, 0.0);
  if (frames_ == 0) return avg;
  for (std::size_t f = 0; f < frames_; ++f) {
    for (std::size_t b = 0; b < bins_; ++b) {
      avg[b] += data_[f * bins_ + b];
    }
  }
  for (double& v : avg) v /= static_cast<double>(frames_);
  return avg;
}

Spectrogram stft_power(const Signal& signal, std::size_t window_size,
                       std::size_t hop, WindowType window) {
  Spectrogram out;
  stft_power_into(signal, window_size, hop, out, window);
  return out;
}

void stft_power_into(const Signal& signal, std::size_t window_size,
                     std::size_t hop, Spectrogram& out, WindowType window) {
  VIBGUARD_REQUIRE(window_size > 0, "window size must be positive");
  VIBGUARD_REQUIRE(hop > 0, "hop must be positive");
  const double* samples = signal.samples().data();
  std::size_t n = signal.size();
  const double rate = signal.sample_rate();
  if (n != 0 && n < window_size) {
    // Guarantee at least one frame for short inputs (e.g. brief commands at
    // the 200 Hz accelerometer rate). The pad buffer is thread-local so the
    // steady state stays allocation-free.
    thread_local std::vector<double> padded;
    padded.assign(window_size, 0.0);
    std::copy_n(samples, n, padded.begin());
    samples = padded.data();
    n = window_size;
  }
  const std::size_t frames =
      n >= window_size ? 1 + (n - window_size) / hop : 0;
  const std::size_t bins = window_size / 2 + 1;
  out.reshape(frames, bins, rate / static_cast<double>(window_size),
              static_cast<double>(hop) / rate);

  // One plan and one window for the whole signal; each frame's windowing,
  // transform and squaring run fused, writing straight through the
  // unchecked row pointer.
  const auto& win = cached_window(window, window_size);
  const FftPlan& plan = get_plan(window_size);
  for (std::size_t f = 0; f < frames; ++f) {
    plan.windowed_power(samples + f * hop, win.data(),
                        std::span<double>(out.row(f), bins));
  }
}

double correlation_2d(const Spectrogram& a, const Spectrogram& b) {
  return correlation_2d_ex(a, b).value;
}

Correlation2dResult correlation_2d_ex(const Spectrogram& a,
                                      const Spectrogram& b) {
  VIBGUARD_REQUIRE(a.bins() == b.bins(),
                   "2-D correlation requires matching bin counts");
  const std::size_t frames = std::min(a.frames(), b.frames());
  if (frames == 0 || a.bins() == 0) return {0.0, true};
  const std::size_t n = frames * a.bins();
  // Single fused accumulation of all five moments (instead of separate
  // mean passes followed by a centered pass), through the dispatched
  // SIMD kernel.
  const simd::PearsonMoments m =
      simd::pearson_moments(a.values().data(), b.values().data(), n);
  const double inv_n = 1.0 / static_cast<double>(n);
  const double cov = m.sab - m.sa * m.sb * inv_n;
  const double var_a = m.saa - m.sa * m.sa * inv_n;
  const double var_b = m.sbb - m.sb * m.sb * inv_n;
  // NaN anywhere in the inputs poisons the moments; the comparisons below
  // are written so a NaN variance lands in the degenerate branch instead of
  // propagating into the score. The variance threshold is relative to the
  // raw second moment rather than exactly zero: the fused difference
  // saa - sa^2/n cancels catastrophically on (near-)constant input, and
  // vectorized accumulation orders leave rounding residue ~ulp(saa) where
  // the sequential order happens to cancel exactly. Input whose variance is
  // below 1e-12 of its energy is constant to within float precision, so it
  // is degenerate regardless of which dispatch level summed it.
  constexpr double kVarEps = 1e-12;
  if (!(var_a > kVarEps * m.saa) || !(var_b > kVarEps * m.sbb) ||
      !std::isfinite(cov)) {
    return {0.0, true};
  }
  const double r = cov / std::sqrt(var_a * var_b);
  if (!std::isfinite(r)) return {0.0, true};
  return {r, false};
}

void StreamingStft::reset(std::size_t window_size, std::size_t hop,
                          WindowType window) {
  VIBGUARD_REQUIRE(window_size > 0, "window size must be positive");
  VIBGUARD_REQUIRE(hop > 0, "hop must be positive");
  window_ = window_size;
  hop_ = hop;
  bins_ = window_size / 2 + 1;
  frames_ = 0;
  type_ = window;
  pending_.clear();
  rows_.clear();
}

std::size_t StreamingStft::push(std::span<const double> samples) {
  VIBGUARD_REQUIRE(window_ > 0, "StreamingStft::reset must run first");
  pending_.insert(pending_.end(), samples.begin(), samples.end());
  if (pending_.size() < window_) return 0;

  const auto& win = cached_window(type_, window_);
  const FftPlan& plan = get_plan(window_);
  // Emit every completed frame, walking the pending buffer by hop. The
  // consumed prefix is erased once at the end so a push emitting many
  // frames moves the carried overlap only once.
  std::size_t offset = 0;
  std::size_t emitted = 0;
  while (offset + window_ <= pending_.size()) {
    rows_.resize((frames_ + 1) * bins_);
    plan.windowed_power(pending_.data() + offset, win.data(),
                        std::span<double>(rows_.data() + frames_ * bins_,
                                          bins_));
    ++frames_;
    ++emitted;
    offset += hop_;
  }
  if (offset > 0) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(offset));
  }
  return emitted;
}

void StreamingPearson::add(const double* a, const double* b, std::size_t n) {
  if (n == 0) return;
  const simd::PearsonMoments m = simd::pearson_moments(a, b, n);
  sa_ += m.sa;
  sb_ += m.sb;
  saa_ += m.saa;
  sbb_ += m.sbb;
  sab_ += m.sab;
  count_ += n;
}

Correlation2dResult StreamingPearson::value() const {
  if (count_ == 0) return {0.0, true};
  const double inv_n = 1.0 / static_cast<double>(count_);
  const double cov = sab_ - sa_ * sb_ * inv_n;
  const double var_a = saa_ - sa_ * sa_ * inv_n;
  const double var_b = sbb_ - sb_ * sb_ * inv_n;
  // Same relative-variance degeneracy guard as correlation_2d_ex: chunked
  // accumulation orders leave rounding residue where the batch order
  // cancels, so near-constant input must read degenerate at any chunking.
  constexpr double kVarEps = 1e-12;
  if (!(var_a > kVarEps * saa_) || !(var_b > kVarEps * sbb_) ||
      !std::isfinite(cov)) {
    return {0.0, true};
  }
  const double r = cov / std::sqrt(var_a * var_b);
  if (!std::isfinite(r)) return {0.0, true};
  return {r, false};
}

}  // namespace vibguard::dsp
