#include "dsp/fft.hpp"

#include "common/error.hpp"
#include "dsp/fft_plan.hpp"

namespace vibguard::dsp {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_pow2(std::span<Complex> data, bool inverse) {
  VIBGUARD_REQUIRE(is_pow2(data.size()),
                   "fft_pow2 requires a power-of-two length");
  get_plan(data.size()).transform(data, inverse);
}

std::vector<Complex> fft(std::span<const Complex> data, bool inverse) {
  if (data.empty()) return {};
  std::vector<Complex> out(data.begin(), data.end());
  get_plan(out.size()).transform(out, inverse);
  return out;
}

std::vector<Complex> fft_real(std::span<const double> data) {
  std::vector<Complex> buf(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) buf[i] = Complex(data[i], 0.0);
  if (!buf.empty()) get_plan(buf.size()).transform(buf, false);
  return buf;
}

std::vector<Complex> rfft(std::span<const double> data) {
  if (data.empty()) return {};
  std::vector<Complex> out(data.size() / 2 + 1);
  get_plan(data.size()).rfft(data, out);
  return out;
}

std::vector<double> magnitude_spectrum(std::span<const double> data) {
  if (data.empty()) return {};
  std::vector<double> mag(data.size() / 2 + 1);
  get_plan(data.size()).magnitude(data, mag);
  return mag;
}

void magnitude_spectrum(std::span<const double> data, std::span<double> out) {
  if (data.empty()) return;
  get_plan(data.size()).magnitude(data, out);
}

double bin_frequency(std::size_t k, std::size_t n, double sample_rate) {
  VIBGUARD_REQUIRE(n > 0, "bin_frequency requires n > 0");
  return static_cast<double>(k) * sample_rate / static_cast<double>(n);
}

}  // namespace vibguard::dsp
