#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace vibguard::dsp {
namespace {

void bit_reverse_permute(std::span<Complex> a) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

}  // namespace

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_pow2(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  VIBGUARD_REQUIRE(is_pow2(n), "fft_pow2 requires a power-of-two length");
  bit_reverse_permute(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = data[i + j];
        const Complex v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (Complex& x : data) x *= inv_n;
  }
}

std::vector<Complex> fft(std::span<const Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return {};
  std::vector<Complex> out(data.begin(), data.end());
  if (is_pow2(n)) {
    fft_pow2(out, inverse);
    return out;
  }

  // Bluestein's algorithm: express the DFT as a convolution and evaluate the
  // convolution with a power-of-two FFT.
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<Complex> w(n);  // chirp: exp(sign * i * pi * k^2 / n)
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids precision loss for large k.
    const auto k2 = static_cast<double>((k * k) % (2 * n));
    const double angle = sign * std::numbers::pi * k2 / static_cast<double>(n);
    w[k] = Complex(std::cos(angle), std::sin(angle));
  }

  const std::size_t m = next_pow2(2 * n - 1);
  std::vector<Complex> a(m, Complex(0.0, 0.0));
  std::vector<Complex> b(m, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) a[k] = out[k] * w[k];
  b[0] = std::conj(w[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = b[m - k] = std::conj(w[k]);
  }
  fft_pow2(a, false);
  fft_pow2(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2(a, true);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * w[k];
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (Complex& x : out) x *= inv_n;
  }
  return out;
}

std::vector<Complex> fft_real(std::span<const double> data) {
  std::vector<Complex> buf(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) buf[i] = Complex(data[i], 0.0);
  return fft(buf, false);
}

std::vector<double> magnitude_spectrum(std::span<const double> data) {
  if (data.empty()) return {};
  const auto spec = fft_real(data);
  const std::size_t n = data.size();
  std::vector<double> mag(n / 2 + 1);
  const double norm = 1.0 / static_cast<double>(n);
  for (std::size_t k = 0; k < mag.size(); ++k) {
    mag[k] = std::abs(spec[k]) * norm;
  }
  return mag;
}

double bin_frequency(std::size_t k, std::size_t n, double sample_rate) {
  VIBGUARD_REQUIRE(n > 0, "bin_frequency requires n > 0");
  return static_cast<double>(k) * sample_rate / static_cast<double>(n);
}

}  // namespace vibguard::dsp
