#include "dsp/spectral.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/fft.hpp"

namespace vibguard::dsp {

double band_energy(const Signal& signal, double low_hz, double high_hz) {
  VIBGUARD_REQUIRE(low_hz <= high_hz, "band bounds must satisfy low <= high");
  if (signal.empty()) return 0.0;
  const auto mag = magnitude_spectrum(signal.samples());
  const std::size_t n = signal.size();
  double acc = 0.0;
  for (std::size_t k = 0; k < mag.size(); ++k) {
    const double f = bin_frequency(k, n, signal.sample_rate());
    if (f >= low_hz && f <= high_hz) acc += mag[k] * mag[k];
  }
  return acc;
}

double band_energy_fraction(const Signal& signal, double low_hz,
                            double high_hz) {
  const double total = band_energy(signal, 0.0, signal.sample_rate() / 2.0);
  if (total <= 0.0) return 0.0;
  return band_energy(signal, low_hz, high_hz) / total;
}

double band_energy_fraction(const Signal& signal, double low_hz,
                            double high_hz, std::vector<double>& mag) {
  VIBGUARD_REQUIRE(low_hz <= high_hz, "band bounds must satisfy low <= high");
  if (signal.empty()) return 0.0;
  const std::size_t n = signal.size();
  mag.resize(n / 2 + 1);
  magnitude_spectrum(signal.samples(), mag);
  // Accumulate each sum in the same bin order as band_energy so the result
  // is bit-identical to the two-pass overload.
  const double nyquist = signal.sample_rate() / 2.0;
  double total = 0.0;
  for (std::size_t k = 0; k < mag.size(); ++k) {
    const double f = bin_frequency(k, n, signal.sample_rate());
    if (f >= 0.0 && f <= nyquist) total += mag[k] * mag[k];
  }
  if (total <= 0.0) return 0.0;
  double band = 0.0;
  for (std::size_t k = 0; k < mag.size(); ++k) {
    const double f = bin_frequency(k, n, signal.sample_rate());
    if (f >= low_hz && f <= high_hz) band += mag[k] * mag[k];
  }
  return band / total;
}

double spectral_centroid(const Signal& signal) {
  if (signal.empty()) return 0.0;
  const auto mag = magnitude_spectrum(signal.samples());
  const std::size_t n = signal.size();
  double num = 0.0, den = 0.0;
  for (std::size_t k = 0; k < mag.size(); ++k) {
    const double f = bin_frequency(k, n, signal.sample_rate());
    num += f * mag[k];
    den += mag[k];
  }
  return den > 0.0 ? num / den : 0.0;
}

std::vector<double> average_spectra(
    std::span<const std::vector<double>> spectra) {
  if (spectra.empty()) return {};
  const std::size_t n = spectra.front().size();
  std::vector<double> avg(n, 0.0);
  for (const auto& s : spectra) {
    VIBGUARD_REQUIRE(s.size() == n,
                     "average_spectra requires equal-length spectra");
    for (std::size_t i = 0; i < n; ++i) avg[i] += s[i];
  }
  for (double& v : avg) v /= static_cast<double>(spectra.size());
  return avg;
}

std::vector<double> magnitude_spectrum_resampled(const Signal& signal,
                                                 double max_hz,
                                                 std::size_t num_points) {
  VIBGUARD_REQUIRE(num_points >= 2, "need at least two output points");
  VIBGUARD_REQUIRE(max_hz > 0.0 && max_hz <= signal.sample_rate() / 2.0,
                   "max_hz must be in (0, Nyquist]");
  std::vector<double> out(num_points, 0.0);
  if (signal.empty()) return out;
  const auto mag = magnitude_spectrum(signal.samples());
  const double bin_hz = signal.sample_rate() / static_cast<double>(signal.size());
  for (std::size_t i = 0; i < num_points; ++i) {
    const double f = max_hz * static_cast<double>(i) /
                     static_cast<double>(num_points - 1);
    const double pos = f / bin_hz;
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, mag.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    if (lo < mag.size()) {
      out[i] = mag[lo] * (1.0 - frac) + mag[hi] * frac;
    }
  }
  return out;
}

}  // namespace vibguard::dsp
