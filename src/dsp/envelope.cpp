#include "dsp/envelope.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/fft.hpp"

namespace vibguard::dsp {

Signal hilbert_envelope(const Signal& in) {
  if (in.empty()) return in;
  const std::size_t n = in.size();
  const std::size_t m = next_pow2(n);
  std::vector<Complex> buf(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < n; ++i) buf[i] = Complex(in[i], 0.0);
  fft_pow2(buf, false);
  // Analytic signal: double positive frequencies, zero negative ones.
  for (std::size_t k = 1; k < m / 2; ++k) buf[k] *= 2.0;
  for (std::size_t k = m / 2 + 1; k < m; ++k) buf[k] = Complex(0.0, 0.0);
  fft_pow2(buf, true);
  std::vector<double> env(n);
  for (std::size_t i = 0; i < n; ++i) env[i] = std::abs(buf[i]);
  return Signal(std::move(env), in.sample_rate());
}

Signal rms_envelope(const Signal& in, std::size_t window, std::size_t hop) {
  VIBGUARD_REQUIRE(window > 0 && hop > 0, "window and hop must be positive");
  std::vector<double> env;
  for (std::size_t i = 0; i + window <= in.size(); i += hop) {
    double acc = 0.0;
    for (std::size_t j = 0; j < window; ++j) acc += in[i + j] * in[i + j];
    env.push_back(std::sqrt(acc / static_cast<double>(window)));
  }
  return Signal(std::move(env),
                in.sample_rate() / static_cast<double>(hop));
}

std::vector<double> real_cepstrum(const Signal& in, std::size_t num_bins) {
  VIBGUARD_REQUIRE(!in.empty(), "cepstrum of empty signal");
  const std::size_t m = next_pow2(in.size());
  std::vector<Complex> buf(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < in.size(); ++i) buf[i] = Complex(in[i], 0.0);
  fft_pow2(buf, false);
  for (Complex& c : buf) {
    c = Complex(std::log(std::abs(c) + 1e-12), 0.0);
  }
  fft_pow2(buf, true);
  num_bins = std::min(num_bins, m);
  std::vector<double> out(num_bins);
  for (std::size_t i = 0; i < num_bins; ++i) out[i] = buf[i].real();
  return out;
}

double cepstral_pitch(const Signal& in, double f_min, double f_max,
                      double min_prominence) {
  VIBGUARD_REQUIRE(f_min > 0.0 && f_max > f_min, "need 0 < f_min < f_max");
  if (in.empty()) return 0.0;
  const double fs = in.sample_rate();
  const auto q_min = static_cast<std::size_t>(fs / f_max);
  const auto q_max = static_cast<std::size_t>(fs / f_min);
  const auto ceps = real_cepstrum(in, q_max + 1);
  if (q_min >= ceps.size() || q_min >= q_max) return 0.0;

  std::size_t best = q_min;
  for (std::size_t q = q_min; q <= std::min(q_max, ceps.size() - 1); ++q) {
    if (ceps[q] > ceps[best]) best = q;
  }
  // Prominence: the peak must stand out from the band's own fluctuation
  // (mean + min_prominence * stddev), which rejects the random maxima a
  // noise cepstrum produces.
  std::vector<double> band;
  for (std::size_t q = q_min; q <= std::min(q_max, ceps.size() - 1); ++q) {
    band.push_back(ceps[q]);
  }
  const double mu = mean(band);
  const double sigma = stddev(band);
  if (ceps[best] < mu + min_prominence * sigma) return 0.0;
  return fs / static_cast<double>(best);
}

double goertzel_magnitude(const Signal& in, double frequency_hz) {
  if (in.empty()) return 0.0;
  const double w =
      2.0 * std::numbers::pi * frequency_hz / in.sample_rate();
  const double coeff = 2.0 * std::cos(w);
  double s0 = 0.0, s1 = 0.0, s2 = 0.0;
  for (double x : in) {
    s0 = x + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  const double power =
      s1 * s1 + s2 * s2 - coeff * s1 * s2;
  return std::sqrt(std::max(power, 0.0)) / static_cast<double>(in.size());
}

}  // namespace vibguard::dsp
