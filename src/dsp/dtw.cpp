#include "dsp/dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace vibguard::dsp {

double euclidean(std::span<const double> x, std::span<const double> y) {
  VIBGUARD_REQUIRE(x.size() == y.size(),
                   "euclidean distance needs equal dimensions");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

DtwResult dtw(std::span<const std::vector<double>> a,
              std::span<const std::vector<double>> b, std::size_t window) {
  DtwResult result;
  if (a.empty() || b.empty()) {
    result.distance = std::numeric_limits<double>::infinity();
    result.normalized = result.distance;
    return result;
  }
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Effective band: at least |n - m| so a path exists.
  std::size_t band = window;
  if (band > 0) {
    band = std::max(band, n > m ? n - m : m - n);
  }

  // Two-row cost matrix plus a step counter for path-length normalization.
  std::vector<double> prev(m + 1, kInf), curr(m + 1, kInf);
  std::vector<std::size_t> prev_len(m + 1, 0), curr_len(m + 1, 0);
  prev[0] = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const std::size_t j_lo =
        band > 0 ? (i > band ? i - band : 1) : 1;
    const std::size_t j_hi = band > 0 ? std::min(m, i + band) : m;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = euclidean(a[i - 1], b[j - 1]);
      double best = prev[j - 1];  // diagonal
      std::size_t best_len = prev_len[j - 1];
      if (prev[j] < best) {
        best = prev[j];  // insertion
        best_len = prev_len[j];
      }
      if (curr[j - 1] < best) {
        best = curr[j - 1];  // deletion
        best_len = curr_len[j - 1];
      }
      if (best < kInf) {
        curr[j] = cost + best;
        curr_len[j] = best_len + 1;
      }
    }
    std::swap(prev, curr);
    std::swap(prev_len, curr_len);
    // Reset column 0 after the first row (only (0,0) is a valid start).
    prev[0] = kInf;
  }

  result.distance = prev[m];
  result.path_length = prev_len[m];
  result.normalized =
      result.path_length > 0
          ? result.distance / static_cast<double>(result.path_length)
          : result.distance;
  return result;
}

}  // namespace vibguard::dsp
