#include "serving/circuit_breaker.hpp"

#include "common/error.hpp"

namespace vibguard::serving {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  VIBGUARD_UNREACHABLE();
}

CircuitBreaker::CircuitBreaker(BreakerConfig config, const Clock& clock)
    : config_(config), clock_(&clock) {
  VIBGUARD_REQUIRE(config_.failure_threshold > 0,
                   "failure threshold must be positive");
  VIBGUARD_REQUIRE(config_.half_open_successes > 0,
                   "half-open success count must be positive");
}

BreakerState CircuitBreaker::state() const {
  if (state_ == BreakerState::kOpen &&
      clock_->now_us() - opened_at_us_ >= config_.cooldown_us) {
    return BreakerState::kHalfOpen;
  }
  return state_;
}

bool CircuitBreaker::allow_primary() {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (clock_->now_us() - opened_at_us_ >= config_.cooldown_us) {
        state_ = BreakerState::kHalfOpen;
        half_open_ok_ = 0;
        probe_outstanding_ = true;
        return true;  // the probe
      }
      return false;
    case BreakerState::kHalfOpen:
      if (probe_outstanding_) return false;  // one probe at a time
      probe_outstanding_ = true;
      return true;
  }
  VIBGUARD_UNREACHABLE();
}

void CircuitBreaker::open_now() {
  state_ = BreakerState::kOpen;
  opened_at_us_ = clock_->now_us();
  half_open_ok_ = 0;
  probe_outstanding_ = false;
  consecutive_.clear();
}

void CircuitBreaker::record_success() {
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_.clear();
      return;
    case BreakerState::kHalfOpen:
      probe_outstanding_ = false;
      if (++half_open_ok_ >= config_.half_open_successes) {
        state_ = BreakerState::kClosed;
        consecutive_.clear();
      }
      return;
    case BreakerState::kOpen:
      // Degraded-path outcomes are not reported here; a success while open
      // can only be a stale report and is ignored.
      return;
  }
  VIBGUARD_UNREACHABLE();
}

void CircuitBreaker::record_failure(const std::string& stage) {
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_[stage] >= config_.failure_threshold) {
        tripped_stage_ = stage;
        ++trips_;
        open_now();
      }
      return;
    case BreakerState::kHalfOpen:
      // The probe failed: back to a full cooldown.
      tripped_stage_ = stage;
      open_now();
      return;
    case BreakerState::kOpen:
      return;
  }
  VIBGUARD_UNREACHABLE();
}

void CircuitBreaker::record_indeterminate() {
  switch (state_) {
    case BreakerState::kClosed:
      // No verdict on pipeline health: neither clears nor extends the
      // consecutive-failure streaks.
      return;
    case BreakerState::kHalfOpen:
      // The probe came back without a verdict: release the probe slot so
      // the next command can probe, but stay half-open — an indeterminate
      // probe is not a success.
      probe_outstanding_ = false;
      return;
    case BreakerState::kOpen:
      return;
  }
  VIBGUARD_UNREACHABLE();
}

}  // namespace vibguard::serving
