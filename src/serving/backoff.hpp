// Decorrelated exponential retry backoff.
//
// When a command fails to score and the session policy allows a retry, the
// serving layer waits before the next attempt so a struggling pipeline (or
// a flaky capture channel) is not hammered at full rate. The schedule is
// the classic decorrelated-jitter variant of exponential backoff: each
// delay is drawn uniformly from [base, prev * multiplier] and clamped to a
// cap, which spreads concurrent retriers apart instead of synchronizing
// them into waves. All randomness comes from a caller-supplied Rng fork of
// the command's stream, so the schedule is bit-reproducible and — because
// the fork is decorrelated from the scoring streams — never perturbs
// scores.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace vibguard::serving {

/// Parameters of the decorrelated-jitter backoff schedule.
struct BackoffPolicy {
  std::uint64_t base_us = 50'000;  ///< first delay and per-draw lower bound
  std::uint64_t cap_us = 2'000'000;  ///< upper clamp on every delay
  double multiplier = 3.0;  ///< upper bound growth: [base, prev * multiplier]
};

/// One command's deterministic retry-delay sequence. Construct with a fork
/// of the command's rng; successive next() calls yield the delays to wait
/// before retry 1, 2, ...
class BackoffSchedule {
 public:
  BackoffSchedule(BackoffPolicy policy, Rng rng);

  /// The next delay in microseconds: base_us for the first draw, then
  /// uniform in [base_us, prev * multiplier] clamped to cap_us.
  std::uint64_t next();

  const BackoffPolicy& policy() const { return policy_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  std::uint64_t prev_us_ = 0;  ///< 0 until the first draw
};

}  // namespace vibguard::serving
