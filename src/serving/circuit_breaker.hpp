// Per-stage circuit breaker with half-open probing.
//
// A pipeline stage that starts failing repeatedly (a fault-injection
// campaign, a dead sensor feed, a regression) should not be retried blindly
// on every command: the breaker observes the stream of primary-path
// outcomes, counts consecutive hard failures per failing stage, and — once
// one stage accumulates `failure_threshold` of them — trips. While tripped
// (open) the caller routes commands to its configured degraded path instead
// of the primary pipeline. After `cooldown_us` of breaker time the breaker
// lets exactly one probe command through (half-open); a successful probe
// closes the breaker, a failed probe reopens it for another cooldown.
//
// The breaker is deliberately generic: failures are keyed by a stage-name
// string and time flows through the injectable Clock, so with a
// VirtualClock every transition is deterministic and unit-testable. Not
// thread-safe; serving sessions are single-threaded per session.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/clock.hpp"

namespace vibguard::serving {

struct BreakerConfig {
  /// Consecutive hard failures of one stage that trip the breaker.
  std::size_t failure_threshold = 3;
  /// Breaker-clock microseconds the breaker stays open before allowing a
  /// half-open probe.
  std::uint64_t cooldown_us = 5'000'000;
  /// Consecutive probe successes required to close again.
  std::size_t half_open_successes = 1;
};

enum class BreakerState {
  kClosed,    ///< primary path healthy; all commands routed to it
  kOpen,      ///< tripped; commands routed to the degraded path
  kHalfOpen,  ///< cooldown elapsed; probing the primary path
};

/// Stable lower_snake name of a breaker state.
const char* breaker_state_name(BreakerState state);

class CircuitBreaker {
 public:
  CircuitBreaker(BreakerConfig config, const Clock& clock);

  /// Current state. Reports kHalfOpen once an open breaker's cooldown has
  /// elapsed (the transition itself is committed by allow_primary()).
  BreakerState state() const;

  /// Routing decision for the next command: true = run the primary
  /// pipeline (closed, or a half-open probe), false = run the degraded
  /// path. Commits the open → half-open transition when the cooldown has
  /// elapsed. While half-open at most one probe is outstanding at a time:
  /// further calls return false (degraded) until the probe's outcome is
  /// reported, so a trial that fails in several stages — or a burst of
  /// concurrent commands — cannot count as more than one probe.
  bool allow_primary();

  /// Reports the outcome of a primary-path command. `record_failure` takes
  /// the name of the failing stage; only hard failures (stage errors,
  /// deadline expiry) should be recorded — quality-gated inputs are the
  /// input's fault, not the pipeline's. Each call resolves at most one
  /// outstanding half-open probe; extra reports for the same trial (a
  /// multi-stage failure) land in the open state and are ignored.
  void record_success();
  void record_failure(const std::string& stage);

  /// Reports a primary-path command that ended without a verdict on the
  /// pipeline's health (quality-gated input, kIndeterminate). Neutral:
  /// never trips, never closes. In half-open it releases the probe slot so
  /// the next command can probe again — an indeterminate probe must not
  /// close the breaker as a success, but must not wedge probing either.
  void record_indeterminate();

  /// The stage whose failures tripped the breaker ("" while closed and
  /// never tripped).
  const std::string& tripped_stage() const { return tripped_stage_; }

  /// Lifetime count of closed→open transitions.
  std::uint64_t trips() const { return trips_; }

  const BreakerConfig& config() const { return config_; }

 private:
  void open_now();

  BreakerConfig config_;
  const Clock* clock_;
  BreakerState state_ = BreakerState::kClosed;
  std::uint64_t opened_at_us_ = 0;
  std::size_t half_open_ok_ = 0;
  /// True while a half-open probe has been dispatched but its outcome not
  /// yet reported; gates allow_primary() to one probe at a time.
  bool probe_outstanding_ = false;
  std::uint64_t trips_ = 0;
  std::string tripped_stage_;
  /// Consecutive-failure counters keyed by failing stage; any success on
  /// the primary path clears all of them.
  std::map<std::string, std::size_t> consecutive_;
};

}  // namespace vibguard::serving
