#include "serving/shard.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vibguard::serving {

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer: cheap, well-mixed, and stable across platforms —
  // the ring placement (and therefore the whole fleet's session → worker
  // map) must never depend on std::hash implementation details.
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

const char* submit_status_name(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kQueued: return "queued";
    case SubmitStatus::kRejectedQueueFull: return "rejected_queue_full";
    case SubmitStatus::kRejectedTenantQuota: return "rejected_tenant_quota";
    case SubmitStatus::kStaleSession: return "stale_session";
    case SubmitStatus::kRejectedClosed: return "rejected_closed";
  }
  VIBGUARD_UNREACHABLE();
}

MutexRingQueue::MutexRingQueue(std::size_t capacity) : ring_(capacity) {}

bool MutexRingQueue::try_push(const WorkItem& item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || count_ >= ring_.size()) return false;
    ring_[(head_ + count_) % ring_.size()] = item;
    ++count_;
  }
  cv_.notify_one();
  return true;
}

bool MutexRingQueue::try_pop(WorkItem& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return false;
  out = ring_[head_];
  head_ = (head_ + 1) % ring_.size();
  --count_;
  return true;
}

bool MutexRingQueue::pop_blocking(WorkItem& out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return count_ > 0 || closed_; });
  if (count_ == 0) return false;  // closed and drained
  out = ring_[head_];
  head_ = (head_ + 1) % ring_.size();
  --count_;
  return true;
}

void MutexRingQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  // Wake EVERY parked consumer: each re-checks the predicate and either
  // drains a remaining item or sees closed-and-empty and returns false.
  cv_.notify_all();
}

bool MutexRingQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

bool MutexRingQueue::try_peek(WorkItem& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return false;
  out = ring_[head_];
  return true;
}

std::size_t MutexRingQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

TenantQuotas::TenantQuotas(std::size_t default_max)
    : default_max_(default_max) {}

TenantQuotas::State& TenantQuotas::state(std::uint32_t tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(tenant, State{default_max_}).first;
  }
  return it->second;
}

void TenantQuotas::set_quota(std::uint32_t tenant, std::size_t max_queued) {
  state(tenant).max_queued = max_queued;
}

void TenantQuotas::charge_unchecked(std::uint32_t tenant) {
  ++state(tenant).queued;
}

bool TenantQuotas::try_charge(std::uint32_t tenant) {
  State& s = state(tenant);
  if (s.queued >= s.max_queued) {
    ++s.rejected;
    ++total_rejected_;
    return false;
  }
  ++s.queued;
  return true;
}

void TenantQuotas::release(std::uint32_t tenant) {
  State& s = state(tenant);
  if (s.queued > 0) --s.queued;
}

std::size_t TenantQuotas::queued(std::uint32_t tenant) const {
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.queued : 0;
}

std::uint64_t TenantQuotas::rejected(std::uint32_t tenant) const {
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.rejected : 0;
}

namespace {

/// The ring's total order: worker index breaks hash ties so the map is
/// identical on every platform and independent of insertion history.
bool point_less(const ConsistentHashRing::Point& a,
                const ConsistentHashRing::Point& b) {
  return a.hash != b.hash ? a.hash < b.hash : a.worker < b.worker;
}

}  // namespace

ConsistentHashRing::ConsistentHashRing(std::size_t workers,
                                       std::size_t replicas)
    : replicas_(replicas) {
  VIBGUARD_REQUIRE(workers > 0, "ring needs at least one worker");
  VIBGUARD_REQUIRE(replicas > 0, "ring needs at least one replica");
  points_.reserve(workers * replicas);
  for (std::size_t w = 0; w < workers; ++w) {
    add_worker(w);
  }
}

bool ConsistentHashRing::contains(std::size_t worker) const {
  return std::binary_search(active_.begin(), active_.end(),
                            static_cast<std::uint32_t>(worker));
}

std::vector<std::size_t> ConsistentHashRing::active_workers() const {
  return std::vector<std::size_t>(active_.begin(), active_.end());
}

void ConsistentHashRing::add_worker(std::size_t w) {
  VIBGUARD_REQUIRE(w < UINT32_MAX, "worker index out of range");
  VIBGUARD_REQUIRE(!contains(w), "worker already on the ring");
  // A worker's points depend only on (worker, replica), so a ring grown
  // or shrunk incrementally is point-for-point identical to one built
  // fresh with the same active set — resize placement is deterministic.
  for (std::size_t r = 0; r < replicas_; ++r) {
    Point p;
    p.hash = mix64((static_cast<std::uint64_t>(w) << 32) |
                   static_cast<std::uint64_t>(r));
    p.worker = static_cast<std::uint32_t>(w);
    points_.insert(
        std::upper_bound(points_.begin(), points_.end(), p, point_less), p);
  }
  active_.insert(std::upper_bound(active_.begin(), active_.end(),
                                  static_cast<std::uint32_t>(w)),
                 static_cast<std::uint32_t>(w));
}

void ConsistentHashRing::remove_worker(std::size_t w) {
  VIBGUARD_REQUIRE(contains(w), "worker not on the ring");
  VIBGUARD_REQUIRE(active_.size() > 1, "cannot remove the last worker");
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [w](const Point& p) {
                                 return p.worker ==
                                        static_cast<std::uint32_t>(w);
                               }),
                points_.end());
  active_.erase(std::find(active_.begin(), active_.end(),
                          static_cast<std::uint32_t>(w)));
}

std::size_t ConsistentHashRing::worker_for(std::uint64_t h) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t key) { return p.hash < key; });
  // First point clockwise from h; past the last point wraps to the first.
  return it != points_.end() ? it->worker : points_.front().worker;
}

Shard::Shard(ShardConfig config, const Clock& clock)
    : config_(config),
      clock_(&clock),
      queue_(std::make_unique<MutexRingQueue>(config.queue_capacity)),
      quotas_(config.tenant_max_queued) {
  VIBGUARD_REQUIRE(config_.batch_max > 0, "batch size must be positive");
  if (config_.breaker.has_value()) {
    breaker_.emplace(*config_.breaker, clock);
  }
  last_beat_us_.store(clock.now_us(), std::memory_order_relaxed);
}

SubmitStatus Shard::submit(WorkItem item) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_->closed()) {
    // Retired shard: explicit rejection before any quota charge, so a
    // racing submit during failover surfaces as backpressure, not a hang.
    ++stats_.closed_rejected;
    return SubmitStatus::kRejectedClosed;
  }
  if (!quotas_.try_charge(item.tenant)) {
    ++stats_.quota_rejected;
    return SubmitStatus::kRejectedTenantQuota;
  }
  item.enqueued_us = clock_->now_us();
  if (!queue_->try_push(item)) {
    quotas_.release(item.tenant);
    ++stats_.admission.rejected;
    return SubmitStatus::kRejectedQueueFull;
  }
  ++stats_.admission.admitted;
  return SubmitStatus::kQueued;
}

bool Shard::requeue(const WorkItem& item, bool count_migration) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_->closed()) return false;
  // enqueued_us is deliberately preserved: the item's queue time spans the
  // migration, so a re-homed request cannot dodge its batch window or its
  // deadline accounting by moving shards.
  if (!queue_->try_push(item)) return false;
  quotas_.charge_unchecked(item.tenant);
  if (count_migration) ++stats_.migrated_in;
  return true;
}

std::size_t Shard::take_all(std::vector<WorkItem>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  WorkItem item;
  std::size_t taken = 0;
  while (queue_->try_pop(item)) {
    quotas_.release(item.tenant);
    out.push_back(item);
    ++taken;
  }
  return taken;
}

std::size_t Shard::steal_batch(std::vector<WorkItem>& out,
                               std::vector<WorkItem>& expired_out,
                               std::size_t max_items) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t now = clock_->now_us();
  std::size_t taken = 0;
  WorkItem item;
  while (taken < max_items && queue_->try_pop(item)) {
    quotas_.release(item.tenant);
    if (item.deadline_at_us <= now) {
      // Already dead in the victim's queue: not worth moving, but a result
      // must still be emitted — same contract as form_batch expiry.
      item.expired_in_queue = true;
      ++stats_.admission.expired;
      expired_out.push_back(item);
      continue;
    }
    // enqueued_us is preserved (the thief's steal_in does not restamp), so
    // the item's eventual queue_us spans both shards.
    ++stats_.admission.stolen;
    out.push_back(item);
    ++taken;
  }
  if (taken > 0) ++stats_.steals_out;
  return taken;
}

bool Shard::steal_in(const WorkItem& item) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_->closed()) return false;
  if (!quotas_.try_charge(item.tenant)) return false;
  if (!queue_->try_push(item)) {
    quotas_.release(item.tenant);
    return false;
  }
  ++stats_.items_stolen_in;
  return true;
}

void Shard::close() {
  std::lock_guard<std::mutex> lock(mu_);
  queue_->close();
}

bool Shard::is_closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_->closed();
}

void Shard::beat() { beat(epoch_.load(std::memory_order_relaxed)); }

bool Shard::beat(std::uint64_t epoch) {
  if (epoch != epoch_.load(std::memory_order_relaxed)) return false;
  // (epoch, time) write order: a reader racing a concurrent bump can see a
  // stale epoch with a fresh time (looks un-recovered) or a fresh epoch
  // with a stale time (looks aged) — both err toward "not recovered".
  last_beat_epoch_.store(epoch, std::memory_order_relaxed);
  last_beat_us_.store(clock_->now_us(), std::memory_order_relaxed);
  beats_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t Shard::last_beat_us() const {
  return last_beat_us_.load(std::memory_order_relaxed);
}

std::uint64_t Shard::beats() const {
  return beats_.load(std::memory_order_relaxed);
}

std::uint64_t Shard::epoch() const {
  return epoch_.load(std::memory_order_relaxed);
}

std::uint64_t Shard::last_beat_epoch() const {
  return last_beat_epoch_.load(std::memory_order_relaxed);
}

std::uint64_t Shard::bump_epoch() {
  return epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::size_t Shard::run_pump(const std::function<bool(bool force)>& drain_once,
                            const std::atomic<bool>& stop,
                            const PumpConfig& pump) {
  VIBGUARD_REQUIRE(pump.idle_poll_us > 0, "pump poll period must be positive");
  // Beats go through the epoch gate: a bump_epoch() (restart fence) makes
  // the next beat fail, and this — now stale — pump leaves without touching
  // the shard again. The replacement pump owns the drainer role.
  const std::uint64_t my_epoch = epoch();
  std::size_t batches = 0;
  for (;;) {
    if (!beat(my_epoch)) return batches;  // fenced: a newer pump took over
    if (stop.load(std::memory_order_acquire)) {
      // Graceful stop: serve everything still queued (forced windows) so a
      // shutdown never strands admitted work, then leave.
      while (drain_once(/*force=*/true)) {
        ++batches;
        if (!beat(my_epoch)) return batches;
      }
      return batches;
    }
    const auto ready = batch_ready_us();
    if (!ready.has_value()) {
      if (is_closed()) return batches;  // retired and drained
      clock_->sleep_us(pump.idle_poll_us);
      continue;
    }
    const std::uint64_t now = clock_->now_us();
    if (now < *ready) {
      // Sleep toward the window in bounded slices so stop and close stay
      // responsive and the heartbeat keeps proving liveness.
      clock_->sleep_us(std::min(*ready - now, pump.idle_poll_us));
      continue;
    }
    if (drain_once(/*force=*/false)) {
      ++batches;
    } else {
      clock_->sleep_us(pump.idle_poll_us);
    }
  }
}

std::optional<std::uint64_t> Shard::batch_ready_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  WorkItem oldest;
  if (!queue_->try_peek(oldest)) return std::nullopt;
  if (queue_->size() >= config_.batch_max) return oldest.enqueued_us;
  return oldest.enqueued_us + config_.batch_window_us;
}

std::optional<FormedBatch> Shard::form_batch(std::vector<WorkItem>& out,
                                             bool force) {
  std::lock_guard<std::mutex> lock(mu_);
  WorkItem oldest;
  if (!queue_->try_peek(oldest)) return std::nullopt;
  const std::uint64_t now = clock_->now_us();
  if (!force) {
    const std::uint64_t ready = queue_->size() >= config_.batch_max
                                    ? oldest.enqueued_us
                                    : oldest.enqueued_us +
                                          config_.batch_window_us;
    if (now < ready) return std::nullopt;
  }

  FormedBatch batch;
  if (breaker_.has_value()) {
    const BreakerState pre = breaker_->state();
    if (!breaker_->allow_primary()) {
      batch.degraded = true;
    } else if (pre != BreakerState::kClosed) {
      // A half-open (or just-cooled-down open) shard sends exactly one
      // item as the probe; coalescing more would make a multi-command
      // batch stand in for one probe outcome.
      batch.probe = true;
      ++stats_.probes;
    }
  }

  batch.now_us = now;
  const std::size_t limit = batch.probe ? 1 : config_.batch_max;
  WorkItem item;
  while (batch.items < limit && queue_->try_pop(item)) {
    quotas_.release(item.tenant);
    if (item.deadline_at_us <= now) {
      // Expired while queued: still handed to the server (a result must
      // be emitted) but never counted as a service dequeue.
      item.expired_in_queue = true;
      ++stats_.admission.expired;
    } else {
      const std::uint64_t queue_us =
          now >= item.enqueued_us ? now - item.enqueued_us : 0;
      ++stats_.admission.dequeued;
      stats_.admission.total_queue_us += queue_us;
      stats_.admission.max_queue_us =
          std::max(stats_.admission.max_queue_us, queue_us);
    }
    out.push_back(item);
    ++batch.items;
  }
  ++stats_.batches;
  stats_.batched_items += batch.items;
  stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch, batch.items);
  return batch;
}

void Shard::record(TrialOutcome outcome, const std::string& stage) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!breaker_.has_value()) return;
  switch (outcome) {
    case TrialOutcome::kSuccess: breaker_->record_success(); return;
    case TrialOutcome::kHardFailure: breaker_->record_failure(stage); return;
    case TrialOutcome::kIndeterminate:
      breaker_->record_indeterminate();
      return;
  }
  VIBGUARD_UNREACHABLE();
}

std::size_t Shard::depth() const { return queue_->size(); }

std::optional<std::uint64_t> Shard::oldest_enqueued_us() const {
  WorkItem oldest;
  if (!queue_->try_peek(oldest)) return std::nullopt;
  return oldest.enqueued_us;
}

ShardStats Shard::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace vibguard::serving
