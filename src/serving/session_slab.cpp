#include "serving/session_slab.hpp"

#include "common/error.hpp"

namespace vibguard::serving {

SessionHandle SessionSlab::insert(const SessionRecord& record) {
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    VIBGUARD_REQUIRE(slots_.size() < UINT32_MAX, "session slab full");
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    generations_.push_back(0);
  }
  slots_[index] = record;
  // Free slots carry an even generation; bumping to odd marks the slot
  // live and distinguishes this occupant from every previous one.
  ++generations_[index];
  ++size_;
  return SessionHandle{index, generations_[index]};
}

bool SessionSlab::erase(SessionHandle handle) {
  if (get(handle) == nullptr) return false;
  // Back to even: every outstanding handle with the old odd generation now
  // fails the compare.
  if (generations_[handle.index] == UINT32_MAX) {
    // Generation wraparound guard: incrementing the maximum odd generation
    // would wrap to 0, and the next insert would mint generation 1 —
    // resurrecting the slot's very first handles after 2^31 reuses. The
    // slot is retired instead: generation 0 (the universal null/free
    // state) and never pushed onto the recycle stack, so no handle can
    // ever match it again. Capacity loses one slot every 2^31 reuses,
    // which is free compared to a stale handle aliasing a live session.
    generations_[handle.index] = 0;
  } else {
    ++generations_[handle.index];
    free_.push_back(handle.index);
  }
  --size_;
  return true;
}

SessionRecord* SessionSlab::get(SessionHandle handle) {
  if (handle.is_null() || handle.index >= slots_.size() ||
      generations_[handle.index] != handle.generation ||
      (handle.generation & 1u) == 0) {
    return nullptr;
  }
  return &slots_[handle.index];
}

const SessionRecord* SessionSlab::get(SessionHandle handle) const {
  return const_cast<SessionSlab*>(this)->get(handle);
}

std::vector<SessionHandle> SessionSlab::handles() const {
  std::vector<SessionHandle> out;
  out.reserve(size_);
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if ((generations_[i] & 1u) != 0) {
      out.push_back(SessionHandle{i, generations_[i]});
    }
  }
  return out;
}

void SessionSlab::clear() {
  free_.clear();
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    const std::uint32_t index =
        static_cast<std::uint32_t>(slots_.size() - 1 - i);
    if ((generations_[index] & 1u) != 0) {
      if (generations_[index] == UINT32_MAX) {
        generations_[index] = 0;  // retire at the wrap, as in erase()
        continue;
      }
      ++generations_[index];
    } else if (generations_[index] == 0) {
      continue;  // retired by a previous wrap: never recycle
    }
    free_.push_back(index);
  }
  size_ = 0;
}

SessionHandle SessionSlab::set_generation_for_test(SessionHandle handle,
                                                   std::uint32_t generation) {
  VIBGUARD_REQUIRE(get(handle) != nullptr,
                   "set_generation_for_test needs a live handle");
  VIBGUARD_REQUIRE((generation & 1u) != 0,
                   "live slot generations must stay odd");
  generations_[handle.index] = generation;
  return SessionHandle{handle.index, generation};
}

}  // namespace vibguard::serving
