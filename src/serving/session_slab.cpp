#include "serving/session_slab.hpp"

#include "common/error.hpp"

namespace vibguard::serving {

SessionHandle SessionSlab::insert(const SessionRecord& record) {
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    VIBGUARD_REQUIRE(slots_.size() < UINT32_MAX, "session slab full");
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    generations_.push_back(0);
  }
  slots_[index] = record;
  // Free slots carry an even generation; bumping to odd marks the slot
  // live and distinguishes this occupant from every previous one.
  ++generations_[index];
  ++size_;
  return SessionHandle{index, generations_[index]};
}

bool SessionSlab::erase(SessionHandle handle) {
  if (get(handle) == nullptr) return false;
  // Back to even: every outstanding handle with the old odd generation now
  // fails the compare. (Handles are null-checked on generation 0, so a
  // slot generation wrapping to 0 is just another free state; aliasing
  // needs 2^31 reuses of one slot and is accepted.)
  ++generations_[handle.index];
  free_.push_back(handle.index);
  --size_;
  return true;
}

SessionRecord* SessionSlab::get(SessionHandle handle) {
  if (handle.is_null() || handle.index >= slots_.size() ||
      generations_[handle.index] != handle.generation ||
      (handle.generation & 1u) == 0) {
    return nullptr;
  }
  return &slots_[handle.index];
}

const SessionRecord* SessionSlab::get(SessionHandle handle) const {
  return const_cast<SessionSlab*>(this)->get(handle);
}

void SessionSlab::clear() {
  free_.clear();
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if ((generations_[i] & 1u) != 0) ++generations_[i];
    free_.push_back(static_cast<std::uint32_t>(slots_.size() - 1 - i));
  }
  size_ = 0;
}

}  // namespace vibguard::serving
