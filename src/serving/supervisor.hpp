// Supervisor: worker health classification, failover, and — when enabled
// — a closed-loop remediation ladder.
//
// Every shard stamps a heartbeat (Shard::beat) each pump iteration —
// including idle ones — so "how long since worker w made progress" is one
// atomic load away. The Supervisor turns that age into a health ladder
// and, with remediation enabled, into one policy rung per state:
//
//        age < slow_after_us    HEALTHY      serving normally
//        age < wedged_after_us  SLOW         → work stealing: an idle peer
//                                             takes the oldest queued items
//        age < dead_after_us    WEDGED       → quarantine: fence off the
//                                             ring, drain to peers, restart
//                                             the pump under a new epoch;
//                                             a probe decides recovery vs
//                                             escalation
//        age >= dead_after_us   DEAD         fail over: drain + migrate
//        (fenced, probing)      QUARANTINED  off-ring but reversible
//        (off the ring)         RETIRED      terminal
//
// Boundary convention (pinned by tests): an age EXACTLY equal to a
// threshold takes the WORSE state — the healthy side of every comparison
// is strict `<`, so age == slow_after_us classifies kSlow, age ==
// wedged_after_us classifies kWedged, and age == dead_after_us classifies
// kDead. Thresholds must be strictly increasing; a zero-width band
// (slow_after_us == wedged_after_us) is rejected at construction.
//
// Classification is a pure function of (heartbeat age, thresholds), and
// the heartbeat runs on the injected Clock — so a supervisor driven by a
// VirtualClock in a discrete-event simulation classifies identically to
// one watching real pump threads on a SteadyClock. Every remediation
// action below is likewise deterministic on the Clock: the chaos sweep
// (eval/chaos_sweep) reproduces an exact remediation sequence from a
// fixed seed.
//
// The remediation ladder (RemediationConfig, default OFF — with it off
// the supervisor behaves exactly as before it existed):
//
//  * SLOW → steal. The least-loaded healthy worker steals up to
//    steal_max_items of the victim's oldest queued items through
//    Server::steal_work (victim-locked, enqueued_us preserved, thief
//    quota enforced, parked batch items untouchable). Runs every poll the
//    worker stays SLOW — stealing is cheap and reversible.
//  * WEDGED → quarantine + restart. Server::quarantine_worker fences the
//    worker off the ring (sessions re-placed, queue drained by peers via
//    the steal path) and Server::restart_pump bumps the heartbeat epoch,
//    so a beat from the old wedged thread can never fake recovery. The
//    probe: a fresh-epoch beat before probe_timeout_us → restore_worker
//    (its old ring arcs come back); no beat in time → retire_worker
//    (escalation to terminal).
//  * Sustained overload → grow. Each poll samples a fleet overload score
//    (reject fraction + oldest-queue age); a sample is "hot" when either
//    crosses its threshold. Growth needs K-of-N hot samples
//    (overload_confirm of overload_window), an elapsed cooldown_us since
//    the last action, and headroom under max_workers — then
//    Server::add_worker runs the minimal-migration growth path. A flap
//    detector counts grows inside flap_window_us; at flap_actions it pins
//    the fleet size for good and surfaces kFlapSuppressed (at most once
//    per cooldown) instead of acting — a fleet that flaps has a sizing
//    problem automation must not paper over.
//
// Every action is appended to an append-only RemediationLog the caller
// (chaos sweep, CLI) can consume; transitions still land in events().
//
// Failover delegates to Server::remove_worker: close the shard, drop its
// ring points, migrate live sessions (state rides along), re-home queued
// items — every item accounted served/rejected/expired/migrated, never
// silently lost. remove_worker is a control-plane call, so poll() must
// only run where no drainer is active on the dying lane: in simulations
// that is trivially true; with real threads the dead worker's pump is —
// by definition of DEAD — not draining, but it must also not be *blocked
// inside* the lane (stop it first, or never started; see poll()).
//
// The supervisor is single-threaded by design: one control loop calls
// poll(), the same way one drainer owns each shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/clock.hpp"
#include "serving/server.hpp"

namespace vibguard::serving {

enum class WorkerHealth {
  kHealthy,
  kSlow,         ///< heartbeat lagging past slow_after_us
  kWedged,       ///< no progress past wedged_after_us; presumed stuck
  kDead,         ///< past dead_after_us; failover fires here
  kQuarantined,  ///< fenced off the ring, probe pending — reversible
  kRetired,      ///< off the ring (failed over or never active) — terminal
};

const char* worker_health_name(WorkerHealth health);

/// Remediation policy knobs, one rung per health state. Disabled by
/// default: with enabled == false the supervisor is a pure
/// classify-and-failover loop, bit-identical to its pre-remediation
/// behavior.
struct RemediationConfig {
  bool enabled = false;

  // ── SLOW → work stealing ─────────────────────────────────────────────
  bool steal = true;
  /// Most items one steal pass moves off one victim.
  std::size_t steal_max_items = 4;
  /// Victims shallower than this are left alone (stealing the last item
  /// of a barely-slow shard only churns payloads).
  std::size_t steal_min_depth = 2;

  // ── WEDGED → quarantine + pump restart ───────────────────────────────
  bool quarantine = true;
  /// How long the restarted pump has to produce a fresh-epoch beat before
  /// the quarantine escalates to retirement.
  std::uint64_t probe_timeout_us = 200'000;

  // ── Sustained overload → auto-grow ───────────────────────────────────
  bool grow = true;
  /// Sliding window length (N) and hot-sample quorum (K) — growth needs
  /// K-of-N hot polls, so one noisy sample never resizes the fleet.
  std::size_t overload_window = 8;
  std::size_t overload_confirm = 6;
  /// A poll sample is hot when the fleet's reject fraction since the last
  /// poll reaches this...
  double reject_rate_threshold = 0.05;
  /// ...or the oldest queued item anywhere has waited this long.
  std::uint64_t queue_age_threshold_us = 50'000;
  /// Minimum spacing between remediation actions (grow or a surfaced
  /// flap suppression) — the hysteresis that stops reaction chains.
  std::uint64_t cooldown_us = 500'000;
  /// Hard ceiling on fleet size; growth never exceeds it.
  std::size_t max_workers = 16;

  // ── Flap detector ────────────────────────────────────────────────────
  /// This many grow actions inside flap_window_us pins the fleet size
  /// (sticky for the supervisor's lifetime) and turns further confirmed
  /// overload into kFlapSuppressed events instead of resizes.
  std::size_t flap_actions = 3;
  std::uint64_t flap_window_us = 2'000'000;
};

struct SupervisorConfig {
  /// Heartbeat-age thresholds, strictly increasing (equal neighbors — a
  /// zero-width band — are rejected). Defaults suit the VirtualClock
  /// simulations; real deployments scale them to the batch window (a
  /// worker sleeping toward a distant batch still beats every
  /// PumpConfig::idle_poll_us). Boundary: age == threshold classifies as
  /// the worse state.
  std::uint64_t slow_after_us = 10'000;
  std::uint64_t wedged_after_us = 50'000;
  std::uint64_t dead_after_us = 200'000;
  /// When true, poll() retires DEAD workers via Server::remove_worker.
  /// The last active worker is never removed (the ring must place
  /// somewhere); it stays DEAD until another worker joins.
  bool auto_failover = true;
  /// The remediation ladder; see RemediationConfig. Off by default.
  RemediationConfig remediation;
};

/// One health transition observed by poll(). Transitions that moved
/// sessions (failover, quarantine, recovery, escalation) carry the
/// migration accounting from the ResizeReport; pure-growth session moves
/// ride on a synthetic kHealthy→kHealthy event for the new worker.
struct SupervisorEvent {
  std::uint64_t at_us = 0;
  std::size_t worker = 0;
  WorkerHealth from = WorkerHealth::kHealthy;
  WorkerHealth to = WorkerHealth::kHealthy;
  bool failover = false;  ///< this transition retired the worker
  /// The session re-homings this action performed. Callers holding
  /// pre-action handles recover the fresh ones from here.
  std::vector<ResizeReport::MigratedSession> migrations;
  std::size_t sessions_migrated = 0;
  std::size_t items_requeued = 0;
  std::size_t items_expired = 0;
  std::size_t items_dropped = 0;
};

/// What the remediation ladder did, one entry per action.
enum class RemediationAction {
  kSteal,           ///< SLOW: peer stole queued items from the victim
  kQuarantine,      ///< WEDGED: fenced off the ring, pump restarted
  kRecover,         ///< quarantine probe beat in time; worker restored
  kEscalate,        ///< probe deadline passed; worker retired
  kGrow,            ///< confirmed overload; fleet grew by one worker
  kFlapSuppressed,  ///< overload confirmed but the flap detector pinned
                    ///< the fleet size; no resize happened
};

const char* remediation_action_name(RemediationAction action);

struct RemediationEvent {
  std::uint64_t at_us = 0;
  RemediationAction action = RemediationAction::kSteal;
  /// The subject worker: steal victim, quarantined/recovered/escalated
  /// worker, or the newly added worker for kGrow.
  std::size_t worker = 0;
  /// kSteal only: the thief.
  std::size_t peer = 0;
  /// Items the action moved (stolen, re-homed by the fence/escalation).
  std::size_t items = 0;
  /// Sessions the action migrated.
  std::size_t sessions = 0;
  /// kGrow / kFlapSuppressed: the confirming hot-sample fraction (K/N at
  /// decision time).
  double overload_score = 0.0;
};

/// Append-only action log. The supervisor only ever appends; consumers
/// (chaos sweep, CLI) read it back in action order, which is
/// deterministic for a deterministic clock/heartbeat history.
class RemediationLog {
 public:
  void append(RemediationEvent event) { events_.push_back(std::move(event)); }
  const std::vector<RemediationEvent>& events() const { return events_; }
  std::size_t count(RemediationAction action) const {
    std::size_t n = 0;
    for (const RemediationEvent& e : events_) {
      if (e.action == action) ++n;
    }
    return n;
  }
  std::size_t size() const { return events_.size(); }

 private:
  std::vector<RemediationEvent> events_;
};

struct SupervisorStats {
  std::uint64_t polls = 0;
  std::size_t failovers = 0;
  std::size_t sessions_migrated = 0;
  std::size_t items_requeued = 0;
  std::size_t items_expired = 0;
  std::size_t items_dropped = 0;
  // Remediation ladder counters (all zero with remediation disabled).
  std::size_t steals = 0;        ///< steal passes that moved >= 1 item
  std::size_t items_stolen = 0;  ///< items moved across all steal passes
  std::size_t quarantines = 0;
  std::size_t recoveries = 0;
  std::size_t escalations = 0;
  std::size_t grows = 0;
  std::size_t flap_suppressed = 0;
};

class Supervisor {
 public:
  /// Both references are borrowed and must outlive the supervisor. The
  /// clock must be the same one the server's shards heartbeat on —
  /// mixing clocks makes every age nonsense.
  Supervisor(Server& server, SupervisorConfig config, const Clock& clock);

  const SupervisorConfig& config() const { return config_; }

  /// Pure classification of worker `w` right now (no state change):
  /// kRetired / kQuarantined from the server's worker state, otherwise
  /// heartbeat age against the thresholds (age == threshold → the worse
  /// state; see the header comment).
  WorkerHealth classify(std::size_t w) const;

  /// The health poll() last assigned to `w` (kHealthy before any poll).
  WorkerHealth health(std::size_t w) const;

  /// One supervision pass: classify every worker, record transitions,
  /// fail over workers that crossed into DEAD (when auto_failover), and —
  /// when remediation is enabled — run the ladder: steal from SLOW
  /// workers, quarantine WEDGED ones, resolve pending quarantine probes,
  /// and grow on confirmed overload. Items any action expired or dropped
  /// are appended to `out` as results — the caller owns the accounting
  /// stream, exactly as with drain(). Returns the number of workers
  /// permanently removed from service this pass (failovers +
  /// escalations).
  ///
  /// Control-plane contract: no drainer may be actively forming or
  /// completing a batch on a lane this pass might retire or fence. Stop
  /// the dying worker's pump (or never start it — crash injection does
  /// exactly that) before the age crosses dead_after_us; quarantine
  /// handles its own pump through the epoch fence.
  std::size_t poll(std::vector<ServedResult>& out);

  /// Start supervising a worker added after construction
  /// (Server::add_worker growth); new workers start kHealthy.
  void watch(std::size_t w);

  /// Every transition ever observed, in poll order (deterministic for a
  /// deterministic clock/heartbeat history).
  const std::vector<SupervisorEvent>& events() const { return events_; }
  /// Every remediation action ever taken, in action order.
  const RemediationLog& remediation_log() const { return log_; }
  const SupervisorStats& stats() const { return stats_; }

 private:
  /// Probe bookkeeping for one quarantined worker.
  struct QuarantineState {
    bool active = false;
    std::uint64_t since_us = 0;
    std::uint64_t probe_deadline_us = 0;
    /// The post-restart heartbeat epoch recovery must beat under.
    std::uint64_t epoch = 0;
    /// beats() at fence time; recovery needs strictly more.
    std::uint64_t beats_at = 0;
  };

  void resolve_quarantine(std::size_t w, std::vector<ServedResult>& out,
                          std::size_t& removed);
  void quarantine(std::size_t w, WorkerHealth prev,
                  std::vector<ServedResult>& out);
  void steal_pass(const std::vector<std::size_t>& victims,
                  std::vector<ServedResult>& out);
  void overload_pass(std::vector<ServedResult>& out);

  Server* server_;
  SupervisorConfig config_;
  const Clock* clock_;
  std::vector<WorkerHealth> health_;
  std::vector<QuarantineState> quarantine_;
  std::vector<SupervisorEvent> events_;
  RemediationLog log_;
  SupervisorStats stats_;

  // Overload hysteresis state.
  std::deque<bool> overload_samples_;       ///< last N hot/cool samples
  std::uint64_t prev_submitted_ = 0;        ///< fleet cumulative, last poll
  std::uint64_t prev_rejected_ = 0;
  std::optional<std::uint64_t> last_action_us_;  ///< cooldown anchor
  std::deque<std::uint64_t> grow_times_;    ///< flap detector window
  bool flap_pinned_ = false;
  std::optional<std::uint64_t> last_flap_event_us_;
};

}  // namespace vibguard::serving
