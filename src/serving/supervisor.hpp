// Supervisor: worker health classification and automatic failover.
//
// Every shard stamps a heartbeat (Shard::beat) each pump iteration —
// including idle ones — so "how long since worker w made progress" is one
// atomic load away. The Supervisor turns that age into a four-step health
// ladder and, at the bottom of it, into action:
//
//        age < slow_after_us    HEALTHY   serving normally
//        age < wedged_after_us  SLOW      lagging; watch it
//        age < dead_after_us    WEDGED    no progress; presumed stuck
//        age >= dead_after_us   DEAD      fail over: drain + migrate
//        (off the ring)         RETIRED   terminal
//
// Classification is a pure function of (heartbeat age, thresholds), and
// the heartbeat runs on the injected Clock — so a supervisor driven by a
// VirtualClock in a discrete-event simulation classifies identically to
// one watching real pump threads on a SteadyClock. That is what lets the
// chaos sweep (eval/chaos_sweep) reproduce an exact failover sequence
// from a fixed seed.
//
// Failover delegates to Server::remove_worker: close the shard, drop its
// ring points, migrate live sessions (state rides along), re-home queued
// items — every item accounted served/rejected/expired/migrated, never
// silently lost. remove_worker is a control-plane call, so poll() must
// only run where no drainer is active on the dying lane: in simulations
// that is trivially true; with real threads the dead worker's pump is —
// by definition of DEAD — not draining, but it must also not be *blocked
// inside* the lane (stop it first, or never started; see poll()).
//
// The supervisor is single-threaded by design: one control loop calls
// poll(), the same way one drainer owns each shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/clock.hpp"
#include "serving/server.hpp"

namespace vibguard::serving {

enum class WorkerHealth {
  kHealthy,
  kSlow,     ///< heartbeat lagging past slow_after_us
  kWedged,   ///< no progress past wedged_after_us; presumed stuck
  kDead,     ///< past dead_after_us; failover fires here
  kRetired,  ///< off the ring (failed over or never active) — terminal
};

const char* worker_health_name(WorkerHealth health);

struct SupervisorConfig {
  /// Heartbeat-age thresholds, strictly increasing. Defaults suit the
  /// VirtualClock simulations; real deployments scale them to the batch
  /// window (a worker sleeping toward a distant batch still beats every
  /// PumpConfig::idle_poll_us).
  std::uint64_t slow_after_us = 10'000;
  std::uint64_t wedged_after_us = 50'000;
  std::uint64_t dead_after_us = 200'000;
  /// When true, poll() retires DEAD workers via Server::remove_worker.
  /// The last active worker is never removed (the ring must place
  /// somewhere); it stays DEAD until another worker joins.
  bool auto_failover = true;
};

/// One health transition observed by poll(). Failover transitions carry
/// the migration accounting from the ResizeReport.
struct SupervisorEvent {
  std::uint64_t at_us = 0;
  std::size_t worker = 0;
  WorkerHealth from = WorkerHealth::kHealthy;
  WorkerHealth to = WorkerHealth::kHealthy;
  bool failover = false;  ///< this transition retired the worker
  /// Failover only: the session re-homings the removal performed. Callers
  /// holding pre-failover handles recover the fresh ones from here.
  std::vector<ResizeReport::MigratedSession> migrations;
  std::size_t sessions_migrated = 0;
  std::size_t items_requeued = 0;
  std::size_t items_expired = 0;
  std::size_t items_dropped = 0;
};

struct SupervisorStats {
  std::uint64_t polls = 0;
  std::size_t failovers = 0;
  std::size_t sessions_migrated = 0;
  std::size_t items_requeued = 0;
  std::size_t items_expired = 0;
  std::size_t items_dropped = 0;
};

class Supervisor {
 public:
  /// Both references are borrowed and must outlive the supervisor. The
  /// clock must be the same one the server's shards heartbeat on —
  /// mixing clocks makes every age nonsense.
  Supervisor(Server& server, SupervisorConfig config, const Clock& clock);

  const SupervisorConfig& config() const { return config_; }

  /// Pure classification of worker `w` right now (no state change):
  /// heartbeat age against the thresholds, kRetired when off the ring.
  WorkerHealth classify(std::size_t w) const;

  /// The health poll() last assigned to `w` (kHealthy before any poll).
  WorkerHealth health(std::size_t w) const;

  /// One supervision pass: classify every worker, record transitions, and
  /// fail over workers that crossed into DEAD (when auto_failover). Items
  /// the failover expired or dropped are appended to `out` as results —
  /// the caller owns the accounting stream, exactly as with drain().
  /// Returns the number of failovers performed this pass.
  ///
  /// Control-plane contract: no drainer may be actively forming or
  /// completing a batch on a lane this pass might retire. Stop the dying
  /// worker's pump (or never start it — crash injection does exactly
  /// that) before the age crosses dead_after_us.
  std::size_t poll(std::vector<ServedResult>& out);

  /// Start supervising a worker added after construction
  /// (Server::add_worker growth); new workers start kHealthy.
  void watch(std::size_t w);

  /// Every transition ever observed, in poll order (deterministic for a
  /// deterministic clock/heartbeat history).
  const std::vector<SupervisorEvent>& events() const { return events_; }
  const SupervisorStats& stats() const { return stats_; }

 private:
  Server* server_;
  SupervisorConfig config_;
  const Clock* clock_;
  std::vector<WorkerHealth> health_;
  std::vector<SupervisorEvent> events_;
  SupervisorStats stats_;
};

}  // namespace vibguard::serving
