#include "serving/admission.hpp"

#include <algorithm>

namespace vibguard::serving {

AdmissionController::AdmissionController(AdmissionConfig config,
                                         const Clock& clock)
    : config_(config), clock_(&clock) {}

bool AdmissionController::try_admit(std::size_t request_id) {
  if (queue_.size() >= config_.queue_capacity) {
    ++stats_.rejected;
    return false;
  }
  queue_.push_back(Entry{request_id, clock_->now_us()});
  ++stats_.admitted;
  return true;
}

std::optional<AdmissionController::Admitted> AdmissionController::next() {
  if (queue_.empty()) return std::nullopt;
  const Entry entry = queue_.front();
  queue_.pop_front();
  const std::uint64_t now = clock_->now_us();
  Admitted admitted;
  admitted.request_id = entry.request_id;
  admitted.queue_us = now >= entry.enqueued_us ? now - entry.enqueued_us : 0;
  ++stats_.dequeued;
  stats_.total_queue_us += admitted.queue_us;
  stats_.max_queue_us = std::max(stats_.max_queue_us, admitted.queue_us);
  return admitted;
}

std::optional<AdmissionController::Admitted>
AdmissionController::next_expired() {
  if (queue_.empty()) return std::nullopt;
  const Entry entry = queue_.front();
  queue_.pop_front();
  const std::uint64_t now = clock_->now_us();
  Admitted admitted;
  admitted.request_id = entry.request_id;
  admitted.queue_us = now >= entry.enqueued_us ? now - entry.enqueued_us : 0;
  ++stats_.expired;
  return admitted;
}

std::optional<std::size_t> AdmissionController::peek() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.front().request_id;
}

void AdmissionController::clear() {
  queue_.clear();
  stats_ = AdmissionStats{};
}

}  // namespace vibguard::serving
