#include "serving/backoff.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vibguard::serving {

BackoffSchedule::BackoffSchedule(BackoffPolicy policy, Rng rng)
    : policy_(policy), rng_(rng) {
  VIBGUARD_REQUIRE(policy_.multiplier >= 1.0,
                   "backoff multiplier must be >= 1");
  policy_.cap_us = std::max(policy_.cap_us, policy_.base_us);
}

std::uint64_t BackoffSchedule::next() {
  if (policy_.base_us == 0) return 0;  // backoff disabled
  std::uint64_t delay;
  if (prev_us_ == 0) {
    delay = policy_.base_us;
  } else {
    const double hi =
        std::min(static_cast<double>(policy_.cap_us),
                 static_cast<double>(prev_us_) * policy_.multiplier);
    const double lo = static_cast<double>(policy_.base_us);
    delay = static_cast<std::uint64_t>(
        rng_.uniform(lo, std::max(lo + 1.0, hi)));
  }
  delay = std::min(delay, policy_.cap_us);
  prev_us_ = delay;
  return delay;
}

}  // namespace vibguard::serving
