#include "serving/server.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace vibguard::serving {

const char* worker_state_name(WorkerState state) {
  switch (state) {
    case WorkerState::kActive: return "active";
    case WorkerState::kQuarantined: return "quarantined";
    case WorkerState::kRetired: return "retired";
  }
  VIBGUARD_UNREACHABLE();
}

Server::Server(ServerConfig config, const Clock& clock)
    : config_(config),
      clock_(&clock),
      system_(config.defense),
      ring_(config.workers, config.ring_replicas) {
  VIBGUARD_REQUIRE(config_.workers > 0, "server needs at least one worker");
  if (config_.shard.breaker.has_value()) {
    core::DefenseConfig degraded = config_.defense;
    degraded.mode = config_.degraded_mode;
    degraded_system_.emplace(degraded);
  }
  lanes_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    lanes_.push_back(std::make_unique<Lane>(config_.shard, clock));
  }
  states_.assign(config_.workers, WorkerState::kActive);
}

Server::~Server() { stop_pumps(); }

std::size_t Server::workers() const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  return lanes_.size();
}

Server::Lane& Server::lane(std::size_t w) const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  VIBGUARD_REQUIRE(w < lanes_.size(), "no such worker");
  return *lanes_[w];
}

std::size_t Server::shard_of(std::uint64_t session_id) const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  return ring_.worker_for(mix64(session_id));
}

bool Server::worker_active(std::size_t w) const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  return ring_.contains(w);
}

std::vector<std::size_t> Server::active_worker_ids() const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  return ring_.active_workers();
}

WorkerState Server::worker_state(std::size_t w) const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  VIBGUARD_REQUIRE(w < states_.size(), "no such worker");
  return states_[w];
}

SessionHandle Server::open_session(std::uint64_t session_id,
                                   std::uint32_t tenant) {
  Lane& lane = this->lane(shard_of(session_id));
  std::lock_guard<std::mutex> lock(lane.mu);
  SessionRecord record;
  record.session_id = session_id;
  record.tenant = tenant;
  record.last_active_us = clock_->now_us();
  return lane.slab.insert(record);
}

bool Server::close_session(std::uint64_t session_id, SessionHandle handle) {
  Lane& lane = this->lane(shard_of(session_id));
  std::lock_guard<std::mutex> lock(lane.mu);
  const SessionRecord* record = lane.slab.get(handle);
  if (record == nullptr || record->session_id != session_id) return false;
  return lane.slab.erase(handle);
}

std::size_t Server::sessions() const {
  std::size_t total = 0;
  for (std::size_t w = 0; w < workers(); ++w) {
    Lane& ln = lane(w);
    std::lock_guard<std::mutex> lock(ln.mu);
    total += ln.slab.size();
  }
  return total;
}

const SessionRecord* Server::session(std::uint64_t session_id,
                                     SessionHandle handle) const {
  const Lane& lane = this->lane(shard_of(session_id));
  std::lock_guard<std::mutex> lock(lane.mu);
  const SessionRecord* record = lane.slab.get(handle);
  if (record == nullptr || record->session_id != session_id) return nullptr;
  return record;
}

std::size_t Server::park_payload(Lane& lane, const ServerRequest& request) {
  if (!lane.free_payloads.empty()) {
    const std::size_t slot = lane.free_payloads.back();
    lane.free_payloads.pop_back();
    lane.payloads[slot] = request;
    return slot;
  }
  lane.payloads.push_back(request);
  return lane.payloads.size() - 1;
}

SubmitStatus Server::submit(std::uint64_t session_id, SessionHandle session,
                            const ServerRequest& request) {
  VIBGUARD_REQUIRE(request.va != nullptr && request.wearable != nullptr,
                   "server request needs both signals");
  const std::size_t w = shard_of(session_id);
  Lane& lane = this->lane(w);

  WorkItem item;
  item.session_id = session_id;
  item.request_id = request.request_id;
  item.session = session;
  item.deadline_at_us = config_.deadline_us.has_value()
                            ? clock_->now_us() + *config_.deadline_us
                            : kNoDeadline;
  {
    std::lock_guard<std::mutex> lock(lane.mu);
    const SessionRecord* record = lane.slab.get(session);
    if (record == nullptr || record->session_id != session_id) {
      return SubmitStatus::kStaleSession;
    }
    item.tenant = record->tenant;
    item.payload = park_payload(lane, request);
  }

  const SubmitStatus status = lane.shard.submit(item);
  if (status != SubmitStatus::kQueued) {
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.free_payloads.push_back(item.payload);
  }
  return status;
}

std::optional<std::uint64_t> Server::batch_ready_us() const {
  std::optional<std::uint64_t> earliest;
  for (std::size_t w = 0; w < workers(); ++w) {
    const auto ready = lane(w).shard.batch_ready_us();
    if (ready.has_value() && (!earliest.has_value() || *ready < *earliest)) {
      earliest = ready;
    }
  }
  return earliest;
}

std::optional<PlannedBatch> Server::form_batch(std::size_t w, bool force) {
  Lane& lane = this->lane(w);
  VIBGUARD_REQUIRE(!lane.has_batch,
                   "complete the previous batch before forming another");
  lane.batch.clear();
  const auto formed = lane.shard.form_batch(lane.batch, force);
  if (!formed.has_value()) return std::nullopt;
  lane.formed = *formed;
  lane.has_batch = true;
  PlannedBatch planned;
  planned.worker = w;
  planned.degraded = formed->degraded;
  planned.probe = formed->probe;
  planned.items = lane.batch;
  return planned;
}

void Server::complete_batch(std::size_t w, std::vector<ServedResult>& out,
                            std::span<const std::uint64_t> deadline_override) {
  Lane& lane = this->lane(w);
  VIBGUARD_REQUIRE(lane.has_batch, "no batch formed for this worker");
  VIBGUARD_REQUIRE(
      deadline_override.empty() ||
          deadline_override.size() == lane.batch.size(),
      "deadline override must cover the whole batch");
  lane.has_batch = false;

  // Build the scoring batch from the non-expired items. Deadlines are
  // materialized first (the ScoreRequests borrow pointers into the
  // vector, so it must not grow afterwards).
  lane.reqs.clear();
  lane.outs.clear();
  lane.deadlines.clear();
  lane.deadlines.reserve(lane.batch.size());
  std::vector<std::size_t> scored_item;  // batch index per scoring slot
  for (std::size_t i = 0; i < lane.batch.size(); ++i) {
    const WorkItem& item = lane.batch[i];
    if (item.expired_in_queue) continue;
    const std::uint64_t expires = !deadline_override.empty()
                                      ? deadline_override[i]
                                      : item.deadline_at_us;
    lane.deadlines.push_back(expires == kNoDeadline
                                 ? Deadline()
                                 : Deadline(*clock_, expires));
    scored_item.push_back(i);
  }
  const core::DefenseSystem& route =
      lane.formed.degraded ? *degraded_system_ : system_;
  {
    // Payload slots are shared with concurrent submit() (park_payload can
    // reallocate the vector), so the borrow happens under the lane lock —
    // the ScoreRequests copy out everything they need.
    std::lock_guard<std::mutex> lock(lane.mu);
    for (std::size_t s = 0; s < scored_item.size(); ++s) {
      const WorkItem& item = lane.batch[scored_item[s]];
      const ServerRequest& payload = lane.payloads[item.payload];
      core::ScoreRequest req;
      req.va = payload.va;
      req.wearable = payload.wearable;
      req.segmenter = payload.segmenter;
      req.rng = payload.rng;
      req.deadline =
          lane.deadlines[s].bounded() ? &lane.deadlines[s] : nullptr;
      lane.reqs.push_back(req);
    }
  }
  lane.outs.resize(lane.reqs.size());
  if (!lane.reqs.empty()) {
    route.score_batch(lane.reqs, std::span<core::ScoreOutcome>(lane.outs),
                      lane.workspace, nullptr, &lane.pipeline_stats);
  }

  // Emit results in batch order, feed the breaker (primary route only,
  // one outcome per item), update the slab records, recycle payloads.
  std::size_t next_scored = 0;
  for (std::size_t i = 0; i < lane.batch.size(); ++i) {
    const WorkItem& item = lane.batch[i];
    ServedResult result;
    result.request_id = item.request_id;
    result.session_id = item.session_id;
    result.worker = w;
    result.batch_size = lane.batch.size();
    result.degraded = lane.formed.degraded;
    result.expired_in_queue = item.expired_in_queue;
    result.migrated = item.migrations > 0;
    result.stolen = item.stolen;
    result.queue_us = lane.formed.now_us >= item.enqueued_us
                          ? lane.formed.now_us - item.enqueued_us
                          : 0;
    if (item.expired_in_queue) {
      result.outcome.status = core::ScoreStatus::kDeadlineExceeded;
      result.outcome.reason = "deadline_expired_in_queue";
      result.outcome.score = core::kIndeterminateScore;
      if (!lane.formed.degraded) {
        // Never ran, so it says nothing about the pipeline's health —
        // but if this was the probe, the slot must be released.
        lane.shard.record(TrialOutcome::kIndeterminate,
                          result.outcome.reason);
      }
    } else {
      result.outcome = lane.outs[next_scored++];
      if (!lane.formed.degraded) {
        TrialOutcome trial = TrialOutcome::kIndeterminate;
        if (result.outcome.status == core::ScoreStatus::kOk) {
          trial = TrialOutcome::kSuccess;
        } else if (result.outcome.status == core::ScoreStatus::kError ||
                   result.outcome.status ==
                       core::ScoreStatus::kDeadlineExceeded) {
          trial = TrialOutcome::kHardFailure;
        }
        lane.shard.record(trial, result.outcome.reason != nullptr
                                     ? result.outcome.reason
                                     : "");
      }
    }
    {
      // A stolen item's session record lives on its OWNER's lane (stealing
      // moves work, not sessions) — resolve through the ring for those.
      // Unstolen items keep the direct path, so behavior without stealing
      // is bit-identical to before.
      Lane& home = item.stolen ? this->lane(shard_of(item.session_id)) : lane;
      std::lock_guard<std::mutex> lock(home.mu);
      SessionRecord* record = home.slab.get(item.session);
      // Expired drops were never served: the record's counters describe
      // work actually done for the session.
      if (!item.expired_in_queue && record != nullptr &&
          record->session_id == item.session_id) {
        ++record->served;
        record->last_active_us = clock_->now_us();
      }
    }
    {
      // The payload always recycles on the SERVING lane (where it was
      // parked), regardless of where the session record lives.
      std::lock_guard<std::mutex> lock(lane.mu);
      lane.free_payloads.push_back(item.payload);
    }
    out.push_back(result);
  }
}

void Server::drain(std::vector<ServedResult>& out) {
  for (std::size_t w = 0; w < workers(); ++w) {
    if (!worker_active(w) && lane(w).shard.depth() == 0) continue;
    while (form_batch(w, /*force=*/true).has_value()) {
      complete_batch(w, out);
    }
  }
}

// ── Ring resize ─────────────────────────────────────────────────────────

void Server::migrate_sessions(
    std::size_t from, std::vector<ResizeReport::MigratedSession>& moved) {
  Lane& src = lane(from);
  // Snapshot, then move one session at a time. Each step holds at most one
  // lane lock (never two — lane locks do not nest), and shard_of takes the
  // shared ring lock, so the exclusive ring lock must NOT be held here.
  std::vector<SessionHandle> live;
  {
    std::lock_guard<std::mutex> lock(src.mu);
    live = src.slab.handles();
  }
  for (const SessionHandle handle : live) {
    SessionRecord record;
    {
      std::lock_guard<std::mutex> lock(src.mu);
      const SessionRecord* ptr = src.slab.get(handle);
      if (ptr == nullptr) continue;  // closed since the snapshot
      record = *ptr;
    }
    const std::size_t to = shard_of(record.session_id);
    if (to == from) continue;  // still owned here (growth leaves most be)
    ResizeReport::MigratedSession entry;
    entry.session_id = record.session_id;
    entry.old_handle = handle;
    entry.from = from;
    entry.to = to;
    {
      Lane& dst = lane(to);
      std::lock_guard<std::mutex> lock(dst.mu);
      entry.new_handle = dst.slab.insert(record);
    }
    {
      std::lock_guard<std::mutex> lock(src.mu);
      src.slab.erase(handle);
    }
    moved.push_back(entry);
  }
}

void Server::rehome_items(
    std::size_t from, std::vector<WorkItem>& stranded,
    const std::vector<ResizeReport::MigratedSession>& moved,
    ResizeReport& report, std::vector<ServedResult>& out) {
  Lane& src = lane(from);
  const std::uint64_t now = clock_->now_us();
  for (WorkItem& item : stranded) {
    // Pull the payload off the source lane; it re-parks on the new owner
    // (or dies with the item).
    ServerRequest payload;
    {
      std::lock_guard<std::mutex> lock(src.mu);
      payload = src.payloads[item.payload];
      src.free_payloads.push_back(item.payload);
    }

    const auto emit = [&](const char* reason, core::ScoreStatus status,
                          bool expired) {
      ServedResult result;
      result.request_id = item.request_id;
      result.session_id = item.session_id;
      result.worker = from;
      result.batch_size = 0;
      result.expired_in_queue = expired;
      result.migrated = true;
      result.queue_us = now >= item.enqueued_us ? now - item.enqueued_us : 0;
      result.outcome.status = status;
      result.outcome.reason = reason;
      result.outcome.score = core::kIndeterminateScore;
      out.push_back(result);
    };

    if (item.expired_in_queue ||
        (item.deadline_at_us != kNoDeadline && item.deadline_at_us <= now)) {
      emit("deadline_expired_in_migration", core::ScoreStatus::kDeadlineExceeded,
           /*expired=*/true);
      ++report.items_expired;
      continue;
    }

    // Sessions that moved carry their new handle; an unmoved session's
    // item goes right back where it was (growth restores donor FIFO).
    const std::size_t to = shard_of(item.session_id);
    const bool is_move = to != from;
    for (const auto& entry : moved) {
      if (entry.session_id == item.session_id) {
        item.session = entry.new_handle;
        break;
      }
    }
    if (is_move) ++item.migrations;

    Lane& dst = lane(to);
    {
      std::lock_guard<std::mutex> lock(dst.mu);
      item.payload = park_payload(dst, payload);
    }
    if (dst.shard.requeue(item, /*count_migration=*/is_move)) {
      if (is_move) ++report.items_requeued;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(dst.mu);
      dst.free_payloads.push_back(item.payload);
    }
    emit("migration_requeue_rejected", core::ScoreStatus::kError,
         /*expired=*/false);
    ++report.items_dropped;
  }
  stranded.clear();
}

ResizeReport Server::remove_worker(std::size_t w,
                                   std::vector<ServedResult>& out) {
  VIBGUARD_REQUIRE(w < workers(), "no such worker");
  VIBGUARD_REQUIRE(worker_active(w), "worker already retired");
  ResizeReport report;
  report.worker = w;
  report.removed = true;

  Lane& lane = this->lane(w);
  // Close FIRST, then unmap: a submit racing the removal either lands
  // before the close (and is migrated with the queue below) or gets an
  // explicit kRejectedClosed — it can never be stranded on a shard the
  // ring no longer points at.
  lane.shard.close();
  {
    std::unique_lock<std::shared_mutex> lock(ring_mu_);
    ring_.remove_worker(w);
    states_[w] = WorkerState::kRetired;
  }

  migrate_sessions(w, report.sessions);

  // Re-home everything the dead worker still held: a parked (formed but
  // never completed) batch first — those items are the oldest — then the
  // queue, FIFO.
  std::vector<WorkItem> stranded;
  if (lane.has_batch) {
    lane.has_batch = false;
    stranded.insert(stranded.end(), lane.batch.begin(), lane.batch.end());
    lane.batch.clear();
  }
  lane.shard.take_all(stranded);
  rehome_items(w, stranded, report.sessions, report, out);
  return report;
}

void Server::reclaim_from_donors(const std::vector<std::size_t>& donors,
                                 ResizeReport& report,
                                 std::vector<ServedResult>& out) {
  // Consistent hashing moves only the grown worker's arcs: each existing
  // worker donates exactly the sessions that now hash elsewhere. Donor
  // queues are drained and restored so donated items leave in FIFO order
  // while unmoved items keep their place (requeue preserves enqueued_us,
  // so the round trip is accounting-neutral).
  std::vector<WorkItem> stranded;
  for (const std::size_t v : donors) {
    const std::size_t before = report.sessions.size();
    migrate_sessions(v, report.sessions);
    if (report.sessions.size() == before && lane(v).shard.depth() == 0) {
      continue;
    }
    stranded.clear();
    lane(v).shard.take_all(stranded);
    rehome_items(v, stranded, report.sessions, report, out);
  }
}

std::size_t Server::add_worker(std::vector<ServedResult>& out,
                               ResizeReport* report_out) {
  ResizeReport report;
  report.removed = false;

  std::size_t w = 0;
  std::vector<std::size_t> donors;
  {
    // One exclusive section covers the lane-vector growth AND the ring
    // add: every reader (shard_of, lane, workers) indexes under the
    // shared side, so live pumps never observe a reallocating vector.
    std::unique_lock<std::shared_mutex> lock(ring_mu_);
    w = lanes_.size();
    lanes_.push_back(std::make_unique<Lane>(config_.shard, *clock_));
    states_.push_back(WorkerState::kActive);
    donors = ring_.active_workers();
    ring_.add_worker(w);
  }
  report.worker = w;

  reclaim_from_donors(donors, report, out);
  if (report_out != nullptr) *report_out = std::move(report);
  if (pumps_running()) start_pump(w);
  return w;
}

// ── Quarantine (reversible fence) and work stealing ─────────────────────

ResizeReport Server::quarantine_worker(std::size_t w,
                                       std::vector<ServedResult>& out) {
  VIBGUARD_REQUIRE(w < workers(), "no such worker");
  VIBGUARD_REQUIRE(worker_state(w) == WorkerState::kActive,
                   "only an active worker can be quarantined");
  VIBGUARD_REQUIRE(active_worker_ids().size() > 1,
                   "cannot quarantine the last active worker");
  ResizeReport report;
  report.worker = w;
  report.removed = true;

  Lane& lane = this->lane(w);
  // Unlike remove_worker the shard stays OPEN — the fence must be
  // reversible. Drop the ring points first so no new placement lands
  // here; a submit that read the old placement can still land on the open
  // shard and simply waits out the quarantine (served after restore, or
  // re-homed by retire).
  {
    std::unique_lock<std::shared_mutex> lock(ring_mu_);
    ring_.remove_worker(w);
    states_[w] = WorkerState::kQuarantined;
  }

  migrate_sessions(w, report.sessions);

  // Drain through the steal path: peers take the fenced queue's items
  // (Shard::steal_batch accounting — expired items are flagged and
  // tallied on the victim), then each item is re-homed to its session's
  // new owner with the same never-lose rules as a removal. A parked
  // (formed but uncompleted) batch is re-homed first — its items are the
  // oldest. Passing one vector as both outputs keeps global FIFO order.
  std::vector<WorkItem> stranded;
  if (lane.has_batch) {
    lane.has_batch = false;
    stranded.insert(stranded.end(), lane.batch.begin(), lane.batch.end());
    lane.batch.clear();
  }
  lane.shard.steal_batch(stranded, stranded, SIZE_MAX);
  rehome_items(w, stranded, report.sessions, report, out);
  return report;
}

ResizeReport Server::restore_worker(std::size_t w,
                                    std::vector<ServedResult>& out) {
  VIBGUARD_REQUIRE(w < workers(), "no such worker");
  VIBGUARD_REQUIRE(worker_state(w) == WorkerState::kQuarantined,
                   "only a quarantined worker can be restored");
  ResizeReport report;
  report.worker = w;
  report.removed = false;

  std::vector<std::size_t> donors;
  {
    std::unique_lock<std::shared_mutex> lock(ring_mu_);
    donors = ring_.active_workers();
    ring_.add_worker(w);
    states_[w] = WorkerState::kActive;
  }
  // The ring is deterministic, so `w` gets back exactly the arcs it held
  // before the quarantine — its old sessions come home, nobody else moves.
  reclaim_from_donors(donors, report, out);
  return report;
}

ResizeReport Server::retire_worker(std::size_t w,
                                   std::vector<ServedResult>& out) {
  VIBGUARD_REQUIRE(w < workers(), "no such worker");
  VIBGUARD_REQUIRE(worker_state(w) == WorkerState::kQuarantined,
                   "only a quarantined worker can be retired");
  ResizeReport report;
  report.worker = w;
  report.removed = true;

  Lane& lane = this->lane(w);
  lane.shard.close();
  {
    std::unique_lock<std::shared_mutex> lock(ring_mu_);
    states_[w] = WorkerState::kRetired;
  }
  // The quarantine already moved the sessions and drained the queue;
  // whatever raced in since (stale-placement submits) is re-homed now —
  // the escalation, like the fence, never loses a request.
  migrate_sessions(w, report.sessions);
  std::vector<WorkItem> stranded;
  lane.shard.take_all(stranded);
  rehome_items(w, stranded, report.sessions, report, out);
  return report;
}

std::size_t Server::steal_work(std::size_t thief, std::size_t victim,
                               std::size_t max_items,
                               std::vector<ServedResult>& out) {
  VIBGUARD_REQUIRE(thief != victim, "a shard cannot steal from itself");
  VIBGUARD_REQUIRE(thief < workers() && victim < workers(), "no such worker");
  VIBGUARD_REQUIRE(worker_state(thief) == WorkerState::kActive,
                   "thief must be active");
  if (max_items == 0) return 0;

  Lane& vsrc = this->lane(victim);
  Lane& tdst = this->lane(thief);
  std::vector<WorkItem> stolen;
  std::vector<WorkItem> expired;
  vsrc.shard.steal_batch(stolen, expired, max_items);

  const std::uint64_t now = clock_->now_us();
  const auto emit = [&](const WorkItem& item, std::size_t worker,
                        const char* reason, core::ScoreStatus status,
                        bool was_expired) {
    ServedResult result;
    result.request_id = item.request_id;
    result.session_id = item.session_id;
    result.worker = worker;
    result.batch_size = 0;
    result.expired_in_queue = was_expired;
    result.stolen = true;
    result.queue_us = now >= item.enqueued_us ? now - item.enqueued_us : 0;
    result.outcome.status = status;
    result.outcome.reason = reason;
    result.outcome.score = core::kIndeterminateScore;
    out.push_back(result);
  };

  // Items already expired on the victim's queue head: a result is owed,
  // nothing moves.
  for (const WorkItem& item : expired) {
    {
      std::lock_guard<std::mutex> lock(vsrc.mu);
      vsrc.free_payloads.push_back(item.payload);
    }
    emit(item, victim, "deadline_expired_in_queue",
         core::ScoreStatus::kDeadlineExceeded, /*was_expired=*/true);
  }

  std::size_t moved = 0;
  for (WorkItem item : stolen) {
    // Payload rides along: off the victim's slots, onto the thief's.
    ServerRequest payload;
    {
      std::lock_guard<std::mutex> lock(vsrc.mu);
      payload = vsrc.payloads[item.payload];
      vsrc.free_payloads.push_back(item.payload);
    }
    WorkItem stolen_item = item;
    stolen_item.stolen = true;
    {
      std::lock_guard<std::mutex> lock(tdst.mu);
      stolen_item.payload = park_payload(tdst, payload);
    }
    if (tdst.shard.steal_in(stolen_item)) {
      ++moved;
      continue;
    }
    // Thief refused (tenant quota, full queue, or closed): give the item
    // back to the victim — at the tail, the only FIFO concession the
    // steal path makes — so a failed steal never loses work.
    {
      std::lock_guard<std::mutex> lock(tdst.mu);
      tdst.free_payloads.push_back(stolen_item.payload);
    }
    {
      std::lock_guard<std::mutex> lock(vsrc.mu);
      item.payload = park_payload(vsrc, payload);
    }
    if (vsrc.shard.requeue(item, /*count_migration=*/false)) continue;
    // Victim also refused (closed, or refilled by racing submits): the
    // item is emitted explicitly, never silently dropped.
    {
      std::lock_guard<std::mutex> lock(vsrc.mu);
      vsrc.free_payloads.push_back(item.payload);
    }
    emit(item, victim, "steal_requeue_rejected", core::ScoreStatus::kError,
         /*was_expired=*/false);
  }
  return moved;
}

// ── Thread-per-worker pumps ─────────────────────────────────────────────

std::size_t Server::run_pump(std::size_t w, const ResultSink& sink,
                             const std::atomic<bool>& stop,
                             const PumpConfig& pump) {
  Lane& lane = this->lane(w);
  std::vector<ServedResult> local;
  return lane.shard.run_pump(
      [&](bool force) {
        if (!form_batch(w, force).has_value()) return false;
        local.clear();
        complete_batch(w, local);
        for (const ServedResult& result : local) sink(result);
        return true;
      },
      stop, pump);
}

void Server::start_pumps(ResultSink sink, const PumpConfig& pump) {
  VIBGUARD_REQUIRE(!pumps_running(), "pumps already running");
  VIBGUARD_REQUIRE(sink != nullptr, "pumps need a result sink");
  pump_stop_.store(false, std::memory_order_release);
  pump_sink_ = std::make_shared<ResultSink>(std::move(sink));
  pump_cfg_ = pump;
  pumps_running_.store(true, std::memory_order_release);
  for (const std::size_t w : active_worker_ids()) {
    start_pump(w);
  }
}

void Server::start_pump(std::size_t w) {
  VIBGUARD_REQUIRE(pumps_running(), "start_pumps first");
  std::lock_guard<std::mutex> lock(pumps_mu_);
  for (const auto& entry : pumps_) {
    VIBGUARD_REQUIRE(entry.first != w, "worker already has a live pump");
  }
  auto sink = pump_sink_;
  pumps_.emplace_back(w, std::thread([this, w, sink] {
                        run_pump(w, *sink, pump_stop_, pump_cfg_);
                      }));
}

void Server::fence_pump(std::size_t w) {
  // The epoch bump is the fence: the old pump's next epoch-gated beat
  // fails and it exits without touching the shard again. We do NOT join
  // here — a wedged thread may be stuck for a long time; it is parked on
  // the fenced list and joined at stop_pumps.
  shard(w).bump_epoch();
  std::lock_guard<std::mutex> lock(pumps_mu_);
  for (auto it = pumps_.begin(); it != pumps_.end(); ++it) {
    if (it->first == w) {
      fenced_pumps_.push_back(std::move(it->second));
      pumps_.erase(it);
      break;
    }
  }
}

void Server::restart_pump(std::size_t w) {
  fence_pump(w);
  if (pumps_running()) start_pump(w);
}

void Server::stop_pumps() {
  if (!pumps_running()) return;
  pump_stop_.store(true, std::memory_order_release);
  std::vector<std::pair<std::size_t, std::thread>> live;
  std::vector<std::thread> fenced;
  {
    std::lock_guard<std::mutex> lock(pumps_mu_);
    live.swap(pumps_);
    fenced.swap(fenced_pumps_);
  }
  for (auto& entry : live) entry.second.join();
  for (std::thread& t : fenced) t.join();
  pumps_running_.store(false, std::memory_order_release);
  pump_sink_.reset();
}

}  // namespace vibguard::serving
