#include "serving/server.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace vibguard::serving {

Server::Server(ServerConfig config, const Clock& clock)
    : config_(config),
      clock_(&clock),
      system_(config.defense),
      ring_(config.workers, config.ring_replicas) {
  VIBGUARD_REQUIRE(config_.workers > 0, "server needs at least one worker");
  if (config_.shard.breaker.has_value()) {
    core::DefenseConfig degraded = config_.defense;
    degraded.mode = config_.degraded_mode;
    degraded_system_.emplace(degraded);
  }
  lanes_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    lanes_.push_back(std::make_unique<Lane>(config_.shard, clock));
  }
}

Server::~Server() { stop_pumps(); }

std::size_t Server::shard_of(std::uint64_t session_id) const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  return ring_.worker_for(mix64(session_id));
}

bool Server::worker_active(std::size_t w) const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  return ring_.contains(w);
}

std::vector<std::size_t> Server::active_worker_ids() const {
  std::shared_lock<std::shared_mutex> lock(ring_mu_);
  return ring_.active_workers();
}

SessionHandle Server::open_session(std::uint64_t session_id,
                                   std::uint32_t tenant) {
  Lane& lane = *lanes_[shard_of(session_id)];
  std::lock_guard<std::mutex> lock(lane.mu);
  SessionRecord record;
  record.session_id = session_id;
  record.tenant = tenant;
  record.last_active_us = clock_->now_us();
  return lane.slab.insert(record);
}

bool Server::close_session(std::uint64_t session_id, SessionHandle handle) {
  Lane& lane = *lanes_[shard_of(session_id)];
  std::lock_guard<std::mutex> lock(lane.mu);
  const SessionRecord* record = lane.slab.get(handle);
  if (record == nullptr || record->session_id != session_id) return false;
  return lane.slab.erase(handle);
}

std::size_t Server::sessions() const {
  std::size_t total = 0;
  for (const auto& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane->mu);
    total += lane->slab.size();
  }
  return total;
}

const SessionRecord* Server::session(std::uint64_t session_id,
                                     SessionHandle handle) const {
  const Lane& lane = *lanes_[shard_of(session_id)];
  std::lock_guard<std::mutex> lock(lane.mu);
  const SessionRecord* record = lane.slab.get(handle);
  if (record == nullptr || record->session_id != session_id) return nullptr;
  return record;
}

std::size_t Server::park_payload(Lane& lane, const ServerRequest& request) {
  if (!lane.free_payloads.empty()) {
    const std::size_t slot = lane.free_payloads.back();
    lane.free_payloads.pop_back();
    lane.payloads[slot] = request;
    return slot;
  }
  lane.payloads.push_back(request);
  return lane.payloads.size() - 1;
}

SubmitStatus Server::submit(std::uint64_t session_id, SessionHandle session,
                            const ServerRequest& request) {
  VIBGUARD_REQUIRE(request.va != nullptr && request.wearable != nullptr,
                   "server request needs both signals");
  const std::size_t w = shard_of(session_id);
  Lane& lane = *lanes_[w];

  WorkItem item;
  item.session_id = session_id;
  item.request_id = request.request_id;
  item.session = session;
  item.deadline_at_us = config_.deadline_us.has_value()
                            ? clock_->now_us() + *config_.deadline_us
                            : kNoDeadline;
  {
    std::lock_guard<std::mutex> lock(lane.mu);
    const SessionRecord* record = lane.slab.get(session);
    if (record == nullptr || record->session_id != session_id) {
      return SubmitStatus::kStaleSession;
    }
    item.tenant = record->tenant;
    item.payload = park_payload(lane, request);
  }

  const SubmitStatus status = lane.shard.submit(item);
  if (status != SubmitStatus::kQueued) {
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.free_payloads.push_back(item.payload);
  }
  return status;
}

std::optional<std::uint64_t> Server::batch_ready_us() const {
  std::optional<std::uint64_t> earliest;
  for (const auto& lane : lanes_) {
    const auto ready = lane->shard.batch_ready_us();
    if (ready.has_value() && (!earliest.has_value() || *ready < *earliest)) {
      earliest = ready;
    }
  }
  return earliest;
}

std::optional<PlannedBatch> Server::form_batch(std::size_t w, bool force) {
  Lane& lane = *lanes_[w];
  VIBGUARD_REQUIRE(!lane.has_batch,
                   "complete the previous batch before forming another");
  lane.batch.clear();
  const auto formed = lane.shard.form_batch(lane.batch, force);
  if (!formed.has_value()) return std::nullopt;
  lane.formed = *formed;
  lane.has_batch = true;
  PlannedBatch planned;
  planned.worker = w;
  planned.degraded = formed->degraded;
  planned.probe = formed->probe;
  planned.items = lane.batch;
  return planned;
}

void Server::complete_batch(std::size_t w, std::vector<ServedResult>& out,
                            std::span<const std::uint64_t> deadline_override) {
  Lane& lane = *lanes_[w];
  VIBGUARD_REQUIRE(lane.has_batch, "no batch formed for this worker");
  VIBGUARD_REQUIRE(
      deadline_override.empty() ||
          deadline_override.size() == lane.batch.size(),
      "deadline override must cover the whole batch");
  lane.has_batch = false;

  // Build the scoring batch from the non-expired items. Deadlines are
  // materialized first (the ScoreRequests borrow pointers into the
  // vector, so it must not grow afterwards).
  lane.reqs.clear();
  lane.outs.clear();
  lane.deadlines.clear();
  lane.deadlines.reserve(lane.batch.size());
  std::vector<std::size_t> scored_item;  // batch index per scoring slot
  for (std::size_t i = 0; i < lane.batch.size(); ++i) {
    const WorkItem& item = lane.batch[i];
    if (item.expired_in_queue) continue;
    const std::uint64_t expires = !deadline_override.empty()
                                      ? deadline_override[i]
                                      : item.deadline_at_us;
    lane.deadlines.push_back(expires == kNoDeadline
                                 ? Deadline()
                                 : Deadline(*clock_, expires));
    scored_item.push_back(i);
  }
  const core::DefenseSystem& route =
      lane.formed.degraded ? *degraded_system_ : system_;
  {
    // Payload slots are shared with concurrent submit() (park_payload can
    // reallocate the vector), so the borrow happens under the lane lock —
    // the ScoreRequests copy out everything they need.
    std::lock_guard<std::mutex> lock(lane.mu);
    for (std::size_t s = 0; s < scored_item.size(); ++s) {
      const WorkItem& item = lane.batch[scored_item[s]];
      const ServerRequest& payload = lane.payloads[item.payload];
      core::ScoreRequest req;
      req.va = payload.va;
      req.wearable = payload.wearable;
      req.segmenter = payload.segmenter;
      req.rng = payload.rng;
      req.deadline =
          lane.deadlines[s].bounded() ? &lane.deadlines[s] : nullptr;
      lane.reqs.push_back(req);
    }
  }
  lane.outs.resize(lane.reqs.size());
  if (!lane.reqs.empty()) {
    route.score_batch(lane.reqs, std::span<core::ScoreOutcome>(lane.outs),
                      lane.workspace, nullptr, &lane.pipeline_stats);
  }

  // Emit results in batch order, feed the breaker (primary route only,
  // one outcome per item), update the slab records, recycle payloads.
  std::size_t next_scored = 0;
  for (std::size_t i = 0; i < lane.batch.size(); ++i) {
    const WorkItem& item = lane.batch[i];
    ServedResult result;
    result.request_id = item.request_id;
    result.session_id = item.session_id;
    result.worker = w;
    result.batch_size = lane.batch.size();
    result.degraded = lane.formed.degraded;
    result.expired_in_queue = item.expired_in_queue;
    result.migrated = item.migrations > 0;
    result.queue_us = lane.formed.now_us >= item.enqueued_us
                          ? lane.formed.now_us - item.enqueued_us
                          : 0;
    if (item.expired_in_queue) {
      result.outcome.status = core::ScoreStatus::kDeadlineExceeded;
      result.outcome.reason = "deadline_expired_in_queue";
      result.outcome.score = core::kIndeterminateScore;
      if (!lane.formed.degraded) {
        // Never ran, so it says nothing about the pipeline's health —
        // but if this was the probe, the slot must be released.
        lane.shard.record(TrialOutcome::kIndeterminate,
                          result.outcome.reason);
      }
    } else {
      result.outcome = lane.outs[next_scored++];
      if (!lane.formed.degraded) {
        TrialOutcome trial = TrialOutcome::kIndeterminate;
        if (result.outcome.status == core::ScoreStatus::kOk) {
          trial = TrialOutcome::kSuccess;
        } else if (result.outcome.status == core::ScoreStatus::kError ||
                   result.outcome.status ==
                       core::ScoreStatus::kDeadlineExceeded) {
          trial = TrialOutcome::kHardFailure;
        }
        lane.shard.record(trial, result.outcome.reason != nullptr
                                     ? result.outcome.reason
                                     : "");
      }
    }
    {
      std::lock_guard<std::mutex> lock(lane.mu);
      SessionRecord* record = lane.slab.get(item.session);
      // Expired drops were never served: the record's counters describe
      // work actually done for the session.
      if (!item.expired_in_queue && record != nullptr &&
          record->session_id == item.session_id) {
        ++record->served;
        record->last_active_us = clock_->now_us();
      }
      lane.free_payloads.push_back(item.payload);
    }
    out.push_back(result);
  }
}

void Server::drain(std::vector<ServedResult>& out) {
  for (std::size_t w = 0; w < lanes_.size(); ++w) {
    if (!worker_active(w) && lanes_[w]->shard.depth() == 0) continue;
    while (form_batch(w, /*force=*/true).has_value()) {
      complete_batch(w, out);
    }
  }
}

// ── Ring resize ─────────────────────────────────────────────────────────

void Server::migrate_sessions(
    std::size_t from, std::vector<ResizeReport::MigratedSession>& moved) {
  Lane& src = *lanes_[from];
  // Snapshot, then move one session at a time. Each step holds at most one
  // lane lock (never two — lane locks do not nest), and shard_of takes the
  // shared ring lock, so the exclusive ring lock must NOT be held here.
  std::vector<SessionHandle> live;
  {
    std::lock_guard<std::mutex> lock(src.mu);
    live = src.slab.handles();
  }
  for (const SessionHandle handle : live) {
    SessionRecord record;
    {
      std::lock_guard<std::mutex> lock(src.mu);
      const SessionRecord* ptr = src.slab.get(handle);
      if (ptr == nullptr) continue;  // closed since the snapshot
      record = *ptr;
    }
    const std::size_t to = shard_of(record.session_id);
    if (to == from) continue;  // still owned here (growth leaves most be)
    ResizeReport::MigratedSession entry;
    entry.session_id = record.session_id;
    entry.old_handle = handle;
    entry.from = from;
    entry.to = to;
    {
      Lane& dst = *lanes_[to];
      std::lock_guard<std::mutex> lock(dst.mu);
      entry.new_handle = dst.slab.insert(record);
    }
    {
      std::lock_guard<std::mutex> lock(src.mu);
      src.slab.erase(handle);
    }
    moved.push_back(entry);
  }
}

void Server::rehome_items(
    std::size_t from, std::vector<WorkItem>& stranded,
    const std::vector<ResizeReport::MigratedSession>& moved,
    ResizeReport& report, std::vector<ServedResult>& out) {
  Lane& src = *lanes_[from];
  const std::uint64_t now = clock_->now_us();
  for (WorkItem& item : stranded) {
    // Pull the payload off the source lane; it re-parks on the new owner
    // (or dies with the item).
    ServerRequest payload;
    {
      std::lock_guard<std::mutex> lock(src.mu);
      payload = src.payloads[item.payload];
      src.free_payloads.push_back(item.payload);
    }

    const auto emit = [&](const char* reason, core::ScoreStatus status,
                          bool expired) {
      ServedResult result;
      result.request_id = item.request_id;
      result.session_id = item.session_id;
      result.worker = from;
      result.batch_size = 0;
      result.expired_in_queue = expired;
      result.migrated = true;
      result.queue_us = now >= item.enqueued_us ? now - item.enqueued_us : 0;
      result.outcome.status = status;
      result.outcome.reason = reason;
      result.outcome.score = core::kIndeterminateScore;
      out.push_back(result);
    };

    if (item.expired_in_queue ||
        (item.deadline_at_us != kNoDeadline && item.deadline_at_us <= now)) {
      emit("deadline_expired_in_migration", core::ScoreStatus::kDeadlineExceeded,
           /*expired=*/true);
      ++report.items_expired;
      continue;
    }

    // Sessions that moved carry their new handle; an unmoved session's
    // item goes right back where it was (growth restores donor FIFO).
    const std::size_t to = shard_of(item.session_id);
    const bool is_move = to != from;
    for (const auto& entry : moved) {
      if (entry.session_id == item.session_id) {
        item.session = entry.new_handle;
        break;
      }
    }
    if (is_move) ++item.migrations;

    Lane& dst = *lanes_[to];
    {
      std::lock_guard<std::mutex> lock(dst.mu);
      item.payload = park_payload(dst, payload);
    }
    if (dst.shard.requeue(item, /*count_migration=*/is_move)) {
      if (is_move) ++report.items_requeued;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(dst.mu);
      dst.free_payloads.push_back(item.payload);
    }
    emit("migration_requeue_rejected", core::ScoreStatus::kError,
         /*expired=*/false);
    ++report.items_dropped;
  }
  stranded.clear();
}

ResizeReport Server::remove_worker(std::size_t w,
                                   std::vector<ServedResult>& out) {
  VIBGUARD_REQUIRE(w < lanes_.size(), "no such worker");
  VIBGUARD_REQUIRE(worker_active(w), "worker already retired");
  ResizeReport report;
  report.worker = w;
  report.removed = true;

  Lane& lane = *lanes_[w];
  // Close FIRST, then unmap: a submit racing the removal either lands
  // before the close (and is migrated with the queue below) or gets an
  // explicit kRejectedClosed — it can never be stranded on a shard the
  // ring no longer points at.
  lane.shard.close();
  {
    std::unique_lock<std::shared_mutex> lock(ring_mu_);
    ring_.remove_worker(w);
  }

  migrate_sessions(w, report.sessions);

  // Re-home everything the dead worker still held: a parked (formed but
  // never completed) batch first — those items are the oldest — then the
  // queue, FIFO.
  std::vector<WorkItem> stranded;
  if (lane.has_batch) {
    lane.has_batch = false;
    stranded.insert(stranded.end(), lane.batch.begin(), lane.batch.end());
    lane.batch.clear();
  }
  lane.shard.take_all(stranded);
  rehome_items(w, stranded, report.sessions, report, out);
  return report;
}

std::size_t Server::add_worker(std::vector<ServedResult>& out,
                               ResizeReport* report_out) {
  VIBGUARD_REQUIRE(pumps_.empty(),
                   "stop pumps before growing the fleet (lane vector grows)");
  const std::size_t w = lanes_.size();
  ResizeReport report;
  report.worker = w;
  report.removed = false;

  lanes_.push_back(std::make_unique<Lane>(config_.shard, *clock_));
  std::vector<std::size_t> donors;
  {
    std::unique_lock<std::shared_mutex> lock(ring_mu_);
    donors = ring_.active_workers();
    ring_.add_worker(w);
  }

  // Consistent hashing moves only the new worker's arcs: each existing
  // worker donates exactly the sessions that now hash to `w`. Donor queues
  // are drained and restored so donated items leave in FIFO order while
  // unmoved items keep their place (requeue preserves enqueued_us, so the
  // round trip is accounting-neutral).
  std::vector<WorkItem> stranded;
  for (const std::size_t v : donors) {
    const std::size_t before = report.sessions.size();
    migrate_sessions(v, report.sessions);
    if (report.sessions.size() == before && lanes_[v]->shard.depth() == 0) {
      continue;
    }
    stranded.clear();
    lanes_[v]->shard.take_all(stranded);
    rehome_items(v, stranded, report.sessions, report, out);
  }
  if (report_out != nullptr) *report_out = std::move(report);
  return w;
}

// ── Thread-per-worker pumps ─────────────────────────────────────────────

std::size_t Server::run_pump(std::size_t w, const ResultSink& sink,
                             const std::atomic<bool>& stop,
                             const PumpConfig& pump) {
  Lane& lane = *lanes_[w];
  std::vector<ServedResult> local;
  return lane.shard.run_pump(
      [&](bool force) {
        if (!form_batch(w, force).has_value()) return false;
        local.clear();
        complete_batch(w, local);
        for (const ServedResult& result : local) sink(result);
        return true;
      },
      stop, pump);
}

void Server::start_pumps(ResultSink sink, const PumpConfig& pump) {
  VIBGUARD_REQUIRE(pumps_.empty(), "pumps already running");
  VIBGUARD_REQUIRE(sink != nullptr, "pumps need a result sink");
  pump_stop_.store(false, std::memory_order_release);
  auto shared_sink = std::make_shared<ResultSink>(std::move(sink));
  for (const std::size_t w : active_worker_ids()) {
    pumps_.emplace_back([this, w, shared_sink, pump] {
      run_pump(w, *shared_sink, pump_stop_, pump);
    });
  }
}

void Server::stop_pumps() {
  if (pumps_.empty()) return;
  pump_stop_.store(true, std::memory_order_release);
  for (std::thread& t : pumps_) t.join();
  pumps_.clear();
}

}  // namespace vibguard::serving
