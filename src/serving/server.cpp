#include "serving/server.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vibguard::serving {

Server::Server(ServerConfig config, const Clock& clock)
    : config_(config),
      clock_(&clock),
      system_(config.defense),
      ring_(config.workers, config.ring_replicas) {
  VIBGUARD_REQUIRE(config_.workers > 0, "server needs at least one worker");
  if (config_.shard.breaker.has_value()) {
    core::DefenseConfig degraded = config_.defense;
    degraded.mode = config_.degraded_mode;
    degraded_system_.emplace(degraded);
  }
  lanes_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    lanes_.push_back(std::make_unique<Lane>(config_.shard, clock));
  }
}

std::size_t Server::shard_of(std::uint64_t session_id) const {
  return ring_.worker_for(mix64(session_id));
}

SessionHandle Server::open_session(std::uint64_t session_id,
                                   std::uint32_t tenant) {
  Lane& lane = *lanes_[shard_of(session_id)];
  std::lock_guard<std::mutex> lock(lane.mu);
  SessionRecord record;
  record.session_id = session_id;
  record.tenant = tenant;
  record.last_active_us = clock_->now_us();
  return lane.slab.insert(record);
}

bool Server::close_session(std::uint64_t session_id, SessionHandle handle) {
  Lane& lane = *lanes_[shard_of(session_id)];
  std::lock_guard<std::mutex> lock(lane.mu);
  const SessionRecord* record = lane.slab.get(handle);
  if (record == nullptr || record->session_id != session_id) return false;
  return lane.slab.erase(handle);
}

std::size_t Server::sessions() const {
  std::size_t total = 0;
  for (const auto& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane->mu);
    total += lane->slab.size();
  }
  return total;
}

const SessionRecord* Server::session(std::uint64_t session_id,
                                     SessionHandle handle) const {
  const Lane& lane = *lanes_[shard_of(session_id)];
  std::lock_guard<std::mutex> lock(lane.mu);
  const SessionRecord* record = lane.slab.get(handle);
  if (record == nullptr || record->session_id != session_id) return nullptr;
  return record;
}

std::size_t Server::park_payload(Lane& lane, const ServerRequest& request) {
  if (!lane.free_payloads.empty()) {
    const std::size_t slot = lane.free_payloads.back();
    lane.free_payloads.pop_back();
    lane.payloads[slot] = request;
    return slot;
  }
  lane.payloads.push_back(request);
  return lane.payloads.size() - 1;
}

SubmitStatus Server::submit(std::uint64_t session_id, SessionHandle session,
                            const ServerRequest& request) {
  VIBGUARD_REQUIRE(request.va != nullptr && request.wearable != nullptr,
                   "server request needs both signals");
  const std::size_t w = shard_of(session_id);
  Lane& lane = *lanes_[w];

  WorkItem item;
  item.session_id = session_id;
  item.request_id = request.request_id;
  item.session = session;
  item.deadline_at_us = config_.deadline_us.has_value()
                            ? clock_->now_us() + *config_.deadline_us
                            : kNoDeadline;
  {
    std::lock_guard<std::mutex> lock(lane.mu);
    const SessionRecord* record = lane.slab.get(session);
    if (record == nullptr || record->session_id != session_id) {
      return SubmitStatus::kStaleSession;
    }
    item.tenant = record->tenant;
    item.payload = park_payload(lane, request);
  }

  const SubmitStatus status = lane.shard.submit(item);
  if (status != SubmitStatus::kQueued) {
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.free_payloads.push_back(item.payload);
  }
  return status;
}

std::optional<std::uint64_t> Server::batch_ready_us() const {
  std::optional<std::uint64_t> earliest;
  for (const auto& lane : lanes_) {
    const auto ready = lane->shard.batch_ready_us();
    if (ready.has_value() && (!earliest.has_value() || *ready < *earliest)) {
      earliest = ready;
    }
  }
  return earliest;
}

std::optional<PlannedBatch> Server::form_batch(std::size_t w, bool force) {
  Lane& lane = *lanes_[w];
  VIBGUARD_REQUIRE(!lane.has_batch,
                   "complete the previous batch before forming another");
  lane.batch.clear();
  const auto formed = lane.shard.form_batch(lane.batch, force);
  if (!formed.has_value()) return std::nullopt;
  lane.formed = *formed;
  lane.has_batch = true;
  PlannedBatch planned;
  planned.worker = w;
  planned.degraded = formed->degraded;
  planned.probe = formed->probe;
  planned.items = lane.batch;
  return planned;
}

void Server::complete_batch(std::size_t w, std::vector<ServedResult>& out,
                            std::span<const std::uint64_t> deadline_override) {
  Lane& lane = *lanes_[w];
  VIBGUARD_REQUIRE(lane.has_batch, "no batch formed for this worker");
  VIBGUARD_REQUIRE(
      deadline_override.empty() ||
          deadline_override.size() == lane.batch.size(),
      "deadline override must cover the whole batch");
  lane.has_batch = false;

  // Build the scoring batch from the non-expired items. Deadlines are
  // materialized first (the ScoreRequests borrow pointers into the
  // vector, so it must not grow afterwards).
  lane.reqs.clear();
  lane.outs.clear();
  lane.deadlines.clear();
  lane.deadlines.reserve(lane.batch.size());
  std::vector<std::size_t> scored_item;  // batch index per scoring slot
  for (std::size_t i = 0; i < lane.batch.size(); ++i) {
    const WorkItem& item = lane.batch[i];
    if (item.expired_in_queue) continue;
    const std::uint64_t expires = !deadline_override.empty()
                                      ? deadline_override[i]
                                      : item.deadline_at_us;
    lane.deadlines.push_back(expires == kNoDeadline
                                 ? Deadline()
                                 : Deadline(*clock_, expires));
    scored_item.push_back(i);
  }
  const core::DefenseSystem& route =
      lane.formed.degraded ? *degraded_system_ : system_;
  for (std::size_t s = 0; s < scored_item.size(); ++s) {
    const WorkItem& item = lane.batch[scored_item[s]];
    const ServerRequest& payload = lane.payloads[item.payload];
    core::ScoreRequest req;
    req.va = payload.va;
    req.wearable = payload.wearable;
    req.segmenter = payload.segmenter;
    req.rng = payload.rng;
    req.deadline =
        lane.deadlines[s].bounded() ? &lane.deadlines[s] : nullptr;
    lane.reqs.push_back(req);
  }
  lane.outs.resize(lane.reqs.size());
  if (!lane.reqs.empty()) {
    route.score_batch(lane.reqs, std::span<core::ScoreOutcome>(lane.outs),
                      lane.workspace, nullptr, &lane.pipeline_stats);
  }

  // Emit results in batch order, feed the breaker (primary route only,
  // one outcome per item), update the slab records, recycle payloads.
  std::size_t next_scored = 0;
  for (std::size_t i = 0; i < lane.batch.size(); ++i) {
    const WorkItem& item = lane.batch[i];
    ServedResult result;
    result.request_id = item.request_id;
    result.session_id = item.session_id;
    result.worker = w;
    result.batch_size = lane.batch.size();
    result.degraded = lane.formed.degraded;
    result.expired_in_queue = item.expired_in_queue;
    result.queue_us = lane.formed.now_us >= item.enqueued_us
                          ? lane.formed.now_us - item.enqueued_us
                          : 0;
    if (item.expired_in_queue) {
      result.outcome.status = core::ScoreStatus::kDeadlineExceeded;
      result.outcome.reason = "deadline_expired_in_queue";
      result.outcome.score = core::kIndeterminateScore;
      if (!lane.formed.degraded) {
        // Never ran, so it says nothing about the pipeline's health —
        // but if this was the probe, the slot must be released.
        lane.shard.record(TrialOutcome::kIndeterminate,
                          result.outcome.reason);
      }
    } else {
      result.outcome = lane.outs[next_scored++];
      if (!lane.formed.degraded) {
        TrialOutcome trial = TrialOutcome::kIndeterminate;
        if (result.outcome.status == core::ScoreStatus::kOk) {
          trial = TrialOutcome::kSuccess;
        } else if (result.outcome.status == core::ScoreStatus::kError ||
                   result.outcome.status ==
                       core::ScoreStatus::kDeadlineExceeded) {
          trial = TrialOutcome::kHardFailure;
        }
        lane.shard.record(trial, result.outcome.reason != nullptr
                                     ? result.outcome.reason
                                     : "");
      }
    }
    {
      std::lock_guard<std::mutex> lock(lane.mu);
      SessionRecord* record = lane.slab.get(item.session);
      // Expired drops were never served: the record's counters describe
      // work actually done for the session.
      if (!item.expired_in_queue && record != nullptr &&
          record->session_id == item.session_id) {
        ++record->served;
        record->last_active_us = clock_->now_us();
      }
      lane.free_payloads.push_back(item.payload);
    }
    out.push_back(result);
  }
}

void Server::drain(std::vector<ServedResult>& out) {
  for (std::size_t w = 0; w < lanes_.size(); ++w) {
    while (form_batch(w, /*force=*/true).has_value()) {
      complete_batch(w, out);
    }
  }
}

}  // namespace vibguard::serving
