// Shard: one worker's slice of the sharded serving runtime.
//
// The server (serving/server.hpp) partitions sessions across N workers by
// consistent hashing on the session id; everything a worker owns lives
// here. A shard is:
//
//   - a bounded MPMC work queue of WorkItems (the admission queue — full
//     queue means an immediate, explicit rejection, exactly the PR-5
//     backpressure contract, with the same queue-time accounting rules:
//     rejected and expired-in-queue items never pollute the service
//     means);
//   - per-tenant admission quotas layered on top: a tenant may only have
//     so many items queued at once, so one chatty tenant cannot occupy
//     the whole queue and starve its neighbors;
//   - its own circuit breaker (optional): the breaker observes only this
//     shard's primary-path outcomes, so a fault localized to one worker's
//     traffic degrades one shard, not the fleet;
//   - a cross-session micro-batcher: admitted items are coalesced into
//     batches of up to `batch_max`, released either when the batch is
//     full or when the oldest item has waited `batch_window_us` — the
//     classic size-or-timeout window. Batches feed score_batch, whose
//     per-request owned rngs make results independent of batch
//     composition, which is what keeps fleet scoring bit-identical across
//     worker counts and window settings.
//
// The queue interface is deliberately queue-agnostic (WorkQueue is
// abstract); MutexRingQueue is the stock finely-locked implementation.
// Shard methods are individually thread-safe (submit from any thread);
// batch formation is designed for ONE drainer per shard at a time.
// This layer is core-free: outcomes are reported back through the
// TrialOutcome enum, never through core types, so vibguard_serving stays
// below vibguard_core in the link order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "serving/admission.hpp"
#include "serving/circuit_breaker.hpp"
#include "serving/session_slab.hpp"

namespace vibguard::serving {

/// Sentinel deadline: the item never expires.
inline constexpr std::uint64_t kNoDeadline = UINT64_MAX;

/// One queued unit of work. The shard never looks inside the request —
/// `payload` is an opaque index the server uses to find the borrowed
/// signals — so this stays a small POD that queues by value.
struct WorkItem {
  std::uint64_t session_id = 0;
  std::uint64_t request_id = 0;
  SessionHandle session;       ///< slab handle (server-side bookkeeping)
  std::uint32_t tenant = 0;
  std::size_t payload = 0;     ///< server-owned request storage index
  std::uint64_t enqueued_us = 0;              ///< stamped by submit()
  std::uint64_t deadline_at_us = kNoDeadline; ///< absolute, on the clock
  /// Set by form_batch: the item's deadline had already passed at batch
  /// formation (it was accounted as expired, not dequeued).
  bool expired_in_queue = false;
};

/// Bounded multi-producer queue of WorkItems. Implementations must be
/// individually thread-safe per call; FIFO order is part of the contract
/// (the micro-batch window is defined by the oldest item).
class WorkQueue {
 public:
  virtual ~WorkQueue() = default;

  /// False when full (the caller turns that into a rejection).
  virtual bool try_push(const WorkItem& item) = 0;
  /// Pops the oldest item; false when empty.
  virtual bool try_pop(WorkItem& out) = 0;
  /// Copies the oldest item without popping; false when empty.
  virtual bool try_peek(WorkItem& out) const = 0;

  virtual std::size_t size() const = 0;
  virtual std::size_t capacity() const = 0;
};

/// Stock WorkQueue: a fixed-capacity ring buffer under one mutex. Plenty
/// for per-shard queues (the lock is per shard, not per fleet); anything
/// fancier can slot in behind the same interface.
class MutexRingQueue final : public WorkQueue {
 public:
  explicit MutexRingQueue(std::size_t capacity);

  bool try_push(const WorkItem& item) override;
  bool try_pop(WorkItem& out) override;
  bool try_peek(WorkItem& out) const override;
  std::size_t size() const override;
  std::size_t capacity() const override { return ring_.size(); }

 private:
  mutable std::mutex mu_;
  std::vector<WorkItem> ring_;
  std::size_t head_ = 0;   ///< index of the oldest item
  std::size_t count_ = 0;
};

/// Per-tenant queued-item quotas. A tenant's in-queue count is charged at
/// submit and released at pop; submissions beyond the quota are rejected
/// before they touch the queue. Deterministic iteration (std::map) so
/// per-tenant summaries render in stable order. Not internally locked —
/// the owning Shard serializes access.
class TenantQuotas {
 public:
  /// `default_max` applies to tenants with no explicit quota;
  /// SIZE_MAX (the default) disables quota checks entirely.
  explicit TenantQuotas(std::size_t default_max = SIZE_MAX);

  void set_quota(std::uint32_t tenant, std::size_t max_queued);

  /// Charges one queued item to `tenant`; false (and a rejection tally)
  /// when the tenant is at quota.
  bool try_charge(std::uint32_t tenant);
  /// Releases one queued item (pop, or push failure after a charge).
  void release(std::uint32_t tenant);

  std::size_t queued(std::uint32_t tenant) const;
  std::uint64_t rejected(std::uint32_t tenant) const;
  std::uint64_t total_rejected() const { return total_rejected_; }

 private:
  struct State {
    std::size_t max_queued;
    std::size_t queued = 0;
    std::uint64_t rejected = 0;
  };
  State& state(std::uint32_t tenant);

  std::size_t default_max_;
  std::map<std::uint32_t, State> tenants_;
  std::uint64_t total_rejected_ = 0;
};

/// Consistent-hash ring mapping 64-bit hashes to workers. Each worker
/// contributes `replicas` points placed by a splitmix64 mix of
/// (worker, replica); a key is served by the first point clockwise from
/// its hash. Adding or removing one worker moves only the keys in that
/// worker's arcs — and for a fixed worker count the map is a pure
/// function of (id, workers, replicas), which the determinism tests pin.
class ConsistentHashRing {
 public:
  ConsistentHashRing(std::size_t workers, std::size_t replicas);

  std::size_t workers() const { return workers_; }

  /// The worker owning 64-bit key hash `h`.
  std::size_t worker_for(std::uint64_t h) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t worker;
  };
  std::size_t workers_;
  std::vector<Point> points_;  ///< sorted by hash
};

/// splitmix64 finalizer — the ring's key hash (and the server's session
/// hash). Public so tests can pin placements.
std::uint64_t mix64(std::uint64_t x);

struct ShardConfig {
  std::size_t queue_capacity = 64;
  /// Micro-batch limits: a batch is released when it holds `batch_max`
  /// items or the oldest admitted item has waited `batch_window_us`.
  /// window 0 = no coalescing delay (each pump drains what is queued,
  /// still up to batch_max at a time).
  std::size_t batch_max = 8;
  std::uint64_t batch_window_us = 0;
  /// Default per-tenant queued-item quota (SIZE_MAX = unlimited).
  std::size_t tenant_max_queued = SIZE_MAX;
  /// Per-shard circuit breaker; nullopt disables.
  std::optional<BreakerConfig> breaker;
};

enum class SubmitStatus {
  kQueued,
  kRejectedQueueFull,    ///< bounded-queue backpressure
  kRejectedTenantQuota,  ///< tenant at its queued-item quota
  kStaleSession,         ///< session handle no longer valid (server-level)
};

const char* submit_status_name(SubmitStatus status);

/// How one primary-path trial ended, as far as the breaker cares. The
/// server maps core ScoreStatus onto this so the shard stays core-free.
/// One trial reports exactly one outcome, no matter how many stages it
/// failed in.
enum class TrialOutcome {
  kSuccess,
  kHardFailure,    ///< stage error / deadline expiry (indicts the shard)
  kIndeterminate,  ///< quality-gated input (neutral; releases a probe)
};

struct ShardStats {
  /// Queue accounting under the PR-5 contract: means cover only items
  /// dequeued for service; expired-in-queue items count in `expired`.
  AdmissionStats admission;
  std::uint64_t quota_rejected = 0;  ///< tenant-quota rejections
  std::uint64_t batches = 0;         ///< batches formed
  std::uint64_t batched_items = 0;   ///< items across all batches
  std::uint64_t max_batch = 0;
  std::uint64_t probes = 0;          ///< half-open probe batches (size 1)

  double mean_batch() const {
    return batches > 0 ? static_cast<double>(batched_items) /
                             static_cast<double>(batches)
                       : 0.0;
  }
};

/// A formed micro-batch: items to score plus the routing decision.
struct FormedBatch {
  bool degraded = false;  ///< breaker routed this batch off the primary
  bool probe = false;     ///< half-open probe (batch capped at one item)
  std::size_t items = 0;  ///< number of items written to the caller's out
  std::uint64_t now_us = 0;  ///< formation time (queue_us = now - enqueued)
};

class Shard {
 public:
  Shard(ShardConfig config, const Clock& clock);

  const ShardConfig& config() const { return config_; }

  /// Admits one item: tenant quota first, then the bounded queue; stamps
  /// enqueued_us on success. Thread-safe (any producer).
  SubmitStatus submit(WorkItem item);

  /// When the next batch should be formed, on the shard clock: nullopt
  /// when the queue is empty; the oldest item's enqueue time when the
  /// batch is already full-sized (due immediately); otherwise oldest
  /// enqueue + batch_window_us. The server's pump sleeps until the
  /// earliest ready time across its shards.
  std::optional<std::uint64_t> batch_ready_us() const;

  /// Forms the next micro-batch into `out` (appended; caller clears).
  /// Returns nullopt when the queue is empty or — unless `force` — the
  /// window has not elapsed and the batch is not full. Routing: with a
  /// breaker, an open shard forms degraded batches; a half-open shard
  /// forms a single-item probe batch (at most one outstanding at a time,
  /// further items keep forming degraded batches until the probe
  /// resolves). Expired items (deadline_at_us <= now) are still included
  /// — the server must emit a result for them — but are accounted as
  /// expired, not as service dequeues, and do not touch the queue-time
  /// means. One drainer per shard at a time.
  std::optional<FormedBatch> form_batch(std::vector<WorkItem>& out,
                                        bool force = false);

  /// Reports one primary-path trial outcome to the shard breaker (no-op
  /// without one). `stage` keys hard failures as in CircuitBreaker.
  void record(TrialOutcome outcome, const std::string& stage);

  std::size_t depth() const;
  ShardStats stats() const;
  const CircuitBreaker* breaker() const {
    return breaker_.has_value() ? &*breaker_ : nullptr;
  }
  TenantQuotas& quotas() { return quotas_; }

 private:
  ShardConfig config_;
  const Clock* clock_;
  mutable std::mutex mu_;  ///< quotas, stats, breaker, batch decisions
  std::unique_ptr<WorkQueue> queue_;
  TenantQuotas quotas_;
  std::optional<CircuitBreaker> breaker_;
  ShardStats stats_;
};

}  // namespace vibguard::serving
