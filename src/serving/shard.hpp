// Shard: one worker's slice of the sharded serving runtime.
//
// The server (serving/server.hpp) partitions sessions across N workers by
// consistent hashing on the session id; everything a worker owns lives
// here. A shard is:
//
//   - a bounded MPMC work queue of WorkItems (the admission queue — full
//     queue means an immediate, explicit rejection, exactly the PR-5
//     backpressure contract, with the same queue-time accounting rules:
//     rejected and expired-in-queue items never pollute the service
//     means);
//   - per-tenant admission quotas layered on top: a tenant may only have
//     so many items queued at once, so one chatty tenant cannot occupy
//     the whole queue and starve its neighbors;
//   - its own circuit breaker (optional): the breaker observes only this
//     shard's primary-path outcomes, so a fault localized to one worker's
//     traffic degrades one shard, not the fleet;
//   - a cross-session micro-batcher: admitted items are coalesced into
//     batches of up to `batch_max`, released either when the batch is
//     full or when the oldest item has waited `batch_window_us` — the
//     classic size-or-timeout window. Batches feed score_batch, whose
//     per-request owned rngs make results independent of batch
//     composition, which is what keeps fleet scoring bit-identical across
//     worker counts and window settings.
//
// The queue interface is deliberately queue-agnostic (WorkQueue is
// abstract); MutexRingQueue is the stock finely-locked implementation.
// Shard methods are individually thread-safe (submit from any thread);
// batch formation is designed for ONE drainer per shard at a time.
// This layer is core-free: outcomes are reported back through the
// TrialOutcome enum, never through core types, so vibguard_serving stays
// below vibguard_core in the link order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "serving/admission.hpp"
#include "serving/circuit_breaker.hpp"
#include "serving/session_slab.hpp"

namespace vibguard::serving {

/// Sentinel deadline: the item never expires.
inline constexpr std::uint64_t kNoDeadline = UINT64_MAX;

/// One queued unit of work. The shard never looks inside the request —
/// `payload` is an opaque index the server uses to find the borrowed
/// signals — so this stays a small POD that queues by value.
struct WorkItem {
  std::uint64_t session_id = 0;
  std::uint64_t request_id = 0;
  SessionHandle session;       ///< slab handle (server-side bookkeeping)
  std::uint32_t tenant = 0;
  std::size_t payload = 0;     ///< server-owned request storage index
  std::uint64_t enqueued_us = 0;              ///< stamped by submit()
  std::uint64_t deadline_at_us = kNoDeadline; ///< absolute, on the clock
  /// Set by form_batch: the item's deadline had already passed at batch
  /// formation (it was accounted as expired, not dequeued).
  bool expired_in_queue = false;
  /// Times this item was re-homed by a ring resize (dead-worker failover
  /// or worker growth) before being served.
  std::uint32_t migrations = 0;
  /// The item was moved off its session's owner shard by work stealing
  /// (Server::steal_work); its session record still lives on the owner.
  bool stolen = false;
};

/// Bounded multi-producer queue of WorkItems. Implementations must be
/// individually thread-safe per call; FIFO order is part of the contract
/// (the micro-batch window is defined by the oldest item).
///
/// Lifecycle: a queue starts open and can be close()d exactly once —
/// after that every push is rejected (never blocked, never silently
/// queued) while pops keep draining whatever was already accepted. close()
/// must wake every consumer blocked in pop_blocking so a shard being
/// retired can never strand a parked drainer thread.
class WorkQueue {
 public:
  virtual ~WorkQueue() = default;

  /// False when full or closed (the caller turns that into a rejection).
  virtual bool try_push(const WorkItem& item) = 0;
  /// Pops the oldest item; false when empty.
  virtual bool try_pop(WorkItem& out) = 0;
  /// Blocks until an item is available or the queue is closed; false only
  /// when the queue is closed AND drained (every accepted item has been
  /// handed out).
  virtual bool pop_blocking(WorkItem& out) = 0;
  /// Copies the oldest item without popping; false when empty.
  virtual bool try_peek(WorkItem& out) const = 0;
  /// Rejects all future pushes and wakes every blocked consumer.
  /// Idempotent.
  virtual void close() = 0;
  virtual bool closed() const = 0;

  virtual std::size_t size() const = 0;
  virtual std::size_t capacity() const = 0;
};

/// Stock WorkQueue: a fixed-capacity ring buffer under one mutex. Plenty
/// for per-shard queues (the lock is per shard, not per fleet); anything
/// fancier can slot in behind the same interface.
class MutexRingQueue final : public WorkQueue {
 public:
  explicit MutexRingQueue(std::size_t capacity);

  bool try_push(const WorkItem& item) override;
  bool try_pop(WorkItem& out) override;
  bool pop_blocking(WorkItem& out) override;
  bool try_peek(WorkItem& out) const override;
  void close() override;
  bool closed() const override;
  std::size_t size() const override;
  std::size_t capacity() const override { return ring_.size(); }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< signaled on push and on close
  std::vector<WorkItem> ring_;
  std::size_t head_ = 0;   ///< index of the oldest item
  std::size_t count_ = 0;
  bool closed_ = false;
};

/// Per-tenant queued-item quotas. A tenant's in-queue count is charged at
/// submit and released at pop; submissions beyond the quota are rejected
/// before they touch the queue. Deterministic iteration (std::map) so
/// per-tenant summaries render in stable order. Not internally locked —
/// the owning Shard serializes access.
class TenantQuotas {
 public:
  /// `default_max` applies to tenants with no explicit quota;
  /// SIZE_MAX (the default) disables quota checks entirely.
  explicit TenantQuotas(std::size_t default_max = SIZE_MAX);

  void set_quota(std::uint32_t tenant, std::size_t max_queued);

  /// Charges one queued item to `tenant`; false (and a rejection tally)
  /// when the tenant is at quota.
  bool try_charge(std::uint32_t tenant);
  /// Charges one queued item to `tenant` unconditionally — used when a
  /// ring resize re-homes an already-admitted item onto this shard: the
  /// work passed admission once fleet-wide, so migration must not be able
  /// to drop it on a quota technicality, but the count must stay balanced
  /// against the release() at dequeue.
  void charge_unchecked(std::uint32_t tenant);
  /// Releases one queued item (pop, or push failure after a charge).
  void release(std::uint32_t tenant);

  std::size_t queued(std::uint32_t tenant) const;
  std::uint64_t rejected(std::uint32_t tenant) const;
  std::uint64_t total_rejected() const { return total_rejected_; }

 private:
  struct State {
    std::size_t max_queued;
    std::size_t queued = 0;
    std::uint64_t rejected = 0;
  };
  State& state(std::uint32_t tenant);

  std::size_t default_max_;
  std::map<std::uint32_t, State> tenants_;
  std::uint64_t total_rejected_ = 0;
};

/// Consistent-hash ring mapping 64-bit hashes to workers. Each worker
/// contributes `replicas` points placed by a splitmix64 mix of
/// (worker, replica); a key is served by the first point clockwise from
/// its hash. A worker's points are a pure function of (worker, replicas),
/// so the ring supports deterministic resize: adding or removing one
/// worker moves only the keys in that worker's arcs, and a ring built
/// incrementally is point-for-point identical to one constructed with the
/// same active set — which the resize property tests pin. Not internally
/// locked; the Server serializes resize against placement reads.
class ConsistentHashRing {
 public:
  ConsistentHashRing(std::size_t workers, std::size_t replicas);

  /// Active (placeable) worker count.
  std::size_t workers() const { return active_.size(); }
  std::size_t replicas() const { return replicas_; }

  bool contains(std::size_t worker) const;
  /// Sorted active worker indices.
  std::vector<std::size_t> active_workers() const;

  /// Inserts worker `w`'s replica points (must not already be present).
  void add_worker(std::size_t w);
  /// Removes worker `w`'s points; the last worker cannot be removed (an
  /// empty ring places nothing).
  void remove_worker(std::size_t w);

  /// The worker owning 64-bit key hash `h`.
  std::size_t worker_for(std::uint64_t h) const;

  /// One replica point. Public only so the implementation's comparator
  /// can name it; not part of the placement API.
  struct Point {
    std::uint64_t hash;
    std::uint32_t worker;
  };

 private:
  std::size_t replicas_;
  std::vector<Point> points_;        ///< sorted by (hash, worker)
  std::vector<std::uint32_t> active_;  ///< sorted active worker indices
};

/// splitmix64 finalizer — the ring's key hash (and the server's session
/// hash). Public so tests can pin placements.
std::uint64_t mix64(std::uint64_t x);

struct ShardConfig {
  std::size_t queue_capacity = 64;
  /// Micro-batch limits: a batch is released when it holds `batch_max`
  /// items or the oldest admitted item has waited `batch_window_us`.
  /// window 0 = no coalescing delay (each pump drains what is queued,
  /// still up to batch_max at a time).
  std::size_t batch_max = 8;
  std::uint64_t batch_window_us = 0;
  /// Default per-tenant queued-item quota (SIZE_MAX = unlimited).
  std::size_t tenant_max_queued = SIZE_MAX;
  /// Per-shard circuit breaker; nullopt disables.
  std::optional<BreakerConfig> breaker;
};

enum class SubmitStatus {
  kQueued,
  kRejectedQueueFull,    ///< bounded-queue backpressure
  kRejectedTenantQuota,  ///< tenant at its queued-item quota
  kStaleSession,         ///< session handle no longer valid (server-level)
  kRejectedClosed,       ///< shard retired/draining: explicit rejection
};

const char* submit_status_name(SubmitStatus status);

/// How one primary-path trial ended, as far as the breaker cares. The
/// server maps core ScoreStatus onto this so the shard stays core-free.
/// One trial reports exactly one outcome, no matter how many stages it
/// failed in.
enum class TrialOutcome {
  kSuccess,
  kHardFailure,    ///< stage error / deadline expiry (indicts the shard)
  kIndeterminate,  ///< quality-gated input (neutral; releases a probe)
};

struct ShardStats {
  /// Queue accounting under the PR-5 contract: means cover only items
  /// dequeued for service; expired-in-queue items count in `expired`.
  AdmissionStats admission;
  std::uint64_t quota_rejected = 0;  ///< tenant-quota rejections
  std::uint64_t closed_rejected = 0; ///< submits refused after close()
  std::uint64_t migrated_in = 0;     ///< items re-homed here by a resize
  std::uint64_t batches = 0;         ///< batches formed
  std::uint64_t batched_items = 0;   ///< items across all batches
  std::uint64_t max_batch = 0;
  std::uint64_t probes = 0;          ///< half-open probe batches (size 1)
  /// Work-stealing accounting (victim-side item counts live in
  /// admission.stolen). Stolen items never touch the queue-time means of
  /// either shard at steal time — their queue_us accrues until the thief
  /// actually dequeues them for service.
  std::uint64_t steals_out = 0;      ///< steal_batch calls that took items
  std::uint64_t items_stolen_in = 0; ///< items this shard accepted via steal_in

  double mean_batch() const {
    return batches > 0 ? static_cast<double>(batched_items) /
                             static_cast<double>(batches)
                       : 0.0;
  }
};

/// A formed micro-batch: items to score plus the routing decision.
struct FormedBatch {
  bool degraded = false;  ///< breaker routed this batch off the primary
  bool probe = false;     ///< half-open probe (batch capped at one item)
  std::size_t items = 0;  ///< number of items written to the caller's out
  std::uint64_t now_us = 0;  ///< formation time (queue_us = now - enqueued)
};

/// Knobs for the thread-per-worker pump loop (Shard::run_pump).
struct PumpConfig {
  /// Upper bound on one pump sleep: the loop wakes at least this often to
  /// re-check the stop flag and stamp its heartbeat, so a supervisor can
  /// tell "idle but alive" from "wedged" at this granularity.
  std::uint64_t idle_poll_us = 1'000;
};

class Shard {
 public:
  Shard(ShardConfig config, const Clock& clock);

  const ShardConfig& config() const { return config_; }

  /// Admits one item: tenant quota first, then the bounded queue; stamps
  /// enqueued_us on success. Thread-safe (any producer).
  SubmitStatus submit(WorkItem item);

  /// Re-homes an already-admitted item onto this shard after a ring
  /// resize: bypasses the tenant quota check (the item was admitted once
  /// fleet-wide) but still charges the count, and preserves the original
  /// enqueued_us so queue-time accounting spans the migration. False when
  /// the bounded queue is full or closed — the caller must then account
  /// the item explicitly (it is never silently dropped).
  /// `count_migration` is false when a growth resize restores an item to
  /// the very shard it came from (the item did not actually move, so the
  /// migrated_in stat must not count it).
  bool requeue(const WorkItem& item, bool count_migration = true);

  /// Pops every queued item (FIFO, releasing tenant charges) into `out`
  /// without touching the dequeue/queue-time accounting — the items are
  /// being migrated, not served. Used with close() when retiring a shard.
  std::size_t take_all(std::vector<WorkItem>& out);

  /// Work stealing, victim side: pops up to `max_items` of the OLDEST
  /// queued items (FIFO head — the ones most at risk of expiring) into
  /// `out` under the victim's lock, releasing their tenant charges and
  /// preserving enqueued_us so queue-time accounting spans the steal.
  /// Items whose deadline has already passed are popped along the way,
  /// flagged expired_in_queue and appended to `expired_out` (accounted in
  /// admission.expired, exactly like form_batch) — the caller must emit a
  /// result for them; they do not count against `max_items`. Items parked
  /// in a formed-but-uncompleted batch are not in the queue and can never
  /// be stolen. Returns the number of stealable items written to `out`.
  std::size_t steal_batch(std::vector<WorkItem>& out,
                          std::vector<WorkItem>& expired_out,
                          std::size_t max_items);

  /// Work stealing, thief side: accepts a stolen item. Unlike requeue(),
  /// the thief's tenant quota IS enforced (try_charge) — stealing is an
  /// optimization, so it must not let a tenant overfill a neighbor shard
  /// it was never placed on. enqueued_us is preserved. False when the
  /// shard is closed, the tenant is at quota, or the queue is full; the
  /// caller then returns the item to the victim (or accounts it).
  bool steal_in(const WorkItem& item);

  /// Retires the shard: every future submit is rejected with
  /// kRejectedClosed and any consumer blocked on the queue is woken.
  /// Items already queued stay poppable (take_all / form_batch drain
  /// them). Idempotent.
  void close();
  bool is_closed() const;

  /// Stamps this worker's liveness heartbeat at the clock's current time
  /// under the CURRENT epoch. The pump calls it every loop iteration
  /// (including idle ones); the discrete-event simulator calls it wherever
  /// the pump would. Lock-free.
  void beat();
  /// Epoch-gated heartbeat: stamps only when `epoch` is still the shard's
  /// current epoch; a beat from a fenced (pre-restart) pump is discarded
  /// so a stale thread can never fake recovery. Returns whether the beat
  /// was accepted — a pump uses `false` as its exit signal.
  bool beat(std::uint64_t epoch);
  /// Clock time of the most recent accepted beat (construction time before
  /// any).
  std::uint64_t last_beat_us() const;
  /// Total accepted beats since construction (a progress odometer).
  std::uint64_t beats() const;

  /// The current heartbeat epoch. A restart bumps it (bump_epoch) so the
  /// supervisor can distinguish "the fresh pump is beating" from "the old
  /// wedged thread twitched": recovery requires last_beat_epoch() to match
  /// the post-restart epoch.
  std::uint64_t epoch() const;
  /// The epoch the most recent accepted beat was stamped under.
  std::uint64_t last_beat_epoch() const;
  /// Advances the epoch, fencing every pump started under older epochs
  /// (their epoch-gated beats are rejected and they exit). Returns the new
  /// epoch. The beat fields are relaxed atomics written in (epoch, time)
  /// order; a torn read across a racing bump is always conservative — it
  /// can only make a worker look *less* recovered, never more.
  std::uint64_t bump_epoch();

  /// The real thread-per-worker pump loop, run on the calling thread. Each
  /// iteration stamps the heartbeat, then either sleeps toward the next
  /// batch-ready time (in slices of pump.idle_poll_us so stop stays
  /// responsive) or invokes `drain_once(force)` — the server's bound
  /// form-batch + complete-batch step for this worker, returning whether a
  /// batch was served. On `stop` the loop force-drains everything still
  /// queued before returning; on a closed-and-empty shard it returns
  /// immediately. The loop captures the shard epoch at entry and beats
  /// through the epoch gate: a bump_epoch() (pump restart) fences it out
  /// at its next iteration. Returns the number of batches drained. One
  /// *current-epoch* pump per shard at a time (the one-drainer contract).
  std::size_t run_pump(const std::function<bool(bool force)>& drain_once,
                       const std::atomic<bool>& stop,
                       const PumpConfig& pump = {});

  /// When the next batch should be formed, on the shard clock: nullopt
  /// when the queue is empty; the oldest item's enqueue time when the
  /// batch is already full-sized (due immediately); otherwise oldest
  /// enqueue + batch_window_us. The server's pump sleeps until the
  /// earliest ready time across its shards.
  std::optional<std::uint64_t> batch_ready_us() const;

  /// Forms the next micro-batch into `out` (appended; caller clears).
  /// Returns nullopt when the queue is empty or — unless `force` — the
  /// window has not elapsed and the batch is not full. Routing: with a
  /// breaker, an open shard forms degraded batches; a half-open shard
  /// forms a single-item probe batch (at most one outstanding at a time,
  /// further items keep forming degraded batches until the probe
  /// resolves). Expired items (deadline_at_us <= now) are still included
  /// — the server must emit a result for them — but are accounted as
  /// expired, not as service dequeues, and do not touch the queue-time
  /// means. One drainer per shard at a time.
  std::optional<FormedBatch> form_batch(std::vector<WorkItem>& out,
                                        bool force = false);

  /// Reports one primary-path trial outcome to the shard breaker (no-op
  /// without one). `stage` keys hard failures as in CircuitBreaker.
  void record(TrialOutcome outcome, const std::string& stage);

  std::size_t depth() const;
  /// Enqueue time of the oldest queued item; nullopt when empty. The
  /// supervisor's overload score reads (now - oldest) as its queue-age
  /// signal — the wait of the item that has waited longest.
  std::optional<std::uint64_t> oldest_enqueued_us() const;
  ShardStats stats() const;
  const CircuitBreaker* breaker() const {
    return breaker_.has_value() ? &*breaker_ : nullptr;
  }
  TenantQuotas& quotas() { return quotas_; }

 private:
  ShardConfig config_;
  const Clock* clock_;
  mutable std::mutex mu_;  ///< quotas, stats, breaker, batch decisions
  std::unique_ptr<WorkQueue> queue_;
  TenantQuotas quotas_;
  std::optional<CircuitBreaker> breaker_;
  ShardStats stats_;
  std::atomic<std::uint64_t> last_beat_us_{0};
  std::atomic<std::uint64_t> beats_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> last_beat_epoch_{0};
};

}  // namespace vibguard::serving
