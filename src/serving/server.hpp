// serving::Server — the sharded multi-worker serving runtime.
//
// The single-session toolkit (admission queue, breaker, deadlines — PR 5)
// and the zero-alloc batch scorer (PR 2) compose into a fleet here:
//
//   session id ── consistent hash ──▶ worker shard
//                                      ├─ bounded MPMC work queue
//                                      ├─ per-tenant admission quotas
//                                      ├─ per-shard circuit breaker
//                                      └─ micro-batcher ─▶ score_batch
//
// Sessions are placed on workers by a consistent-hash ring over the
// session id, so one session's requests always land on one shard — its
// slab record is only ever touched under that shard's lane lock, and the
// fleet needs no global session table. Idle sessions cost one flat
// SessionRecord in the worker's SessionSlab (no per-session heap
// allocation), which is what lets millions of them sit around.
//
// Admitted requests from *different* sessions are coalesced by the
// shard's micro-batcher into DefenseSystem::score_batch calls. The serial
// outcome overload scores every request from its own owned rng, so a
// request's score does not depend on which batch it rode in — and
// therefore not on the worker count, the batch window, or the batch size.
// That is the fleet determinism contract: for a fixed seed, scoring is
// bit-identical across every sharding configuration (pinned by
// tests/serving/server_test.cpp and the fleet sweep).
//
// Threading model: submit() may be called from any thread (shard queues
// are MPMC; slab/payload mutations take the lane lock). Batch formation
// and completion are designed for ONE drainer per shard at a time — run
// one pump thread per worker, or drive all shards from a simulator loop
// (eval/load_sweep's fleet mode does exactly that on a VirtualClock).
// open_session/close_session are not thread-safe against in-flight
// submits for the same session.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/signal.hpp"
#include "core/pipeline.hpp"
#include "serving/session_slab.hpp"
#include "serving/shard.hpp"

namespace vibguard::serving {

struct ServerConfig {
  /// Primary pipeline configuration (every worker scores with an
  /// identical DefenseSystem, so placement cannot change results).
  core::DefenseConfig defense;
  /// The cheaper mode degraded batches are scored in while a shard's
  /// breaker is open.
  core::DefenseMode degraded_mode = core::DefenseMode::kAudioBaseline;

  std::size_t workers = 4;
  /// Ring points per worker; more replicas = smoother session spread.
  std::size_t ring_replicas = 64;
  /// Per-worker shard configuration (queue bound, micro-batch window,
  /// tenant quotas, breaker).
  ShardConfig shard;
  /// Per-request budget from submission, on the server clock; requests
  /// whose budget passes while queued are dropped as expired. nullopt
  /// disables deadlines.
  std::optional<std::uint64_t> deadline_us;
};

/// One request for a session. Signals are borrowed and must stay alive
/// until the request's ServedResult is emitted; the rng is owned (fork it
/// per request), which is what makes scoring batch-invariant.
struct ServerRequest {
  const Signal* va = nullptr;
  const Signal* wearable = nullptr;
  const core::Segmenter* segmenter = nullptr;
  Rng rng;
  std::uint64_t request_id = 0;  ///< caller-chosen correlation id
};

/// One completed (scored, degraded, expired, or migration-dropped)
/// request.
struct ServedResult {
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  std::size_t worker = 0;
  std::size_t batch_size = 0;  ///< size of the micro-batch it rode in
  bool degraded = false;       ///< scored on the degraded route
  bool expired_in_queue = false;  ///< dropped unscored (deadline passed)
  bool migrated = false;       ///< re-homed by a ring resize before this
  bool stolen = false;         ///< served off a peer shard by work stealing
  std::uint64_t queue_us = 0;  ///< admission → batch formation
  core::ScoreOutcome outcome;
};

/// A worker lane's lifecycle. Quarantine is the reversible middle state:
/// the worker keeps its lane and (open) shard but owns no ring arc, so no
/// new work lands on it while the supervisor probes for recovery.
enum class WorkerState {
  kActive,       ///< on the ring, serving placements
  kQuarantined,  ///< fenced off the ring, shard open, awaiting probe
  kRetired,      ///< off the ring, shard closed — terminal
};

const char* worker_state_name(WorkerState state);

/// What one ring resize (remove_worker / add_worker) did. Every queued or
/// in-flight item the resize touched is accounted exactly once: requeued
/// onto its new owner, emitted as an expired result (deadline already
/// passed), or emitted as a dropped result (new owner's queue full) —
/// never silently discarded.
struct ResizeReport {
  std::size_t worker = 0;  ///< the worker removed or added
  bool removed = false;    ///< false: growth

  /// One entry per re-homed session. Handles from before the resize are
  /// stale afterwards; callers holding them must switch to new_handle
  /// (submitting a stale one yields kStaleSession, never aliasing).
  struct MigratedSession {
    std::uint64_t session_id = 0;
    SessionHandle old_handle;
    SessionHandle new_handle;
    std::size_t from = 0;
    std::size_t to = 0;
  };
  std::vector<MigratedSession> sessions;

  std::size_t items_requeued = 0;  ///< re-homed onto live shards
  std::size_t items_expired = 0;   ///< emitted expired (deadline passed)
  std::size_t items_dropped = 0;   ///< emitted dropped (requeue rejected)
};

/// A batch formed and awaiting completion; items borrow the worker lane's
/// scratch and stay valid until complete_batch().
struct PlannedBatch {
  std::size_t worker = 0;
  bool degraded = false;
  bool probe = false;
  std::span<const WorkItem> items;
};

class Server {
 public:
  /// `clock` drives deadlines, queue times and breaker cooldowns; it is
  /// borrowed and must outlive the server.
  Server(ServerConfig config, const Clock& clock);

  /// Joins any pump threads still running.
  ~Server();

  const ServerConfig& config() const { return config_; }

  /// Worker lane slots ever created (including retired ones — lane
  /// indices are stable across resizes). Iterate [0, workers()) and check
  /// worker_active() for the live set.
  std::size_t workers() const;

  /// True while worker `w` is on the ring (serving placements).
  bool worker_active(std::size_t w) const;
  /// Sorted indices of the workers currently on the ring.
  std::vector<std::size_t> active_worker_ids() const;
  /// Worker `w`'s lifecycle state (kActive ⇔ worker_active).
  WorkerState worker_state(std::size_t w) const;

  /// The worker that owns `session_id` (pure function of the id and the
  /// ring's active set).
  std::size_t shard_of(std::uint64_t session_id) const;

  /// Registers a session in its shard's slab and returns the handle every
  /// subsequent submit for it must present.
  SessionHandle open_session(std::uint64_t session_id,
                             std::uint32_t tenant = 0);

  /// Frees the session's slab slot; outstanding handles go stale. False
  /// when the handle is already stale. Requests still queued for the
  /// session are served normally (their results just stop updating the
  /// record).
  bool close_session(std::uint64_t session_id, SessionHandle handle);

  /// Live sessions across all shards.
  std::size_t sessions() const;

  /// Read access to a session's record (nullptr when stale). The pointer
  /// is invalidated by the next open_session on the same shard.
  const SessionRecord* session(std::uint64_t session_id,
                               SessionHandle handle) const;

  /// Routes one request to the session's shard: tenant quota, bounded
  /// queue, deadline stamping. kStaleSession when the handle no longer
  /// matches a live record for `session_id`. Thread-safe.
  SubmitStatus submit(std::uint64_t session_id, SessionHandle session,
                      const ServerRequest& request);

  /// Earliest time any shard's next micro-batch is due (nullopt when all
  /// queues are empty) — the pump's sleep target.
  std::optional<std::uint64_t> batch_ready_us() const;

  /// Forms worker `w`'s next micro-batch (nullopt: queue empty, or the
  /// window has not elapsed and `force` is false). The batch is parked in
  /// the lane until complete_batch(w) — exactly one planned batch per
  /// worker at a time. Splitting formation from completion lets the
  /// fleet simulator advance the clock between the two.
  std::optional<PlannedBatch> form_batch(std::size_t w, bool force = false);

  /// Scores worker `w`'s planned batch and appends one ServedResult per
  /// item. `deadline_override`, when non-empty (one absolute expiry per
  /// item), replaces each item's own deadline for the scoring call — the
  /// simulator uses it to model cancellation at a precomputed time.
  /// Expired items are emitted unscored; primary-route outcomes feed the
  /// shard breaker (one outcome per item).
  void complete_batch(std::size_t w, std::vector<ServedResult>& out,
                      std::span<const std::uint64_t> deadline_override = {});

  /// Serves everything currently queued (forced windows, live deadlines):
  /// form + complete per shard until every queue is empty.
  void drain(std::vector<ServedResult>& out);

  // ── Ring resize (control plane) ───────────────────────────────────────
  //
  // Resizes are control-plane operations: no drainer (pump or simulator
  // loop) may be actively forming/completing a batch on the affected lanes
  // while one runs — stop the worker's pump first (the Supervisor does).
  // Concurrent submit() stays safe: a submit racing a removal either lands
  // before the close (and is migrated with the queue) or gets an explicit
  // kRejectedClosed.

  /// Retires worker `w` (failover): closes its shard, removes its ring
  /// points, migrates its live sessions to their new owners (state — the
  /// full SessionRecord — rides along), and re-homes every queued and
  /// parked-batch item. Items whose deadline already passed are emitted on
  /// `out` as expired results; items the new owner cannot accept are
  /// emitted as dropped (kError) results — nothing is silently lost.
  /// Re-placement is a pure function of the surviving active set, so a
  /// fixed seed reproduces the exact same migration.
  ResizeReport remove_worker(std::size_t w, std::vector<ServedResult>& out);

  /// Grows the fleet by one worker (returns its index): adds its ring
  /// points, then migrates exactly the sessions whose owner changed —
  /// everyone else's placement is untouched (the consistent-hash
  /// guarantee) — along with their queued items. `out` receives results
  /// for any item that could not be re-homed (same accounting as
  /// remove_worker; in practice empty unless the new shard's queue is
  /// undersized). Safe while pumps run: the lane vector only grows under
  /// the exclusive ring lock, and a pump is spawned for the new worker
  /// when pumps are running.
  std::size_t add_worker(std::vector<ServedResult>& out,
                         ResizeReport* report = nullptr);

  // ── Quarantine (reversible fence) and work stealing ───────────────────

  /// Fences worker `w` out of the ring WITHOUT closing its shard: ring
  /// points dropped, live sessions migrated to their new owners, queued
  /// and parked-batch items drained through the steal path
  /// (Shard::steal_batch accounting) and re-homed — expired items emitted
  /// as expired results, unplaceable ones as dropped results, never
  /// silently lost. The lane stays intact so restore_worker can bring the
  /// worker back. Control-plane call: the worker's pump must be fenced
  /// (fence_pump / restart_pump) or parked outside drain first.
  ResizeReport quarantine_worker(std::size_t w,
                                 std::vector<ServedResult>& out);

  /// Reverses a quarantine: re-adds `w`'s ring points and migrates back
  /// exactly the sessions whose owner is `w` again (the consistent-hash
  /// minimal-migration guarantee), with their queued items. Same
  /// accounting as add_worker.
  ResizeReport restore_worker(std::size_t w, std::vector<ServedResult>& out);

  /// Escalates a quarantine to terminal: closes the shard and re-homes
  /// anything that landed on it since the quarantine drain (racing
  /// submits). Sessions were already migrated out at quarantine time.
  ResizeReport retire_worker(std::size_t w, std::vector<ServedResult>& out);

  /// Work stealing: moves up to `max_items` of the oldest queued,
  /// non-expired items from `victim`'s shard onto `thief`'s (payloads
  /// re-parked, enqueued_us preserved, thief tenant quotas enforced).
  /// Items the thief refuses are returned to the victim's queue; if the
  /// victim also refuses (closed or refilled by racing submits) the item
  /// is emitted on `out` as a dropped result. Expired items encountered
  /// on the victim's queue head are emitted as expired results. Returns
  /// the number of items that actually moved.
  std::size_t steal_work(std::size_t thief, std::size_t victim,
                         std::size_t max_items,
                         std::vector<ServedResult>& out);

  // ── Thread-per-worker pumps ───────────────────────────────────────────

  /// Invoked under the pump thread with each completed result; must be
  /// thread-safe across pumps.
  using ResultSink = std::function<void(const ServedResult&)>;

  /// Runs worker `w`'s pump loop on the calling thread (Shard::run_pump):
  /// forms and completes micro-batches as their windows elapse, feeding
  /// `sink`, heartbeating every iteration through the epoch gate (a
  /// bump_epoch fences the loop out). Returns batches served.
  std::size_t run_pump(std::size_t w, const ResultSink& sink,
                       const std::atomic<bool>& stop,
                       const PumpConfig& pump = {});

  /// Spawns one pump thread per currently-active worker. stop_pumps()
  /// (or destruction) signals stop, force-drains, and joins — including
  /// any epoch-fenced predecessor threads still parked.
  void start_pumps(ResultSink sink, const PumpConfig& pump = {});
  void stop_pumps();
  bool pumps_running() const {
    return pumps_running_.load(std::memory_order_acquire);
  }

  /// Bumps worker `w`'s heartbeat epoch, fencing its current pump thread
  /// (it exits at its next epoch-gated beat and is joined at stop_pumps).
  /// The thread is NOT joined here — a genuinely wedged pump would block
  /// forever; fencing merely guarantees it can never beat or drain again
  /// once it reaches its next loop iteration. No-op thread-wise when
  /// pumps are not running (the epoch still bumps — the simulator's
  /// stand-in beats pick up the new epoch automatically).
  void fence_pump(std::size_t w);

  /// Spawns a fresh pump thread for `w` under the current epoch. Requires
  /// running pumps and no live (unfenced) pump for `w`.
  void start_pump(std::size_t w);

  /// fence_pump + (when pumps are running) start_pump: the
  /// quarantine-recovery restart with a fresh heartbeat epoch.
  void restart_pump(std::size_t w);

  const Shard& shard(std::size_t w) const { return lane(w).shard; }
  Shard& shard(std::size_t w) { return lane(w).shard; }

  /// Pipeline-stage aggregates accumulated by worker `w`'s scoring calls.
  const core::PipelineStats& worker_pipeline_stats(std::size_t w) const {
    return lane(w).pipeline_stats;
  }

 private:
  /// Everything one worker owns. Heap-pinned (vector of unique_ptr) so
  /// lanes never move; `mu` guards the slab and payload slots, the shard
  /// locks itself.
  struct Lane {
    Lane(const ShardConfig& shard_config, const Clock& clock)
        : shard(shard_config, clock) {}

    Shard shard;
    mutable std::mutex mu;
    SessionSlab slab;
    /// Parked request payloads, indexed by WorkItem::payload; slots are
    /// recycled LIFO. Holds the borrowed signal pointers and the owned
    /// rng for exactly as long as the request is in flight.
    std::vector<ServerRequest> payloads;
    std::vector<std::size_t> free_payloads;

    // One-drainer scratch (form_batch → complete_batch).
    std::vector<WorkItem> batch;
    FormedBatch formed;
    bool has_batch = false;

    core::Workspace workspace;
    core::PipelineStats pipeline_stats;
    std::vector<core::ScoreRequest> reqs;
    std::vector<core::ScoreOutcome> outs;
    std::vector<Deadline> deadlines;
  };

  std::size_t park_payload(Lane& lane, const ServerRequest& request);

  /// Lane access that is safe against a concurrent add_worker (which may
  /// reallocate the lane vector under the exclusive ring lock): the shared
  /// lock covers only the vector indexing; the Lane itself is heap-pinned,
  /// so the returned reference stays valid forever. Must NOT be called
  /// with ring_mu_ already held (shared_mutex is not recursive).
  Lane& lane(std::size_t w) const;

  /// Re-homes `stranded` items off retiring/donor lane `from` onto their
  /// current ring owners, emitting expired/dropped results on `out`.
  /// `new_handles` maps migrated session ids to their post-resize handles.
  void rehome_items(std::size_t from, std::vector<WorkItem>& stranded,
                    const std::vector<ResizeReport::MigratedSession>& moved,
                    ResizeReport& report, std::vector<ServedResult>& out);

  /// Moves the live sessions of lane `from` whose ring owner is no longer
  /// `from` into their new lanes; appends one MigratedSession each.
  void migrate_sessions(std::size_t from,
                        std::vector<ResizeReport::MigratedSession>& moved);

  /// The donor side of a ring grow/restore: each donor in `donors` gives
  /// up the sessions (and queued items) whose owner changed.
  void reclaim_from_donors(const std::vector<std::size_t>& donors,
                           ResizeReport& report,
                           std::vector<ServedResult>& out);

  ServerConfig config_;
  const Clock* clock_;
  core::DefenseSystem system_;
  std::optional<core::DefenseSystem> degraded_system_;
  /// Placement reads (shard_of) take the shared side; resizes — including
  /// the lane-vector push in add_worker — take the exclusive side. Lane
  /// locks never nest inside it the other way.
  mutable std::shared_mutex ring_mu_;
  ConsistentHashRing ring_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<WorkerState> states_;  ///< per lane; guarded by ring_mu_

  /// Pump bookkeeping (guarded by pumps_mu_): one live thread per worker,
  /// plus fenced predecessors awaiting their join at stop_pumps.
  mutable std::mutex pumps_mu_;
  std::vector<std::pair<std::size_t, std::thread>> pumps_;
  std::vector<std::thread> fenced_pumps_;
  std::shared_ptr<ResultSink> pump_sink_;
  PumpConfig pump_cfg_;
  std::atomic<bool> pumps_running_{false};
  std::atomic<bool> pump_stop_{false};
};

}  // namespace vibguard::serving
