// serving::Server — the sharded multi-worker serving runtime.
//
// The single-session toolkit (admission queue, breaker, deadlines — PR 5)
// and the zero-alloc batch scorer (PR 2) compose into a fleet here:
//
//   session id ── consistent hash ──▶ worker shard
//                                      ├─ bounded MPMC work queue
//                                      ├─ per-tenant admission quotas
//                                      ├─ per-shard circuit breaker
//                                      └─ micro-batcher ─▶ score_batch
//
// Sessions are placed on workers by a consistent-hash ring over the
// session id, so one session's requests always land on one shard — its
// slab record is only ever touched under that shard's lane lock, and the
// fleet needs no global session table. Idle sessions cost one flat
// SessionRecord in the worker's SessionSlab (no per-session heap
// allocation), which is what lets millions of them sit around.
//
// Admitted requests from *different* sessions are coalesced by the
// shard's micro-batcher into DefenseSystem::score_batch calls. The serial
// outcome overload scores every request from its own owned rng, so a
// request's score does not depend on which batch it rode in — and
// therefore not on the worker count, the batch window, or the batch size.
// That is the fleet determinism contract: for a fixed seed, scoring is
// bit-identical across every sharding configuration (pinned by
// tests/serving/server_test.cpp and the fleet sweep).
//
// Threading model: submit() may be called from any thread (shard queues
// are MPMC; slab/payload mutations take the lane lock). Batch formation
// and completion are designed for ONE drainer per shard at a time — run
// one pump thread per worker, or drive all shards from a simulator loop
// (eval/load_sweep's fleet mode does exactly that on a VirtualClock).
// open_session/close_session are not thread-safe against in-flight
// submits for the same session.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/signal.hpp"
#include "core/pipeline.hpp"
#include "serving/session_slab.hpp"
#include "serving/shard.hpp"

namespace vibguard::serving {

struct ServerConfig {
  /// Primary pipeline configuration (every worker scores with an
  /// identical DefenseSystem, so placement cannot change results).
  core::DefenseConfig defense;
  /// The cheaper mode degraded batches are scored in while a shard's
  /// breaker is open.
  core::DefenseMode degraded_mode = core::DefenseMode::kAudioBaseline;

  std::size_t workers = 4;
  /// Ring points per worker; more replicas = smoother session spread.
  std::size_t ring_replicas = 64;
  /// Per-worker shard configuration (queue bound, micro-batch window,
  /// tenant quotas, breaker).
  ShardConfig shard;
  /// Per-request budget from submission, on the server clock; requests
  /// whose budget passes while queued are dropped as expired. nullopt
  /// disables deadlines.
  std::optional<std::uint64_t> deadline_us;
};

/// One request for a session. Signals are borrowed and must stay alive
/// until the request's ServedResult is emitted; the rng is owned (fork it
/// per request), which is what makes scoring batch-invariant.
struct ServerRequest {
  const Signal* va = nullptr;
  const Signal* wearable = nullptr;
  const core::Segmenter* segmenter = nullptr;
  Rng rng;
  std::uint64_t request_id = 0;  ///< caller-chosen correlation id
};

/// One completed (scored, degraded, or expired) request.
struct ServedResult {
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  std::size_t worker = 0;
  std::size_t batch_size = 0;  ///< size of the micro-batch it rode in
  bool degraded = false;       ///< scored on the degraded route
  bool expired_in_queue = false;  ///< dropped unscored (deadline passed)
  std::uint64_t queue_us = 0;  ///< admission → batch formation
  core::ScoreOutcome outcome;
};

/// A batch formed and awaiting completion; items borrow the worker lane's
/// scratch and stay valid until complete_batch().
struct PlannedBatch {
  std::size_t worker = 0;
  bool degraded = false;
  bool probe = false;
  std::span<const WorkItem> items;
};

class Server {
 public:
  /// `clock` drives deadlines, queue times and breaker cooldowns; it is
  /// borrowed and must outlive the server.
  Server(ServerConfig config, const Clock& clock);

  const ServerConfig& config() const { return config_; }
  std::size_t workers() const { return lanes_.size(); }

  /// The worker that owns `session_id` (pure function of the id and the
  /// ring configuration).
  std::size_t shard_of(std::uint64_t session_id) const;

  /// Registers a session in its shard's slab and returns the handle every
  /// subsequent submit for it must present.
  SessionHandle open_session(std::uint64_t session_id,
                             std::uint32_t tenant = 0);

  /// Frees the session's slab slot; outstanding handles go stale. False
  /// when the handle is already stale. Requests still queued for the
  /// session are served normally (their results just stop updating the
  /// record).
  bool close_session(std::uint64_t session_id, SessionHandle handle);

  /// Live sessions across all shards.
  std::size_t sessions() const;

  /// Read access to a session's record (nullptr when stale). The pointer
  /// is invalidated by the next open_session on the same shard.
  const SessionRecord* session(std::uint64_t session_id,
                               SessionHandle handle) const;

  /// Routes one request to the session's shard: tenant quota, bounded
  /// queue, deadline stamping. kStaleSession when the handle no longer
  /// matches a live record for `session_id`. Thread-safe.
  SubmitStatus submit(std::uint64_t session_id, SessionHandle session,
                      const ServerRequest& request);

  /// Earliest time any shard's next micro-batch is due (nullopt when all
  /// queues are empty) — the pump's sleep target.
  std::optional<std::uint64_t> batch_ready_us() const;

  /// Forms worker `w`'s next micro-batch (nullopt: queue empty, or the
  /// window has not elapsed and `force` is false). The batch is parked in
  /// the lane until complete_batch(w) — exactly one planned batch per
  /// worker at a time. Splitting formation from completion lets the
  /// fleet simulator advance the clock between the two.
  std::optional<PlannedBatch> form_batch(std::size_t w, bool force = false);

  /// Scores worker `w`'s planned batch and appends one ServedResult per
  /// item. `deadline_override`, when non-empty (one absolute expiry per
  /// item), replaces each item's own deadline for the scoring call — the
  /// simulator uses it to model cancellation at a precomputed time.
  /// Expired items are emitted unscored; primary-route outcomes feed the
  /// shard breaker (one outcome per item).
  void complete_batch(std::size_t w, std::vector<ServedResult>& out,
                      std::span<const std::uint64_t> deadline_override = {});

  /// Serves everything currently queued (forced windows, live deadlines):
  /// form + complete per shard until every queue is empty.
  void drain(std::vector<ServedResult>& out);

  const Shard& shard(std::size_t w) const { return lanes_[w]->shard; }
  Shard& shard(std::size_t w) { return lanes_[w]->shard; }

  /// Pipeline-stage aggregates accumulated by worker `w`'s scoring calls.
  const core::PipelineStats& worker_pipeline_stats(std::size_t w) const {
    return lanes_[w]->pipeline_stats;
  }

 private:
  /// Everything one worker owns. Heap-pinned (vector of unique_ptr) so
  /// lanes never move; `mu` guards the slab and payload slots, the shard
  /// locks itself.
  struct Lane {
    Lane(const ShardConfig& shard_config, const Clock& clock)
        : shard(shard_config, clock) {}

    Shard shard;
    mutable std::mutex mu;
    SessionSlab slab;
    /// Parked request payloads, indexed by WorkItem::payload; slots are
    /// recycled LIFO. Holds the borrowed signal pointers and the owned
    /// rng for exactly as long as the request is in flight.
    std::vector<ServerRequest> payloads;
    std::vector<std::size_t> free_payloads;

    // One-drainer scratch (form_batch → complete_batch).
    std::vector<WorkItem> batch;
    FormedBatch formed;
    bool has_batch = false;

    core::Workspace workspace;
    core::PipelineStats pipeline_stats;
    std::vector<core::ScoreRequest> reqs;
    std::vector<core::ScoreOutcome> outs;
    std::vector<Deadline> deadlines;
  };

  std::size_t park_payload(Lane& lane, const ServerRequest& request);

  ServerConfig config_;
  const Clock* clock_;
  core::DefenseSystem system_;
  std::optional<core::DefenseSystem> degraded_system_;
  ConsistentHashRing ring_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace vibguard::serving
