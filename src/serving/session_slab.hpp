// SessionSlab: compact storage for millions of mostly-idle sessions.
//
// A serving fleet keeps per-session state (a stable id, admission/quota
// bookkeeping, last-activity timestamps) for every client that ever opened
// a session, but only a tiny fraction of them are active at any instant.
// Storing each record behind its own heap allocation — the obvious
// map<id, unique_ptr<Session>> — costs an allocator round-trip per
// open/close and scatters idle records across the heap. The slab instead
// keeps all records in flat arrays (one contiguous block, reallocated
// geometrically) and hands out generation-checked handles: a freed slot is
// recycled for the next insert, and the generation counter stored next to
// the slot invalidates every handle that pointed at the previous occupant.
// Lookup is two array indexations plus one generation compare — no hashing,
// no pointer chase — and a stale handle from a closed session can never
// alias the record that reused its slot.
//
// The slab is deliberately dumb about its payload: it stores a small POD
// `SessionRecord` (id, tenant, counters). Heavier per-request state lives
// in the shard's queues for exactly as long as a request is in flight.
// Not thread-safe; each server worker owns the slab slice for its shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace vibguard::serving {

/// Generation-checked reference to a slab slot. Value type, trivially
/// copyable; `generation == 0` is the universal null handle. Generations
/// are odd while the slot is live and even while it is free, so a handle
/// captured before a slot was recycled fails the generation compare.
struct SessionHandle {
  std::uint32_t index = 0;
  std::uint32_t generation = 0;

  bool is_null() const { return generation == 0; }

  friend bool operator==(SessionHandle a, SessionHandle b) {
    return a.index == b.index && a.generation == b.generation;
  }
  friend bool operator!=(SessionHandle a, SessionHandle b) {
    return !(a == b);
  }
};

/// The per-session record the slab stores. Small and flat on purpose: this
/// is what "millions of idle sessions" are made of.
struct SessionRecord {
  std::uint64_t session_id = 0;  ///< caller-chosen stable identity
  std::uint32_t tenant = 0;      ///< admission-quota bucket
  std::uint64_t served = 0;      ///< requests completed for this session
  std::uint64_t last_active_us = 0;  ///< clock time of the last completion
};

class SessionSlab {
 public:
  /// Inserts a record and returns its handle. Reuses the most recently
  /// freed slot (LIFO — the hot slot is the cache-warm one) or grows the
  /// flat arrays geometrically when none is free.
  SessionHandle insert(const SessionRecord& record);

  /// Frees the slot behind `handle`. Returns false (and does nothing) when
  /// the handle is stale or null; freeing bumps the slot's generation so
  /// every outstanding handle to it goes stale atomically.
  bool erase(SessionHandle handle);

  /// The live record behind `handle`, or nullptr when the handle is stale
  /// or null. The pointer is invalidated by the next insert() (growth can
  /// reallocate the arrays) — dereference immediately, don't store it.
  SessionRecord* get(SessionHandle handle);
  const SessionRecord* get(SessionHandle handle) const;

  /// Live record count / allocated slot count.
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Handles of every live slot, in slot order (deterministic — session
  /// migration iterates this). O(capacity); control-plane only.
  std::vector<SessionHandle> handles() const;

  /// Drops every record and invalidates every handle; capacity retained.
  void clear();

  /// Test-only: jumps a live slot's generation to `generation` (parity
  /// must stay odd) and returns the rewritten handle. Exists so the
  /// 2^31-reuse generation wraparound can be exercised without two
  /// billion insert/erase cycles.
  SessionHandle set_generation_for_test(SessionHandle handle,
                                        std::uint32_t generation);

 private:
  std::vector<SessionRecord> slots_;
  std::vector<std::uint32_t> generations_;  ///< odd = live, even = free
  std::vector<std::uint32_t> free_;         ///< LIFO recycle stack
  std::size_t size_ = 0;
};

}  // namespace vibguard::serving
