#include "serving/supervisor.hpp"

#include "common/error.hpp"

namespace vibguard::serving {

const char* worker_health_name(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kHealthy:
      return "healthy";
    case WorkerHealth::kSlow:
      return "slow";
    case WorkerHealth::kWedged:
      return "wedged";
    case WorkerHealth::kDead:
      return "dead";
    case WorkerHealth::kRetired:
      return "retired";
  }
  return "?";
}

Supervisor::Supervisor(Server& server, SupervisorConfig config,
                       const Clock& clock)
    : server_(&server), config_(config), clock_(&clock) {
  VIBGUARD_REQUIRE(config_.slow_after_us < config_.wedged_after_us &&
                       config_.wedged_after_us < config_.dead_after_us,
                   "health thresholds must be strictly increasing");
  health_.assign(server.workers(), WorkerHealth::kHealthy);
}

WorkerHealth Supervisor::classify(std::size_t w) const {
  VIBGUARD_REQUIRE(w < server_->workers(), "no such worker");
  if (!server_->worker_active(w)) return WorkerHealth::kRetired;
  const std::uint64_t now = clock_->now_us();
  const std::uint64_t last = server_->shard(w).last_beat_us();
  const std::uint64_t age = now >= last ? now - last : 0;
  if (age < config_.slow_after_us) return WorkerHealth::kHealthy;
  if (age < config_.wedged_after_us) return WorkerHealth::kSlow;
  if (age < config_.dead_after_us) return WorkerHealth::kWedged;
  return WorkerHealth::kDead;
}

WorkerHealth Supervisor::health(std::size_t w) const {
  VIBGUARD_REQUIRE(w < health_.size(), "worker not watched");
  return health_[w];
}

void Supervisor::watch(std::size_t w) {
  VIBGUARD_REQUIRE(w < server_->workers(), "no such worker");
  while (health_.size() <= w) health_.push_back(WorkerHealth::kHealthy);
}

std::size_t Supervisor::poll(std::vector<ServedResult>& out) {
  ++stats_.polls;
  // Growth since the last poll (Server::add_worker) auto-enrolls.
  while (health_.size() < server_->workers()) {
    health_.push_back(WorkerHealth::kHealthy);
  }

  std::size_t failovers = 0;
  for (std::size_t w = 0; w < health_.size(); ++w) {
    if (health_[w] == WorkerHealth::kRetired) continue;  // terminal
    WorkerHealth next = classify(w);
    const WorkerHealth prev = health_[w];

    bool fail_over = false;
    if (next == WorkerHealth::kDead && config_.auto_failover &&
        server_->worker_active(w) &&
        server_->active_worker_ids().size() > 1) {
      fail_over = true;
    }

    if (next == prev && !fail_over) continue;

    SupervisorEvent event;
    event.at_us = clock_->now_us();
    event.worker = w;
    event.from = prev;
    event.to = next;
    if (fail_over) {
      ResizeReport report = server_->remove_worker(w, out);
      event.failover = true;
      event.sessions_migrated = report.sessions.size();
      event.migrations = std::move(report.sessions);
      event.items_requeued = report.items_requeued;
      event.items_expired = report.items_expired;
      event.items_dropped = report.items_dropped;
      ++stats_.failovers;
      stats_.sessions_migrated += event.sessions_migrated;
      stats_.items_requeued += report.items_requeued;
      stats_.items_expired += report.items_expired;
      stats_.items_dropped += report.items_dropped;
      next = WorkerHealth::kRetired;
      ++failovers;
    }
    health_[w] = next;
    events_.push_back(event);
  }
  return failovers;
}

}  // namespace vibguard::serving
