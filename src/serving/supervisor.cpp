#include "serving/supervisor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vibguard::serving {

const char* worker_health_name(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kHealthy:
      return "healthy";
    case WorkerHealth::kSlow:
      return "slow";
    case WorkerHealth::kWedged:
      return "wedged";
    case WorkerHealth::kDead:
      return "dead";
    case WorkerHealth::kQuarantined:
      return "quarantined";
    case WorkerHealth::kRetired:
      return "retired";
  }
  return "?";
}

const char* remediation_action_name(RemediationAction action) {
  switch (action) {
    case RemediationAction::kSteal:
      return "steal";
    case RemediationAction::kQuarantine:
      return "quarantine";
    case RemediationAction::kRecover:
      return "recover";
    case RemediationAction::kEscalate:
      return "escalate";
    case RemediationAction::kGrow:
      return "grow";
    case RemediationAction::kFlapSuppressed:
      return "flap_suppressed";
  }
  return "?";
}

Supervisor::Supervisor(Server& server, SupervisorConfig config,
                       const Clock& clock)
    : server_(&server), config_(config), clock_(&clock) {
  VIBGUARD_REQUIRE(config_.slow_after_us < config_.wedged_after_us &&
                       config_.wedged_after_us < config_.dead_after_us,
                   "health thresholds must be strictly increasing");
  const RemediationConfig& r = config_.remediation;
  if (r.enabled) {
    VIBGUARD_REQUIRE(r.overload_window > 0 && r.overload_confirm > 0 &&
                         r.overload_confirm <= r.overload_window,
                     "overload confirmation needs 1 <= K <= N");
    VIBGUARD_REQUIRE(r.flap_actions > 0, "flap detector needs >= 1 action");
    VIBGUARD_REQUIRE(r.max_workers > 0, "max_workers must be positive");
    VIBGUARD_REQUIRE(r.cooldown_us > 0, "cooldown must be positive");
  }
  health_.assign(server.workers(), WorkerHealth::kHealthy);
  quarantine_.assign(server.workers(), QuarantineState{});
}

WorkerHealth Supervisor::classify(std::size_t w) const {
  VIBGUARD_REQUIRE(w < server_->workers(), "no such worker");
  const WorkerState state = server_->worker_state(w);
  if (state == WorkerState::kRetired) return WorkerHealth::kRetired;
  if (state == WorkerState::kQuarantined) return WorkerHealth::kQuarantined;
  const std::uint64_t now = clock_->now_us();
  const std::uint64_t last = server_->shard(w).last_beat_us();
  const std::uint64_t age = now >= last ? now - last : 0;
  // Strict `<` on the healthy side of every rung: an age exactly equal to
  // a threshold takes the worse state (pinned by the boundary tests).
  if (age < config_.slow_after_us) return WorkerHealth::kHealthy;
  if (age < config_.wedged_after_us) return WorkerHealth::kSlow;
  if (age < config_.dead_after_us) return WorkerHealth::kWedged;
  return WorkerHealth::kDead;
}

WorkerHealth Supervisor::health(std::size_t w) const {
  VIBGUARD_REQUIRE(w < health_.size(), "worker not watched");
  return health_[w];
}

void Supervisor::watch(std::size_t w) {
  VIBGUARD_REQUIRE(w < server_->workers(), "no such worker");
  while (health_.size() <= w) health_.push_back(WorkerHealth::kHealthy);
  while (quarantine_.size() <= w) quarantine_.push_back(QuarantineState{});
}

void Supervisor::quarantine(std::size_t w, WorkerHealth prev,
                            std::vector<ServedResult>& out) {
  SupervisorEvent event;
  event.at_us = clock_->now_us();
  event.worker = w;
  event.from = prev;
  event.to = WorkerHealth::kQuarantined;

  ResizeReport report = server_->quarantine_worker(w, out);
  // The restart fences the wedged pump behind a fresh epoch; the probe
  // below only believes beats stamped under it. In a simulation (no
  // pumps) this degenerates to exactly the epoch bump the probe needs.
  server_->restart_pump(w);

  QuarantineState q;
  q.active = true;
  q.since_us = event.at_us;
  q.probe_deadline_us = event.at_us + config_.remediation.probe_timeout_us;
  q.epoch = server_->shard(w).epoch();
  q.beats_at = server_->shard(w).beats();
  quarantine_[w] = q;

  event.sessions_migrated = report.sessions.size();
  event.migrations = std::move(report.sessions);
  event.items_requeued = report.items_requeued;
  event.items_expired = report.items_expired;
  event.items_dropped = report.items_dropped;
  stats_.sessions_migrated += event.sessions_migrated;
  stats_.items_requeued += event.items_requeued;
  stats_.items_expired += event.items_expired;
  stats_.items_dropped += event.items_dropped;
  ++stats_.quarantines;
  health_[w] = WorkerHealth::kQuarantined;

  RemediationEvent action;
  action.at_us = event.at_us;
  action.action = RemediationAction::kQuarantine;
  action.worker = w;
  action.sessions = event.sessions_migrated;
  action.items = event.items_requeued;
  log_.append(action);
  events_.push_back(std::move(event));
}

void Supervisor::resolve_quarantine(std::size_t w,
                                    std::vector<ServedResult>& out,
                                    std::size_t& removed) {
  const QuarantineState& q = quarantine_[w];
  VIBGUARD_REQUIRE(q.active, "no quarantine pending for this worker");
  const Shard& shard = server_->shard(w);
  const std::uint64_t now = clock_->now_us();
  // The probe: only a beat stamped under the post-restart epoch counts —
  // a stale (pre-fence) thread's beat is rejected by the shard and can
  // never land here. Strictly-more beats rules out the fence racing an
  // in-flight beat.
  const bool recovered =
      shard.last_beat_epoch() == q.epoch && shard.beats() > q.beats_at;

  if (recovered) {
    SupervisorEvent event;
    event.at_us = now;
    event.worker = w;
    event.from = WorkerHealth::kQuarantined;
    event.to = WorkerHealth::kHealthy;
    ResizeReport report = server_->restore_worker(w, out);
    event.sessions_migrated = report.sessions.size();
    event.migrations = std::move(report.sessions);
    event.items_requeued = report.items_requeued;
    event.items_expired = report.items_expired;
    event.items_dropped = report.items_dropped;
    stats_.sessions_migrated += event.sessions_migrated;
    stats_.items_requeued += event.items_requeued;
    stats_.items_expired += event.items_expired;
    stats_.items_dropped += event.items_dropped;
    ++stats_.recoveries;
    health_[w] = WorkerHealth::kHealthy;
    quarantine_[w] = QuarantineState{};

    RemediationEvent action;
    action.at_us = now;
    action.action = RemediationAction::kRecover;
    action.worker = w;
    action.sessions = event.sessions_migrated;
    action.items = event.items_requeued;
    log_.append(action);
    events_.push_back(std::move(event));
    return;
  }

  if (now >= q.probe_deadline_us) {
    // No fresh-epoch beat in time: the restart did not take. Escalate to
    // terminal — the quarantine already drained the queue, so this mostly
    // sweeps up stale-placement stragglers.
    SupervisorEvent event;
    event.at_us = now;
    event.worker = w;
    event.from = WorkerHealth::kQuarantined;
    event.to = WorkerHealth::kRetired;
    event.failover = true;
    ResizeReport report = server_->retire_worker(w, out);
    event.sessions_migrated = report.sessions.size();
    event.migrations = std::move(report.sessions);
    event.items_requeued = report.items_requeued;
    event.items_expired = report.items_expired;
    event.items_dropped = report.items_dropped;
    ++stats_.failovers;
    stats_.sessions_migrated += event.sessions_migrated;
    stats_.items_requeued += event.items_requeued;
    stats_.items_expired += event.items_expired;
    stats_.items_dropped += event.items_dropped;
    ++stats_.escalations;
    health_[w] = WorkerHealth::kRetired;
    quarantine_[w] = QuarantineState{};
    ++removed;

    RemediationEvent action;
    action.at_us = now;
    action.action = RemediationAction::kEscalate;
    action.worker = w;
    action.sessions = event.sessions_migrated;
    action.items = event.items_requeued;
    log_.append(action);
    events_.push_back(std::move(event));
  }
  // Otherwise: probe still pending; check again next poll.
}

void Supervisor::steal_pass(const std::vector<std::size_t>& victims,
                            std::vector<ServedResult>& out) {
  const RemediationConfig& r = config_.remediation;
  for (const std::size_t victim : victims) {
    if (server_->shard(victim).depth() < r.steal_min_depth) continue;
    // Thief: the least-loaded worker the ladder considers healthy right
    // now (ties go to the smallest id — deterministic).
    std::optional<std::size_t> thief;
    std::size_t thief_depth = 0;
    for (const std::size_t t : server_->active_worker_ids()) {
      if (t == victim || t >= health_.size()) continue;
      if (health_[t] != WorkerHealth::kHealthy) continue;
      const std::size_t depth = server_->shard(t).depth();
      if (!thief.has_value() || depth < thief_depth ||
          (depth == thief_depth && t < *thief)) {
        thief = t;
        thief_depth = depth;
      }
    }
    if (!thief.has_value()) continue;
    const std::size_t moved =
        server_->steal_work(*thief, victim, r.steal_max_items, out);
    if (moved == 0) continue;
    ++stats_.steals;
    stats_.items_stolen += moved;
    RemediationEvent action;
    action.at_us = clock_->now_us();
    action.action = RemediationAction::kSteal;
    action.worker = victim;
    action.peer = *thief;
    action.items = moved;
    log_.append(action);
  }
}

void Supervisor::overload_pass(std::vector<ServedResult>& out) {
  const RemediationConfig& r = config_.remediation;
  const std::uint64_t now = clock_->now_us();

  // Fleet-cumulative counters over ALL workers (retired shards freeze, so
  // the sums stay monotone and the deltas non-negative across resizes).
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t oldest_age = 0;
  for (std::size_t w = 0; w < server_->workers(); ++w) {
    const ShardStats stats = server_->shard(w).stats();
    submitted += stats.admission.admitted + stats.admission.rejected +
                 stats.quota_rejected + stats.closed_rejected;
    rejected += stats.admission.rejected + stats.quota_rejected;
    if (server_->worker_state(w) != WorkerState::kActive) continue;
    const auto oldest = server_->shard(w).oldest_enqueued_us();
    if (oldest.has_value() && now >= *oldest) {
      oldest_age = std::max<std::uint64_t>(oldest_age, now - *oldest);
    }
  }
  const std::uint64_t delta_submitted = submitted - prev_submitted_;
  const std::uint64_t delta_rejected = rejected - prev_rejected_;
  prev_submitted_ = submitted;
  prev_rejected_ = rejected;

  const double reject_rate =
      delta_submitted > 0 ? static_cast<double>(delta_rejected) /
                                static_cast<double>(delta_submitted)
                          : 0.0;
  const bool hot = reject_rate >= r.reject_rate_threshold ||
                   oldest_age >= r.queue_age_threshold_us;
  overload_samples_.push_back(hot);
  while (overload_samples_.size() > r.overload_window) {
    overload_samples_.pop_front();
  }
  std::size_t hot_count = 0;
  for (const bool sample : overload_samples_) {
    if (sample) ++hot_count;
  }
  const double score = static_cast<double>(hot_count) /
                       static_cast<double>(r.overload_window);
  const bool confirmed = overload_samples_.size() == r.overload_window &&
                         hot_count >= r.overload_confirm;
  const bool cooled =
      !last_action_us_.has_value() || now - *last_action_us_ >= r.cooldown_us;
  if (!confirmed || !cooled) return;

  // Flap detection happens before the action: a fleet that has grown
  // flap_actions times inside the window is pinned for good.
  while (!grow_times_.empty() &&
         now - grow_times_.front() > r.flap_window_us) {
    grow_times_.pop_front();
  }
  if (grow_times_.size() >= r.flap_actions) flap_pinned_ = true;

  if (flap_pinned_) {
    // Surface the suppression (once per cooldown window at most) so the
    // operator sees the pinned fleet is still under confirmed overload.
    if (!last_flap_event_us_.has_value() ||
        now - *last_flap_event_us_ >= r.cooldown_us) {
      last_flap_event_us_ = now;
      ++stats_.flap_suppressed;
      RemediationEvent action;
      action.at_us = now;
      action.action = RemediationAction::kFlapSuppressed;
      action.overload_score = score;
      log_.append(action);
    }
    return;
  }

  if (server_->active_worker_ids().size() >= r.max_workers) return;

  ResizeReport report;
  const std::size_t w = server_->add_worker(out, &report);
  watch(w);
  last_action_us_ = now;
  grow_times_.push_back(now);
  ++stats_.grows;
  stats_.sessions_migrated += report.sessions.size();
  stats_.items_requeued += report.items_requeued;
  stats_.items_expired += report.items_expired;
  stats_.items_dropped += report.items_dropped;

  RemediationEvent action;
  action.at_us = now;
  action.action = RemediationAction::kGrow;
  action.worker = w;
  action.sessions = report.sessions.size();
  action.items = report.items_requeued;
  action.overload_score = score;
  log_.append(action);

  // Growth re-homes sessions off every donor; surface the new handles on
  // a synthetic event so handle-holding callers can catch up, exactly as
  // they do for failover migrations.
  SupervisorEvent event;
  event.at_us = now;
  event.worker = w;
  event.from = WorkerHealth::kHealthy;
  event.to = WorkerHealth::kHealthy;
  event.sessions_migrated = report.sessions.size();
  event.migrations = std::move(report.sessions);
  event.items_requeued = report.items_requeued;
  event.items_expired = report.items_expired;
  event.items_dropped = report.items_dropped;
  events_.push_back(std::move(event));
}

std::size_t Supervisor::poll(std::vector<ServedResult>& out) {
  ++stats_.polls;
  // Growth since the last poll (Server::add_worker) auto-enrolls.
  while (health_.size() < server_->workers()) {
    health_.push_back(WorkerHealth::kHealthy);
  }
  while (quarantine_.size() < health_.size()) {
    quarantine_.push_back(QuarantineState{});
  }
  const RemediationConfig& remediation = config_.remediation;

  std::size_t removed = 0;
  std::vector<std::size_t> steal_victims;
  for (std::size_t w = 0; w < health_.size(); ++w) {
    if (health_[w] == WorkerHealth::kRetired) continue;  // terminal

    // A pending quarantine resolves by probe, not by the age ladder.
    if (health_[w] == WorkerHealth::kQuarantined) {
      resolve_quarantine(w, out, removed);
      continue;
    }

    WorkerHealth next = classify(w);
    const WorkerHealth prev = health_[w];

    if (next == WorkerHealth::kSlow && remediation.enabled &&
        remediation.steal) {
      steal_victims.push_back(w);
    }

    if (next == WorkerHealth::kWedged && remediation.enabled &&
        remediation.quarantine &&
        server_->worker_state(w) == WorkerState::kActive &&
        server_->active_worker_ids().size() > 1) {
      quarantine(w, prev, out);
      continue;
    }

    bool fail_over = false;
    if (next == WorkerHealth::kDead && config_.auto_failover &&
        server_->worker_active(w) &&
        server_->active_worker_ids().size() > 1) {
      fail_over = true;
    }

    if (next == prev && !fail_over) continue;

    SupervisorEvent event;
    event.at_us = clock_->now_us();
    event.worker = w;
    event.from = prev;
    event.to = next;
    if (fail_over) {
      ResizeReport report = server_->remove_worker(w, out);
      event.failover = true;
      event.sessions_migrated = report.sessions.size();
      event.migrations = std::move(report.sessions);
      event.items_requeued = report.items_requeued;
      event.items_expired = report.items_expired;
      event.items_dropped = report.items_dropped;
      ++stats_.failovers;
      stats_.sessions_migrated += event.sessions_migrated;
      stats_.items_requeued += report.items_requeued;
      stats_.items_expired += report.items_expired;
      stats_.items_dropped += report.items_dropped;
      next = WorkerHealth::kRetired;
      ++removed;
    }
    health_[w] = next;
    events_.push_back(std::move(event));
  }

  if (remediation.enabled && remediation.steal && !steal_victims.empty()) {
    steal_pass(steal_victims, out);
  }
  if (remediation.enabled && remediation.grow) {
    overload_pass(out);
  }
  return removed;
}

}  // namespace vibguard::serving
