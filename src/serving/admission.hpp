// Admission control: bounded request queue with explicit backpressure.
//
// A serving endpoint that accepts every request under overload only
// converts queueing delay into deadline misses; the admission controller
// instead bounds the queue and rejects on full, so the caller gets an
// immediate, explicit backpressure signal it can surface to the client
// (re-request later) instead of silently blowing every budget. Requests
// are identified by caller-chosen ids (indices into the caller's request
// array); the controller tracks FIFO order, per-request queue time through
// the injectable Clock, and aggregate admitted/rejected/queue-time
// statistics that the session folds into PipelineStats. Not thread-safe:
// one controller serves one session/drain loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>

#include "common/clock.hpp"

namespace vibguard::serving {

struct AdmissionConfig {
  /// Maximum requests waiting at once; submissions beyond this are
  /// rejected (explicit backpressure), never silently queued.
  std::size_t queue_capacity = 64;
};

/// Aggregate admission/queue-time accounting. The queue-time aggregates
/// (total/max/mean) cover only requests dequeued for service: rejected
/// submissions never enter the queue, and requests dropped because their
/// deadline expired while queued are tallied in `expired` — neither can
/// pollute the mean queue time of the requests the server actually ran.
struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t dequeued = 0;  ///< dequeued for service (excludes expired)
  std::uint64_t expired = 0;   ///< dropped: deadline passed while queued
  /// Items removed by a peer's work steal (serving shards only; see
  /// Shard::steal_batch). Stolen items leave this queue unserved, so they
  /// never touch the queue-time aggregates here — their wait keeps
  /// accruing and is accounted where they are finally dequeued.
  std::uint64_t stolen = 0;
  std::uint64_t total_queue_us = 0;  ///< summed over dequeued requests
  std::uint64_t max_queue_us = 0;

  double mean_queue_us() const {
    return dequeued > 0 ? static_cast<double>(total_queue_us) /
                              static_cast<double>(dequeued)
                        : 0.0;
  }
};

class AdmissionController {
 public:
  /// A capacity of zero is legal and means "admit nothing": every
  /// submission is rejected with clean backpressure (and the queue-time
  /// stats stay well defined — no division by a zero dequeue count ever
  /// happens because mean_queue_us() guards it).
  AdmissionController(AdmissionConfig config, const Clock& clock);

  /// Admits `request_id` into the queue, timestamped now. Returns false —
  /// and counts a rejection — when the queue is full.
  bool try_admit(std::size_t request_id);

  struct Admitted {
    std::size_t request_id = 0;
    std::uint64_t queue_us = 0;  ///< admission → dequeue on the clock
  };

  /// Pops the oldest queued request (FIFO) and accounts its queue time;
  /// nullopt when the queue is empty.
  std::optional<Admitted> next();

  /// Pops the oldest queued request like next(), but accounts it as a
  /// deadline-expired-in-queue drop: counted in stats().expired and
  /// excluded from the queue-time aggregates, so the mean queue time keeps
  /// describing requests that were genuinely served. The caller decides
  /// expiry (it owns the deadlines); peek() exposes the head for that test.
  std::optional<Admitted> next_expired();

  /// Oldest queued request id without popping; nullopt when empty.
  std::optional<std::size_t> peek() const;

  std::size_t depth() const { return queue_.size(); }
  std::size_t capacity() const { return config_.queue_capacity; }
  const AdmissionStats& stats() const { return stats_; }
  const AdmissionConfig& config() const { return config_; }

  /// Drops queued requests and zeroes the statistics.
  void clear();

 private:
  struct Entry {
    std::size_t request_id;
    std::uint64_t enqueued_us;
  };

  AdmissionConfig config_;
  const Clock* clock_;
  std::deque<Entry> queue_;
  AdmissionStats stats_;
};

}  // namespace vibguard::serving
