#include "speech/command.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vibguard::speech {
namespace {

const std::vector<VoiceCommand>& wake_word_table() {
  static const std::vector<VoiceCommand> kWakeWords = {
      {"alexa", {"ah", "l", "eh", "k", "s", "ah"}},
      {"ok google", {"ow", "k", "ey", "g", "uw", "g", "ah", "l"}},
      {"hey siri", {"hh", "ey", "s", "ih", "r", "iy"}},
  };
  return kWakeWords;
}

const std::vector<VoiceCommand>& lexicon_table() {
  static const std::vector<VoiceCommand> kLexicon = {
      {"turn on the lights",
       {"t", "er", "n", "aa", "n", "dh", "ah", "l", "ay", "t", "s"}},
      {"turn off the lights",
       {"t", "er", "n", "ao", "f", "dh", "ah", "l", "ay", "t", "s"}},
      {"unlock the front door",
       {"ah", "n", "l", "aa", "k", "dh", "ah", "f", "r", "ah", "n", "t", "d",
        "ao", "r"}},
      {"lock the door", {"l", "aa", "k", "dh", "ah", "d", "ao", "r"}},
      {"what time is it",
       {"w", "ah", "t", "t", "ay", "m", "ih", "z", "ih", "t"}},
      {"play some music",
       {"p", "l", "ey", "s", "ah", "m", "m", "y", "uw", "z", "ih", "k"}},
      {"set an alarm",
       {"s", "eh", "t", "ae", "n", "ah", "l", "aa", "r", "m"}},
      {"stop", {"s", "t", "aa", "p"}},
      {"volume up", {"v", "aa", "l", "y", "uw", "m", "ah", "p"}},
      {"volume down", {"v", "aa", "l", "y", "uw", "m", "d", "aw", "n"}},
      {"open the garage",
       {"ow", "p", "ah", "n", "dh", "ah", "g", "ah", "r", "aa", "jh"}},
      {"call mom", {"k", "ao", "l", "m", "aa", "m"}},
      {"whats the weather",
       {"w", "ah", "t", "s", "dh", "ah", "w", "eh", "dh", "er"}},
      {"turn on the heater",
       {"t", "er", "n", "aa", "n", "dh", "ah", "hh", "iy", "t", "er"}},
      {"disarm the security system",
       {"d", "ih", "s", "aa", "r", "m", "dh", "ah", "s", "ih", "k", "y",
        "uh", "r", "ih", "t", "iy", "s", "ih", "s", "t", "ah", "m"}},
      {"add milk to the list",
       {"ae", "d", "m", "ih", "l", "k", "t", "uw", "dh", "ah", "l", "ih",
        "s", "t"}},
      {"good morning", {"g", "uh", "d", "m", "ao", "r", "n", "ih", "ng"}},
      {"pause the movie",
       {"p", "ao", "z", "dh", "ah", "m", "uw", "v", "iy"}},
      {"next song", {"n", "eh", "k", "s", "t", "s", "ao", "ng"}},
      {"dim the bedroom lights",
       {"d", "ih", "m", "dh", "ah", "b", "eh", "d", "r", "uw", "m", "l",
        "ay", "t", "s"}},
  };
  return kLexicon;
}

}  // namespace

std::span<const VoiceCommand> wake_words() { return wake_word_table(); }

std::span<const VoiceCommand> command_lexicon() { return lexicon_table(); }

const VoiceCommand& command_by_text(const std::string& text) {
  for (const auto& c : wake_word_table()) {
    if (c.text == text) return c;
  }
  for (const auto& c : lexicon_table()) {
    if (c.text == text) return c;
  }
  throw InvalidArgument("unknown command: " + text);
}

UtteranceBuilder::UtteranceBuilder(SynthesizerConfig config)
    : synth_(config) {}

Utterance UtteranceBuilder::compose(const std::vector<std::string>& symbols,
                                    const std::string& text,
                                    const SpeakerProfile& speaker,
                                    Rng& rng) const {
  Utterance utt;
  utt.text = text;
  utt.speaker_id = speaker.id;
  const double fs = synth_.config().sample_rate;
  for (const std::string& sym : symbols) {
    const Phoneme& p = phoneme_by_symbol(sym);
    Signal seg = synth_.synthesize(p, speaker, rng);
    std::size_t begin;
    if (utt.audio.empty()) {
      begin = 0;
      utt.audio = std::move(seg);
    } else {
      // Cross-fade as in connected speech; the boundary is placed at the
      // center of the fade region.
      const auto fade = std::min<std::size_t>(
          {static_cast<std::size_t>(0.005 * fs), utt.audio.size(),
           seg.size()});
      const std::size_t base = utt.audio.size() - fade;
      for (std::size_t i = 0; i < fade; ++i) {
        const double g = static_cast<double>(i) / static_cast<double>(fade);
        utt.audio[base + i] = utt.audio[base + i] * (1.0 - g) + seg[i] * g;
      }
      utt.audio.append(seg.slice(fade, seg.size()));
      begin = base + fade / 2;
      if (!utt.alignment.empty()) utt.alignment.back().end = begin;
    }
    utt.alignment.push_back({sym, begin, utt.audio.size()});
  }
  return utt;
}

Utterance UtteranceBuilder::build(const VoiceCommand& command,
                                  const SpeakerProfile& speaker,
                                  Rng& rng) const {
  VIBGUARD_REQUIRE(!command.phonemes.empty(),
                   "command must contain at least one phoneme");
  return compose(command.phonemes, command.text, speaker, rng);
}

Utterance UtteranceBuilder::build_random(std::size_t num_phonemes,
                                         const SpeakerProfile& speaker,
                                         Rng& rng) const {
  VIBGUARD_REQUIRE(num_phonemes > 0, "need at least one phoneme");
  const auto phonemes = common_phonemes();
  // Frequency-weighted sampling following Table II appearance counts.
  int total = 0;
  for (const Phoneme& p : phonemes) total += p.command_frequency;
  std::vector<std::string> symbols;
  symbols.reserve(num_phonemes);
  for (std::size_t i = 0; i < num_phonemes; ++i) {
    auto draw = rng.uniform_int(0, total - 1);
    for (const Phoneme& p : phonemes) {
      draw -= p.command_frequency;
      if (draw < 0) {
        symbols.push_back(p.symbol);
        break;
      }
    }
  }
  return compose(symbols, "<random>", speaker, rng);
}

}  // namespace vibguard::speech
