#include "speech/phoneme.hpp"

#include <array>
#include <unordered_map>

#include "common/error.hpp"

namespace vibguard::speech {
namespace {

using PC = PhonemeClass;

// Helper builders keep the table readable.
Phoneme vowel(std::string sym, double f1, double f2, double f3,
              double intensity_db, double dur, int freq) {
  return Phoneme{std::move(sym),
                 PC::kVowel,
                 true,
                 {{f1, 60.0}, {f2, 90.0}, {f3, 150.0}},
                 {},
                 std::nullopt,
                 intensity_db,
                 dur,
                 freq};
}

Phoneme diphthong(std::string sym, double f1, double f2, double f3,
                  double end_f1, double end_f2, double end_f3,
                  double intensity_db, double dur, int freq) {
  Phoneme p = vowel(std::move(sym), f1, f2, f3, intensity_db, dur, freq);
  p.cls = PC::kDiphthong;
  p.end_formants = {{end_f1, 60.0}, {end_f2, 90.0}, {end_f3, 150.0}};
  return p;
}

Phoneme sonorant(std::string sym, PC cls, double f1, double f2, double f3,
                 double intensity_db, double dur, int freq) {
  return Phoneme{std::move(sym),
                 cls,
                 true,
                 {{f1, 80.0}, {f2, 120.0}, {f3, 180.0}},
                 {},
                 std::nullopt,
                 intensity_db,
                 dur,
                 freq};
}

Phoneme fricative(std::string sym, bool voiced, double lo, double hi,
                  double intensity_db, double dur, int freq) {
  std::vector<Formant> formants;
  if (voiced) formants = {{350.0, 100.0}, {1400.0, 200.0}};
  return Phoneme{std::move(sym),
                 PC::kFricative,
                 voiced,
                 std::move(formants),
                 {},
                 FricationBand{lo, hi},
                 intensity_db,
                 dur,
                 freq};
}

Phoneme plosive(std::string sym, bool voiced, double lo, double hi,
                double intensity_db, double dur, int freq) {
  std::vector<Formant> formants;
  if (voiced) formants = {{300.0, 90.0}, {1200.0, 200.0}};
  return Phoneme{std::move(sym),
                 PC::kPlosive,
                 voiced,
                 std::move(formants),
                 {},
                 FricationBand{lo, hi},
                 intensity_db,
                 dur,
                 freq};
}

Phoneme affricate(std::string sym, bool voiced, double lo, double hi,
                  double intensity_db, double dur, int freq) {
  Phoneme p = plosive(std::move(sym), voiced, lo, hi, intensity_db, dur, freq);
  p.cls = PC::kAffricate;
  return p;
}

// Table II phonemes. Intensities are relative to /aa/; formant values follow
// Peterson–Barney (vowels) and standard consonant loci. Durations are
// steady-state means. One 'ch' row of Table II is a typographical duplicate;
// it is rendered here as /eh/ (the only high-frequency TIMIT monophthong
// otherwise missing from the table).
const std::vector<Phoneme>& table() {
  static const std::vector<Phoneme> kPhonemes = {
      // --- vowels ---
      vowel("ah", 640, 1190, 2390, -4.0, 0.14, 107),
      vowel("ih", 390, 1990, 2550, -4.0, 0.12, 99),
      vowel("iy", 270, 2290, 3010, -4.0, 0.14, 65),
      vowel("er", 490, 1350, 1690, -3.0, 0.16, 58),
      vowel("ae", 660, 1720, 2410, -2.0, 0.17, 39),
      // /aa/ and /ao/ are pronounced markedly louder than other phonemes
      // (strong larynx vibration, paper Sec. V-A) — the property that makes
      // them fail Criterion I.
      vowel("aa", 730, 1090, 2440, 6.0, 0.18, 32),
      vowel("uw", 300, 920, 2240, -2.5, 0.14, 31),
      vowel("ao", 570, 860, 2410, 5.5, 0.18, 29),
      vowel("eh", 530, 1840, 2480, -3.0, 0.13, 13),
      vowel("uh", 440, 1020, 2240, -4.5, 0.11, 6),
      // --- diphthongs (mid-trajectory formants) ---
      diphthong("ey", 530, 1850, 2500, 350, 2200, 2700, -3.0, 0.18, 38),
      diphthong("ay", 700, 1220, 2400, 400, 1900, 2550, -1.0, 0.20, 36),
      diphthong("aw", 700, 1150, 2450, 430, 950, 2350, -1.5, 0.20, 15),
      diphthong("ow", 550, 960, 2350, 430, 880, 2300, -1.5, 0.18, 17),
      // --- glides & liquids ---
      sonorant("w", PC::kGlide, 300, 610, 2200, -7.0, 0.08, 40),
      sonorant("y", PC::kGlide, 280, 2250, 3000, -7.5, 0.08, 15),
      sonorant("r", PC::kLiquid, 310, 1060, 1380, -4.5, 0.09, 100),
      sonorant("l", PC::kLiquid, 360, 1300, 2700, -4.0, 0.09, 70),
      // --- nasals ---
      sonorant("m", PC::kNasal, 280, 1100, 2200, -8.0, 0.08, 65),
      sonorant("n", PC::kNasal, 280, 1700, 2600, -8.0, 0.08, 108),
      sonorant("ng", PC::kNasal, 280, 2300, 2750, -8.5, 0.09, 17),
      // --- fricatives ---
      fricative("s", false, 4000, 7800, -11.5, 0.13, 101),
      fricative("z", true, 4000, 7500, -11.0, 0.12, 49),
      fricative("sh", false, 2000, 6000, -9.0, 0.13, 8),
      fricative("f", false, 1500, 7500, -17.0, 0.12, 29),
      fricative("v", true, 2500, 6500, -13.5, 0.08, 28),
      fricative("th", false, 1400, 7500, -19.0, 0.11, 10),
      fricative("dh", true, 1800, 6000, -14.0, 0.06, 12),
      fricative("hh", false, 500, 3500, -16.0, 0.07, 20),
      // --- plosives (burst band) ---
      plosive("t", false, 2500, 4500, -9.5, 0.07, 129),
      plosive("d", true, 2000, 4000, -9.0, 0.06, 83),
      plosive("k", false, 1500, 3000, -9.5, 0.07, 70),
      plosive("g", true, 1200, 2600, -9.0, 0.06, 13),
      plosive("p", false, 600, 2000, -11.0, 0.07, 37),
      plosive("b", true, 650, 2000, -10.5, 0.06, 31),
      // --- affricates ---
      affricate("ch", false, 2000, 5500, -9.5, 0.10, 69),
      affricate("jh", true, 1800, 5000, -9.0, 0.09, 14),
  };
  return kPhonemes;
}

}  // namespace

std::span<const Phoneme> common_phonemes() { return table(); }

std::span<const std::string> timit_symbols() {
  static const std::vector<std::string> kSymbols = {
      // Full TIMIT inventory (61 phones + 2 closure/silence groupings the
      // paper counts within its 63).
      "aa", "ae", "ah", "ao", "aw", "ax", "axr", "ay", "b", "bcl", "ch", "d",
      "dcl", "dh", "dx", "eh", "el", "em", "en", "eng", "epi", "er", "ey",
      "f", "g", "gcl", "hh", "hv", "ih", "ix", "iy", "jh", "k", "kcl", "l",
      "m", "n", "ng", "nx", "ow", "oy", "p", "pau", "pcl", "q", "r", "s",
      "sh", "t", "tcl", "th", "uh", "uw", "ux", "v", "w", "y", "z", "zh",
      "h#", "ax-h", "b#", "t#"};
  return kSymbols;
}

const Phoneme& phoneme_by_symbol(const std::string& symbol) {
  static const std::unordered_map<std::string, const Phoneme*> kIndex = [] {
    std::unordered_map<std::string, const Phoneme*> idx;
    for (const Phoneme& p : table()) idx.emplace(p.symbol, &p);
    return idx;
  }();
  const auto it = kIndex.find(symbol);
  VIBGUARD_REQUIRE(it != kIndex.end(), "unknown common phoneme: " + symbol);
  return *it->second;
}

bool is_common_phoneme(const std::string& symbol) {
  for (const Phoneme& p : table()) {
    if (p.symbol == symbol) return true;
  }
  return false;
}

}  // namespace vibguard::speech
