// TIMIT-style phoneme inventory.
//
// The paper works with the 63-phoneme TIMIT set and narrows it to the 37
// phonemes that appear frequently in voice-assistant commands (Table II).
// Each phoneme here carries the articulatory-acoustic parameters the
// formant synthesizer needs: voicing, formant frequencies/bandwidths,
// frication band, relative intensity and typical duration. Parameter values
// follow standard phonetics references (Peterson & Barney vowel formants,
// Fant source–filter theory).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

namespace vibguard::speech {

/// Broad articulatory class of a phoneme.
enum class PhonemeClass {
  kVowel,
  kDiphthong,
  kGlide,      // w, y
  kLiquid,     // l, r
  kNasal,      // m, n, ng
  kFricative,  // f, v, th, dh, s, z, sh, zh, hh
  kPlosive,    // p, b, t, d, k, g
  kAffricate,  // ch, jh
};

/// One formant resonance: center frequency and bandwidth in Hz.
struct Formant {
  double frequency_hz;
  double bandwidth_hz;
};

/// Band of frication noise energy.
struct FricationBand {
  double low_hz;
  double high_hz;
};

/// Acoustic-articulatory description of one phoneme.
struct Phoneme {
  std::string symbol;        ///< TIMIT symbol, e.g. "ae", "v"
  PhonemeClass cls;
  bool voiced;               ///< larynx vibration during production
  std::vector<Formant> formants;           ///< empty for pure noise sounds
  /// Diphthong glide targets: formant positions at the END of the phoneme
  /// (same cardinality as `formants`); empty for static phonemes.
  std::vector<Formant> end_formants;
  std::optional<FricationBand> frication;  ///< noise component band
  double intensity_db;       ///< level relative to /aa/ (0 dB = loudest)
  double duration_s;         ///< typical steady-state duration
  int command_frequency;     ///< appearance count in VA commands (Table II)

  bool is_vowel_like() const {
    return cls == PhonemeClass::kVowel || cls == PhonemeClass::kDiphthong;
  }
};

/// The 37 common phonemes of Table II with their appearance counts.
std::span<const Phoneme> common_phonemes();

/// All 63 TIMIT phoneme symbols (for completeness of the inventory).
std::span<const std::string> timit_symbols();

/// Looks a common phoneme up by TIMIT symbol; throws InvalidArgument if the
/// symbol is not one of the 37 common phonemes.
const Phoneme& phoneme_by_symbol(const std::string& symbol);

/// True if `symbol` names one of the 37 common phonemes.
bool is_common_phoneme(const std::string& symbol);

}  // namespace vibguard::speech
