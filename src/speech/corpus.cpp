#include "speech/corpus.hpp"

#include "common/error.hpp"

namespace vibguard::speech {

PhonemeCorpus::PhonemeCorpus(CorpusConfig config, std::uint64_t seed)
    : config_(config), seed_(seed), synth_(config.synth) {
  VIBGUARD_REQUIRE(config_.segments_per_phoneme > 0,
                   "corpus needs at least one segment per phoneme");
  VIBGUARD_REQUIRE(config_.num_males + config_.num_females > 0,
                   "corpus needs at least one speaker");
  Rng rng(seed_);
  speakers_.reserve(config_.num_males + config_.num_females);
  for (std::size_t i = 0; i < config_.num_males; ++i) {
    SpeakerProfile p = sample_speaker(Sex::kMale, rng);
    p.id = "m" + std::to_string(i);
    speakers_.push_back(std::move(p));
  }
  for (std::size_t i = 0; i < config_.num_females; ++i) {
    SpeakerProfile p = sample_speaker(Sex::kFemale, rng);
    p.id = "f" + std::to_string(i);
    speakers_.push_back(std::move(p));
  }
}

std::vector<PhonemeSegment> PhonemeCorpus::segments(
    const std::string& symbol) const {
  const Phoneme& p = phoneme_by_symbol(symbol);
  // Fork a dedicated stream per phoneme so corpora are stable regardless of
  // query order.
  std::uint64_t label = 0;
  for (char c : symbol) label = label * 131 + static_cast<std::uint64_t>(c);
  Rng rng = Rng(seed_).fork(label);

  std::vector<PhonemeSegment> out;
  out.reserve(config_.segments_per_phoneme);
  for (std::size_t i = 0; i < config_.segments_per_phoneme; ++i) {
    const SpeakerProfile& spk = speakers_[i % speakers_.size()];
    out.push_back({symbol, spk.id, synth_.synthesize(p, spk, rng)});
  }
  return out;
}

std::vector<PhonemeSegment> PhonemeCorpus::all_segments() const {
  std::vector<PhonemeSegment> out;
  out.reserve(common_phonemes().size() * config_.segments_per_phoneme);
  for (const Phoneme& p : common_phonemes()) {
    auto segs = segments(p.symbol);
    for (auto& s : segs) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace vibguard::speech
