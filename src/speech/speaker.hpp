// Speaker voice profiles.
//
// Replaces the paper's 20 human participants: each profile captures the
// speaker-level parameters that shape phoneme spectra (fundamental frequency
// statistics, vocal-tract length via a formant scale factor, and
// pronunciation variability).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace vibguard::speech {

enum class Sex { kMale, kFemale };

/// Voice parameters of one (synthetic) speaker.
struct SpeakerProfile {
  std::string id;
  Sex sex;
  double f0_hz;            ///< mean fundamental frequency
  double f0_jitter;        ///< relative cycle-to-cycle F0 perturbation
  double formant_scale;    ///< vocal-tract length factor (1.0 = reference)
  double shimmer;          ///< relative amplitude perturbation
  double breathiness;      ///< aspiration noise mixed into voiced sounds
};

/// Samples a random plausible speaker of the given sex.
SpeakerProfile sample_speaker(Sex sex, Rng& rng);

/// Samples a balanced population of `count` speakers (alternating sex),
/// with ids "spk00", "spk01", ...
std::vector<SpeakerProfile> sample_population(std::size_t count, Rng& rng);

/// Produces an *estimate* of `target` as a voice-synthesis model would
/// recover it from a few enrollment samples: parameters are perturbed by
/// estimation error and micro-variability is smoothed (vocoder artifact).
/// Used by the voice-synthesis attack.
SpeakerProfile clone_with_estimation_error(const SpeakerProfile& target,
                                           Rng& rng);

}  // namespace vibguard::speech
