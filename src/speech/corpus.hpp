// Synthetic phoneme-segment corpus.
//
// Stands in for the TIMIT segments the paper replays in its offline studies:
// "100 sound segments from five males and five females for each phoneme"
// (Sec. III-B, V-A). The corpus generator produces labeled phoneme segments
// for a balanced speaker population, deterministically from a seed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/signal.hpp"
#include "speech/phoneme.hpp"
#include "speech/speaker.hpp"
#include "speech/synthesizer.hpp"

namespace vibguard::speech {

/// One labeled phoneme recording.
struct PhonemeSegment {
  std::string symbol;
  std::string speaker_id;
  Signal audio;
};

struct CorpusConfig {
  std::size_t segments_per_phoneme = 100;  ///< paper uses 100
  std::size_t num_males = 5;
  std::size_t num_females = 5;
  SynthesizerConfig synth;
};

/// Generates labeled phoneme segments for the 37 common phonemes.
class PhonemeCorpus {
 public:
  PhonemeCorpus(CorpusConfig config, std::uint64_t seed);

  /// Segments for one phoneme, round-robin across the speaker panel.
  std::vector<PhonemeSegment> segments(const std::string& symbol) const;

  /// Segments for every common phoneme (37 × segments_per_phoneme).
  std::vector<PhonemeSegment> all_segments() const;

  const std::vector<SpeakerProfile>& speakers() const { return speakers_; }
  const CorpusConfig& config() const { return config_; }

 private:
  CorpusConfig config_;
  std::uint64_t seed_;
  std::vector<SpeakerProfile> speakers_;
  Synthesizer synth_;
};

}  // namespace vibguard::speech
