#include "speech/speaker.hpp"

#include <algorithm>

namespace vibguard::speech {

SpeakerProfile sample_speaker(Sex sex, Rng& rng) {
  SpeakerProfile p;
  p.sex = sex;
  if (sex == Sex::kMale) {
    p.f0_hz = rng.uniform(95.0, 145.0);
    p.formant_scale = rng.uniform(0.94, 1.04);
  } else {
    p.f0_hz = rng.uniform(175.0, 240.0);
    p.formant_scale = rng.uniform(1.08, 1.20);
  }
  p.f0_jitter = rng.uniform(0.005, 0.02);
  p.shimmer = rng.uniform(0.02, 0.08);
  p.breathiness = rng.uniform(0.01, 0.06);
  p.id = "spk";
  return p;
}

std::vector<SpeakerProfile> sample_population(std::size_t count, Rng& rng) {
  std::vector<SpeakerProfile> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Sex sex = i % 2 == 0 ? Sex::kMale : Sex::kFemale;
    SpeakerProfile p = sample_speaker(sex, rng);
    p.id = "spk" + std::string(i < 10 ? "0" : "") + std::to_string(i);
    out.push_back(std::move(p));
  }
  return out;
}

SpeakerProfile clone_with_estimation_error(const SpeakerProfile& target,
                                           Rng& rng) {
  SpeakerProfile clone = target;
  clone.id = target.id + "_synth";
  // A few-shot synthesis model recovers F0 and vocal-tract scale with some
  // error, and produces over-smoothed speech with reduced micro-variability.
  clone.f0_hz *= 1.0 + rng.gaussian(0.0, 0.03);
  clone.formant_scale *= 1.0 + rng.gaussian(0.0, 0.02);
  clone.f0_jitter = std::max(0.002, target.f0_jitter * 0.4);
  clone.shimmer = std::max(0.01, target.shimmer * 0.4);
  clone.breathiness = std::min(0.12, target.breathiness + 0.02);
  return clone;
}

}  // namespace vibguard::speech
