// Formant-based source–filter phoneme synthesizer.
//
// Stands in for TIMIT recordings: voiced sounds are additive harmonic series
// shaped by glottal spectral tilt and formant resonances; unvoiced sounds are
// band-shaped noise; plosives are closure + burst; affricates are burst +
// frication. The synthesizer reproduces the property the defense depends on:
// each phoneme's characteristic distribution of energy across frequency.
#pragma once

#include "common/rng.hpp"
#include "common/signal.hpp"
#include "speech/phoneme.hpp"
#include "speech/speaker.hpp"

namespace vibguard::speech {

struct SynthesizerConfig {
  double sample_rate = 16000.0;  ///< paper's microphone rate
  double max_harmonic_hz = 7800.0;
  double edge_ramp_s = 0.010;    ///< onset/offset amplitude ramp
};

/// Synthesizes phoneme sounds for a given speaker.
class Synthesizer {
 public:
  explicit Synthesizer(SynthesizerConfig config = {});

  const SynthesizerConfig& config() const { return config_; }

  /// Renders one phoneme at its typical duration (scaled by
  /// `duration_scale`) for `speaker`. Amplitude encodes the phoneme's
  /// relative intensity; callers rescale utterances to a target SPL.
  Signal synthesize(const Phoneme& phoneme, const SpeakerProfile& speaker,
                    Rng& rng, double duration_scale = 1.0) const;

  /// Renders a phoneme sequence with short coarticulation cross-fades.
  Signal synthesize_sequence(std::span<const Phoneme> phonemes,
                             const SpeakerProfile& speaker, Rng& rng) const;

  /// Magnitude gain of the cascaded formant resonators at frequency f for a
  /// given speaker (exposed for tests and analysis tools).
  static double formant_gain(const Phoneme& phoneme,
                             const SpeakerProfile& speaker, double f_hz);

 private:
  Signal voiced_component(const Phoneme& phoneme,
                          const SpeakerProfile& speaker, double duration_s,
                          Rng& rng) const;
  Signal noise_component(const Phoneme& phoneme, double duration_s,
                         const SpeakerProfile& speaker, Rng& rng) const;
  void apply_edge_ramp(Signal& s) const;

  SynthesizerConfig config_;
};

}  // namespace vibguard::speech
