// Voice-command lexicon and aligned utterance synthesis.
//
// Provides the voice-assistant commands used as workloads (wake words plus
// typical smart-home commands, transcribed into the 37 common phonemes of
// Table II) and an utterance builder that renders a command for a speaker
// while recording time-aligned phoneme boundaries — the synthetic equivalent
// of TIMIT's phonetic transcriptions.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/signal.hpp"
#include "speech/phoneme.hpp"
#include "speech/speaker.hpp"
#include "speech/synthesizer.hpp"

namespace vibguard::speech {

/// A command with its phonemic transcription.
struct VoiceCommand {
  std::string text;
  std::vector<std::string> phonemes;  ///< TIMIT symbols, all common
};

/// Wake words the paper attacks (Table I).
std::span<const VoiceCommand> wake_words();

/// Smart-home command lexicon (20 commands, mirroring the per-participant
/// command count of Sec. VII-A).
std::span<const VoiceCommand> command_lexicon();

/// Looks up a command by text; throws InvalidArgument if absent.
const VoiceCommand& command_by_text(const std::string& text);

/// Phoneme occupancy of one utterance region.
struct PhonemeSpan {
  std::string symbol;
  std::size_t begin;  ///< first sample (inclusive)
  std::size_t end;    ///< one past the last sample
};

/// A rendered utterance with its time-aligned phonemic transcription.
struct Utterance {
  Signal audio;
  std::vector<PhonemeSpan> alignment;
  std::string text;
  std::string speaker_id;
};

/// Renders commands into aligned utterances.
class UtteranceBuilder {
 public:
  explicit UtteranceBuilder(SynthesizerConfig config = {});

  /// Synthesizes `command` in `speaker`'s voice. Pauses between words are
  /// not modeled; phonemes are cross-faded as in connected speech.
  Utterance build(const VoiceCommand& command, const SpeakerProfile& speaker,
                  Rng& rng) const;

  /// Renders a random phoneme sequence of the given length drawn from the
  /// common phonemes (frequency-weighted as in Table II).
  Utterance build_random(std::size_t num_phonemes,
                         const SpeakerProfile& speaker, Rng& rng) const;

  const Synthesizer& synthesizer() const { return synth_; }

 private:
  Utterance compose(const std::vector<std::string>& symbols,
                    const std::string& text, const SpeakerProfile& speaker,
                    Rng& rng) const;

  Synthesizer synth_;
};

}  // namespace vibguard::speech
