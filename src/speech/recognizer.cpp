#include "speech/recognizer.hpp"

#include <limits>

#include "common/error.hpp"
#include "dsp/dtw.hpp"

namespace vibguard::speech {
namespace {

/// Cepstral mean normalization with the energy coefficient dropped:
/// removes per-utterance channel/level bias so cross-speaker and
/// thru-channel comparisons reflect spectral SHAPE over time.
std::vector<std::vector<double>> normalize_features(
    std::vector<std::vector<double>> mfcc) {
  if (mfcc.empty()) return mfcc;
  const std::size_t dim = mfcc.front().size();
  std::vector<double> mean_vec(dim, 0.0);
  for (const auto& f : mfcc) {
    for (std::size_t k = 0; k < dim; ++k) mean_vec[k] += f[k];
  }
  for (double& m : mean_vec) m /= static_cast<double>(mfcc.size());
  for (auto& f : mfcc) {
    for (std::size_t k = 0; k < dim; ++k) f[k] -= mean_vec[k];
    f.erase(f.begin());  // drop c0 (energy)
  }
  return mfcc;
}

}  // namespace

WakeWordRecognizer::WakeWordRecognizer(RecognizerConfig config)
    : config_(config) {
  VIBGUARD_REQUIRE(config_.accept_threshold > 0.0,
                   "accept threshold must be positive");
}

void WakeWordRecognizer::enroll(const Signal& utterance) {
  VIBGUARD_REQUIRE(!utterance.empty(), "cannot enroll an empty utterance");
  auto mfcc = dsp::compute_mfcc(utterance, config_.mfcc);
  VIBGUARD_REQUIRE(!mfcc.empty(),
                   "enrollment utterance shorter than one MFCC frame");
  templates_.push_back(normalize_features(std::move(mfcc)));
}

MatchResult WakeWordRecognizer::match(const Signal& recording) const {
  VIBGUARD_REQUIRE(!templates_.empty(), "no enrolled wake-word templates");
  MatchResult result;
  result.best_distance = std::numeric_limits<double>::infinity();
  const auto features =
      normalize_features(dsp::compute_mfcc(recording, config_.mfcc));
  for (std::size_t i = 0; i < templates_.size(); ++i) {
    const auto r = dsp::dtw(features, templates_[i], config_.dtw_window);
    if (r.normalized < result.best_distance) {
      result.best_distance = r.normalized;
      result.best_template = i;
    }
  }
  result.matched = result.best_distance < config_.accept_threshold;
  return result;
}

double WakeWordRecognizer::distance(const Signal& recording) const {
  return match(recording).best_distance;
}

}  // namespace vibguard::speech
