// Template-based wake-word recognizer.
//
// A lightweight stand-in for the VA's embedded wake-word engine: MFCC
// sequences of enrolled utterances serve as templates, and an incoming
// recording matches when its DTW distance to any template falls below a
// threshold. This substrate backs the attack study at the recognition level
// (beyond the level-based trigger model in device::VaDevice) and
// demonstrates why heavily barrier-filtered audio is harder to recognize.
#pragma once

#include <string>
#include <vector>

#include "common/signal.hpp"
#include "dsp/mel.hpp"

namespace vibguard::speech {

struct RecognizerConfig {
  RecognizerConfig() { mfcc.high_hz = 7800.0; }  // full-band recognition
  dsp::MfccConfig mfcc;           ///< feature front end
  double accept_threshold = 5.0;  ///< normalized DTW distance for a match
  std::size_t dtw_window = 40;    ///< Sakoe–Chiba band (frames); 0 = off
};

/// Per-template match detail.
struct MatchResult {
  bool matched = false;
  double best_distance = 0.0;     ///< smallest normalized DTW distance
  std::size_t best_template = 0;  ///< index of the closest template
};

/// DTW/MFCC wake-word matcher with enrolled templates.
class WakeWordRecognizer {
 public:
  explicit WakeWordRecognizer(RecognizerConfig config = {});

  const RecognizerConfig& config() const { return config_; }

  /// Enrolls one reference utterance of the wake word.
  void enroll(const Signal& utterance);

  std::size_t num_templates() const { return templates_.size(); }

  /// Matches a recording against the enrolled templates. Requires at least
  /// one template.
  MatchResult match(const Signal& recording) const;

  /// Normalized DTW distance of `recording` to the closest template
  /// (convenience around match()).
  double distance(const Signal& recording) const;

 private:
  RecognizerConfig config_;
  std::vector<std::vector<std::vector<double>>> templates_;  // MFCC seqs
};

}  // namespace vibguard::speech
