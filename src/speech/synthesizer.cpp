#include "speech/synthesizer.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "common/db.hpp"
#include "common/error.hpp"
#include "dsp/filter.hpp"
#include "dsp/generate.hpp"

namespace vibguard::speech {
namespace {

/// Glottal source spectral envelope: flat to ~200 Hz, then -6 dB/octave
/// (glottal -12 dB/oct plus +6 dB/oct lip radiation).
double source_tilt(double f_hz) {
  constexpr double kCorner = 200.0;
  if (f_hz <= kCorner) return 1.0;
  return kCorner / f_hz;
}

/// Second-order resonance magnitude, unity at DC, peaking near F.
double resonance_gain(double f_hz, const Formant& fm) {
  const double f2 = f_hz * f_hz;
  const double cf2 = fm.frequency_hz * fm.frequency_hz;
  const double num = cf2;
  const double den = std::sqrt((cf2 - f2) * (cf2 - f2) +
                               fm.bandwidth_hz * fm.bandwidth_hz * f2);
  return num / std::max(den, 1e-9);
}

/// Smooth band-pass gain for frication noise (fourth-order edges).
double band_gain(double f_hz, const FricationBand& band) {
  const double lo = band.low_hz;
  const double hi = band.high_hz;
  const double g_lo = 1.0 / (1.0 + std::pow(lo / std::max(f_hz, 1.0), 4.0));
  const double g_hi = 1.0 / (1.0 + std::pow(f_hz / hi, 4.0));
  return g_lo * g_hi;
}

}  // namespace

Synthesizer::Synthesizer(SynthesizerConfig config) : config_(config) {
  VIBGUARD_REQUIRE(config_.sample_rate > 0.0, "sample rate must be positive");
  VIBGUARD_REQUIRE(config_.max_harmonic_hz < config_.sample_rate / 2.0,
                   "harmonic ceiling must be below Nyquist");
}

namespace {

double formant_set_gain(const std::vector<Formant>& formants,
                        double formant_scale, double f_hz) {
  double g = 1.0;
  for (const Formant& fm : formants) {
    Formant scaled = fm;
    scaled.frequency_hz *= formant_scale;
    g *= resonance_gain(f_hz, scaled);
  }
  return g;
}

}  // namespace

double Synthesizer::formant_gain(const Phoneme& phoneme,
                                 const SpeakerProfile& speaker, double f_hz) {
  return formant_set_gain(phoneme.formants, speaker.formant_scale, f_hz);
}

Signal Synthesizer::voiced_component(const Phoneme& phoneme,
                                     const SpeakerProfile& speaker,
                                     double duration_s, Rng& rng) const {
  const double fs = config_.sample_rate;
  const auto n = static_cast<std::size_t>(std::round(duration_s * fs));
  std::vector<double> out(n, 0.0);
  const double f0 = speaker.f0_hz * (1.0 + rng.gaussian(0.0, 0.03));
  const auto harmonics =
      static_cast<std::size_t>(config_.max_harmonic_hz / f0);

  // Slow F0 drift across the phoneme (declination + jitter).
  const double drift = rng.gaussian(0.0, speaker.f0_jitter * 2.0);

  // Diphthongs glide from `formants` to `end_formants`; static phonemes
  // keep a constant per-harmonic amplitude.
  const bool glide = !phoneme.end_formants.empty();
  for (std::size_t k = 1; k <= harmonics; ++k) {
    const double fk = f0 * static_cast<double>(k);
    const double shimmer = 1.0 + rng.gaussian(0.0, speaker.shimmer);
    const double amp_start =
        source_tilt(fk) * formant_gain(phoneme, speaker, fk) * shimmer;
    const double amp_end =
        glide ? source_tilt(fk) *
                    formant_set_gain(phoneme.end_formants,
                                     speaker.formant_scale, fk) *
                    shimmer
              : amp_start;
    if (std::abs(amp_start) < 1e-6 && std::abs(amp_end) < 1e-6) continue;
    const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double w = 2.0 * std::numbers::pi * fk / fs;
    const double dw = w * drift / static_cast<double>(std::max<std::size_t>(n, 1));
    const double amp_step =
        n > 1 ? (amp_end - amp_start) / static_cast<double>(n - 1) : 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i);
      out[i] += (amp_start + amp_step * t) *
                std::sin((w + dw * t * 0.5) * t + phase);
    }
  }
  Signal sig(std::move(out), fs);

  // Breathiness: aspiration noise shaped by the same formants.
  if (speaker.breathiness > 0.0 && !phoneme.formants.empty()) {
    Signal breath = dsp::white_noise(duration_s, fs, 1.0, rng);
    breath = dsp::apply_gain_curve(breath, [&](double f) {
      return source_tilt(f) * formant_gain(phoneme, speaker, f);
    });
    const double target = sig.rms() * speaker.breathiness;
    breath = breath.scaled_to_rms(target);
    if (breath.size() == sig.size()) sig.add(breath);
  }
  return sig;
}

Signal Synthesizer::noise_component(const Phoneme& phoneme,
                                    double duration_s,
                                    const SpeakerProfile& speaker,
                                    Rng& rng) const {
  const double fs = config_.sample_rate;
  if (!phoneme.frication.has_value()) {
    return Signal::zeros(
        static_cast<std::size_t>(std::round(duration_s * fs)), fs);
  }
  FricationBand band = *phoneme.frication;
  band.low_hz *= speaker.formant_scale;
  band.high_hz = std::min(band.high_hz * speaker.formant_scale,
                          config_.max_harmonic_hz);
  Signal noise = dsp::white_noise(duration_s, fs, 1.0, rng);
  return dsp::apply_gain_curve(
      noise, [&band](double f) { return band_gain(f, band); });
}

void Synthesizer::apply_edge_ramp(Signal& s) const {
  const auto ramp = std::min<std::size_t>(
      static_cast<std::size_t>(config_.edge_ramp_s * s.sample_rate()),
      s.size() / 2);
  for (std::size_t i = 0; i < ramp; ++i) {
    const double g = static_cast<double>(i) / static_cast<double>(ramp);
    s[i] *= g;
    s[s.size() - 1 - i] *= g;
  }
}

Signal Synthesizer::synthesize(const Phoneme& phoneme,
                               const SpeakerProfile& speaker, Rng& rng,
                               double duration_scale) const {
  VIBGUARD_REQUIRE(duration_scale > 0.0, "duration scale must be positive");
  const double fs = config_.sample_rate;
  const double dur =
      phoneme.duration_s * duration_scale * rng.uniform(0.85, 1.15);

  Signal out;
  switch (phoneme.cls) {
    case PhonemeClass::kPlosive:
    case PhonemeClass::kAffricate: {
      // Closure silence, then a noise burst; voiced stops add a low
      // "voice bar" during closure; affricates extend the frication.
      const double closure_s = 0.4 * dur;
      const double burst_s =
          phoneme.cls == PhonemeClass::kAffricate ? 0.6 * dur : 0.35 * dur;
      Signal closure = Signal::zeros(
          static_cast<std::size_t>(std::round(closure_s * fs)), fs);
      if (phoneme.voiced && !phoneme.formants.empty()) {
        // Voice bar: weak low-frequency periodicity during closure.
        Phoneme bar = phoneme;
        bar.formants = {{250.0, 80.0}};
        Signal vb = voiced_component(bar, speaker, closure_s, rng);
        vb = vb.scaled_to_rms(0.15);
        if (vb.size() == closure.size()) closure.add(vb);
      }
      Signal burst = noise_component(phoneme, burst_s, speaker, rng);
      apply_edge_ramp(burst);
      closure.append(burst);
      out = std::move(closure);
      break;
    }
    default: {
      Signal voiced;
      if (phoneme.voiced && !phoneme.formants.empty()) {
        voiced = voiced_component(phoneme, speaker, dur, rng);
      }
      Signal noise;
      if (phoneme.frication.has_value()) {
        noise = noise_component(phoneme, dur, speaker, rng);
      }
      if (!voiced.empty() && !noise.empty()) {
        // Voiced fricatives: frication rides on voicing at ~1:1 power.
        noise = noise.scaled_to_rms(voiced.rms());
        const std::size_t m = std::min(voiced.size(), noise.size());
        out = voiced.slice(0, m);
        Signal tail = noise.slice(0, m);
        out.add(tail);
      } else if (!voiced.empty()) {
        out = std::move(voiced);
      } else {
        out = std::move(noise);
      }
      break;
    }
  }

  // Encode the phoneme's relative intensity into the waveform amplitude
  // (ramp first so the final RMS is exact).
  apply_edge_ramp(out);
  const double target_rms =
      kReferenceRms * db_to_amplitude(phoneme.intensity_db);
  out = out.scaled_to_rms(target_rms);
  return out;
}

Signal Synthesizer::synthesize_sequence(std::span<const Phoneme> phonemes,
                                        const SpeakerProfile& speaker,
                                        Rng& rng) const {
  Signal out;
  const double fs = config_.sample_rate;
  for (const Phoneme& p : phonemes) {
    Signal seg = synthesize(p, speaker, rng);
    if (out.empty()) {
      out = std::move(seg);
      continue;
    }
    // Short cross-fade emulating coarticulation.
    const auto fade = std::min<std::size_t>(
        {static_cast<std::size_t>(0.005 * fs), out.size(), seg.size()});
    const std::size_t base = out.size() - fade;
    for (std::size_t i = 0; i < fade; ++i) {
      const double g = static_cast<double>(i) / static_cast<double>(fade);
      out[base + i] = out[base + i] * (1.0 - g) + seg[i] * g;
    }
    out.append(seg.slice(fade, seg.size()));
  }
  return out;
}

}  // namespace vibguard::speech
