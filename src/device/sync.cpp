#include "device/sync.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/correlate.hpp"

namespace vibguard::device {

SyncChannel::SyncChannel(SyncConfig config) : config_(config) {
  VIBGUARD_REQUIRE(config_.min_delay_s >= 0.0 &&
                       config_.max_delay_s >= config_.min_delay_s,
                   "delay bounds must satisfy 0 <= min <= max");
}

double SyncChannel::sample_delay(Rng& rng) const {
  const double d = rng.gaussian(config_.mean_delay_s, config_.delay_stddev_s);
  return std::clamp(d, config_.min_delay_s, config_.max_delay_s);
}

Signal SyncChannel::delayed_view(const Signal& sound, double delay_s) const {
  VIBGUARD_REQUIRE(delay_s >= 0.0, "delay must be non-negative");
  const auto drop = std::min<std::size_t>(
      static_cast<std::size_t>(std::round(delay_s * sound.sample_rate())),
      sound.size());
  return sound.slice(drop, sound.size());
}

double SyncChannel::estimate_delay_s(const Signal& va,
                                     const Signal& wearable) const {
  VIBGUARD_REQUIRE(va.sample_rate() == wearable.sample_rate(),
                   "synchronization requires matching sample rates");
  const auto max_lag = static_cast<std::size_t>(
      std::round(config_.max_search_s * va.sample_rate()));
  // The wearable recording starts `delay` seconds late, i.e. its content is
  // *advanced*: wearable(n) == va(n + delay). Estimate the lag of the VA
  // signal inside the wearable one.
  const auto lag =
      dsp::estimate_delay(wearable.samples(), va.samples(), max_lag);
  return static_cast<double>(lag) / va.sample_rate();
}

std::pair<Signal, Signal> SyncChannel::synchronize(
    const Signal& va, const Signal& wearable) const {
  const double delay_s = estimate_delay_s(va, wearable);
  const auto shift = static_cast<std::ptrdiff_t>(
      std::llround(delay_s * va.sample_rate()));
  // Positive shift: the VA recording contains `shift` samples the wearable
  // missed — drop them from the VA side.
  auto [wearable_aligned, va_aligned] =
      dsp::align_by_delay(wearable, va, shift);
  return {std::move(va_aligned), std::move(wearable_aligned)};
}

}  // namespace vibguard::device
