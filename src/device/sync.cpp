#include "device/sync.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/correlate.hpp"

namespace vibguard::device {

SyncChannel::SyncChannel(SyncConfig config) : config_(config) {
  VIBGUARD_REQUIRE(config_.min_delay_s >= 0.0 &&
                       config_.max_delay_s >= config_.min_delay_s,
                   "delay bounds must satisfy 0 <= min <= max");
}

double SyncChannel::sample_delay(Rng& rng) const {
  const double d = rng.gaussian(config_.mean_delay_s, config_.delay_stddev_s);
  return std::clamp(d, config_.min_delay_s, config_.max_delay_s);
}

Signal SyncChannel::delayed_view(const Signal& sound, double delay_s) const {
  VIBGUARD_REQUIRE(delay_s >= 0.0, "delay must be non-negative");
  const auto drop = std::min<std::size_t>(
      static_cast<std::size_t>(std::round(delay_s * sound.sample_rate())),
      sound.size());
  return sound.slice(drop, sound.size());
}

double SyncChannel::estimate_delay_s(const Signal& va,
                                     const Signal& wearable) const {
  dsp::CorrelationScratch scratch;
  return estimate_delay_s(va, wearable, scratch);
}

double SyncChannel::estimate_delay_s(
    const Signal& va, const Signal& wearable,
    dsp::CorrelationScratch& scratch) const {
  VIBGUARD_REQUIRE(va.sample_rate() == wearable.sample_rate(),
                   "synchronization requires matching sample rates");
  const auto max_lag = static_cast<std::size_t>(
      std::round(config_.max_search_s * va.sample_rate()));
  // The wearable recording starts `delay` seconds late, i.e. its content is
  // *advanced*: wearable(n) == va(n + delay). Estimate the lag of the VA
  // signal inside the wearable one.
  const auto lag =
      dsp::estimate_delay(wearable.samples(), va.samples(), max_lag, scratch);
  return static_cast<double>(lag) / va.sample_rate();
}

std::pair<Signal, Signal> SyncChannel::synchronize(
    const Signal& va, const Signal& wearable) const {
  const double delay_s = estimate_delay_s(va, wearable);
  const auto shift = static_cast<std::ptrdiff_t>(
      std::llround(delay_s * va.sample_rate()));
  // Positive shift: the VA recording contains `shift` samples the wearable
  // missed — drop them from the VA side.
  auto [wearable_aligned, va_aligned] =
      dsp::align_by_delay(wearable, va, shift);
  return {std::move(va_aligned), std::move(wearable_aligned)};
}

double SyncChannel::synchronize_into(const Signal& va, const Signal& wearable,
                                     Signal& va_out, Signal& wearable_out,
                                     dsp::CorrelationScratch& scratch) const {
  VIBGUARD_REQUIRE(&va_out != &va && &va_out != &wearable &&
                       &wearable_out != &va && &wearable_out != &wearable &&
                       &va_out != &wearable_out,
                   "synchronize_into outputs must not alias the inputs or "
                   "each other");
  const double delay_s = estimate_delay_s(va, wearable, scratch);
  const auto shift = static_cast<std::ptrdiff_t>(
      std::llround(delay_s * va.sample_rate()));
  // Same trimming as align_by_delay(wearable, va, shift): positive shift
  // drops the samples the wearable missed from the VA side.
  std::size_t va_begin = 0, wear_begin = 0;
  if (shift > 0) {
    va_begin = std::min<std::size_t>(static_cast<std::size_t>(shift),
                                     va.size());
  } else if (shift < 0) {
    wear_begin = std::min<std::size_t>(static_cast<std::size_t>(-shift),
                                       wearable.size());
  }
  const std::size_t n =
      std::min(va.size() - va_begin, wearable.size() - wear_begin);
  va_out.assign_slice(va, va_begin, va_begin + n);
  wearable_out.assign_slice(wearable, wear_begin, wear_begin + n);
  return delay_s;
}

}  // namespace vibguard::device
