// Cross-device synchronization (paper Sec. VI-A).
//
// The VA device notifies the wearable over the local WiFi network when a
// wake word is detected; network delay (~100 ms) offsets the wearable's
// recording start. The residual offset is estimated with cross-correlation
// (Eq. 5) and removed before comparison.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "common/signal.hpp"
#include "dsp/scratch.hpp"

namespace vibguard::device {

struct SyncConfig {
  double mean_delay_s = 0.100;   ///< typical local-WiFi notification delay
  double delay_stddev_s = 0.030;
  double min_delay_s = 0.020;
  double max_delay_s = 0.250;
  double max_search_s = 0.300;   ///< cross-correlation search window
};

/// Simulates the notification channel and implements delay compensation.
class SyncChannel {
 public:
  explicit SyncChannel(SyncConfig config = {});

  const SyncConfig& config() const { return config_; }

  /// Samples a network delay in seconds.
  double sample_delay(Rng& rng) const;

  /// Applies a recording-start delay to `sound`: drops the first
  /// `delay_s` seconds (the wearable missed them) — what the wearable
  /// actually captures.
  Signal delayed_view(const Signal& sound, double delay_s) const;

  /// Estimates the delay of `wearable` relative to `va` in seconds using
  /// cross-correlation (Eq. 5), searching up to config().max_search_s.
  double estimate_delay_s(const Signal& va, const Signal& wearable) const;

  /// Allocation-free overload reusing `scratch` correlation buffers.
  double estimate_delay_s(const Signal& va, const Signal& wearable,
                          dsp::CorrelationScratch& scratch) const;

  /// Full synchronization: estimates and removes the relative delay,
  /// returning equal-length aligned copies (va, wearable).
  std::pair<Signal, Signal> synchronize(const Signal& va,
                                        const Signal& wearable) const;

  /// Allocation-free synchronization: estimates the delay ONCE, writes the
  /// aligned equal-length copies into `va_out` / `wearable_out` (reusing
  /// capacity) and returns the estimated delay in seconds. The outputs must
  /// not alias the inputs. Bit-identical to estimate_delay_s followed by
  /// synchronize.
  double synchronize_into(const Signal& va, const Signal& wearable,
                          Signal& va_out, Signal& wearable_out,
                          dsp::CorrelationScratch& scratch) const;

 private:
  SyncConfig config_;
};

}  // namespace vibguard::device
