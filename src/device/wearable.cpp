#include "device/wearable.hpp"

namespace vibguard::device {

WearableConfig fossil_gen5() {
  WearableConfig cfg;
  cfg.name = "Fossil Gen 5";
  cfg.microphone = sensors::MicrophoneConfig{};
  cfg.speaker = sensors::wearable_speaker();
  cfg.accelerometer = sensors::AccelerometerConfig{};
  return cfg;
}

WearableConfig moto360() {
  WearableConfig cfg;
  cfg.name = "Moto 360 (2020)";
  cfg.microphone = sensors::MicrophoneConfig{};
  cfg.speaker = sensors::wearable_speaker();
  cfg.speaker.low_cut_hz = 420.0;  // smaller driver
  cfg.accelerometer = sensors::AccelerometerConfig{};
  cfg.accelerometer.base_noise_rms = 0.002;
  cfg.accelerometer.lf_noise_coeff = 0.40;
  return cfg;
}

Wearable::Wearable(WearableConfig config)
    : config_(std::move(config)),
      mic_(config_.microphone),
      speaker_(config_.speaker),
      accel_(config_.accelerometer) {}

Signal Wearable::record(const Signal& sound, Rng& rng) const {
  return mic_.record(sound, rng);
}

Signal Wearable::cross_domain_capture(const Signal& recording,
                                      Rng& rng) const {
  Signal out;
  dsp::Scratch scratch;
  cross_domain_capture_into(recording, rng, out, scratch);
  return out;
}

void Wearable::cross_domain_capture_into(const Signal& recording, Rng& rng,
                                         Signal& out,
                                         dsp::Scratch& scratch) const {
  speaker_.render_into(recording, scratch.rendered, scratch.cwork);
  accel_.capture_into(scratch.rendered, rng, out, scratch);
}

Signal Wearable::cross_domain_capture(const Signal& recording,
                                      sensors::Activity activity,
                                      Rng& rng) const {
  Signal out;
  dsp::Scratch scratch;
  cross_domain_capture_into(recording, activity, rng, out, scratch);
  return out;
}

void Wearable::cross_domain_capture_into(const Signal& recording,
                                         sensors::Activity activity, Rng& rng,
                                         Signal& out,
                                         dsp::Scratch& scratch) const {
  speaker_.render_into(recording, scratch.rendered, scratch.cwork);
  const Signal motion = sensors::body_motion(
      activity, recording.duration() + 0.1,
      accel_.config().sample_rate, rng);
  accel_.capture_with_motion_into(scratch.rendered, motion, rng, out,
                                  scratch);
}

}  // namespace vibguard::device
