#include "device/va_device.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/db.hpp"
#include "common/stats.hpp"
#include "dsp/spectral.hpp"

namespace vibguard::device {
namespace {

/// Estimates the command's level above the ambient noise floor: short-window
/// RMS percentiles separate speech-active windows (p90) from noise-only
/// windows (p10); the command power is their difference.
double command_spl_above_noise(const Signal& received) {
  const auto win = static_cast<std::size_t>(0.05 * received.sample_rate());
  if (win == 0 || received.size() < 2 * win) {
    return rms_to_spl(received.rms());
  }
  std::vector<double> window_rms;
  for (std::size_t i = 0; i + win <= received.size(); i += win) {
    window_rms.push_back(received.slice(i, i + win).rms());
  }
  const double speech = quantile(window_rms, 0.9);
  const double noise = quantile(window_rms, 0.1);
  const double signal_rms =
      std::sqrt(std::max(speech * speech - noise * noise, 0.0));
  return rms_to_spl(signal_rms);
}

}  // namespace

VaDeviceProfile google_home() {
  return VaDeviceProfile{"Google Home", "ok google",
                         /*trigger_threshold_spl=*/31.5,
                         /*trigger_slope_db=*/3.0,
                         /*requires_voice_match=*/false};
}

VaDeviceProfile alexa_echo() {
  return VaDeviceProfile{"Alexa Echo", "alexa",
                         /*trigger_threshold_spl=*/41.5,
                         /*trigger_slope_db=*/3.0,
                         /*requires_voice_match=*/false};
}

VaDeviceProfile macbook_pro() {
  return VaDeviceProfile{"MacBook Pro", "hey siri",
                         /*trigger_threshold_spl=*/41.5,
                         /*trigger_slope_db=*/3.0,
                         /*requires_voice_match=*/true};
}

VaDeviceProfile iphone() {
  return VaDeviceProfile{"iPhone", "hey siri",
                         /*trigger_threshold_spl=*/50.0,
                         /*trigger_slope_db=*/3.0,
                         /*requires_voice_match=*/true};
}

std::vector<VaDeviceProfile> all_va_devices() {
  return {google_home(), alexa_echo(), macbook_pro(), iphone()};
}

VaDevice::VaDevice(VaDeviceProfile profile, sensors::MicrophoneConfig mic)
    : profile_(std::move(profile)), mic_(mic) {}

Signal VaDevice::record(const Signal& sound, Rng& rng) const {
  return mic_.record(sound, rng);
}

double VaDevice::trigger_probability(const Signal& received, CommandKind kind,
                                     bool is_enrolled_voice) const {
  if (received.empty()) return 0.0;

  // Devices with embedded speaker verification reject voices that do not
  // match the enrolled user outright (paper: Siri "did not respond to the
  // voices they cannot recognize").
  if (profile_.requires_voice_match && !is_enrolled_voice &&
      (kind == CommandKind::kLiveVoice || kind == CommandKind::kSynthesized ||
       kind == CommandKind::kHiddenVoice)) {
    return 0.0;
  }

  const double received_spl = command_spl_above_noise(received);

  // Recognition penalty: wake-word engines need intelligible mid-frequency
  // structure. Heavily low-pass-filtered (barrier) sound with almost no
  // energy above 300 Hz is harder to recognize; synthesis adds its own
  // mismatch penalty.
  const double mid_fraction =
      dsp::band_energy_fraction(received, 300.0, 4000.0);
  double penalty_db = std::max(0.0, (0.25 - mid_fraction)) * 20.0;
  if (kind == CommandKind::kSynthesized) penalty_db += 3.0;
  if (kind == CommandKind::kHiddenVoice) penalty_db += 1.5;

  const double x =
      (received_spl - penalty_db - profile_.trigger_threshold_spl) /
      profile_.trigger_slope_db;
  return 1.0 / (1.0 + std::exp(-x));
}

bool VaDevice::triggers(const Signal& received, CommandKind kind,
                        bool is_enrolled_voice, Rng& rng) const {
  return rng.bernoulli(
      trigger_probability(received, kind, is_enrolled_voice));
}

}  // namespace vibguard::device
