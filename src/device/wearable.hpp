// Wearable device: microphone recording plus the cross-domain sensing
// pipeline (built-in speaker replay captured by the built-in accelerometer).
//
// Presets model the paper's two smartwatches (Fossil Gen 5, Moto 360 2020).
#pragma once

#include <string>

#include "common/rng.hpp"
#include "common/signal.hpp"
#include "sensors/accelerometer.hpp"
#include "sensors/body_motion.hpp"
#include "sensors/microphone.hpp"
#include "sensors/speaker.hpp"

namespace vibguard::device {

struct WearableConfig {
  std::string name;
  sensors::MicrophoneConfig microphone;
  sensors::SpeakerConfig speaker;
  sensors::AccelerometerConfig accelerometer;
};

/// Fossil Gen 5 smartwatch (paper's primary device).
WearableConfig fossil_gen5();

/// Moto 360 (2020) smartwatch: slightly noisier accelerometer, weaker
/// speaker low end.
WearableConfig moto360();

/// A wearable with a microphone, a small speaker and an accelerometer.
class Wearable {
 public:
  explicit Wearable(WearableConfig config = fossil_gen5());

  const WearableConfig& config() const { return config_; }

  /// Records ambient sound with the built-in microphone (16 kHz).
  Signal record(const Signal& sound, Rng& rng) const;

  /// Cross-domain sensing: replays `recording` through the built-in speaker
  /// and captures the induced vibration with the accelerometer (200 Hz).
  /// This is the audio→vibration conversion of Sec. IV-A.
  Signal cross_domain_capture(const Signal& recording, Rng& rng) const;

  /// Allocation-free overload: writes the vibration signal into `out`,
  /// routing the rendered replay and all DSP temporaries through `scratch`.
  /// Bit-identical to cross_domain_capture (same rng draw order).
  void cross_domain_capture_into(const Signal& recording, Rng& rng,
                                 Signal& out, dsp::Scratch& scratch) const;

  /// Cross-domain sensing while the wearer performs `activity`:
  /// activity-specific motion interference replaces the config's built-in
  /// stand-in (see sensors::body_motion).
  Signal cross_domain_capture(const Signal& recording,
                              sensors::Activity activity, Rng& rng) const;

  /// Activity overload writing into `out`. The generated motion signal
  /// itself still allocates (see sensors::body_motion); everything else
  /// reuses `scratch`.
  void cross_domain_capture_into(const Signal& recording,
                                 sensors::Activity activity, Rng& rng,
                                 Signal& out, dsp::Scratch& scratch) const;

  const sensors::Accelerometer& accelerometer() const { return accel_; }
  const sensors::Speaker& speaker() const { return speaker_; }
  const sensors::Microphone& microphone() const { return mic_; }

 private:
  WearableConfig config_;
  sensors::Microphone mic_;
  sensors::Speaker speaker_;
  sensors::Accelerometer accel_;
};

}  // namespace vibguard::device
