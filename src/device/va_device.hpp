// Voice-assistant device model: microphone front end plus a wake-word
// trigger model used by the Table I attack study.
//
// The trigger model abstracts the full wake-word engine into the two factors
// that decide thru-barrier triggering: the received level relative to the
// device's detection threshold (far-field microphone arrays have lower
// thresholds) and the spectral integrity of the command (recognition needs
// mid/high-frequency content; synthesis artifacts lower the match).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/signal.hpp"
#include "sensors/microphone.hpp"

namespace vibguard::device {

/// Kind of sound presented to the wake-word engine.
enum class CommandKind {
  kLiveVoice,    // a person speaking (random attack uses the attacker's own)
  kReplay,       // loudspeaker replay of a genuine recording
  kSynthesized,  // TTS/voice-conversion output
  kHiddenVoice,  // obfuscated machine-recognizable command
};

struct VaDeviceProfile {
  std::string name;            ///< e.g. "Google Home"
  std::string wake_word;
  double trigger_threshold_spl;///< received SPL for 50% trigger probability
  double trigger_slope_db;     ///< logistic slope of the psychometric curve
  bool requires_voice_match;   ///< Siri-style embedded speaker verification
};

/// The four devices of the paper's attack study (Table I).
VaDeviceProfile google_home();
VaDeviceProfile alexa_echo();
VaDeviceProfile macbook_pro();
VaDeviceProfile iphone();
std::vector<VaDeviceProfile> all_va_devices();

/// A VA device: records commands and decides wake-word triggering.
class VaDevice {
 public:
  explicit VaDevice(VaDeviceProfile profile = google_home(),
                    sensors::MicrophoneConfig mic = {});

  const VaDeviceProfile& profile() const { return profile_; }

  /// Records `sound` with the device microphone.
  Signal record(const Signal& sound, Rng& rng) const;

  /// Probability that `received` (an already-recorded command) triggers the
  /// wake-word engine. `kind` applies recognition penalties; devices with
  /// embedded voice matching return 0 for live/synthesized voices that are
  /// not the enrolled user (`is_enrolled_voice`).
  double trigger_probability(const Signal& received, CommandKind kind,
                             bool is_enrolled_voice) const;

  /// Samples a trigger outcome.
  bool triggers(const Signal& received, CommandKind kind,
                bool is_enrolled_voice, Rng& rng) const;

 private:
  VaDeviceProfile profile_;
  sensors::Microphone mic_;
};

}  // namespace vibguard::device
