#include "sensors/microphone.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/filter.hpp"
#include "dsp/resample.hpp"

namespace vibguard::sensors {

Microphone::Microphone(MicrophoneConfig config) : config_(config) {
  VIBGUARD_REQUIRE(config_.sample_rate > 0.0, "sample rate must be positive");
  VIBGUARD_REQUIRE(config_.high_cut_hz > config_.low_cut_hz,
                   "high cut must exceed low cut");
}

double Microphone::response(double f_hz) const {
  // Second-order high-pass knee + fourth-order low-pass knee.
  const double lo = config_.low_cut_hz;
  const double hi = config_.high_cut_hz;
  const double g_lo =
      1.0 / (1.0 + std::pow(lo / std::max(f_hz, 1e-3), 2.0));
  const double g_hi = 1.0 / (1.0 + std::pow(f_hz / hi, 4.0));
  return config_.sensitivity * g_lo * g_hi;
}

Signal Microphone::record(const Signal& sound, Rng& rng) const {
  Signal in = sound;
  if (in.sample_rate() != config_.sample_rate) {
    in = dsp::resample(in, config_.sample_rate);
  }
  Signal out =
      dsp::apply_gain_curve(in, [this](double f) { return response(f); });
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] += rng.gaussian(0.0, config_.noise_floor_rms);
    out[i] = std::clamp(out[i], -config_.clip_level, config_.clip_level);
  }
  return out;
}

}  // namespace vibguard::sensors
