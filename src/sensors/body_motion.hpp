// Body-motion interference profiles.
//
// A worn accelerometer sees the wearer's movement on top of any acoustic
// vibration. Daily activities concentrate in 0.3–3.5 Hz (paper ref. [22]);
// these generators produce activity-specific interference at the
// accelerometer rate so the defense's motion robustness can be quantified
// (the ≤5 Hz crop is designed to remove exactly this band).
#pragma once

#include <string>

#include "common/rng.hpp"
#include "common/signal.hpp"

namespace vibguard::sensors {

enum class Activity {
  kResting,  ///< hand still: slow drift only
  kTyping,   ///< intermittent small wrist impulses
  kWalking,  ///< strong ~2 Hz arm swing with harmonics
  kRunning,  ///< ~3 Hz swing, larger amplitude, more harmonics
};

/// Human-readable activity name.
std::string activity_name(Activity activity);

/// All modeled activities, mildest first.
std::vector<Activity> all_activities();

/// Generates `duration_s` of motion interference at `sample_rate`
/// (typically the accelerometer's 200 Hz). Amplitude scale 1.0 gives
/// activity-typical magnitudes in the normalized acceleration unit.
Signal body_motion(Activity activity, double duration_s, double sample_rate,
                   Rng& rng, double scale = 1.0);

}  // namespace vibguard::sensors
