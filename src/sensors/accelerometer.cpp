#include "sensors/accelerometer.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "dsp/filter.hpp"
#include "dsp/resample.hpp"
#include "dsp/spectral.hpp"

namespace vibguard::sensors {

Accelerometer::Accelerometer(AccelerometerConfig config) : config_(config) {
  VIBGUARD_REQUIRE(config_.sample_rate > 0.0, "sample rate must be positive");
  VIBGUARD_REQUIRE(config_.coupling_low_gain > 0.0 &&
                       config_.coupling_low_gain <= 1.0,
                   "coupling low gain must be in (0, 1]");
}

double Accelerometer::coupling_gain(double f_hz) const {
  // Smooth high-pass knee: coupling_low_gain below the knee rising to 1
  // above it.
  const double ratio = std::max(f_hz, 1e-3) / config_.coupling_knee_hz;
  const double hp =
      1.0 / (1.0 + std::pow(1.0 / ratio, config_.coupling_order));
  return config_.coupling_low_gain +
         (1.0 - config_.coupling_low_gain) * hp;
}

double Accelerometer::sensitivity_gain(double f_hz) const {
  // Strong DC–5 Hz response decaying exponentially (paper Fig. 7).
  return 1.0 +
         config_.lf_boost_gain * std::exp(-f_hz / config_.lf_boost_corner_hz);
}

double Accelerometer::lf_dominance(const Signal& audio) const {
  return dsp::band_energy_fraction(audio, 0.0,
                                   config_.lf_dominance_cutoff_hz);
}

Signal Accelerometer::capture_with_motion(const Signal& audio,
                                          const Signal& motion,
                                          Rng& rng) const {
  Signal out;
  dsp::Scratch scratch;
  capture_with_motion_into(audio, motion, rng, out, scratch);
  return out;
}

void Accelerometer::capture_with_motion_into(const Signal& audio,
                                             const Signal& motion, Rng& rng,
                                             Signal& out,
                                             dsp::Scratch& scratch) const {
  VIBGUARD_REQUIRE(motion.empty() ||
                       motion.sample_rate() == config_.sample_rate,
                   "motion signal must be at the accelerometer rate");
  AccelerometerConfig quiet = config_;
  quiet.body_motion_rms = 0.0;  // replace the stand-in with real motion
  Accelerometer(quiet).capture_into(audio, rng, out, scratch);
  for (std::size_t i = 0; i < out.size() && i < motion.size(); ++i) {
    out[i] += motion[i];
  }
}

Signal Accelerometer::capture(const Signal& audio, Rng& rng) const {
  Signal out;
  dsp::Scratch scratch;
  capture_into(audio, rng, out, scratch);
  return out;
}

void Accelerometer::capture_into(const Signal& audio, Rng& rng, Signal& out,
                                 dsp::Scratch& scratch) const {
  VIBGUARD_REQUIRE(audio.sample_rate() >= 2.0 * config_.sample_rate,
                   "audio rate must be at least twice the accelerometer rate");
  if (audio.empty()) {
    out.reset(config_.sample_rate);
    return;
  }

  // Effect 4's driver: measured before any filtering, on the excitation as
  // the amplifier sees it.
  const double dominance = dsp::band_energy_fraction(
      audio, 0.0, config_.lf_dominance_cutoff_hz, scratch.mag);
  const double excitation_rms = audio.rms();

  // Effect 1: conductive coupling.
  dsp::apply_gain_curve(
      audio, [this](double f) { return coupling_gain(f); }, scratch.coupled,
      scratch.cwork);

  // Effect 2: naive 200 Hz sampling — deliberately NO anti-alias filter
  // (unless the ablation switch is set).
  if (config_.anti_alias) {
    out = dsp::resample(scratch.coupled, config_.sample_rate);
  } else {
    dsp::decimate_alias_into(scratch.coupled, config_.sample_rate, out);
  }

  // Effect 3: low-frequency sensitivity artifact (applied in place).
  dsp::apply_gain_curve(
      out, [this](double f) { return sensitivity_gain(f); }, out,
      scratch.cwork);

  // Effect 4: amplifier noise grows with low-frequency dominance.
  const double sat = config_.lf_noise_saturation_rms;
  const double effective_rms =
      sat > 0.0 ? sat * excitation_rms / (sat + excitation_rms)
                : excitation_rms;
  const double noise_rms =
      config_.base_noise_rms +
      config_.lf_noise_coeff * dominance * dominance * effective_rms;
  for (double& s : out) s += rng.gaussian(0.0, noise_rms);

  // Body motion: slow oscillation within 0.3–3.5 Hz plus drift.
  if (config_.body_motion_rms > 0.0) {
    const double f_motion = rng.uniform(0.3, 3.5);
    const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double amp = config_.body_motion_rms * std::numbers::sqrt2;
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double t = static_cast<double>(i) / config_.sample_rate;
      out[i] += amp * std::sin(2.0 * std::numbers::pi * f_motion * t + phase);
    }
  }
}

}  // namespace vibguard::sensors
