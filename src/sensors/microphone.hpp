// Microphone model: band-limited response, self-noise, clipping.
#pragma once

#include "common/rng.hpp"
#include "common/signal.hpp"

namespace vibguard::sensors {

struct MicrophoneConfig {
  double sample_rate = 16000.0;  ///< paper records at 16 kHz
  double low_cut_hz = 50.0;      ///< electret low-frequency roll-off
  double high_cut_hz = 7800.0;   ///< anti-alias band edge
  double noise_floor_rms = 2e-3; ///< self-noise (≈37 dB SPL equivalent)
  double clip_level = 4.0;       ///< hard clipping ceiling
  double sensitivity = 1.0;      ///< overall gain
};

/// Converts an acoustic pressure signal into a digital recording.
class Microphone {
 public:
  explicit Microphone(MicrophoneConfig config = {});

  const MicrophoneConfig& config() const { return config_; }

  /// Records `sound` (resampling to the microphone rate if needed), applying
  /// the frequency response, self-noise and clipping.
  Signal record(const Signal& sound, Rng& rng) const;

  /// Amplitude response at frequency `f_hz`.
  double response(double f_hz) const;

 private:
  MicrophoneConfig config_;
};

}  // namespace vibguard::sensors
