// MEMS accelerometer model for cross-domain sensing.
//
// Captures the four physical effects the paper's detector relies on
// (Sec. IV-A, VI-B):
//
//  1. Conductive coupling — airborne/through-case sound below ~500 Hz
//     couples weakly into the proof mass, while content above ~1 kHz couples
//     strongly (the accelerometer "attenuates low-frequency audio signals
//     ... captures the high-frequency audio signals").
//  2. Aliasing — the 200 Hz ADC samples the wideband mechanical excitation
//     with no anti-alias filter, folding >100 Hz content into [0, 100] Hz.
//  3. Low-frequency sensitivity artifact — MEMS accelerometers are designed
//     for body motion and respond strongly at 0–5 Hz (paper Fig. 7); this
//     artifact is cropped downstream by the feature extractor.
//  4. Amplifier noise injection — the readout amplifier injects extra random
//     noise when the excitation is dominated by low-frequency components
//     (paper ref. [9]); this is what makes thru-barrier attack sounds
//     *noisy* in the vibration domain and therefore decorrelated.
#pragma once

#include "common/rng.hpp"
#include "common/signal.hpp"
#include "dsp/scratch.hpp"

namespace vibguard::sensors {

struct AccelerometerConfig {
  double sample_rate = 200.0;    ///< smartwatch accelerometer rate

  // Effect 1: conductive coupling high-pass knee.
  double coupling_knee_hz = 850.0;
  double coupling_low_gain = 0.05;  ///< residual coupling for f << knee
  double coupling_order = 6.0;      ///< knee steepness

  // Effect 3: 0–5 Hz sensitivity boost.
  double lf_boost_gain = 6.0;
  double lf_boost_corner_hz = 3.0;

  // Effect 4: amplifier noise. Noise stddev is
  //   base_noise_rms + lf_noise_coeff * lf_dominance^2 * sat(excitation_rms)
  // where lf_dominance is the fraction of excitation energy below
  // `lf_dominance_cutoff_hz` and sat(r) = S*r/(S+r) saturates at
  // S = lf_noise_saturation_rms (the readout circuit's noise injection
  // cannot grow without bound with drive level). The quadratic dominance
  // dependence reflects that noise injection is negligible for broadband
  // excitation and dominant for low-frequency-only excitation [9].
  double base_noise_rms = 0.0007;
  double lf_noise_coeff = 1.00;
  double lf_noise_saturation_rms = 0.035;
  double lf_dominance_cutoff_hz = 500.0;

  // Body-motion interference (0.3–3.5 Hz) while the wearable is worn.
  double body_motion_rms = 0.01;

  // Ablation switch: when true, an anti-alias filter precedes sampling, so
  // no high-frequency content folds into the 0–100 Hz band. Real MEMS
  // accelerometers do NOT have this filter — aliasing is the signal path
  // cross-domain sensing exploits — so this exists only to quantify the
  // contribution of aliasing (DESIGN.md ablation #5).
  bool anti_alias = false;
};

/// Converts audio played at the wearable into a 200 Hz vibration signal.
class Accelerometer {
 public:
  explicit Accelerometer(AccelerometerConfig config = {});

  const AccelerometerConfig& config() const { return config_; }

  /// Captures the vibration caused by `audio` (any sample rate >= 400 Hz).
  /// The returned signal is sampled at config().sample_rate.
  Signal capture(const Signal& audio, Rng& rng) const;

  /// Allocation-free overload of capture(): writes the vibration signal
  /// into `out` and routes every temporary through `scratch`, all reusing
  /// existing capacity. Draws from `rng` in the same order as capture(), so
  /// results are bit-identical.
  void capture_into(const Signal& audio, Rng& rng, Signal& out,
                    dsp::Scratch& scratch) const;

  /// Like capture(), but with an explicit body-motion interference signal
  /// (already at the accelerometer rate, e.g. from sensors::body_motion)
  /// superimposed instead of the config's built-in sinusoidal stand-in.
  Signal capture_with_motion(const Signal& audio, const Signal& motion,
                             Rng& rng) const;

  /// Allocation-free overload of capture_with_motion().
  void capture_with_motion_into(const Signal& audio, const Signal& motion,
                                Rng& rng, Signal& out,
                                dsp::Scratch& scratch) const;

  /// Coupling gain (effect 1) at audio frequency `f_hz`.
  double coupling_gain(double f_hz) const;

  /// Post-sampling sensitivity (effect 3) at vibration frequency `f_hz`.
  double sensitivity_gain(double f_hz) const;

  /// Fraction of `audio` energy below the low-frequency dominance cutoff —
  /// the quantity that drives amplifier-noise injection (effect 4).
  double lf_dominance(const Signal& audio) const;

 private:
  AccelerometerConfig config_;
};

}  // namespace vibguard::sensors
