#include "sensors/speaker.hpp"

#include <cmath>

#include "common/error.hpp"
#include "dsp/filter.hpp"

namespace vibguard::sensors {

SpeakerConfig playback_loudspeaker() {
  return SpeakerConfig{/*low_cut_hz=*/80.0, /*high_cut_hz=*/12000.0,
                       /*distortion=*/0.02};
}

SpeakerConfig wearable_speaker() {
  return SpeakerConfig{/*low_cut_hz=*/350.0, /*high_cut_hz=*/8000.0,
                       /*distortion=*/0.05};
}

Speaker::Speaker(SpeakerConfig config) : config_(config) {
  VIBGUARD_REQUIRE(config_.high_cut_hz > config_.low_cut_hz,
                   "high cut must exceed low cut");
  VIBGUARD_REQUIRE(config_.distortion >= 0.0,
                   "distortion must be non-negative");
}

double Speaker::response(double f_hz) const {
  const double g_lo = 1.0 / (1.0 + std::pow(config_.low_cut_hz /
                                                std::max(f_hz, 1e-3),
                                            2.0));
  const double g_hi = 1.0 / (1.0 + std::pow(f_hz / config_.high_cut_hz, 4.0));
  return g_lo * g_hi;
}

Signal Speaker::render(const Signal& in) const {
  Signal out;
  std::vector<std::complex<double>> work;
  render_into(in, out, work);
  return out;
}

void Speaker::render_into(const Signal& in, Signal& out,
                          std::vector<std::complex<double>>& work) const {
  dsp::apply_gain_curve(in, [this](double f) { return response(f); }, out,
                        work);
  if (config_.distortion > 0.0) {
    // Gentle odd-order nonlinearity (tanh soft clipper) around the signal's
    // own scale, so distortion is level-independent in this normalized
    // domain.
    const double peak = out.peak();
    if (peak > 0.0) {
      const double drive = 1.0 + config_.distortion * 4.0;
      for (double& s : out) {
        s = peak * std::tanh(drive * s / peak) / std::tanh(drive);
      }
    }
  }
}

}  // namespace vibguard::sensors
