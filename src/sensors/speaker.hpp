// Loudspeaker models: the adversary's playback device and the wearable's
// small built-in speaker used for cross-domain replay.
#pragma once

#include <complex>
#include <vector>

#include "common/signal.hpp"

namespace vibguard::sensors {

struct SpeakerConfig {
  double low_cut_hz;   ///< driver low-frequency limit
  double high_cut_hz;  ///< driver high-frequency limit
  double distortion;   ///< soft-clipping drive (0 = linear)
};

/// Full-range playback device (paper: Razer Sound Bar RC30).
SpeakerConfig playback_loudspeaker();

/// Tiny wearable driver (smartwatch speaker): weak below ~350 Hz.
SpeakerConfig wearable_speaker();

/// Renders a digital signal into acoustic output through the driver's
/// band-limited response and mild odd-order nonlinearity.
class Speaker {
 public:
  explicit Speaker(SpeakerConfig config);

  const SpeakerConfig& config() const { return config_; }

  Signal render(const Signal& in) const;

  /// Allocation-free overload: renders into `out` using `work` as the FFT
  /// buffer, both reusing existing capacity.
  void render_into(const Signal& in, Signal& out,
                   std::vector<std::complex<double>>& work) const;

  /// Amplitude response at frequency `f_hz`.
  double response(double f_hz) const;

 private:
  SpeakerConfig config_;
};

}  // namespace vibguard::sensors
