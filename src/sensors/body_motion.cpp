#include "sensors/body_motion.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace vibguard::sensors {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Quasi-periodic oscillation with per-cycle frequency/amplitude jitter
/// plus integer harmonics — the signature of rhythmic limb movement.
Signal rhythmic(double f_base, double amp, int harmonics, double duration_s,
                double fs, Rng& rng) {
  const auto n = static_cast<std::size_t>(std::round(duration_s * fs));
  std::vector<double> out(n, 0.0);
  double phase = rng.uniform(0.0, kTwoPi);
  double f = f_base * rng.uniform(0.9, 1.1);
  for (std::size_t i = 0; i < n; ++i) {
    // Slow random walk of the stride rate.
    f += rng.gaussian(0.0, 0.0005 * f_base);
    f = std::clamp(f, 0.9 * f_base, 1.1 * f_base);
    phase += kTwoPi * f / fs;
    double v = 0.0;
    for (int h = 1; h <= harmonics; ++h) {
      // Limb swing is close to sinusoidal; harmonics fall off fast.
      v += amp / static_cast<double>(h * h * h) *
           std::sin(static_cast<double>(h) * phase);
    }
    out[i] = v;
  }
  return Signal(std::move(out), fs);
}

}  // namespace

std::string activity_name(Activity activity) {
  switch (activity) {
    case Activity::kResting: return "resting";
    case Activity::kTyping: return "typing";
    case Activity::kWalking: return "walking";
    case Activity::kRunning: return "running";
  }
  throw InvalidArgument("unknown activity");
}

std::vector<Activity> all_activities() {
  return {Activity::kResting, Activity::kTyping, Activity::kWalking,
          Activity::kRunning};
}

Signal body_motion(Activity activity, double duration_s, double sample_rate,
                   Rng& rng, double scale) {
  VIBGUARD_REQUIRE(duration_s >= 0.0, "duration must be non-negative");
  VIBGUARD_REQUIRE(sample_rate > 0.0, "sample rate must be positive");
  VIBGUARD_REQUIRE(scale >= 0.0, "scale must be non-negative");
  const auto n = static_cast<std::size_t>(std::round(duration_s *
                                                     sample_rate));
  switch (activity) {
    case Activity::kResting: {
      // Slow drift: integrated low-pass noise around 0.3 Hz.
      std::vector<double> out(n, 0.0);
      double v = 0.0;
      double phase = rng.uniform(0.0, kTwoPi);
      for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / sample_rate;
        v = 0.999 * v + rng.gaussian(0.0, 0.0003);
        out[i] = scale * (0.004 * std::sin(kTwoPi * 0.3 * t + phase) + v);
      }
      return Signal(std::move(out), sample_rate);
    }
    case Activity::kTyping: {
      // Sparse small wrist bumps (keystrokes) at a few per second. Each
      // bump is a raised-cosine pulse: the wrist rocks smoothly rather
      // than receiving a hard impulse, keeping the interference within the
      // daily-activity band.
      std::vector<double> out(n, 0.0);
      const auto pulse_len =
          static_cast<std::size_t>(0.25 * sample_rate);  // 250 ms rock
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.bernoulli(4.0 / sample_rate)) {  // ~4 keystrokes/s
          const double a = scale * rng.uniform(0.005, 0.02);
          const std::size_t tail = std::min<std::size_t>(n - i, pulse_len);
          for (std::size_t j = 0; j < tail; ++j) {
            const double x = static_cast<double>(j) /
                             static_cast<double>(pulse_len);
            out[i + j] += a * 0.5 * (1.0 - std::cos(kTwoPi * x));
          }
        }
      }
      return Signal(std::move(out), sample_rate);
    }
    case Activity::kWalking:
      return rhythmic(2.0, scale * 0.05, 2, duration_s, sample_rate, rng);
    case Activity::kRunning:
      return rhythmic(2.9, scale * 0.12, 3, duration_s, sample_rate, rng);
  }
  throw InvalidArgument("unknown activity");
}

}  // namespace vibguard::sensors
