// Thru-barrier attack sound generators (threat model, paper Sec. II).
//
// Every generator returns the waveform the adversary's playback device (or
// own voice) emits just outside the barrier; the evaluation harness then
// passes it through Barrier + Room + device microphones.
//
//   Random attack     — the adversary speaks the command in their own voice.
//   Replay attack     — a loudspeaker replays a genuine recording of the
//                       victim.
//   Synthesis attack  — a few-shot TTS model speaks the command in an
//                       estimate of the victim's voice.
//   Hidden voice      — an obfuscated, noise-like signal spanning 0–6 kHz
//                       that machines recognize but humans do not (ref [3]).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/signal.hpp"
#include "device/va_device.hpp"
#include "sensors/speaker.hpp"
#include "speech/command.hpp"
#include "speech/speaker.hpp"

namespace vibguard::attacks {

enum class AttackType {
  kRandom,
  kReplay,
  kSynthesis,
  kHiddenVoice,
};

/// All four attack types, in paper order.
std::vector<AttackType> all_attack_types();

/// Human-readable attack name ("random", "replay", ...).
std::string attack_name(AttackType type);

/// CommandKind the VA's wake-word model perceives for this attack.
device::CommandKind command_kind(AttackType type);

/// One generated attack emission.
struct AttackSound {
  AttackType type;
  Signal audio;        ///< waveform at the adversary's playback device
  std::string command; ///< textual command being attacked
  /// Phoneme alignment of the underlying utterance (empty for hidden-voice
  /// attacks, which contain no phonemes).
  std::vector<speech::PhonemeSpan> alignment;
};

struct AttackGeneratorConfig {
  speech::SynthesizerConfig synth;
  sensors::SpeakerConfig playback = sensors::playback_loudspeaker();
  double hidden_voice_low_hz = 50.0;    ///< hidden commands span 0–6 kHz
  double hidden_voice_high_hz = 6000.0;
  double hidden_voice_syllable_hz = 5.0;  ///< speech-like envelope rate
};

/// Generates attack waveforms against a victim speaker.
class AttackGenerator {
 public:
  explicit AttackGenerator(AttackGeneratorConfig config = {});

  /// Random attack: `adversary` speaks `command` live (no playback chain).
  AttackSound random_attack(const speech::VoiceCommand& command,
                            const speech::SpeakerProfile& adversary,
                            Rng& rng) const;

  /// Replay attack: a genuine utterance of `victim` replayed through the
  /// playback loudspeaker.
  AttackSound replay_attack(const speech::VoiceCommand& command,
                            const speech::SpeakerProfile& victim,
                            Rng& rng) const;

  /// Voice-synthesis attack: the command spoken by a few-shot clone of
  /// `victim`, played through the loudspeaker.
  AttackSound synthesis_attack(const speech::VoiceCommand& command,
                               const speech::SpeakerProfile& victim,
                               Rng& rng) const;

  /// Hidden voice attack: obfuscated wideband command with a syllabic
  /// envelope, played through the loudspeaker. `duration_s` defaults to a
  /// typical command length.
  AttackSound hidden_voice_attack(const std::string& command_text,
                                  Rng& rng, double duration_s = 1.2) const;

  /// Dispatches on `type`; for kRandom, `adversary` is used, otherwise the
  /// victim profile.
  AttackSound generate(AttackType type, const speech::VoiceCommand& command,
                       const speech::SpeakerProfile& victim,
                       const speech::SpeakerProfile& adversary,
                       Rng& rng) const;

 private:
  AttackGeneratorConfig config_;
  speech::UtteranceBuilder builder_;
  sensors::Speaker playback_;
};

}  // namespace vibguard::attacks
