#include "attacks/attack.hpp"

#include <cmath>
#include <numbers>

#include "common/db.hpp"
#include "common/error.hpp"
#include "dsp/filter.hpp"
#include "dsp/generate.hpp"

namespace vibguard::attacks {

std::vector<AttackType> all_attack_types() {
  return {AttackType::kRandom, AttackType::kReplay, AttackType::kSynthesis,
          AttackType::kHiddenVoice};
}

std::string attack_name(AttackType type) {
  switch (type) {
    case AttackType::kRandom: return "random";
    case AttackType::kReplay: return "replay";
    case AttackType::kSynthesis: return "synthesis";
    case AttackType::kHiddenVoice: return "hidden_voice";
  }
  throw InvalidArgument("unknown attack type");
}

device::CommandKind command_kind(AttackType type) {
  switch (type) {
    case AttackType::kRandom: return device::CommandKind::kLiveVoice;
    case AttackType::kReplay: return device::CommandKind::kReplay;
    case AttackType::kSynthesis: return device::CommandKind::kSynthesized;
    case AttackType::kHiddenVoice: return device::CommandKind::kHiddenVoice;
  }
  throw InvalidArgument("unknown attack type");
}

AttackGenerator::AttackGenerator(AttackGeneratorConfig config)
    : config_(config), builder_(config.synth), playback_(config.playback) {}

AttackSound AttackGenerator::random_attack(
    const speech::VoiceCommand& command,
    const speech::SpeakerProfile& adversary, Rng& rng) const {
  auto utt = builder_.build(command, adversary, rng);
  return {AttackType::kRandom, std::move(utt.audio), command.text,
          std::move(utt.alignment)};
}

AttackSound AttackGenerator::replay_attack(
    const speech::VoiceCommand& command,
    const speech::SpeakerProfile& victim, Rng& rng) const {
  auto utt = builder_.build(command, victim, rng);
  // The adversary's copy of the victim's voice passed through a recording
  // chain once (mild noise) and is now replayed through a loudspeaker.
  Signal rec = std::move(utt.audio);
  for (double& s : rec) s += rng.gaussian(0.0, 5e-4);
  return {AttackType::kReplay, playback_.render(rec), command.text,
          std::move(utt.alignment)};
}

AttackSound AttackGenerator::synthesis_attack(
    const speech::VoiceCommand& command,
    const speech::SpeakerProfile& victim, Rng& rng) const {
  const auto clone = speech::clone_with_estimation_error(victim, rng);
  auto utt = builder_.build(command, clone, rng);
  // Neural vocoders over-smooth fine spectral structure; approximate with a
  // gentle high-frequency shelf.
  Signal smoothed = dsp::apply_gain_curve(utt.audio, [](double f) {
    return 1.0 / (1.0 + std::pow(f / 6500.0, 4.0));
  });
  return {AttackType::kSynthesis, playback_.render(smoothed), command.text,
          std::move(utt.alignment)};
}

AttackSound AttackGenerator::hidden_voice_attack(
    const std::string& command_text, Rng& rng, double duration_s) const {
  VIBGUARD_REQUIRE(duration_s > 0.0, "duration must be positive");
  const double fs = config_.synth.sample_rate;
  // Obfuscated commands keep the command's coarse spectro-temporal
  // structure but discard phonetic detail: noise carriers shaped by
  // formant-like resonances that change per syllable, band-limited to
  // 0–6 kHz, under a syllabic amplitude modulation. (Hidden voice commands
  // are derived from real speech by feature inversion, so broad spectral
  // peaks survive even though intelligibility does not.)
  const double lo = config_.hidden_voice_low_hz;
  const double hi = config_.hidden_voice_high_hz;
  const double syllable_s = 1.0 / config_.hidden_voice_syllable_hz;
  Signal shaped({}, fs);
  for (double t0 = 0.0; t0 < duration_s; t0 += syllable_s) {
    const double seg_s = std::min(syllable_s, duration_s - t0);
    Signal noise = dsp::white_noise(seg_s, fs, 1.0, rng);
    // Three random broad resonances standing in for inverted formants.
    double centers[3], widths[3];
    for (int k = 0; k < 3; ++k) {
      centers[k] = rng.uniform(300.0, 5200.0);
      widths[k] = rng.uniform(150.0, 400.0);
    }
    Signal seg = dsp::apply_gain_curve(
        noise, [lo, hi, &centers, &widths](double f) {
          const double g_lo =
              1.0 / (1.0 + std::pow(lo / std::max(f, 1e-3), 2.0));
          const double g_hi = 1.0 / (1.0 + std::pow(f / hi, 6.0));
          double peaks = 0.15;  // broadband floor
          for (int k = 0; k < 3; ++k) {
            const double d = (f - centers[k]) / widths[k];
            peaks += std::exp(-0.5 * d * d);
          }
          return g_lo * g_hi * peaks;
        });
    shaped.append(seg);
  }
  const double rate = config_.hidden_voice_syllable_hz;
  const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  for (std::size_t i = 0; i < shaped.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    const double env =
        0.55 + 0.45 * std::sin(2.0 * std::numbers::pi * rate * t + phase);
    shaped[i] *= env;
  }
  shaped = shaped.scaled_to_rms(kReferenceRms);
  return {AttackType::kHiddenVoice, playback_.render(shaped), command_text,
          {}};
}

AttackSound AttackGenerator::generate(AttackType type,
                                      const speech::VoiceCommand& command,
                                      const speech::SpeakerProfile& victim,
                                      const speech::SpeakerProfile& adversary,
                                      Rng& rng) const {
  switch (type) {
    case AttackType::kRandom: return random_attack(command, adversary, rng);
    case AttackType::kReplay: return replay_attack(command, victim, rng);
    case AttackType::kSynthesis:
      return synthesis_attack(command, victim, rng);
    case AttackType::kHiddenVoice:
      return hidden_voice_attack(command.text, rng);
  }
  throw InvalidArgument("unknown attack type");
}

}  // namespace vibguard::attacks
