// Barrier-effect-sensitive phoneme selection (paper Sec. V-A).
//
// Offline procedure: every common phoneme is played at attack-typical sound
// pressure levels, with and without a barrier in the path, and converted to
// the vibration domain by the wearable. Per phoneme and frequency bin the
// third-quartile (Q3) FFT magnitude across segments is computed, and two
// criteria are applied with threshold α (Eq. 2–3):
//
//   Criterion I  (thru-barrier):  max_f Q3_adv(p, f)  < α
//       — the phoneme must NOT trigger the accelerometer after a barrier.
//   Criterion II (direct):        min_f Q3_user(p, f) > α
//       — the phoneme MUST trigger the accelerometer without a barrier.
//
// The sensitive set is the intersection. The paper finds 31 of the 37
// common phonemes sensitive; loud low-frequency vowels (/aa/, /ao/) fail
// Criterion I and weak fricatives (/s/, /z/, /f/, /th/) fail Criterion II.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "acoustics/barrier.hpp"
#include "acoustics/room.hpp"
#include "common/rng.hpp"
#include "device/wearable.hpp"
#include "speech/corpus.hpp"

namespace vibguard::core {

struct SelectionConfig {
  /// Q3 FFT-magnitude threshold α. The paper uses 0.015 on its hardware's
  /// magnitude scale, empirically set from the ambient-noise FFT magnitude;
  /// 0.0052 is the equivalent operating point on this simulation's scale
  /// (see calibrate_threshold(), which re-derives it from the noise floor).
  double alpha = 0.0052;
  /// Attack-typical playback levels (dB SPL), paper uses 75 and 85.
  std::vector<double> spl_levels{75.0, 85.0};
  /// Evaluation band: bins at or below this frequency are ignored, mirroring
  /// the feature extractor's 0–5 Hz artifact crop.
  double min_eval_hz = 5.0;
  /// Moving-average smoothing width (bins) applied to Q3 spectra.
  std::size_t smooth_bins = 5;
  /// Distance from playback device to barrier/wearable in the offline rig
  /// (the paper places the loudspeaker 10 cm from the barrier).
  double playback_distance_m = 0.25;
};

/// Q3 spectra and criterion outcomes for one phoneme.
struct PhonemeSelectionInfo {
  std::string symbol;
  std::vector<double> q3_with_barrier;     ///< Q3_adv(p, f) per bin
  std::vector<double> q3_without_barrier;  ///< Q3_user(p, f) per bin
  double max_q3_with_barrier = 0.0;        ///< LHS of Criterion I
  double min_q3_without_barrier = 0.0;     ///< LHS of Criterion II
  bool passes_criterion1 = false;
  bool passes_criterion2 = false;
  bool selected = false;
};

/// Full result of the offline selection run.
struct SelectionResult {
  std::vector<PhonemeSelectionInfo> phonemes;  ///< one per common phoneme
  std::set<std::string> sensitive;             ///< the selected set
  double alpha = 0.0;                          ///< threshold used
  double bin_hz = 0.0;                         ///< FFT bin spacing

  bool is_sensitive(const std::string& symbol) const {
    return sensitive.count(symbol) > 0;
  }
  const PhonemeSelectionInfo& info(const std::string& symbol) const;
};

/// Runs phoneme selection for the 37 common phonemes against `barrier`
/// using `wearable` for cross-domain conversion.
class PhonemeSelector {
 public:
  PhonemeSelector(SelectionConfig config, device::Wearable wearable);

  /// Derives α from the accelerometer's noise floor: the Q3 FFT magnitude
  /// of silence-driven captures, scaled by `factor`.
  double calibrate_threshold(Rng& rng, double factor = 1.5) const;

  /// Executes the offline procedure on `corpus` phoneme segments.
  SelectionResult select(const speech::PhonemeCorpus& corpus,
                         const acoustics::Barrier& barrier, Rng& rng) const;

  const SelectionConfig& config() const { return config_; }

 private:
  /// Q3-per-bin FFT magnitude of the vibration captures of `segments`,
  /// optionally passing `barrier` first, at each configured SPL.
  std::vector<double> q3_spectrum(
      const std::vector<speech::PhonemeSegment>& segments,
      const acoustics::Barrier* barrier, Rng& rng) const;

  SelectionConfig config_;
  device::Wearable wearable_;
};

}  // namespace vibguard::core
