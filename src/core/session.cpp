#include "core/session.hpp"

#include <limits>

#include "common/error.hpp"

namespace vibguard::core {

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAccepted: return "accepted";
    case Verdict::kAttackDetected: return "attack_detected";
    case Verdict::kWearableAbsent: return "wearable_absent";
  }
  VIBGUARD_UNREACHABLE();
}

DefenseSession::DefenseSession(DefenseConfig config)
    : system_(std::move(config)) {}

SessionEvent DefenseSession::process(
    const std::string& label, const Signal& va_recording,
    const std::optional<Signal>& wearable_recording,
    const Segmenter* segmenter, Rng& rng) {
  SessionEvent event;
  event.index = log_.size();
  event.label = label;
  event.score = std::numeric_limits<double>::quiet_NaN();

  if (!wearable_recording.has_value()) {
    // Threat-model policy (Sec. II): "Our defense system rejects voice
    // commands at the VA if the wearable device is absent."
    event.verdict = Verdict::kWearableAbsent;
    ++stats_.wearable_absent;
  } else {
    const double score = system_.score(va_recording, *wearable_recording,
                                       segmenter, rng, workspace_, &trace_);
    pipeline_stats_.add(trace_);
    event.score = score;
    if (score < system_.config().detection_threshold) {
      event.verdict = Verdict::kAttackDetected;
      ++stats_.attacks_detected;
    } else {
      event.verdict = Verdict::kAccepted;
      ++stats_.accepted;
    }
  }
  ++stats_.processed;
  log_.push_back(event);
  return event;
}

std::vector<SessionEvent> DefenseSession::process_batch(
    std::span<const SessionRequest> requests) {
  // Score the wearable-present commands in one batch pass, then emit the
  // audit-log entries in request order.
  std::vector<ScoreRequest> to_score;
  to_score.reserve(requests.size());
  for (const SessionRequest& req : requests) {
    VIBGUARD_REQUIRE(req.va != nullptr, "session request needs a VA signal");
    if (req.wearable == nullptr) continue;
    to_score.push_back(
        ScoreRequest{req.va, req.wearable, req.segmenter, req.rng});
  }
  std::vector<double> scores(to_score.size());
  system_.score_batch(to_score, scores, workspace_, &trace_,
                      &pipeline_stats_);

  std::vector<SessionEvent> events;
  events.reserve(requests.size());
  std::size_t next_scored = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SessionRequest& req = requests[i];
    SessionEvent event;
    event.index = log_.size();
    event.label = req.label;
    event.score = std::numeric_limits<double>::quiet_NaN();
    if (req.wearable == nullptr) {
      event.verdict = Verdict::kWearableAbsent;
      ++stats_.wearable_absent;
    } else {
      event.score = scores[next_scored++];
      if (event.score < system_.config().detection_threshold) {
        event.verdict = Verdict::kAttackDetected;
        ++stats_.attacks_detected;
      } else {
        event.verdict = Verdict::kAccepted;
        ++stats_.accepted;
      }
    }
    ++stats_.processed;
    log_.push_back(event);
    events.push_back(event);
  }
  return events;
}

void DefenseSession::reset() {
  log_.clear();
  stats_ = SessionStats{};
  pipeline_stats_.clear();
}

}  // namespace vibguard::core
