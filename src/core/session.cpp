#include "core/session.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace vibguard::core {
namespace {

/// Retry forks are labeled from this base ("Retr") so they are decorrelated
/// from every other consumer of the command's rng stream.
constexpr std::uint64_t kRetryForkLabel = 0x52657472ULL;

/// Backoff delays draw from this fork ("Bkof") of the command's entry
/// stream: the schedule is deterministic per command yet never touches the
/// scoring streams, so enabling backoff cannot perturb scores.
constexpr std::uint64_t kBackoffForkLabel = 0x426b6f66ULL;

double nan_score() { return std::numeric_limits<double>::quiet_NaN(); }

/// Audit-log phrasing of an unscoreable outcome.
std::string outcome_note(const ScoreOutcome& outcome) {
  if (outcome.status == ScoreStatus::kError) {
    return std::string("error at stage ") + outcome.reason + ": " +
           outcome.error;
  }
  return outcome.reason;
}

}  // namespace

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAccepted: return "accepted";
    case Verdict::kAttackDetected: return "attack_detected";
    case Verdict::kWearableAbsent: return "wearable_absent";
    case Verdict::kIndeterminate: return "indeterminate";
    case Verdict::kRejectedOverload: return "rejected_overload";
  }
  VIBGUARD_UNREACHABLE();
}

DefenseSession::DefenseSession(DefenseConfig config, SessionPolicy policy,
                               const Clock* clock)
    : system_(std::move(config)),
      streaming_(system_),
      policy_(policy),
      clock_(clock) {
  if (policy_.breaker.has_value()) {
    DefenseConfig degraded = system_.config();
    degraded.mode = policy_.degraded_mode;
    degraded_system_.emplace(std::move(degraded));
    breaker_.emplace(*policy_.breaker, this->clock());
  }
}

ScoreOutcome DefenseSession::score_with_retries(
    SessionEvent& event, const DefenseSystem& system, const Signal& va,
    const Signal& wearable, const Segmenter* segmenter, const Rng& base,
    Rng& rng, const Deadline* deadline) {
  ScoreOutcome outcome = system.try_score(va, wearable, segmenter, rng,
                                          workspace_, &trace_, deadline);
  pipeline_stats_.add(trace_);
  // An unscoreable command models as a re-request: retry on a decorrelated
  // fork of the command's entry stream. Forking from `base` (not from the
  // advanced caller stream) keeps sequential and batch processing
  // bit-identical. A deadline-exceeded attempt is never retried — the
  // budget covers the whole command, and it is spent.
  std::optional<serving::BackoffSchedule> backoff;
  for (std::size_t attempt = 1;
       !outcome.ok() && outcome.status != ScoreStatus::kDeadlineExceeded &&
       attempt <= policy_.max_retries;
       ++attempt) {
    if (clock_ != nullptr && policy_.backoff.base_us > 0) {
      if (!backoff.has_value()) {
        backoff.emplace(policy_.backoff, base.fork(kBackoffForkLabel));
      }
      std::uint64_t delay = backoff->next();
      // Never wait past the command's budget: the retry after a clipped
      // wait observes the expiry at its first stage boundary and settles
      // on kDeadlineExceeded instead of blocking.
      if (deadline != nullptr) {
        delay = std::min(delay, deadline->remaining_us());
      }
      clock().sleep_us(delay);
      event.backoff_us += delay;
    }
    Rng retry_rng = base.fork(kRetryForkLabel + attempt);
    outcome = system.try_score(va, wearable, segmenter, retry_rng,
                               workspace_, &trace_, deadline);
    pipeline_stats_.add(trace_);
    ++stats_.retries;
    event.attempts = attempt + 1;
  }

  if (outcome.ok()) {
    event.score = outcome.score;
    if (outcome.score < system.config().detection_threshold) {
      event.verdict = Verdict::kAttackDetected;
      ++stats_.attacks_detected;
    } else {
      event.verdict = Verdict::kAccepted;
      ++stats_.accepted;
    }
  } else {
    event.verdict = Verdict::kIndeterminate;
    event.score = nan_score();
    event.note = outcome_note(outcome);
    ++stats_.indeterminate;
    if (outcome.status == ScoreStatus::kDeadlineExceeded) {
      ++stats_.deadline_exceeded;
    }
  }
  return outcome;
}

void DefenseSession::run_policy(SessionEvent& event, const Signal& va,
                                const Signal& wearable,
                                const Segmenter* segmenter, Rng& rng,
                                const std::uint64_t* deadline_at_us) {
  // Breaker routing: while the primary pipeline is unhealthy, score in the
  // cheaper degraded mode instead of failing the same way again. Half-open
  // probes come back as allow_primary() == true.
  const DefenseSystem* route = &system_;
  if (breaker_.has_value() && !breaker_->allow_primary()) {
    route = &*degraded_system_;
    event.degraded = true;
    ++stats_.degraded;
  }

  Deadline deadline_storage;
  const Deadline* deadline = nullptr;
  if (deadline_at_us != nullptr) {
    // Absolute expiry set by the caller (the budget started at submission,
    // not at dequeue): queue time already consumed part of it.
    deadline_storage = Deadline(clock(), *deadline_at_us);
    deadline = &deadline_storage;
  } else if (policy_.deadline_us.has_value()) {
    deadline_storage = Deadline::after(clock(), *policy_.deadline_us);
    deadline = &deadline_storage;
  }

  const Rng base = rng;  // entry-point stream, for retry/backoff forks
  const ScoreOutcome outcome = score_with_retries(
      event, *route, va, wearable, segmenter, base, rng, deadline);

  if (breaker_.has_value() && route == &system_) {
    // Only hard failures indict the pipeline: stage errors keyed by the
    // failing stage, deadline expiry under its own key. Quality-gated
    // (kIndeterminate) trials are the input's fault and stay neutral —
    // but a half-open probe that ends indeterminate must still release
    // the probe slot, which record_indeterminate does without closing.
    if (outcome.status == ScoreStatus::kError ||
        outcome.status == ScoreStatus::kDeadlineExceeded) {
      breaker_->record_failure(outcome.reason);
    } else if (outcome.status == ScoreStatus::kOk) {
      breaker_->record_success();
    } else {
      breaker_->record_indeterminate();
    }
  }
  if (event.degraded && event.note.empty()) {
    event.note = std::string("degraded: breaker open (") +
                 breaker_->tripped_stage() + ")";
  }
}

SessionEvent DefenseSession::process(
    const std::string& label, const Signal& va_recording,
    const std::optional<Signal>& wearable_recording,
    const Segmenter* segmenter, Rng& rng) {
  SessionEvent event;
  event.index = log_.size();
  event.label = label;
  event.score = nan_score();

  if (!wearable_recording.has_value()) {
    // Threat-model policy (Sec. II): "Our defense system rejects voice
    // commands at the VA if the wearable device is absent."
    event.verdict = Verdict::kWearableAbsent;
    ++stats_.wearable_absent;
  } else {
    run_policy(event, va_recording, *wearable_recording, segmenter, rng);
  }
  ++stats_.processed;
  log_.push_back(event);
  return event;
}

SessionEvent DefenseSession::process_streaming(
    const std::string& label, const Signal& va_recording,
    const std::optional<Signal>& wearable_recording, const Segmenter* segmenter,
    Rng& rng, const StreamingConfig& streaming, std::size_t frame_samples) {
  VIBGUARD_REQUIRE(frame_samples > 0, "frame size must be positive");
  SessionEvent event;
  event.index = log_.size();
  event.label = label;
  event.score = nan_score();

  if (!wearable_recording.has_value()) {
    event.verdict = Verdict::kWearableAbsent;
    ++stats_.wearable_absent;
    ++stats_.processed;
    log_.push_back(event);
    return event;
  }

  Deadline deadline_storage;
  const Deadline* deadline = nullptr;
  if (policy_.deadline_us.has_value()) {
    deadline_storage = Deadline::after(clock(), *policy_.deadline_us);
    deadline = &deadline_storage;
  }

  streaming_.set_config(streaming);
  streaming_.begin(va_recording.sample_rate(), segmenter, rng, &trace_,
                   deadline);
  const Signal& wear = *wearable_recording;
  const std::size_t total =
      std::max(va_recording.size(), wear.size());
  std::size_t offset = 0;
  while (offset < total) {
    const auto frame_of = [&](const Signal& s) {
      const std::size_t begin = std::min(offset, s.size());
      const std::size_t end = std::min(offset + frame_samples, s.size());
      return s.samples().subspan(begin, end - begin);
    };
    const StreamStatus st =
        streaming_.push(frame_of(va_recording), frame_of(wear));
    offset += frame_samples;
    // The stopping rule (or a mid-stream quality failure) rendered the
    // verdict: the remaining frames are never consumed.
    if (st.verdict != StreamVerdict::kPending) break;
  }
  const StreamOutcome out = streaming_.finalize();
  pipeline_stats_.add(trace_);

  event.early_exit = out.early_exit;
  event.stream_fraction =
      std::min(1.0, static_cast<double>(out.pushed_va_samples) /
                        static_cast<double>(va_recording.size()));
  if (out.early_exit) {
    // The anytime layer's calibrated posterior made the call; the
    // provisional score is on its own scale, so the threshold test does
    // not apply.
    ++stats_.early_exits;
    event.score = out.provisional_score;
    event.note = stream_verdict_name(out.verdict);
    if (out.verdict == StreamVerdict::kAttackEarly) {
      event.verdict = Verdict::kAttackDetected;
      ++stats_.attacks_detected;
    } else {
      event.verdict = Verdict::kAccepted;
      ++stats_.accepted;
    }
  } else if (out.outcome.ok()) {
    event.score = out.outcome.score;
    if (event.score < system_.config().detection_threshold) {
      event.verdict = Verdict::kAttackDetected;
      ++stats_.attacks_detected;
    } else {
      event.verdict = Verdict::kAccepted;
      ++stats_.accepted;
    }
  } else {
    event.verdict = Verdict::kIndeterminate;
    event.note = outcome_note(out.outcome);
    ++stats_.indeterminate;
    if (out.outcome.status == ScoreStatus::kDeadlineExceeded) {
      ++stats_.deadline_exceeded;
    }
  }
  ++stats_.processed;
  log_.push_back(event);
  return event;
}

std::vector<SessionEvent> DefenseSession::process_batch(
    std::span<const SessionRequest> requests) {
  // Deadlines, breaker routing and backoff are stateful per command, so
  // when any of them is active the batch must walk the commands in order
  // through the same policy path process() uses — equivalence with
  // sequential processing is the API contract.
  const bool serving_features =
      breaker_.has_value() || policy_.deadline_us.has_value() ||
      (clock_ != nullptr && policy_.backoff.base_us > 0);
  if (serving_features) {
    std::vector<SessionEvent> events;
    events.reserve(requests.size());
    for (const SessionRequest& req : requests) {
      VIBGUARD_REQUIRE(req.va != nullptr, "session request needs a VA signal");
      SessionEvent event;
      event.index = log_.size();
      event.label = req.label;
      event.score = nan_score();
      if (req.wearable == nullptr) {
        event.verdict = Verdict::kWearableAbsent;
        ++stats_.wearable_absent;
      } else {
        Rng rng = req.rng;
        run_policy(event, *req.va, *req.wearable, req.segmenter, rng);
      }
      ++stats_.processed;
      log_.push_back(event);
      events.push_back(event);
    }
    return events;
  }

  // Default-policy fast path: score the wearable-present commands in one
  // batch pass, then emit the audit-log entries in request order.
  std::vector<ScoreRequest> to_score;
  to_score.reserve(requests.size());
  for (const SessionRequest& req : requests) {
    VIBGUARD_REQUIRE(req.va != nullptr, "session request needs a VA signal");
    if (req.wearable == nullptr) continue;
    to_score.push_back(
        ScoreRequest{req.va, req.wearable, req.segmenter, req.rng});
  }
  std::vector<ScoreOutcome> outcomes(to_score.size());
  system_.score_batch(to_score, std::span<ScoreOutcome>(outcomes), workspace_,
                      &trace_, &pipeline_stats_);

  std::vector<SessionEvent> events;
  events.reserve(requests.size());
  std::size_t next_scored = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SessionRequest& req = requests[i];
    SessionEvent event;
    event.index = log_.size();
    event.label = req.label;
    event.score = nan_score();
    if (req.wearable == nullptr) {
      event.verdict = Verdict::kWearableAbsent;
      ++stats_.wearable_absent;
    } else {
      ScoreOutcome outcome = outcomes[next_scored++];
      // Retry unscoreable commands exactly as process() does: forks of the
      // request's own stream, so batch and sequential processing agree.
      for (std::size_t attempt = 1;
           !outcome.ok() && attempt <= policy_.max_retries; ++attempt) {
        Rng retry_rng = req.rng.fork(kRetryForkLabel + attempt);
        outcome = system_.try_score(*req.va, *req.wearable, req.segmenter,
                                    retry_rng, workspace_, &trace_);
        pipeline_stats_.add(trace_);
        ++stats_.retries;
        event.attempts = attempt + 1;
      }
      if (outcome.ok()) {
        event.score = outcome.score;
        if (event.score < system_.config().detection_threshold) {
          event.verdict = Verdict::kAttackDetected;
          ++stats_.attacks_detected;
        } else {
          event.verdict = Verdict::kAccepted;
          ++stats_.accepted;
        }
      } else {
        event.verdict = Verdict::kIndeterminate;
        event.note = outcome_note(outcome);
        ++stats_.indeterminate;
      }
    }
    ++stats_.processed;
    log_.push_back(event);
    events.push_back(event);
  }
  return events;
}

std::vector<SessionEvent> DefenseSession::process_admitted(
    std::span<const SessionRequest> requests,
    serving::AdmissionController& admission) {
  std::vector<SessionEvent> events;
  events.reserve(requests.size());
  PipelineStats::QueueStats& q = pipeline_stats_.queue;

  // Submission pass: a burst of `requests` arrives at once; whatever does
  // not fit the bounded queue is rejected immediately — explicit
  // backpressure, logged but never scored. With a deadline policy the
  // per-command budget starts here, at submission: time spent waiting in
  // the queue is part of the budget, not free.
  std::vector<std::uint64_t> deadline_at;
  if (policy_.deadline_us.has_value()) {
    deadline_at.resize(requests.size(), 0);
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    VIBGUARD_REQUIRE(requests[i].va != nullptr,
                     "session request needs a VA signal");
    if (admission.try_admit(i)) {
      ++q.admitted;
      if (!deadline_at.empty()) {
        deadline_at[i] = clock().now_us() + *policy_.deadline_us;
      }
      continue;
    }
    ++q.rejected;
    SessionEvent event;
    event.index = log_.size();
    event.label = requests[i].label;
    event.verdict = Verdict::kRejectedOverload;
    event.score = nan_score();
    event.note = "queue_full";
    ++stats_.rejected_overload;
    ++stats_.processed;
    log_.push_back(event);
    events.push_back(event);
  }

  // Drain pass: FIFO through the ordinary per-command policy path. A
  // command whose submission-time budget already expired while it sat in
  // the queue is dropped without scoring — counted as expired, never as a
  // service dequeue, so it cannot pollute the queue-time means — and its
  // drop is not a pipeline failure, so the breaker never hears about it.
  while (auto head = admission.peek()) {
    if (!deadline_at.empty() && clock().now_us() >= deadline_at[*head]) {
      const auto expired = admission.next_expired();
      const SessionRequest& req = requests[expired->request_id];
      SessionEvent event;
      event.index = log_.size();
      event.label = req.label;
      event.verdict = Verdict::kIndeterminate;
      event.score = nan_score();
      event.note = "deadline_expired_in_queue";
      event.queue_us = expired->queue_us;
      ++q.expired;
      ++stats_.indeterminate;
      ++stats_.deadline_exceeded;
      ++stats_.processed;
      log_.push_back(event);
      events.push_back(event);
      continue;
    }
    const auto admitted = admission.next();
    const SessionRequest& req = requests[admitted->request_id];
    SessionEvent event;
    event.index = log_.size();
    event.label = req.label;
    event.score = nan_score();
    event.queue_us = admitted->queue_us;
    ++q.dequeued;
    q.total_queue_us += admitted->queue_us;
    q.max_queue_us = std::max(q.max_queue_us, admitted->queue_us);
    if (req.wearable == nullptr) {
      event.verdict = Verdict::kWearableAbsent;
      ++stats_.wearable_absent;
    } else {
      Rng rng = req.rng;
      const std::uint64_t* at =
          deadline_at.empty() ? nullptr : &deadline_at[admitted->request_id];
      run_policy(event, *req.va, *req.wearable, req.segmenter, rng, at);
    }
    ++stats_.processed;
    log_.push_back(event);
    events.push_back(event);
  }
  return events;
}

void DefenseSession::reset() {
  log_.clear();
  stats_ = SessionStats{};
  pipeline_stats_.clear();
  if (breaker_.has_value()) {
    breaker_.emplace(*policy_.breaker, clock());
  }
}

}  // namespace vibguard::core
