#include "core/session.hpp"

#include <limits>

namespace vibguard::core {

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAccepted: return "accepted";
    case Verdict::kAttackDetected: return "attack_detected";
    case Verdict::kWearableAbsent: return "wearable_absent";
  }
  return "unknown";
}

DefenseSession::DefenseSession(DefenseConfig config)
    : system_(std::move(config)) {}

SessionEvent DefenseSession::process(
    const std::string& label, const Signal& va_recording,
    const std::optional<Signal>& wearable_recording,
    const Segmenter* segmenter, Rng& rng) {
  SessionEvent event;
  event.index = log_.size();
  event.label = label;
  event.score = std::numeric_limits<double>::quiet_NaN();

  if (!wearable_recording.has_value()) {
    // Threat-model policy (Sec. II): "Our defense system rejects voice
    // commands at the VA if the wearable device is absent."
    event.verdict = Verdict::kWearableAbsent;
    ++stats_.wearable_absent;
  } else {
    const auto result =
        system_.detect(va_recording, *wearable_recording, segmenter, rng);
    event.score = result.score;
    if (result.is_attack) {
      event.verdict = Verdict::kAttackDetected;
      ++stats_.attacks_detected;
    } else {
      event.verdict = Verdict::kAccepted;
      ++stats_.accepted;
    }
  }
  ++stats_.processed;
  log_.push_back(event);
  return event;
}

void DefenseSession::reset() {
  log_.clear();
  stats_ = SessionStats{};
}

}  // namespace vibguard::core
