#include "core/session.hpp"

#include <limits>

#include "common/error.hpp"

namespace vibguard::core {
namespace {

/// Retry forks are labeled from this base ("Retr") so they are decorrelated
/// from every other consumer of the command's rng stream.
constexpr std::uint64_t kRetryForkLabel = 0x52657472ULL;

double nan_score() { return std::numeric_limits<double>::quiet_NaN(); }

/// Audit-log phrasing of an unscoreable outcome.
std::string outcome_note(const ScoreOutcome& outcome) {
  if (outcome.status == ScoreStatus::kError) {
    return std::string("error at stage ") + outcome.reason + ": " +
           outcome.error;
  }
  return outcome.reason;
}

}  // namespace

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAccepted: return "accepted";
    case Verdict::kAttackDetected: return "attack_detected";
    case Verdict::kWearableAbsent: return "wearable_absent";
    case Verdict::kIndeterminate: return "indeterminate";
  }
  VIBGUARD_UNREACHABLE();
}

DefenseSession::DefenseSession(DefenseConfig config, SessionPolicy policy)
    : system_(std::move(config)), policy_(policy) {}

void DefenseSession::score_with_retries(SessionEvent& event, const Signal& va,
                                        const Signal& wearable,
                                        const Segmenter* segmenter,
                                        const Rng& base, Rng& rng) {
  ScoreOutcome outcome =
      system_.try_score(va, wearable, segmenter, rng, workspace_, &trace_);
  pipeline_stats_.add(trace_);
  // An unscoreable command models as a re-request: retry on a decorrelated
  // fork of the command's entry stream. Forking from `base` (not from the
  // advanced caller stream) keeps sequential and batch processing
  // bit-identical.
  for (std::size_t attempt = 1;
       !outcome.ok() && attempt <= policy_.max_retries; ++attempt) {
    Rng retry_rng = base.fork(kRetryForkLabel + attempt);
    outcome = system_.try_score(va, wearable, segmenter, retry_rng,
                                workspace_, &trace_);
    pipeline_stats_.add(trace_);
    ++stats_.retries;
    event.attempts = attempt + 1;
  }

  if (outcome.ok()) {
    event.score = outcome.score;
    if (outcome.score < system_.config().detection_threshold) {
      event.verdict = Verdict::kAttackDetected;
      ++stats_.attacks_detected;
    } else {
      event.verdict = Verdict::kAccepted;
      ++stats_.accepted;
    }
  } else {
    event.verdict = Verdict::kIndeterminate;
    event.score = nan_score();
    event.note = outcome_note(outcome);
    ++stats_.indeterminate;
  }
}

SessionEvent DefenseSession::process(
    const std::string& label, const Signal& va_recording,
    const std::optional<Signal>& wearable_recording,
    const Segmenter* segmenter, Rng& rng) {
  SessionEvent event;
  event.index = log_.size();
  event.label = label;
  event.score = nan_score();

  if (!wearable_recording.has_value()) {
    // Threat-model policy (Sec. II): "Our defense system rejects voice
    // commands at the VA if the wearable device is absent."
    event.verdict = Verdict::kWearableAbsent;
    ++stats_.wearable_absent;
  } else {
    const Rng base = rng;  // entry-point stream, for retry forks
    score_with_retries(event, va_recording, *wearable_recording, segmenter,
                       base, rng);
  }
  ++stats_.processed;
  log_.push_back(event);
  return event;
}

std::vector<SessionEvent> DefenseSession::process_batch(
    std::span<const SessionRequest> requests) {
  // Score the wearable-present commands in one batch pass, then emit the
  // audit-log entries in request order.
  std::vector<ScoreRequest> to_score;
  to_score.reserve(requests.size());
  for (const SessionRequest& req : requests) {
    VIBGUARD_REQUIRE(req.va != nullptr, "session request needs a VA signal");
    if (req.wearable == nullptr) continue;
    to_score.push_back(
        ScoreRequest{req.va, req.wearable, req.segmenter, req.rng});
  }
  std::vector<ScoreOutcome> outcomes(to_score.size());
  system_.score_batch(to_score, std::span<ScoreOutcome>(outcomes), workspace_,
                      &trace_, &pipeline_stats_);

  std::vector<SessionEvent> events;
  events.reserve(requests.size());
  std::size_t next_scored = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SessionRequest& req = requests[i];
    SessionEvent event;
    event.index = log_.size();
    event.label = req.label;
    event.score = nan_score();
    if (req.wearable == nullptr) {
      event.verdict = Verdict::kWearableAbsent;
      ++stats_.wearable_absent;
    } else {
      ScoreOutcome outcome = outcomes[next_scored++];
      // Retry unscoreable commands exactly as process() does: forks of the
      // request's own stream, so batch and sequential processing agree.
      for (std::size_t attempt = 1;
           !outcome.ok() && attempt <= policy_.max_retries; ++attempt) {
        Rng retry_rng = req.rng.fork(kRetryForkLabel + attempt);
        outcome = system_.try_score(*req.va, *req.wearable, req.segmenter,
                                    retry_rng, workspace_, &trace_);
        pipeline_stats_.add(trace_);
        ++stats_.retries;
        event.attempts = attempt + 1;
      }
      if (outcome.ok()) {
        event.score = outcome.score;
        if (event.score < system_.config().detection_threshold) {
          event.verdict = Verdict::kAttackDetected;
          ++stats_.attacks_detected;
        } else {
          event.verdict = Verdict::kAccepted;
          ++stats_.accepted;
        }
      } else {
        event.verdict = Verdict::kIndeterminate;
        event.note = outcome_note(outcome);
        ++stats_.indeterminate;
      }
    }
    ++stats_.processed;
    log_.push_back(event);
    events.push_back(event);
  }
  return events;
}

void DefenseSession::reset() {
  log_.clear();
  stats_ = SessionStats{};
  pipeline_stats_.clear();
}

}  // namespace vibguard::core
