// Streaming/anytime scoring: the incremental push counterpart of the batch
// stage graph (core/pipeline.hpp).
//
// The batch pipeline scores a trial only after the full command pair is
// captured. StreamingPipeline instead accepts interleaved audio frames of
// any size — down to single samples — and maintains, per push:
//
//   - a running signal-quality census (core/quality.hpp StreamingCensus)
//     that can fail the stream closed the moment a fatal, monotone defect
//     (non-finite samples) appears;
//   - a one-shot delay estimate over a warm-up prefix, standing in for the
//     batch pipeline's whole-signal synchronization;
//   - incremental sensitive-phoneme segmentation: in kFull mode each block
//     is intersected with the segmenter's ranges over the prefix seen so
//     far and only the covered content is appended to a concatenated
//     segment stream (the streaming counterpart of SegmentStage);
//   - the segment stream (or, in baseline modes, the aligned sample stream
//     itself) is consumed in fixed-size chunks by the cross-domain capture
//     and online vibration-feature accumulators
//     (core/vibration_features.hpp StreamingVibrationFeatures);
//   - an incremental 2-D Pearson over the paired feature frames
//     (dsp/stft.hpp StreamingPearson).
//
// After each push the pipeline exposes a *provisional* score — and, in
// kFull mode, a second *coarse* score: the correlation of the whole aligned
// prefix without phoneme selection. The segment score is the stronger
// discriminator but has to wait for sensitive phonemes to be spoken; the
// coarse score is available from the sync warm-up onward for every trial.
// Given calibrated ConfidenceModels the two are fused into one posterior
// attack probability (log-odds summed, each shrunk by its frame count). A
// stopping rule turns that posterior into an anytime verdict ("confident
// it's an attack after 40% of the frames"), letting DefenseSession and the
// serving layer exit early.
//
// The batch-compatibility invariant: every pushed sample is also buffered,
// and finalize() in the default kExactBatch mode re-scores the accumulated
// buffers through DefenseSystem::try_score with an untouched copy of the
// begin()-time rng. A stream run to completion is therefore bit-identical
// to batch scoring of the same signals for ANY push schedule — the
// provisional path influences only *when* a verdict can be rendered, never
// what the final score is. (Several batch steps are inherently global —
// full-signal sync, the zero-phase high-pass, normalize-by-max, phoneme
// segmentation — so the provisional score is an approximation on a slightly
// different scale; eval/confidence calibrates both scales onto posteriors.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/signal.hpp"
#include "core/pipeline.hpp"
#include "core/quality.hpp"
#include "core/trace.hpp"
#include "core/vibration_features.hpp"
#include "dsp/scratch.hpp"
#include "dsp/stft.hpp"

namespace vibguard::core {

/// Maps a (provisional or batch) correlation score to a calibrated
/// posterior probability that the trial is an attack. Implemented by
/// eval::ScoreCalibration; abstract here because core cannot depend on eval.
class ConfidenceModel {
 public:
  virtual ~ConfidenceModel() = default;

  /// P(attack | score), in [0, 1]. Must be monotone non-increasing in the
  /// score (higher correlation = more legitimate) so that thresholding the
  /// posterior is equivalent to thresholding the score.
  virtual double posterior_attack(double score) const = 0;
};

/// Early-exit policy evaluated at block boundaries.
///
/// The posterior it thresholds combines up to two calibrated evidence
/// channels (sensitive-segment + whole-prefix correlation, see
/// StreamStatus), each with its log-odds shrunk toward even by
/// frames / (frames + frames_prior) — a correlation estimated from few
/// feature frames carries proportionally less weight, so a confident
/// verdict early in the stream requires either strong agreement of both
/// channels or overwhelming evidence in one.
struct StoppingRule {
  bool enabled = false;

  /// Never exit before this much of the stream (seconds of VA audio) and
  /// this many feature frames (in the better-populated evidence channel)
  /// have been seen — guards against verdicts from the first block or two.
  double min_stream_s = 0.25;
  std::size_t min_frames = 8;

  /// Log-odds shrinkage prior (in frames). 0 disables shrinkage.
  double frames_prior = 4.0;

  /// Per-channel log-odds cap applied before fusion (0 disables). The
  /// calibrations are Gaussian fits whose tails are not trustworthy: one
  /// channel mapping a moderately unusual score to a posterior of 1-1e-6
  /// must not be able to overrule the other channel's disagreement. With
  /// the cap, a fused posterior beyond sigmoid(cap) requires *both*
  /// channels on the same side — corroboration, not tail extrapolation.
  double max_channel_logit = 3.0;

  /// Number of consecutive confident same-side block boundaries required
  /// before exiting. With the per-channel cap, a fused posterior beyond
  /// sigmoid(max_channel_logit) already demands both channels agree, so a
  /// single corroborated boundary is trustworthy and 1 is the default;
  /// raise it (with the confidence thresholds lowered) to trade verdict
  /// latency for robustness on denser block grids, where adjacent
  /// checkpoints share most of their evidence and err together.
  std::size_t consecutive = 1;

  /// Posterior thresholds: exit as attack when posterior_attack >= the
  /// first, as accept when (1 - posterior_attack) >= the second.
  double attack_confidence = 0.97;
  double accept_confidence = 0.97;

  /// Calibrated posterior source for the provisional (segment) score
  /// (borrowed; required when enabled).
  const ConfidenceModel* confidence = nullptr;

  /// Optional second calibration for the whole-prefix (coarse) score in
  /// kFull mode; when null that evidence channel is ignored.
  const ConfidenceModel* coarse_confidence = nullptr;
};

/// Where a stream currently stands (or ended).
enum class StreamVerdict {
  kPending,      ///< still accumulating; no early verdict yet
  kAttackEarly,  ///< stopping rule fired on the attack side
  kAcceptEarly,  ///< stopping rule fired on the accept side
  kFailedClosed, ///< mid-stream quality failure (non-finite samples)
  kCompleted,    ///< finalize() ran without an early exit
};

/// Human-readable verdict name.
const char* stream_verdict_name(StreamVerdict verdict);

/// Per-push status report.
struct StreamStatus {
  StreamVerdict verdict = StreamVerdict::kPending;

  /// Incremental correlation over everything paired so far;
  /// kIndeterminateScore until the first evaluation (or while degenerate).
  /// In kFull mode this is the sensitive-segment evidence (the streaming
  /// counterpart of the batch pipeline's phoneme-selected correlation).
  double provisional_score = kIndeterminateScore;

  /// kFull only: correlation of the whole aligned prefix (no phoneme
  /// selection — the vibration-baseline view). Less discriminative than
  /// the segment score but available from the sync warm-up onward for
  /// every trial, so it powers the earliest exits.
  double coarse_score = kIndeterminateScore;

  /// Combined posterior over the attached evidence channels (see
  /// StoppingRule); 0 until a model is attached and evidence evaluated.
  double posterior_attack = 0.0;

  std::size_t blocks = 0;         ///< aligned blocks consumed so far
  std::size_t paired_frames = 0;  ///< segment-evidence feature frames
  std::size_t coarse_frames = 0;  ///< whole-prefix evidence frames
  bool evaluated_this_push = false;
};

/// Result of finalize().
struct StreamOutcome {
  /// The authoritative structured outcome. For a completed kExactBatch
  /// stream this is bit-identical to DefenseSystem::try_score on the same
  /// signals; for an early exit it carries the provisional score.
  ScoreOutcome outcome;

  StreamVerdict verdict = StreamVerdict::kCompleted;
  bool early_exit = false;

  /// The provisional path's last scores/posterior (also meaningful for
  /// completed streams: it is what the anytime layer believed).
  double provisional_score = kIndeterminateScore;
  double coarse_score = kIndeterminateScore;
  double posterior_attack = 0.0;

  std::size_t pushed_va_samples = 0;
  std::size_t blocks = 0;
};

struct StreamingConfig {
  /// Aligned block size (samples at the VA rate) the provisional path
  /// consumes at a time. The block grid is fixed by absolute sample count,
  /// so provisional scores are invariant to the push schedule.
  std::size_t block_samples = 2048;

  /// Prefix length for the one-shot delay estimate. Must exceed the sync
  /// cross-correlation search window for the estimate to be meaningful.
  double sync_warmup_s = 0.32;

  /// STFT granularity of the provisional full-mode feature checkpoints.
  /// The batch extractor's 64/16 windows need 0.32 s of segment content
  /// per frame — too slow for anytime verdicts. The provisional path is
  /// calibrated on its own scale (eval/confidence), so it can trade
  /// frequency resolution for time resolution; the batch finalize pass is
  /// untouched. Other extractor knobs (high-pass, crop) follow the batch
  /// feature config.
  std::size_t provisional_window = 16;
  std::size_t provisional_hop = 4;

  StoppingRule stop;

  /// What finalize() does when no early exit happened:
  ///   kExactBatch  — re-score the accumulated buffers through the batch
  ///                  pipeline (bit-identical to DefenseSystem::score);
  ///   kProvisional — report the incremental score as-is (cheap; used by
  ///                  benchmarks and the stream-sweep's anytime arm).
  enum class Finalize { kExactBatch, kProvisional };
  Finalize finalize = Finalize::kExactBatch;
};

/// The incremental push pipeline. Reusable: begin() resets all carried
/// state while retaining heap capacity, so a warm pipeline streams
/// allocation-free at steady state. Not thread-safe; one instance per
/// scoring thread.
class StreamingPipeline {
 public:
  /// `system` is borrowed and must outlive the pipeline.
  explicit StreamingPipeline(const DefenseSystem& system,
                             StreamingConfig config = {});

  const StreamingConfig& config() const { return config_; }

  /// Replaces the streaming configuration. Must not be called between
  /// begin() and finalize(); takes effect at the next begin().
  void set_config(const StreamingConfig& config);

  /// Starts a new stream. Both channels must share `sample_rate` (the batch
  /// pipeline requires this too). `rng` is copied: one untouched copy seeds
  /// the exact finalize pass (bit-identity with batch), and per-block forks
  /// drive the provisional captures. `segmenter` is required for kFull mode
  /// finalize. `trace`, when non-null, accumulates one record per push plus
  /// the finalize pass's batch stage records; `deadline` is checked at push
  /// and block boundaries.
  void begin(double sample_rate, const Segmenter* segmenter, const Rng& rng,
             PipelineTrace* trace = nullptr,
             const Deadline* deadline = nullptr);

  /// Pushes one interleaved frame pair (either span may be empty — the
  /// channels need not advance in lockstep; when both are empty the call is
  /// a pure no-op that leaves census/trace/block state untouched). Returns
  /// the post-push status.
  StreamStatus push(std::span<const double> va,
                    std::span<const double> wearable);

  StreamStatus push_va(std::span<const double> va) { return push(va, {}); }
  StreamStatus push_wearable(std::span<const double> wearable) {
    return push({}, wearable);
  }

  /// Current status without pushing.
  StreamStatus status() const;

  /// Ends the stream and renders the final outcome (see StreamOutcome).
  /// Idempotent: calling it again before the next begin() returns the same
  /// cached outcome without re-running the batch rescore or re-appending
  /// trace records. The pipeline stays reusable: call begin() for the next
  /// stream.
  StreamOutcome finalize();

  std::size_t pushed_va_samples() const { return va_buf_.size(); }
  std::size_t pushed_wearable_samples() const { return wear_buf_.size(); }

 private:
  void process_blocks();
  void process_one_block(std::size_t block);
  void evaluate_rule();
  void record_push(const char* name, std::uint64_t start_ns,
                   std::uint64_t allocs_before, std::size_t samples_in,
                   std::size_t samples_out);

  const DefenseSystem* system_;
  StreamingConfig config_;

  // Per-stream state (reset by begin()).
  bool active_ = false;
  bool finalized_ = false;        ///< a finalize() outcome is cached
  StreamOutcome last_outcome_;    ///< returned by repeated finalize()
  const Segmenter* segmenter_ = nullptr;
  PipelineTrace* trace_ = nullptr;
  const Deadline* deadline_ = nullptr;
  Rng base_rng_;  ///< untouched begin()-time copy; forked per block
  double rate_ = 0.0;
  std::size_t min_gap_ = 1;
  std::uint64_t run_start_ns_ = 0;

  Signal va_buf_;    ///< everything pushed on the VA channel
  Signal wear_buf_;  ///< everything pushed on the wearable channel
  StreamingCensus census_va_;
  StreamingCensus census_wear_;

  // Provisional path.
  bool delay_estimated_ = false;
  double delay_s_ = 0.0;
  std::size_t va_begin_ = 0;    ///< alignment trim (front of VA)
  std::size_t wear_begin_ = 0;  ///< alignment trim (front of wearable)
  std::size_t blocks_done_ = 0;
  StreamingVibrationFeatures feats_va_;
  StreamingVibrationFeatures feats_wear_;
  VibrationFeatureExtractor prov_extractor_;  ///< checkpoint features
  dsp::StreamingStft audio_va_;    ///< audio-baseline feature path
  dsp::StreamingStft audio_wear_;
  dsp::StreamingPearson pearson_;
  std::size_t paired_frames_ = 0;
  std::size_t coarse_frames_ = 0;
  StreamVerdict verdict_ = StreamVerdict::kPending;
  double provisional_ = kIndeterminateScore;
  double coarse_ = kIndeterminateScore;
  double posterior_ = 0.0;
  int streak_side_ = 0;        ///< last confident side: +1 attack, -1 accept
  std::size_t streak_len_ = 0; ///< consecutive boundaries on streak_side_
  bool evaluated_this_push_ = false;
  bool feats_started_ = false;

  // Reusable scratch (capacity retained across streams).
  Signal prefix_va_;
  Signal prefix_wear_;
  Signal block_va_;
  Signal block_wear_;
  Signal vib_block_;
  std::vector<SampleRange> ranges_;  ///< per-block segmentation query
  Signal seg_va_;       ///< concatenated capture-ready content (VA)
  Signal seg_wear_;     ///< concatenated capture-ready content (wearable)
  std::size_t seg_captured_ = 0;  ///< samples of seg_*_ consumed by capture
  std::size_t seg_chunks_ = 0;    ///< capture chunks consumed (fork labels)
  dsp::Scratch scratch_;
  Workspace workspace_;           ///< finalize batch pass storage
  PipelineTrace finalize_trace_;  ///< finalize batch pass records
};

}  // namespace vibguard::core
