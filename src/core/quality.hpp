// Signal-quality assessment and gating for the defense pipeline.
//
// Real captures arrive degraded: clipped VA microphones, dropped
// accelerometer samples, stuck sensors, DC-offset drift, truncated or
// NaN/Inf-contaminated recordings. This module measures those conditions on
// the raw input pair before any expensive processing, producing a
// structured QualityReport, and — depending on the configured gate — halts
// the pipeline with an indeterminate outcome instead of scoring garbage.
//
// The assessment is deliberately deterministic, allocation-free and
// mutation-free: it reads the inputs, draws no randomness, and writes only
// the report, so enabling it never perturbs the bit-identical scores of
// healthy trials.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/signal.hpp"

namespace vibguard::core {

/// Bit flags for the individual quality problems a channel or a pair can
/// exhibit. A QualityReport carries the union of the flags raised.
enum QualityIssue : std::uint32_t {
  kIssueNonFinite = 1u << 0,  ///< NaN/Inf samples present
  kIssueClipping = 1u << 1,   ///< too many samples at the saturation rails
  kIssueGaps = 1u << 2,       ///< too much of the capture is zero-run gaps
  kIssueDcOffset = 1u << 3,   ///< mean dominates the signal energy
  kIssueLowSignal = 1u << 4,  ///< RMS below the noise floor (dead channel)
  kIssueTooShort = 1u << 5,   ///< capture shorter than the minimum duration
  kIssueStuck = 1u << 6,      ///< longest constant run suggests stuck sensor
  kIssueDesync = 1u << 7,     ///< estimated delay pinned at the search edge
};

/// "clipping+gaps" style summary of an issue mask ("none" when 0).
std::string quality_issue_names(std::uint32_t issues);

/// Per-channel quality measurements.
struct ChannelQuality {
  std::size_t samples = 0;
  double duration_s = 0.0;
  double rms = 0.0;          ///< over the finite samples
  double peak = 0.0;         ///< over the finite samples
  double dc_offset = 0.0;    ///< mean of the finite samples
  double clip_ratio = 0.0;   ///< fraction of samples at >= clip level
  double gap_ratio = 0.0;    ///< fraction of samples inside long zero runs
  double longest_gap_s = 0.0;
  double stuck_ratio = 0.0;  ///< longest constant (nonzero) run / samples
  std::size_t non_finite = 0;
  std::uint32_t issues = 0;  ///< QualityIssue flags raised on this channel
};

/// Quality gate and detection thresholds.
struct QualityConfig {
  /// How the assessment affects pipeline execution.
  ///   kOff        — measure and report only; never halt.
  ///   kPermissive — halt only on conditions that make any score
  ///                 meaningless (non-finite samples, dead channel,
  ///                 too-short capture); flag the rest. The default: it
  ///                 keeps every trial a clean pipeline can score.
  ///   kStrict     — halt on every raised issue (high-assurance
  ///                 deployments that prefer re-requesting the command).
  enum class Gate { kOff, kPermissive, kStrict };

  Gate gate = Gate::kPermissive;

  /// Minimum duration (seconds) of each capture, and of the synchronized
  /// overlap, for the trial to be scoreable at all.
  double min_duration_s = 0.05;

  /// A sample counts as clipped when |x| >= clip_level_fraction * peak.
  double clip_level_fraction = 0.985;
  double max_clip_ratio = 0.20;

  /// A zero run counts as a gap when it lasts at least min_gap_s.
  double min_gap_s = 0.005;
  double max_gap_ratio = 0.30;

  /// DC flag when |mean| > max_dc_fraction * rms.
  double max_dc_fraction = 0.5;

  /// Dead-channel floor (captures are unit-scale doubles).
  double min_rms = 1e-7;

  /// Stuck-sensor flag when the longest constant nonzero run exceeds this
  /// fraction of the capture.
  double max_stuck_ratio = 0.25;
};

/// Structured result of assessing one (VA, wearable) recording pair.
struct QualityReport {
  ChannelQuality va;
  ChannelQuality wearable;

  std::uint32_t issues = 0;  ///< union of all raised flags
  std::uint32_t fatal = 0;   ///< issues the gate treats as unscoreable
  bool scoreable = true;     ///< fatal == 0

  /// Static description of the dominant fatal issue ("ok" when scoreable).
  const char* reason = "ok";

  /// Clears the report for the next run (no deallocation).
  void clear();

  /// One-line human-readable summary.
  std::string summary() const;
};

/// Carried state of the per-channel quality census, for push pipelines.
///
/// The batch assess_channel walks a signal once, strictly left to right;
/// StreamingCensus is that same walk with its loop state lifted out, so
/// feeding a signal in chunks of any size — down to single samples —
/// accumulates bit-identical state to one whole-signal pass (assess_channel
/// itself is implemented on top of it). The peak-relative clipping census
/// needs the final peak and therefore lives in finalize(), which re-reads
/// the buffered signal the streaming caller already holds.
struct StreamingCensus {
  // Moments over the finite samples.
  double sum = 0.0;
  double sum_sq = 0.0;
  double peak = 0.0;
  std::size_t finite_count = 0;
  std::size_t non_finite = 0;
  std::size_t total = 0;

  // Zero-run (gap) census.
  std::size_t zero_run = 0;
  std::size_t gap_samples = 0;
  std::size_t longest_gap = 0;

  // Constant-run (stuck sensor) census.
  std::size_t const_run = 1;
  std::size_t longest_const = 0;
  double prev = 0.0;
  bool have_prev = false;

  void reset() { *this = StreamingCensus{}; }

  /// Folds `samples` into the census. `min_gap_samples` is the zero-run
  /// length that counts as a gap (from QualityConfig::min_gap_s at the
  /// channel's sample rate); it must stay constant across a stream.
  void update(std::span<const double> samples, std::size_t min_gap_samples);

  /// Closes the trailing runs and applies the thresholds, producing the
  /// same ChannelQuality a batch assess_channel of the whole signal would.
  /// `signal` must be the concatenation of everything update() saw (the
  /// clipping census needs a second pass against the final peak); const —
  /// the census itself stays usable for further update() calls.
  ChannelQuality finalize(const Signal& signal,
                          const QualityConfig& cfg) const;
};

/// The zero-run length counting as a gap at `sample_rate` (shared by the
/// batch and streaming census paths).
std::size_t min_gap_samples(const QualityConfig& cfg, double sample_rate);

/// Measures one channel against `cfg`, raising per-channel issue flags.
/// Pure: no allocation, no mutation of `signal`, no randomness.
ChannelQuality assess_channel(const Signal& signal, const QualityConfig& cfg);

/// Assesses both channels and applies the gate, filling `report` in place.
void assess_pair(const Signal& va, const Signal& wearable,
                 const QualityConfig& cfg, QualityReport& report);

/// The subset of issue flags the configured gate treats as fatal.
std::uint32_t fatal_issue_mask(QualityConfig::Gate gate);

/// Re-evaluates `report.fatal` / `scoreable` / `reason` after new flags were
/// added to `report.issues` (used by later stages that raise e.g. kDesync).
void apply_gate(const QualityConfig& cfg, QualityReport& report);

}  // namespace vibguard::core
