#include "core/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace vibguard::core {

void PipelineTrace::begin_run() {
  estimated_delay_s = 0.0;
  num_ranges = 0;
  segment_seconds = 0.0;
  quality.clear();
  stages.clear();
}

void PipelineTrace::append(const PipelineTrace& other) {
  stages.insert(stages.end(), other.stages.begin(), other.stages.end());
}

void PipelineStats::add(const PipelineTrace& trace) {
  ++commands;
  for (const StageTrace& st : trace.stages) {
    auto it = std::find_if(
        stages.begin(), stages.end(),
        [&st](const StageStats& s) { return s.name == st.name; });
    if (it == stages.end()) {
      stages.emplace_back();
      it = stages.end() - 1;
      it->name = st.name;
    }
    // `commands` was already incremented, so it is a nonzero id for this
    // trial; a stage appearing many times in one trace (streaming pushes)
    // still counts one trial.
    if (it->last_seen != commands) {
      it->last_seen = commands;
      ++it->trials;
    }
    ++it->calls;
    it->total_wall_us += st.wall_us;
    it->max_wall_us = std::max(it->max_wall_us, st.wall_us);
    it->total_allocations += st.allocations;
  }
}

void PipelineStats::merge(const PipelineStats& other) {
  commands += other.commands;
  for (const StageStats& os : other.stages) {
    auto it = std::find_if(
        stages.begin(), stages.end(),
        [&os](const StageStats& s) { return s.name == os.name; });
    if (it == stages.end()) {
      stages.push_back(os);
      stages.back().last_seen = 0;  // trial ids don't transfer across stats
      continue;
    }
    it->calls += os.calls;
    it->trials += os.trials;
    it->total_wall_us += os.total_wall_us;
    it->max_wall_us = std::max(it->max_wall_us, os.max_wall_us);
    it->total_allocations += os.total_allocations;
    it->last_seen = 0;
  }
  queue.admitted += other.queue.admitted;
  queue.rejected += other.queue.rejected;
  queue.dequeued += other.queue.dequeued;
  queue.expired += other.queue.expired;
  queue.total_queue_us += other.queue.total_queue_us;
  queue.max_queue_us = std::max(queue.max_queue_us, other.queue.max_queue_us);
}

void PipelineStats::clear() {
  commands = 0;
  stages.clear();
  queue = QueueStats{};
}

std::string PipelineStats::summary() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "pipeline stats over %llu command(s)\n",
                static_cast<unsigned long long>(commands));
  out += line;
  std::snprintf(line, sizeof(line),
                "  %-14s %8s %8s %9s %10s %10s %10s %8s\n", "stage", "calls",
                "trials", "per-trial", "push us", "trial us", "max us",
                "allocs");
  out += line;
  for (const StageStats& s : stages) {
    std::snprintf(line, sizeof(line),
                  "  %-14s %8llu %8llu %9.1f %10.1f %10.1f %10llu %8llu\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.calls),
                  static_cast<unsigned long long>(s.trials),
                  s.mean_calls_per_trial(), s.mean_wall_us(),
                  s.mean_wall_per_trial_us(),
                  static_cast<unsigned long long>(s.max_wall_us),
                  static_cast<unsigned long long>(s.total_allocations));
    out += line;
  }
  if (queue.admitted + queue.rejected > 0) {
    std::snprintf(line, sizeof(line),
                  "  queue: %llu admitted, %llu rejected, %llu expired, "
                  "mean wait %.1f us, max wait %llu us\n",
                  static_cast<unsigned long long>(queue.admitted),
                  static_cast<unsigned long long>(queue.rejected),
                  static_cast<unsigned long long>(queue.expired),
                  queue.mean_queue_us(),
                  static_cast<unsigned long long>(queue.max_queue_us));
    out += line;
  }
  return out;
}

}  // namespace vibguard::core
