#include "core/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "common/db.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/stft.hpp"

namespace vibguard::core {

WearIdVerifier::WearIdVerifier() : WearIdVerifier(Config{}) {}

WearIdVerifier::WearIdVerifier(Config config)
    : config_(config),
      wearable_(config.wearable),
      extractor_(config.features) {}

double WearIdVerifier::score(const Signal& sound_at_wearable,
                             const Signal& va_recording, Rng& rng) const {
  // Direct capture: the airborne sound field shakes the watch without any
  // replay amplification — this is what limits WearID to close range.
  const Signal direct_vib =
      wearable_.accelerometer().capture(sound_at_wearable, rng);
  // Reference: VA recording converted through the wearable replay path.
  const Signal va_vib = wearable_.cross_domain_capture(va_recording, rng);
  const auto f_direct = extractor_.extract(direct_vib);
  const auto f_va = extractor_.extract(va_vib);
  return dsp::correlation_2d(f_direct, f_va);
}

TwoMicVerifier::TwoMicVerifier() : TwoMicVerifier(Config{}) {}

TwoMicVerifier::TwoMicVerifier(Config config) : config_(config) {
  VIBGUARD_REQUIRE(config_.tolerance_db > 0.0,
                   "tolerance must be positive");
}

double TwoMicVerifier::score(const Signal& wearable_recording,
                             const Signal& va_recording) const {
  const double wr = wearable_recording.rms();
  const double vr = va_recording.rms();
  if (wr <= 0.0 || vr <= 0.0) return 0.0;
  const double delta_db = amplitude_to_db(wr / vr);
  const double z =
      (delta_db - config_.expected_level_delta_db) / config_.tolerance_db;
  return std::exp(-0.5 * z * z);
}

ThresholdCalibrator::ThresholdCalibrator(double quantile, double margin)
    : quantile_(quantile), margin_(margin) {
  VIBGUARD_REQUIRE(quantile > 0.0 && quantile < 1.0,
                   "quantile must be in (0, 1)");
  VIBGUARD_REQUIRE(margin >= 0.0, "margin must be non-negative");
}

double ThresholdCalibrator::calibrate(
    std::vector<double> legit_scores) const {
  VIBGUARD_REQUIRE(legit_scores.size() >= 5,
                   "need at least 5 enrollment scores");
  return quantile(legit_scores, quantile_) - margin_;
}

}  // namespace vibguard::core
