// Vibration-domain feature extraction (paper Sec. VI-B).
//
// The 200 Hz accelerometer signal is high-pass filtered against body-motion
// interference, transformed with a 64-point STFT (window == FFT == 64,
// paper's empirical choice), squared to power, cropped below 5 Hz to remove
// the accelerometer's low-frequency sensitivity artifact, and normalized by
// its maximum so features are invariant to user–VA distance.
#pragma once

#include "common/signal.hpp"
#include "dsp/scratch.hpp"
#include "dsp/stft.hpp"

namespace vibguard::core {

struct VibrationFeatureConfig {
  std::size_t window_size = 64;   ///< STFT window and FFT length
  std::size_t hop = 16;           ///< frame shift in samples
  double highpass_hz = 4.0;       ///< body-motion pre-filter cutoff
  double crop_below_hz = 5.0;     ///< accelerometer-artifact crop
  bool normalize = true;          ///< divide by the maximum value
  dsp::WindowType window = dsp::WindowType::kHann;
};

/// Extracts the paper's vibration-domain features from a 200 Hz
/// accelerometer capture.
class VibrationFeatureExtractor {
 public:
  explicit VibrationFeatureExtractor(VibrationFeatureConfig config = {});

  const VibrationFeatureConfig& config() const { return config_; }

  dsp::Spectrogram extract(const Signal& vibration) const;

  /// Allocation-free overload: writes the feature spectrogram into `out`
  /// and routes the high-pass temporary through `scratch`, reusing
  /// capacity. Bit-identical to extract().
  void extract_into(const Signal& vibration, dsp::Spectrogram& out,
                    dsp::Scratch& scratch) const;

 private:
  VibrationFeatureConfig config_;
};

/// Online vibration-feature accumulator for push pipelines.
///
/// Wraps a StreamingStft and applies the accelerometer-artifact crop on the
/// fly: row(i) views the surviving bins of emitted frame i directly inside
/// the STFT row store (the crop is a constant column offset, so no copy is
/// needed). Two of the batch extractor's steps are deliberately *not*
/// reproduced, because both are whole-signal operations:
///   - the zero-phase FFT high-pass — its job (body-motion energy below
///     ~4 Hz) is largely subsumed by the crop, which removes every bin at or
///     below crop_below_hz anyway;
///   - normalize_by_max — the downstream 2-D Pearson is scale-invariant, so
///     normalization cannot change the correlation.
/// Streaming features are therefore an *approximation* used for provisional
/// anytime verdicts; exact scores come from the batch finalize pass.
class StreamingVibrationFeatures {
 public:
  explicit StreamingVibrationFeatures(VibrationFeatureConfig config = {});

  const VibrationFeatureConfig& config() const { return config_; }

  /// Resets the carried state for a new stream at `sample_rate` Hz.
  void begin(double sample_rate);

  /// Appends vibration samples; returns the number of feature frames
  /// emitted by this push.
  std::size_t push(std::span<const double> samples);

  std::size_t frames() const { return stft_.frames(); }

  /// Frequency bins surviving the crop.
  std::size_t bins() const { return stft_.bins() - drop_bins_; }

  /// One emitted frame's `bins()` contiguous cropped power values.
  const double* row(std::size_t frame) const {
    return stft_.row(frame) + drop_bins_;
  }

 private:
  VibrationFeatureConfig config_;
  dsp::StreamingStft stft_;
  std::size_t drop_bins_ = 0;
};

}  // namespace vibguard::core
