// Vibration-domain feature extraction (paper Sec. VI-B).
//
// The 200 Hz accelerometer signal is high-pass filtered against body-motion
// interference, transformed with a 64-point STFT (window == FFT == 64,
// paper's empirical choice), squared to power, cropped below 5 Hz to remove
// the accelerometer's low-frequency sensitivity artifact, and normalized by
// its maximum so features are invariant to user–VA distance.
#pragma once

#include "common/signal.hpp"
#include "dsp/scratch.hpp"
#include "dsp/stft.hpp"

namespace vibguard::core {

struct VibrationFeatureConfig {
  std::size_t window_size = 64;   ///< STFT window and FFT length
  std::size_t hop = 16;           ///< frame shift in samples
  double highpass_hz = 4.0;       ///< body-motion pre-filter cutoff
  double crop_below_hz = 5.0;     ///< accelerometer-artifact crop
  bool normalize = true;          ///< divide by the maximum value
  dsp::WindowType window = dsp::WindowType::kHann;
};

/// Extracts the paper's vibration-domain features from a 200 Hz
/// accelerometer capture.
class VibrationFeatureExtractor {
 public:
  explicit VibrationFeatureExtractor(VibrationFeatureConfig config = {});

  const VibrationFeatureConfig& config() const { return config_; }

  dsp::Spectrogram extract(const Signal& vibration) const;

  /// Allocation-free overload: writes the feature spectrogram into `out`
  /// and routes the high-pass temporary through `scratch`, reusing
  /// capacity. Bit-identical to extract().
  void extract_into(const Signal& vibration, dsp::Spectrogram& out,
                    dsp::Scratch& scratch) const;

 private:
  VibrationFeatureConfig config_;
};

}  // namespace vibguard::core
