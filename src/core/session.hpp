// Application-layer session: the policy wrapper a VA integration would use.
//
// Wraps DefenseSystem with the deployment rules from the paper's threat
// model (Sec. II): commands are REJECTED outright when the paired wearable
// is absent, every decision is recorded in an audit log, and running
// statistics are kept for monitoring.
//
// On top of the threat-model policy the session implements the serving-side
// overload toolkit (src/serving/): per-command deadline budgets with
// cooperative cancellation, retry with decorrelated exponential backoff, a
// per-stage circuit breaker that routes commands to a cheaper degraded
// DefenseMode while the primary pipeline is unhealthy (with half-open
// probing), and admission-controlled batch processing with explicit
// reject-on-full backpressure. All time flows through an injectable Clock,
// so every one of those behaviors is deterministic under a VirtualClock;
// with the default policy (no deadline, no breaker) no clock is ever read
// and verdicts are bit-identical to the policy-free build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "core/pipeline.hpp"
#include "core/streaming.hpp"
#include "serving/admission.hpp"
#include "serving/backoff.hpp"
#include "serving/circuit_breaker.hpp"

namespace vibguard::core {

/// Why a command was accepted or rejected.
enum class Verdict {
  kAccepted,
  kAttackDetected,
  kWearableAbsent,
  /// The command could not be scored trustworthily (quality gate halted,
  /// degenerate features, a pipeline error, or an expired deadline budget)
  /// even after the configured retries. Distinct from kAttackDetected: the
  /// integration should re-request the command rather than treat the user
  /// as hostile.
  kIndeterminate,
  /// Admission control rejected the command because the request queue was
  /// full (overload backpressure). The command was never scored; the
  /// integration should re-request it after backing off.
  kRejectedOverload,
};

const char* verdict_name(Verdict verdict);

/// Session-level deployment policy.
struct SessionPolicy {
  /// How many times an unscoreable command is re-scored (modeling a
  /// re-request) before the session settles on kIndeterminate. Retries draw
  /// from a decorrelated fork of the command's rng stream, so they are
  /// deterministic but independent of the first attempt. Deadline-exceeded
  /// attempts are never retried: the budget covers the whole command.
  std::size_t max_retries = 1;

  /// Wait between retry attempts (decorrelated exponential backoff, see
  /// serving/backoff.hpp). Delays are drawn from a dedicated fork of the
  /// command's rng stream — never the scoring streams — and waited on the
  /// session clock; when the session has no clock, no wait happens and no
  /// draw is made. Waits are clipped to the command's remaining deadline.
  serving::BackoffPolicy backoff;

  /// Per-command time budget in microseconds, covering all attempts of the
  /// command. Requires a session clock; nullopt (the default) disables
  /// deadlines and reads no clock.
  std::optional<std::uint64_t> deadline_us;

  /// Circuit-breaker configuration. nullopt (the default) disables the
  /// breaker; when set, consecutive hard failures (stage errors, deadline
  /// expiry) of one pipeline stage trip the breaker and subsequent commands
  /// are scored in `degraded_mode` until a half-open probe succeeds.
  std::optional<serving::BreakerConfig> breaker;

  /// The cheaper DefenseMode used while the breaker is open. The default —
  /// the audio-only 2-D correlation arm — skips segmentation and the
  /// vibration-domain capture entirely, so it keeps answering within budget
  /// when those stages are the ones failing.
  DefenseMode degraded_mode = DefenseMode::kAudioBaseline;
};

/// One processed command in the audit log.
struct SessionEvent {
  std::size_t index;
  std::string label;    ///< caller-provided description (e.g. command text)
  Verdict verdict;
  double score;          ///< correlation score; NaN when not computed
  std::string note;      ///< why kIndeterminate / breaker-degradation note
  std::size_t attempts = 1;  ///< scoring attempts (1 + retries used)
  /// True when the circuit breaker routed this command to the degraded
  /// DefenseMode instead of the primary pipeline.
  bool degraded = false;
  /// Microseconds spent waiting in the admission queue (admission-controlled
  /// batch processing only).
  std::uint64_t queue_us = 0;
  /// Total backoff wait before retries, on the session clock.
  std::uint64_t backoff_us = 0;
  /// True when the streaming stopping rule rendered the verdict before the
  /// full command was consumed (process_streaming only).
  bool early_exit = false;
  /// Fraction of the command's samples consumed before the verdict
  /// (process_streaming only; 1.0 elsewhere).
  double stream_fraction = 1.0;
};

/// Aggregate statistics of a session.
struct SessionStats {
  std::size_t processed = 0;
  std::size_t accepted = 0;
  std::size_t attacks_detected = 0;
  std::size_t wearable_absent = 0;
  std::size_t indeterminate = 0;
  std::size_t retries = 0;  ///< extra scoring attempts across all commands
  std::size_t deadline_exceeded = 0;  ///< commands whose budget expired
  std::size_t degraded = 0;           ///< commands routed to degraded mode
  std::size_t rejected_overload = 0;  ///< commands refused by admission
  std::size_t early_exits = 0;        ///< streaming early-exit verdicts
};

/// One command for DefenseSession::process_batch. Signals are borrowed and
/// must outlive the call; a null `wearable` means no paired wearable
/// responded (policy: reject).
struct SessionRequest {
  std::string label;
  const Signal* va = nullptr;
  const Signal* wearable = nullptr;
  const Segmenter* segmenter = nullptr;  ///< as in DefenseSystem::score
  Rng rng;
};

/// Stateful defense endpoint for a stream of commands.
class DefenseSession {
 public:
  /// `clock` drives deadlines, backoff waits and breaker cooldowns; it is
  /// borrowed and must outlive the session. nullptr selects the process
  /// SteadyClock when a policy feature needs time — the default policy
  /// never reads any clock.
  explicit DefenseSession(DefenseConfig config = {}, SessionPolicy policy = {},
                          const Clock* clock = nullptr);

  const SessionPolicy& policy() const { return policy_; }

  /// Processes one command. `wearable_recording` is nullopt when no paired
  /// wearable responded (policy: reject). `segmenter` as in DefenseSystem.
  SessionEvent process(const std::string& label, const Signal& va_recording,
                       const std::optional<Signal>& wearable_recording,
                       const Segmenter* segmenter, Rng& rng);

  /// Processes one command through the incremental push pipeline
  /// (core/streaming.hpp), feeding both recordings in interleaved frames of
  /// `frame_samples`. When `streaming.stop` is enabled and fires, the
  /// remaining frames are never consumed: the event carries the anytime
  /// verdict, early_exit = true and the consumed stream_fraction. Without
  /// an early exit the command finalizes per `streaming.finalize` — the
  /// default exact-batch mode renders a verdict bit-identical to process()
  /// with the same rng. Deadline budgets apply as in process(); breaker
  /// routing and retries do not (a stream is consumed once).
  SessionEvent process_streaming(const std::string& label,
                                 const Signal& va_recording,
                                 const std::optional<Signal>& wearable_recording,
                                 const Segmenter* segmenter, Rng& rng,
                                 const StreamingConfig& streaming,
                                 std::size_t frame_samples = 1024);

  /// Processes a batch of commands through the batch scoring API.
  /// Equivalent to calling process() per element (same audit-log entries,
  /// statistics and scores); wearable-absent requests are rejected without
  /// being scored. Returns the new audit-log entries.
  std::vector<SessionEvent> process_batch(
      std::span<const SessionRequest> requests);

  /// Admission-controlled batch processing: every request is first offered
  /// to `admission` in order — requests that do not fit its bounded queue
  /// are rejected immediately with Verdict::kRejectedOverload (explicit
  /// backpressure, logged but never scored) — then the admitted requests
  /// are drained FIFO through the ordinary per-command policy path. Each
  /// scored event carries its queue time, and the admission/queue-time
  /// aggregates are folded into pipeline_stats().queue. The audit log
  /// records rejections first (at submission time), then the drained
  /// commands in FIFO order. With a deadline policy the budget starts at
  /// submission: a command whose budget expires while queued is dropped as
  /// kIndeterminate ("deadline_expired_in_queue") without being scored,
  /// counted in queue.expired rather than the service-dequeue aggregates.
  std::vector<SessionEvent> process_admitted(
      std::span<const SessionRequest> requests,
      serving::AdmissionController& admission);

  const std::vector<SessionEvent>& log() const { return log_; }
  const SessionStats& stats() const { return stats_; }
  const DefenseSystem& system() const { return system_; }

  /// The degraded-mode system commands are routed to while the breaker is
  /// open; nullptr when the policy has no breaker.
  const DefenseSystem* degraded_system() const {
    return degraded_system_.has_value() ? &*degraded_system_ : nullptr;
  }

  /// The session's circuit breaker; nullptr when the policy has none.
  const serving::CircuitBreaker* breaker() const {
    return breaker_.has_value() ? &*breaker_ : nullptr;
  }

  /// Per-stage pipeline aggregates over every command scored so far.
  const PipelineStats& pipeline_stats() const { return pipeline_stats_; }

  /// Clears the audit log, all statistics and the breaker state.
  void reset();

 private:
  /// The session clock (policy features only; never read by default).
  const Clock& clock() const {
    return clock_ != nullptr ? *clock_ : SteadyClock::instance();
  }

  /// Full policy path for one wearable-present command: breaker routing,
  /// deadline budget, retry with backoff. Fills the event (except index)
  /// and updates scoring statistics; the caller logs it. When
  /// `deadline_at_us` is non-null it is the command's absolute expiry on
  /// the session clock (a budget that started at submission, e.g. while
  /// the command sat in an admission queue) and overrides the per-command
  /// policy deadline.
  void run_policy(SessionEvent& event, const Signal& va,
                  const Signal& wearable, const Segmenter* segmenter,
                  Rng& rng, const std::uint64_t* deadline_at_us = nullptr);

  /// Scores one command on `system` with retry-on-unscoreable and backoff,
  /// filling the event's score-related fields. `base` is the command's rng
  /// stream at entry (retries and backoff fork from it); `rng` is the
  /// stream attempt 0 consumes. Returns the final outcome (for breaker
  /// accounting).
  ScoreOutcome score_with_retries(SessionEvent& event,
                                  const DefenseSystem& system,
                                  const Signal& va, const Signal& wearable,
                                  const Segmenter* segmenter, const Rng& base,
                                  Rng& rng, const Deadline* deadline);

  DefenseSystem system_;
  StreamingPipeline streaming_;
  SessionPolicy policy_;
  const Clock* clock_ = nullptr;
  std::optional<DefenseSystem> degraded_system_;
  std::optional<serving::CircuitBreaker> breaker_;
  Workspace workspace_;
  PipelineTrace trace_;
  PipelineStats pipeline_stats_;
  std::vector<SessionEvent> log_;
  SessionStats stats_;
};

}  // namespace vibguard::core
