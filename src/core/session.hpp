// Application-layer session: the policy wrapper a VA integration would use.
//
// Wraps DefenseSystem with the deployment rules from the paper's threat
// model (Sec. II): commands are REJECTED outright when the paired wearable
// is absent, every decision is recorded in an audit log, and running
// statistics are kept for monitoring.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace vibguard::core {

/// Why a command was accepted or rejected.
enum class Verdict {
  kAccepted,
  kAttackDetected,
  kWearableAbsent,
  /// The command could not be scored trustworthily (quality gate halted,
  /// degenerate features, or a pipeline error) even after the configured
  /// retries. Distinct from kAttackDetected: the integration should
  /// re-request the command rather than treat the user as hostile.
  kIndeterminate,
};

const char* verdict_name(Verdict verdict);

/// Session-level deployment policy.
struct SessionPolicy {
  /// How many times an unscoreable command is re-scored (modeling a
  /// re-request) before the session settles on kIndeterminate. Retries draw
  /// from a decorrelated fork of the command's rng stream, so they are
  /// deterministic but independent of the first attempt.
  std::size_t max_retries = 1;
};

/// One processed command in the audit log.
struct SessionEvent {
  std::size_t index;
  std::string label;    ///< caller-provided description (e.g. command text)
  Verdict verdict;
  double score;          ///< correlation score; NaN when not computed
  std::string note;      ///< why kIndeterminate ("" otherwise)
  std::size_t attempts = 1;  ///< scoring attempts (1 + retries used)
};

/// Aggregate statistics of a session.
struct SessionStats {
  std::size_t processed = 0;
  std::size_t accepted = 0;
  std::size_t attacks_detected = 0;
  std::size_t wearable_absent = 0;
  std::size_t indeterminate = 0;
  std::size_t retries = 0;  ///< extra scoring attempts across all commands
};

/// One command for DefenseSession::process_batch. Signals are borrowed and
/// must outlive the call; a null `wearable` means no paired wearable
/// responded (policy: reject).
struct SessionRequest {
  std::string label;
  const Signal* va = nullptr;
  const Signal* wearable = nullptr;
  const Segmenter* segmenter = nullptr;  ///< as in DefenseSystem::score
  Rng rng;
};

/// Stateful defense endpoint for a stream of commands.
class DefenseSession {
 public:
  explicit DefenseSession(DefenseConfig config = {},
                          SessionPolicy policy = {});

  const SessionPolicy& policy() const { return policy_; }

  /// Processes one command. `wearable_recording` is nullopt when no paired
  /// wearable responded (policy: reject). `segmenter` as in DefenseSystem.
  SessionEvent process(const std::string& label, const Signal& va_recording,
                       const std::optional<Signal>& wearable_recording,
                       const Segmenter* segmenter, Rng& rng);

  /// Processes a batch of commands through the batch scoring API.
  /// Equivalent to calling process() per element (same audit-log entries,
  /// statistics and scores); wearable-absent requests are rejected without
  /// being scored. Returns the new audit-log entries.
  std::vector<SessionEvent> process_batch(
      std::span<const SessionRequest> requests);

  const std::vector<SessionEvent>& log() const { return log_; }
  const SessionStats& stats() const { return stats_; }
  const DefenseSystem& system() const { return system_; }

  /// Per-stage pipeline aggregates over every command scored so far.
  const PipelineStats& pipeline_stats() const { return pipeline_stats_; }

  /// Clears the audit log and all statistics.
  void reset();

 private:
  /// Scores one wearable-present command with retry-on-unscoreable, filling
  /// the event's score/verdict/note/attempts and updating the statistics.
  /// `base` is the command's rng stream at entry (retries fork from it);
  /// `rng` is the stream attempt 0 consumes.
  void score_with_retries(SessionEvent& event, const Signal& va,
                          const Signal& wearable, const Segmenter* segmenter,
                          const Rng& base, Rng& rng);

  DefenseSystem system_;
  SessionPolicy policy_;
  Workspace workspace_;
  PipelineTrace trace_;
  PipelineStats pipeline_stats_;
  std::vector<SessionEvent> log_;
  SessionStats stats_;
};

}  // namespace vibguard::core
