// Application-layer session: the policy wrapper a VA integration would use.
//
// Wraps DefenseSystem with the deployment rules from the paper's threat
// model (Sec. II): commands are REJECTED outright when the paired wearable
// is absent, every decision is recorded in an audit log, and running
// statistics are kept for monitoring.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace vibguard::core {

/// Why a command was accepted or rejected.
enum class Verdict {
  kAccepted,
  kAttackDetected,
  kWearableAbsent,
};

const char* verdict_name(Verdict verdict);

/// One processed command in the audit log.
struct SessionEvent {
  std::size_t index;
  std::string label;    ///< caller-provided description (e.g. command text)
  Verdict verdict;
  double score;          ///< correlation score; NaN when not computed
};

/// Aggregate statistics of a session.
struct SessionStats {
  std::size_t processed = 0;
  std::size_t accepted = 0;
  std::size_t attacks_detected = 0;
  std::size_t wearable_absent = 0;
};

/// One command for DefenseSession::process_batch. Signals are borrowed and
/// must outlive the call; a null `wearable` means no paired wearable
/// responded (policy: reject).
struct SessionRequest {
  std::string label;
  const Signal* va = nullptr;
  const Signal* wearable = nullptr;
  const Segmenter* segmenter = nullptr;  ///< as in DefenseSystem::score
  Rng rng;
};

/// Stateful defense endpoint for a stream of commands.
class DefenseSession {
 public:
  explicit DefenseSession(DefenseConfig config = {});

  /// Processes one command. `wearable_recording` is nullopt when no paired
  /// wearable responded (policy: reject). `segmenter` as in DefenseSystem.
  SessionEvent process(const std::string& label, const Signal& va_recording,
                       const std::optional<Signal>& wearable_recording,
                       const Segmenter* segmenter, Rng& rng);

  /// Processes a batch of commands through the batch scoring API.
  /// Equivalent to calling process() per element (same audit-log entries,
  /// statistics and scores); wearable-absent requests are rejected without
  /// being scored. Returns the new audit-log entries.
  std::vector<SessionEvent> process_batch(
      std::span<const SessionRequest> requests);

  const std::vector<SessionEvent>& log() const { return log_; }
  const SessionStats& stats() const { return stats_; }
  const DefenseSystem& system() const { return system_; }

  /// Per-stage pipeline aggregates over every command scored so far.
  const PipelineStats& pipeline_stats() const { return pipeline_stats_; }

  /// Clears the audit log and all statistics.
  void reset();

 private:
  DefenseSystem system_;
  Workspace workspace_;
  PipelineTrace trace_;
  PipelineStats pipeline_stats_;
  std::vector<SessionEvent> log_;
  SessionStats stats_;
};

}  // namespace vibguard::core
