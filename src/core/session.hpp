// Application-layer session: the policy wrapper a VA integration would use.
//
// Wraps DefenseSystem with the deployment rules from the paper's threat
// model (Sec. II): commands are REJECTED outright when the paired wearable
// is absent, every decision is recorded in an audit log, and running
// statistics are kept for monitoring.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace vibguard::core {

/// Why a command was accepted or rejected.
enum class Verdict {
  kAccepted,
  kAttackDetected,
  kWearableAbsent,
};

const char* verdict_name(Verdict verdict);

/// One processed command in the audit log.
struct SessionEvent {
  std::size_t index;
  std::string label;    ///< caller-provided description (e.g. command text)
  Verdict verdict;
  double score;          ///< correlation score; NaN when not computed
};

/// Aggregate statistics of a session.
struct SessionStats {
  std::size_t processed = 0;
  std::size_t accepted = 0;
  std::size_t attacks_detected = 0;
  std::size_t wearable_absent = 0;
};

/// Stateful defense endpoint for a stream of commands.
class DefenseSession {
 public:
  explicit DefenseSession(DefenseConfig config = {});

  /// Processes one command. `wearable_recording` is nullopt when no paired
  /// wearable responded (policy: reject). `segmenter` as in DefenseSystem.
  SessionEvent process(const std::string& label, const Signal& va_recording,
                       const std::optional<Signal>& wearable_recording,
                       const Segmenter* segmenter, Rng& rng);

  const std::vector<SessionEvent>& log() const { return log_; }
  const SessionStats& stats() const { return stats_; }
  const DefenseSystem& system() const { return system_; }

  /// Clears the audit log and statistics.
  void reset();

 private:
  DefenseSystem system_;
  std::vector<SessionEvent> log_;
  SessionStats stats_;
};

}  // namespace vibguard::core
