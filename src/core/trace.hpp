// Pipeline instrumentation: per-stage trace records and aggregate stats.
//
// Every run of the staged pipeline (core/stages.hpp) can record, per stage,
// the wall time, the sample counts flowing in and out, and the number of
// heap allocations performed (via common/alloc_counter.hpp). PipelineTrace
// collects one command's records plus the intermediate artifacts tests and
// analysis tools inspect; PipelineStats aggregates many traces into the
// per-stage totals printed by vibguard_cli.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/quality.hpp"
#include "dsp/stft.hpp"

namespace vibguard::core {

/// Instrumentation record for one stage execution.
struct StageTrace {
  const char* name = "";        ///< static stage name (see Stage::name)
  std::uint64_t start_us = 0;   ///< offset from the pipeline run's start
  std::uint64_t wall_us = 0;    ///< stage wall time
  std::size_t samples_in = 0;   ///< elements flowing into the stage
  std::size_t samples_out = 0;  ///< elements the stage produced
  std::uint64_t allocations = 0;  ///< heap allocations during the stage
};

/// Intermediate artifacts and per-stage records of one scored command,
/// exposed for analysis and tests. Reusable: every run overwrites all
/// fields, retaining heap capacity across runs.
struct PipelineTrace {
  double estimated_delay_s = 0.0;
  std::size_t num_ranges = 0;
  double segment_seconds = 0.0;
  dsp::Spectrogram features_va;
  dsp::Spectrogram features_wearable;

  /// Signal-quality report of the run (copied from the workspace at the end
  /// of the run; meaningful for halted runs too).
  QualityReport quality;

  /// One record per executed stage, in execution order. Halted runs only
  /// record the stages that actually executed.
  std::vector<StageTrace> stages;

  /// Resets the scalar fields and stage records for the next run while
  /// keeping vector/spectrogram capacity. The pipeline driver calls this;
  /// callers handing a fresh trace never need to.
  void begin_run();
};

/// Per-stage aggregates over many scored commands.
struct PipelineStats {
  struct StageStats {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t total_wall_us = 0;
    std::uint64_t max_wall_us = 0;
    std::uint64_t total_allocations = 0;

    double mean_wall_us() const {
      return calls > 0 ? static_cast<double>(total_wall_us) /
                             static_cast<double>(calls)
                       : 0.0;
    }
  };

  /// Admission-control and queue-time aggregates (filled by the serving
  /// layer's admission-controlled processing; all-zero otherwise).
  struct QueueStats {
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;  ///< refused on full queue (backpressure)
    std::uint64_t dequeued = 0;
    std::uint64_t total_queue_us = 0;  ///< summed over dequeued requests
    std::uint64_t max_queue_us = 0;

    double mean_queue_us() const {
      return dequeued > 0 ? static_cast<double>(total_queue_us) /
                                static_cast<double>(dequeued)
                          : 0.0;
    }
  };

  std::uint64_t commands = 0;
  std::vector<StageStats> stages;  ///< first-seen stage order
  QueueStats queue;

  /// Folds one command's stage records into the aggregates.
  void add(const PipelineTrace& trace);

  /// Folds another aggregate in (e.g. per-worker stats after a parallel
  /// batch).
  void merge(const PipelineStats& other);

  void clear();

  /// Multi-line human-readable table (one row per stage).
  std::string summary() const;
};

}  // namespace vibguard::core
