// Pipeline instrumentation: per-stage trace records and aggregate stats.
//
// Every run of the staged pipeline (core/stages.hpp) can record, per stage,
// the wall time, the sample counts flowing in and out, and the number of
// heap allocations performed (via common/alloc_counter.hpp). PipelineTrace
// collects one command's records plus the intermediate artifacts tests and
// analysis tools inspect; PipelineStats aggregates many traces into the
// per-stage totals printed by vibguard_cli.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/quality.hpp"
#include "dsp/stft.hpp"

namespace vibguard::core {

/// Instrumentation record for one stage execution.
struct StageTrace {
  const char* name = "";        ///< static stage name (see Stage::name)
  std::uint64_t start_us = 0;   ///< offset from the pipeline run's start
  std::uint64_t wall_us = 0;    ///< stage wall time
  std::size_t samples_in = 0;   ///< elements flowing into the stage
  std::size_t samples_out = 0;  ///< elements the stage produced
  std::uint64_t allocations = 0;  ///< heap allocations during the stage
};

/// Intermediate artifacts and per-stage records of one scored command,
/// exposed for analysis and tests. Reusable: every run overwrites all
/// fields, retaining heap capacity across runs.
struct PipelineTrace {
  double estimated_delay_s = 0.0;
  std::size_t num_ranges = 0;
  double segment_seconds = 0.0;
  dsp::Spectrogram features_va;
  dsp::Spectrogram features_wearable;

  /// Signal-quality report of the run (copied from the workspace at the end
  /// of the run; meaningful for halted runs too).
  QualityReport quality;

  /// One record per executed stage, in execution order. Halted runs only
  /// record the stages that actually executed; streaming runs record one
  /// entry per push per stage, so the same stage name can appear many times.
  std::vector<StageTrace> stages;

  /// Resets the scalar fields and stage records for the next run while
  /// keeping vector/spectrogram capacity. The pipeline driver calls this;
  /// callers handing a fresh trace never need to.
  void begin_run();

  /// Appends another trace's stage records to this one without clearing
  /// anything — how a streaming run folds the records of its finalize pass
  /// (which begin_run()s its own trace) after the accumulated per-push
  /// records.
  void append(const PipelineTrace& other);
};

/// Per-stage aggregates over many scored commands.
struct PipelineStats {
  /// A stage used to run exactly once per command, so "calls" doubled as a
  /// trial count. Streaming broke that: one push = one invocation, so a
  /// stage can run hundreds of times within a single trial. The aggregates
  /// therefore keep both axes — `calls` counts invocations, `trials` counts
  /// commands in which the stage ran at least once — and expose per-push
  /// (per-call) and per-trial views.
  struct StageStats {
    std::string name;
    std::uint64_t calls = 0;   ///< stage invocations (one push = one call)
    std::uint64_t trials = 0;  ///< commands where the stage ran >= once
    std::uint64_t total_wall_us = 0;
    std::uint64_t max_wall_us = 0;  ///< over single invocations
    std::uint64_t total_allocations = 0;

    /// Per-push view: mean wall time of one invocation.
    double mean_wall_us() const {
      return calls > 0 ? static_cast<double>(total_wall_us) /
                             static_cast<double>(calls)
                       : 0.0;
    }

    /// Per-trial views: how often the stage runs within one command, and
    /// what it costs per command. For batch pipelines calls == trials and
    /// these reduce to the per-push numbers.
    double mean_calls_per_trial() const {
      return trials > 0
                 ? static_cast<double>(calls) / static_cast<double>(trials)
                 : 0.0;
    }
    double mean_wall_per_trial_us() const {
      return trials > 0 ? static_cast<double>(total_wall_us) /
                              static_cast<double>(trials)
                        : 0.0;
    }

    /// Internal marker used by PipelineStats::add to count trials without
    /// rescanning the record list (the id of the last command that touched
    /// this stage). Not meaningful across merge().
    std::uint64_t last_seen = 0;
  };

  /// Admission-control and queue-time aggregates (filled by the serving
  /// layer's admission-controlled processing; all-zero otherwise).
  struct QueueStats {
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;  ///< refused on full queue (backpressure)
    std::uint64_t dequeued = 0;  ///< dequeued for service (excludes expired)
    std::uint64_t expired = 0;   ///< dropped: deadline passed while queued
    std::uint64_t total_queue_us = 0;  ///< summed over dequeued requests
    std::uint64_t max_queue_us = 0;

    double mean_queue_us() const {
      return dequeued > 0 ? static_cast<double>(total_queue_us) /
                                static_cast<double>(dequeued)
                          : 0.0;
    }
  };

  std::uint64_t commands = 0;
  std::vector<StageStats> stages;  ///< first-seen stage order
  QueueStats queue;

  /// Folds one command's stage records into the aggregates.
  void add(const PipelineTrace& trace);

  /// Folds another aggregate in (e.g. per-worker stats after a parallel
  /// batch).
  void merge(const PipelineStats& other);

  void clear();

  /// Multi-line human-readable table (one row per stage).
  std::string summary() const;
};

}  // namespace vibguard::core
