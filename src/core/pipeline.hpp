// End-to-end defense pipeline (paper Fig. 5).
//
// Given the two recordings of one voice command — from the VA device and
// from the user's wearable — the pipeline synchronizes them, extracts the
// barrier-effect-sensitive phoneme segments, converts both segment streams
// to the vibration domain on the wearable, extracts vibration features and
// scores their 2-D correlation. Three operating modes reproduce the paper's
// evaluation arms:
//
//   kFull              — vibration domain + phoneme selection (the system)
//   kVibrationBaseline — vibration domain, no phoneme selection
//   kAudioBaseline     — 2-D correlation directly on audio spectrograms
//
// Each mode is a declaratively composed sequence of pipeline stages (see
// core/stages.hpp); DefenseSystem::score drives the sequence over a
// PipelineContext. Repeated scoring through a caller-owned Workspace — or
// the batch API — performs zero steady-state heap allocations.
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "common/rng.hpp"
#include "common/signal.hpp"
#include "common/thread_pool.hpp"
#include "core/detector.hpp"
#include "core/segmentation.hpp"
#include "core/stages.hpp"
#include "core/trace.hpp"
#include "core/vibration_features.hpp"
#include "device/sync.hpp"
#include "device/wearable.hpp"

namespace vibguard::core {

enum class DefenseMode {
  kFull,
  kVibrationBaseline,
  kAudioBaseline,
};

/// Human-readable mode name.
const char* mode_name(DefenseMode mode);

struct DefenseConfig {
  DefenseMode mode = DefenseMode::kFull;
  device::WearableConfig wearable = device::fossil_gen5();
  device::SyncConfig sync;
  VibrationFeatureConfig features;
  double detection_threshold = 0.50;

  /// Minimum total duration of extracted sensitive-phoneme segments; when
  /// segmentation yields less (very short commands), the whole command is
  /// scored instead.
  double min_segment_seconds = 0.65;

  /// When set, the wearer performs this activity during the replay-capture
  /// step: activity-specific body motion is superimposed on the vibration
  /// signals (robustness knob; the ≤5 Hz crop is designed to remove it).
  std::optional<sensors::Activity> user_activity;

  // Audio-baseline spectrogram parameters (16 kHz recordings).
  std::size_t audio_window = 512;
  std::size_t audio_hop = 128;

  /// Signal-quality gate (see core/quality.hpp). The default permissive
  /// gate only halts on inputs no pipeline could score (non-finite samples,
  /// dead channels, too-short captures); healthy trials score bit-identical
  /// whether the gate is on or off.
  QualityConfig quality;
};

/// One command to score through the batch API. The signals are borrowed
/// (must outlive the score_batch call); the rng is owned so every request
/// carries its independent, reproducible stream.
struct ScoreRequest {
  const Signal* va = nullptr;
  const Signal* wearable = nullptr;
  const Segmenter* segmenter = nullptr;  ///< required in kFull mode
  Rng rng;
  /// Optional per-request time budget (borrowed; null = unbounded).
  const Deadline* deadline = nullptr;
};

/// How one trial through the quality-aware scoring API ended.
enum class ScoreStatus {
  kOk,             ///< pipeline produced a real correlation score
  kIndeterminate,  ///< quality gate halted the run / degenerate features
  kError,          ///< a stage threw; the exception was captured per-trial
  kDeadlineExceeded,  ///< the trial's Deadline expired at a stage boundary
};

/// Human-readable status name.
const char* score_status_name(ScoreStatus status);

/// Structured per-trial outcome of the exception-safe scoring API. Exactly
/// one of the three shapes occurs:
///   kOk            — `score` is a real correlation in [-1, 1].
///   kIndeterminate — `score` is kIndeterminateScore; `reason` names the
///                    gate decision ("non_finite_samples", "too_short", …)
///                    or "degenerate_features"; `quality` has the details.
///   kError         — a stage threw; `reason` is the stage name and `error`
///                    the exception message. The batch continues.
///   kDeadlineExceeded — the request's Deadline expired before the pipeline
///                    finished; `score` is kIndeterminateScore and `reason`
///                    is "deadline_exceeded". The trial was cancelled
///                    cooperatively at a stage boundary, never mid-stage.
struct ScoreOutcome {
  ScoreStatus status = ScoreStatus::kOk;
  double score = kIndeterminateScore;
  const char* reason = "";   ///< static string; "" when kOk
  std::string error;         ///< exception message; empty unless kError
  QualityReport quality;     ///< the run's quality report (all statuses)

  bool ok() const { return status == ScoreStatus::kOk; }
};

/// The training-free thru-barrier attack detection system.
class DefenseSystem {
 public:
  explicit DefenseSystem(DefenseConfig config);

  const DefenseConfig& config() const { return config_; }
  const device::Wearable& wearable() const { return wearable_; }
  const VibrationFeatureExtractor& extractor() const { return extractor_; }
  const CorrelationDetector& detector() const { return detector_; }

  /// Scores one command: higher = more likely legitimate. `segmenter`
  /// supplies sensitive-phoneme ranges and is required in kFull mode
  /// (ignored in the baseline modes). `trace`, when non-null, receives
  /// intermediate artifacts and per-stage instrumentation. When the quality
  /// gate halts the run, or the features are degenerate, the return value
  /// is kIndeterminateScore (fails closed under a plain threshold test);
  /// use try_score for the structured outcome.
  double score(const Signal& va_recording, const Signal& wearable_recording,
               const Segmenter* segmenter, Rng& rng,
               PipelineTrace* trace = nullptr) const;

  /// Workspace overload: identical semantics and bit-identical scores, but
  /// all intermediate storage lives in the caller-owned `workspace`, so
  /// repeated calls allocate nothing once the workspace is warm. When
  /// `deadline` is non-null it is checked at every stage boundary; an
  /// expired run stops cooperatively, returns kIndeterminateScore and sets
  /// Workspace::deadline_expired (try_score surfaces the distinct status).
  /// A null deadline — the default — reads no clock at all.
  double score(const Signal& va_recording, const Signal& wearable_recording,
               const Segmenter* segmenter, Rng& rng, Workspace& workspace,
               PipelineTrace* trace = nullptr,
               const Deadline* deadline = nullptr) const;

  /// Exception-safe, quality-aware scoring: never throws for malformed
  /// inputs. Empty recordings, gate-halted runs and degenerate features
  /// yield kIndeterminate; a throwing stage yields kError with the stage
  /// name and message; an expired `deadline` yields kDeadlineExceeded.
  /// Healthy inputs score bit-identical to score().
  ScoreOutcome try_score(const Signal& va_recording,
                         const Signal& wearable_recording,
                         const Segmenter* segmenter, Rng& rng,
                         Workspace& workspace,
                         PipelineTrace* trace = nullptr,
                         const Deadline* deadline = nullptr) const;

  /// Scores `requests.size()` commands into `out` (same size required),
  /// reusing one workspace across the whole batch. Each request's scoring
  /// draws only from its own rng copy, so results are independent of batch
  /// composition and order. When `stats` is non-null, per-stage aggregates
  /// over the batch are folded into it (`trace` may additionally capture
  /// the last request's artifacts).
  void score_batch(std::span<const ScoreRequest> requests,
                   std::span<double> out, Workspace& workspace,
                   PipelineTrace* trace = nullptr,
                   PipelineStats* stats = nullptr) const;

  /// Parallel batch scoring over `pool`, with one workspace per pool worker
  /// (`workspaces.size()` must be >= max(1, pool.num_threads())). Scores
  /// are bit-identical to the serial overload at any thread count.
  void score_batch(std::span<const ScoreRequest> requests,
                   std::span<double> out, ThreadPool& pool,
                   std::span<Workspace> workspaces) const;

  /// Outcome batch (serial): like the plain serial score_batch but every
  /// trial ends in a structured ScoreOutcome — a bad trial never aborts the
  /// batch or poisons its neighbours. Healthy trials score bit-identical to
  /// the plain API.
  void score_batch(std::span<const ScoreRequest> requests,
                   std::span<ScoreOutcome> out, Workspace& workspace,
                   PipelineTrace* trace = nullptr,
                   PipelineStats* stats = nullptr) const;

  /// Outcome batch (parallel): per-trial isolation at any thread count,
  /// bit-identical outcomes to the serial outcome overload.
  void score_batch(std::span<const ScoreRequest> requests,
                   std::span<ScoreOutcome> out, ThreadPool& pool,
                   std::span<Workspace> workspaces) const;

  /// Full detection decision at the configured threshold.
  DetectionResult detect(const Signal& va_recording,
                         const Signal& wearable_recording,
                         const Segmenter* segmenter, Rng& rng,
                         PipelineTrace* trace = nullptr) const;

 private:
  DefenseConfig config_;
  device::Wearable wearable_;
  device::SyncChannel sync_;
  VibrationFeatureExtractor extractor_;
  CorrelationDetector detector_;
};

}  // namespace vibguard::core
