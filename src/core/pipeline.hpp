// End-to-end defense pipeline (paper Fig. 5).
//
// Given the two recordings of one voice command — from the VA device and
// from the user's wearable — the pipeline synchronizes them, extracts the
// barrier-effect-sensitive phoneme segments, converts both segment streams
// to the vibration domain on the wearable, extracts vibration features and
// scores their 2-D correlation. Three operating modes reproduce the paper's
// evaluation arms:
//
//   kFull              — vibration domain + phoneme selection (the system)
//   kVibrationBaseline — vibration domain, no phoneme selection
//   kAudioBaseline     — 2-D correlation directly on audio spectrograms
#pragma once

#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "common/signal.hpp"
#include "core/detector.hpp"
#include "core/segmentation.hpp"
#include "core/vibration_features.hpp"
#include "device/sync.hpp"
#include "device/wearable.hpp"

namespace vibguard::core {

enum class DefenseMode {
  kFull,
  kVibrationBaseline,
  kAudioBaseline,
};

/// Human-readable mode name.
const char* mode_name(DefenseMode mode);

struct DefenseConfig {
  DefenseMode mode = DefenseMode::kFull;
  device::WearableConfig wearable = device::fossil_gen5();
  device::SyncConfig sync;
  VibrationFeatureConfig features;
  double detection_threshold = 0.50;

  /// Minimum total duration of extracted sensitive-phoneme segments; when
  /// segmentation yields less (very short commands), the whole command is
  /// scored instead.
  double min_segment_seconds = 0.65;

  /// When set, the wearer performs this activity during the replay-capture
  /// step: activity-specific body motion is superimposed on the vibration
  /// signals (robustness knob; the ≤5 Hz crop is designed to remove it).
  std::optional<sensors::Activity> user_activity;

  // Audio-baseline spectrogram parameters (16 kHz recordings).
  std::size_t audio_window = 512;
  std::size_t audio_hop = 128;
};

/// Intermediate artifacts, exposed for analysis and tests.
struct PipelineTrace {
  double estimated_delay_s = 0.0;
  std::size_t num_ranges = 0;
  double segment_seconds = 0.0;
  dsp::Spectrogram features_va;
  dsp::Spectrogram features_wearable;
};

/// The training-free thru-barrier attack detection system.
class DefenseSystem {
 public:
  explicit DefenseSystem(DefenseConfig config);

  const DefenseConfig& config() const { return config_; }
  const device::Wearable& wearable() const { return wearable_; }

  /// Scores one command: higher = more likely legitimate. `segmenter`
  /// supplies sensitive-phoneme ranges and is required in kFull mode
  /// (ignored in the baseline modes). `trace`, when non-null, receives
  /// intermediate artifacts.
  double score(const Signal& va_recording, const Signal& wearable_recording,
               const Segmenter* segmenter, Rng& rng,
               PipelineTrace* trace = nullptr) const;

  /// Full detection decision at the configured threshold.
  DetectionResult detect(const Signal& va_recording,
                         const Signal& wearable_recording,
                         const Segmenter* segmenter, Rng& rng,
                         PipelineTrace* trace = nullptr) const;

 private:
  DefenseConfig config_;
  device::Wearable wearable_;
  device::SyncChannel sync_;
  VibrationFeatureExtractor extractor_;
  CorrelationDetector detector_;
};

}  // namespace vibguard::core
