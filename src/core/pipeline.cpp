#include "core/pipeline.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vibguard::core {

const char* mode_name(DefenseMode mode) {
  switch (mode) {
    case DefenseMode::kFull: return "full";
    case DefenseMode::kVibrationBaseline: return "vibration_baseline";
    case DefenseMode::kAudioBaseline: return "audio_baseline";
  }
  return "unknown";
}

DefenseSystem::DefenseSystem(DefenseConfig config)
    : config_(std::move(config)),
      wearable_(config_.wearable),
      sync_(config_.sync),
      extractor_(config_.features),
      detector_(config_.detection_threshold) {}

double DefenseSystem::score(const Signal& va_recording,
                            const Signal& wearable_recording,
                            const Segmenter* segmenter, Rng& rng,
                            PipelineTrace* trace) const {
  VIBGUARD_REQUIRE(!va_recording.empty() && !wearable_recording.empty(),
                   "both recordings must be non-empty");
  VIBGUARD_REQUIRE(
      config_.mode != DefenseMode::kFull || segmenter != nullptr,
      "full mode requires a segmenter");

  // 1. Cross-device synchronization (Sec. VI-A).
  const double delay_s =
      sync_.estimate_delay_s(va_recording, wearable_recording);
  auto [va, wear] = sync_.synchronize(va_recording, wearable_recording);
  const auto trim = static_cast<std::size_t>(
      std::max(0.0, std::round(delay_s * va_recording.sample_rate())));
  if (trace != nullptr) trace->estimated_delay_s = delay_s;

  // 2. Sensitive-phoneme segmentation (Sec. V) — full mode only.
  Signal va_seg = va;
  Signal wear_seg = wear;
  if (config_.mode == DefenseMode::kFull) {
    const auto ranges = segmenter->segment(va, trim);
    if (trace != nullptr) trace->num_ranges = ranges.size();
    Signal candidate = extract_ranges(va, ranges);
    // If segmentation found nothing, or the command is so short that the
    // sensitive segments cannot fill an analysis window, fall back to the
    // whole command rather than rejecting outright.
    if (candidate.duration() >= config_.min_segment_seconds) {
      va_seg = std::move(candidate);
      wear_seg = extract_ranges(wear, ranges);
    }
  }
  if (trace != nullptr) trace->segment_seconds = va_seg.duration();

  // 3. Feature extraction and 2-D correlation (Sec. VI-B, VI-C).
  dsp::Spectrogram feat_va, feat_wear;
  if (config_.mode == DefenseMode::kAudioBaseline) {
    feat_va = dsp::stft_power(va_seg, config_.audio_window, config_.audio_hop);
    feat_wear =
        dsp::stft_power(wear_seg, config_.audio_window, config_.audio_hop);
    feat_va.normalize_by_max();
    feat_wear.normalize_by_max();
  } else {
    const Signal vib_va =
        config_.user_activity.has_value()
            ? wearable_.cross_domain_capture(va_seg, *config_.user_activity,
                                             rng)
            : wearable_.cross_domain_capture(va_seg, rng);
    const Signal vib_wear =
        config_.user_activity.has_value()
            ? wearable_.cross_domain_capture(wear_seg,
                                             *config_.user_activity, rng)
            : wearable_.cross_domain_capture(wear_seg, rng);
    feat_va = extractor_.extract(vib_va);
    feat_wear = extractor_.extract(vib_wear);
  }
  const double s = detector_.score(feat_wear, feat_va);
  if (trace != nullptr) {
    trace->features_va = std::move(feat_va);
    trace->features_wearable = std::move(feat_wear);
  }
  return s;
}

DetectionResult DefenseSystem::detect(const Signal& va_recording,
                                      const Signal& wearable_recording,
                                      const Segmenter* segmenter, Rng& rng,
                                      PipelineTrace* trace) const {
  const double s =
      score(va_recording, wearable_recording, segmenter, rng, trace);
  return DetectionResult{s, s < detector_.threshold()};
}

}  // namespace vibguard::core
