#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>

#include "common/alloc_counter.hpp"
#include "common/error.hpp"

namespace vibguard::core {

const char* mode_name(DefenseMode mode) {
  switch (mode) {
    case DefenseMode::kFull: return "full";
    case DefenseMode::kVibrationBaseline: return "vibration_baseline";
    case DefenseMode::kAudioBaseline: return "audio_baseline";
  }
  VIBGUARD_UNREACHABLE();
}

const char* score_status_name(ScoreStatus status) {
  switch (status) {
    case ScoreStatus::kOk: return "ok";
    case ScoreStatus::kIndeterminate: return "indeterminate";
    case ScoreStatus::kError: return "error";
    case ScoreStatus::kDeadlineExceeded: return "deadline_exceeded";
  }
  VIBGUARD_UNREACHABLE();
}

DefenseSystem::DefenseSystem(DefenseConfig config)
    : config_(std::move(config)),
      wearable_(config_.wearable),
      sync_(config_.sync),
      extractor_(config_.features),
      detector_(config_.detection_threshold) {}

double DefenseSystem::score(const Signal& va_recording,
                            const Signal& wearable_recording,
                            const Segmenter* segmenter, Rng& rng,
                            PipelineTrace* trace) const {
  // Workspace-less compatibility path: one warm workspace per thread keeps
  // the historical signature allocation-free too.
  static thread_local Workspace workspace;
  return score(va_recording, wearable_recording, segmenter, rng, workspace,
               trace);
}

double DefenseSystem::score(const Signal& va_recording,
                            const Signal& wearable_recording,
                            const Segmenter* segmenter, Rng& rng,
                            Workspace& workspace, PipelineTrace* trace,
                            const Deadline* deadline) const {
  VIBGUARD_REQUIRE(!va_recording.empty() && !wearable_recording.empty(),
                   "both recordings must be non-empty");
  VIBGUARD_REQUIRE(
      config_.mode != DefenseMode::kFull || segmenter != nullptr,
      "full mode requires a segmenter");

  PipelineContext ctx;
  ctx.config = &config_;
  ctx.wearable = &wearable_;
  ctx.sync = &sync_;
  ctx.extractor = &extractor_;
  ctx.detector = &detector_;
  ctx.va_in = &va_recording;
  ctx.wear_in = &wearable_recording;
  ctx.segmenter = segmenter;
  ctx.rng = &rng;
  ctx.ws = &workspace;
  ctx.trace = trace;
  ctx.deadline = deadline;

  if (trace != nullptr) trace->begin_run();
  workspace.quality.clear();
  workspace.current_stage = "";
  workspace.deadline_expired = false;

  using Clock = std::chrono::steady_clock;
  const auto run_start = Clock::now();
  std::size_t samples_in = va_recording.size() + wearable_recording.size();
  for (const Stage* stage : stage_sequence(config_.mode)) {
    // Cooperative cancellation: the budget is checked between stages only,
    // so an expired trial ends cleanly at a stage boundary (the workspace
    // holds no partial state the next run would observe) and a null
    // deadline costs nothing.
    if (deadline != nullptr && deadline->expired()) {
      workspace.deadline_expired = true;
      ctx.score = kIndeterminateScore;
      break;
    }
    const std::uint64_t allocs_before = allocation_count();
    const auto stage_start = Clock::now();
    ctx.stage_samples_out = 0;
    workspace.current_stage = stage->name();
    stage->run(ctx);
    const auto stage_end = Clock::now();
    if (trace != nullptr) {
      StageTrace record;
      record.name = stage->name();
      record.start_us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(stage_start -
                                                                run_start)
              .count());
      record.wall_us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(stage_end -
                                                                stage_start)
              .count());
      record.samples_in = samples_in;
      record.samples_out = ctx.stage_samples_out;
      record.allocations = allocation_count() - allocs_before;
      trace->stages.push_back(record);
    }
    samples_in = ctx.stage_samples_out;
    // The quality gate decided the trial cannot be scored trustworthily:
    // skip the remaining stages and report the sentinel.
    if (ctx.halted) {
      ctx.score = kIndeterminateScore;
      break;
    }
  }

  if (trace != nullptr) {
    trace->features_va = workspace.feat_va;
    trace->features_wearable = workspace.feat_wear;
    trace->quality = workspace.quality;
  }
  return ctx.score;
}

ScoreOutcome DefenseSystem::try_score(const Signal& va_recording,
                                      const Signal& wearable_recording,
                                      const Segmenter* segmenter, Rng& rng,
                                      Workspace& workspace,
                                      PipelineTrace* trace,
                                      const Deadline* deadline) const {
  ScoreOutcome outcome;
  // The plain API treats empty inputs as caller errors; here they are a
  // deployment reality (absent wearable capture, zero-length upload) and
  // map to a structured indeterminate outcome.
  if (va_recording.empty() || wearable_recording.empty()) {
    outcome.status = ScoreStatus::kIndeterminate;
    outcome.reason = "empty_input";
    outcome.quality.scoreable = false;
    outcome.quality.reason = "empty_input";
    return outcome;
  }
  workspace.current_stage = "precheck";  // config errors throw before stage 1
  // A throw before the stage driver's own clear() (e.g. a missing
  // segmenter) must not leak the previous trial's quality report — or its
  // deadline flag — out of a reused workspace.
  workspace.quality.clear();
  workspace.deadline_expired = false;
  try {
    const double s = score(va_recording, wearable_recording, segmenter, rng,
                           workspace, trace, deadline);
    outcome.quality = workspace.quality;
    if (workspace.deadline_expired) {
      outcome.status = ScoreStatus::kDeadlineExceeded;
      outcome.reason = "deadline_exceeded";
    } else if (is_indeterminate_score(s)) {
      outcome.status = ScoreStatus::kIndeterminate;
      outcome.reason = workspace.quality.scoreable
                           ? "degenerate_features"
                           : workspace.quality.reason;
    } else {
      outcome.status = ScoreStatus::kOk;
      outcome.score = s;
    }
  } catch (const std::exception& e) {
    outcome.status = ScoreStatus::kError;
    outcome.reason = workspace.current_stage;
    outcome.error = e.what();
    outcome.quality = workspace.quality;
  }
  return outcome;
}

void DefenseSystem::score_batch(std::span<const ScoreRequest> requests,
                                std::span<double> out, Workspace& workspace,
                                PipelineTrace* trace,
                                PipelineStats* stats) const {
  VIBGUARD_REQUIRE(out.size() == requests.size(),
                   "output span must match the request count");
  // Stats need per-stage records even when the caller did not ask for a
  // trace; route through a local reusable one in that case.
  PipelineTrace local_trace;
  PipelineTrace* sink =
      trace != nullptr ? trace : (stats != nullptr ? &local_trace : nullptr);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ScoreRequest& req = requests[i];
    Rng rng = req.rng;  // each request scores from its own stream copy
    out[i] = score(*req.va, *req.wearable, req.segmenter, rng, workspace,
                   sink, req.deadline);
    if (stats != nullptr) stats->add(*sink);
  }
}

void DefenseSystem::score_batch(std::span<const ScoreRequest> requests,
                                std::span<double> out, ThreadPool& pool,
                                std::span<Workspace> workspaces) const {
  VIBGUARD_REQUIRE(out.size() == requests.size(),
                   "output span must match the request count");
  const std::size_t needed = std::max<std::size_t>(1, pool.num_threads());
  VIBGUARD_REQUIRE(workspaces.size() >= needed,
                   "need one workspace per pool worker");
  pool.parallel_for_indexed(
      requests.size(), [&](std::size_t worker, std::size_t i) {
        const ScoreRequest& req = requests[i];
        Rng rng = req.rng;
        out[i] = score(*req.va, *req.wearable, req.segmenter, rng,
                       workspaces[worker], nullptr, req.deadline);
      });
}

void DefenseSystem::score_batch(std::span<const ScoreRequest> requests,
                                std::span<ScoreOutcome> out,
                                Workspace& workspace, PipelineTrace* trace,
                                PipelineStats* stats) const {
  VIBGUARD_REQUIRE(out.size() == requests.size(),
                   "output span must match the request count");
  PipelineTrace local_trace;
  PipelineTrace* sink =
      trace != nullptr ? trace : (stats != nullptr ? &local_trace : nullptr);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ScoreRequest& req = requests[i];
    Rng rng = req.rng;  // each request scores from its own stream copy
    out[i] = try_score(*req.va, *req.wearable, req.segmenter, rng, workspace,
                       sink, req.deadline);
    if (stats != nullptr) stats->add(*sink);
  }
}

void DefenseSystem::score_batch(std::span<const ScoreRequest> requests,
                                std::span<ScoreOutcome> out, ThreadPool& pool,
                                std::span<Workspace> workspaces) const {
  VIBGUARD_REQUIRE(out.size() == requests.size(),
                   "output span must match the request count");
  const std::size_t needed = std::max<std::size_t>(1, pool.num_threads());
  VIBGUARD_REQUIRE(workspaces.size() >= needed,
                   "need one workspace per pool worker");
  pool.parallel_for_indexed(
      requests.size(), [&](std::size_t worker, std::size_t i) {
        const ScoreRequest& req = requests[i];
        Rng rng = req.rng;
        out[i] = try_score(*req.va, *req.wearable, req.segmenter, rng,
                           workspaces[worker], nullptr, req.deadline);
      });
}

DetectionResult DefenseSystem::detect(const Signal& va_recording,
                                      const Signal& wearable_recording,
                                      const Segmenter* segmenter, Rng& rng,
                                      PipelineTrace* trace) const {
  const double s =
      score(va_recording, wearable_recording, segmenter, rng, trace);
  return DetectionResult{s, s < detector_.threshold()};
}

}  // namespace vibguard::core
