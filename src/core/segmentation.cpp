#include "core/segmentation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vibguard::core {

OracleSegmenter::OracleSegmenter(std::vector<speech::PhonemeSpan> alignment,
                                 std::set<std::string> sensitive)
    : alignment_(std::move(alignment)), sensitive_(std::move(sensitive)) {}

std::vector<SampleRange> OracleSegmenter::segment(
    const Signal& audio, std::size_t timeline_offset) const {
  std::vector<SampleRange> out;
  segment_into(audio, timeline_offset, out);
  return out;
}

void OracleSegmenter::segment_into(const Signal& audio,
                                   std::size_t timeline_offset,
                                   std::vector<SampleRange>& out) const {
  out.clear();
  for (const auto& span : alignment_) {
    if (sensitive_.count(span.symbol) == 0) continue;
    if (span.end <= timeline_offset) continue;
    const std::size_t begin =
        span.begin > timeline_offset ? span.begin - timeline_offset : 0;
    const std::size_t end =
        std::min(span.end - timeline_offset, audio.size());
    if (begin < end) out.push_back({begin, end});
  }
  normalize_ranges_in_place(out);
}

BrnnSegmenter::BrnnSegmenter(Config config, std::uint64_t seed)
    : config_(config), brnn_(config.brnn, seed) {
  VIBGUARD_REQUIRE(config_.brnn.in_dim == config_.mfcc.num_coeffs,
                   "BRNN input dim must match MFCC order");
  VIBGUARD_REQUIRE(config_.brnn.num_classes == 2,
                   "segmentation is binary classification");
}

nn::LabeledSequence BrnnSegmenter::make_sequence(
    const Signal& audio, std::span<const speech::PhonemeSpan> alignment,
    const std::set<std::string>& sensitive) const {
  nn::LabeledSequence seq;
  seq.features = dsp::compute_mfcc(audio, config_.mfcc);
  const double fs = audio.sample_rate();
  const auto frame_len = static_cast<std::size_t>(
      std::round(config_.mfcc.frame_seconds * fs));
  const auto hop =
      static_cast<std::size_t>(std::round(config_.mfcc.hop_seconds * fs));

  seq.labels.resize(seq.features.size(), 0);
  for (std::size_t f = 0; f < seq.labels.size(); ++f) {
    const std::size_t begin = f * hop;
    const std::size_t end = begin + frame_len;
    // A frame is positive when sensitive phonemes cover most of it.
    std::size_t covered = 0;
    for (const auto& span : alignment) {
      if (sensitive.count(span.symbol) == 0) continue;
      const std::size_t lo = std::max(begin, span.begin);
      const std::size_t hi = std::min(end, span.end);
      if (lo < hi) covered += hi - lo;
    }
    seq.labels[f] = covered * 2 >= frame_len ? 1 : 0;
  }
  return seq;
}

double BrnnSegmenter::train_epoch(std::span<const nn::LabeledSequence> data,
                                  std::size_t batch_size, Rng& rng) {
  VIBGUARD_REQUIRE(batch_size > 0, "batch size must be positive");
  // Shuffled index order each epoch.
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }
  double total = 0.0;
  std::size_t batches = 0;
  std::vector<nn::LabeledSequence> batch;
  for (std::size_t i = 0; i < order.size(); ++i) {
    batch.push_back(data[order[i]]);
    if (batch.size() == batch_size || i + 1 == order.size()) {
      total += brnn_.train_batch(batch);
      ++batches;
      batch.clear();
    }
  }
  return batches > 0 ? total / static_cast<double>(batches) : 0.0;
}

double BrnnSegmenter::evaluate(
    std::span<const nn::LabeledSequence> data) const {
  return brnn_.evaluate(data);
}

std::vector<double> BrnnSegmenter::frame_probabilities(
    const Signal& audio) const {
  const auto features = dsp::compute_mfcc(audio, config_.mfcc);
  const auto probs = brnn_.predict(features);
  std::vector<double> out(probs.size());
  for (std::size_t t = 0; t < probs.size(); ++t) out[t] = probs[t][1];
  return out;
}

std::vector<SampleRange> BrnnSegmenter::segment(
    const Signal& audio, std::size_t /*timeline_offset*/) const {
  const auto probs = frame_probabilities(audio);
  const double fs = audio.sample_rate();
  const auto frame_len = static_cast<std::size_t>(
      std::round(config_.mfcc.frame_seconds * fs));
  const auto hop =
      static_cast<std::size_t>(std::round(config_.mfcc.hop_seconds * fs));

  std::vector<SampleRange> ranges;
  std::size_t run_start = 0;
  std::size_t run_len = 0;
  for (std::size_t f = 0; f <= probs.size(); ++f) {
    const bool on = f < probs.size() && probs[f] >= config_.decision_threshold;
    if (on) {
      if (run_len == 0) run_start = f;
      ++run_len;
    } else if (run_len > 0) {
      if (run_len >= config_.min_run_frames) {
        ranges.push_back(
            {run_start * hop, (run_start + run_len - 1) * hop + frame_len});
      }
      run_len = 0;
    }
  }
  return normalize_ranges(std::move(ranges));
}

Signal extract_ranges(const Signal& audio,
                      std::span<const SampleRange> ranges) {
  Signal out;
  extract_ranges_into(audio, ranges, out);
  return out;
}

void extract_ranges_into(const Signal& audio,
                         std::span<const SampleRange> ranges, Signal& out) {
  out.reset(audio.sample_rate());
  for (const SampleRange& r : ranges) {
    const std::size_t begin = std::min(r.begin, audio.size());
    const std::size_t end = std::min(r.end, audio.size());
    if (begin < end) {
      out.append(audio.samples().subspan(begin, end - begin));
    }
  }
}

std::vector<SampleRange> normalize_ranges(std::vector<SampleRange> ranges,
                                          std::size_t min_len) {
  normalize_ranges_in_place(ranges, min_len);
  return ranges;
}

void normalize_ranges_in_place(std::vector<SampleRange>& ranges,
                               std::size_t min_len) {
  std::sort(ranges.begin(), ranges.end(),
            [](const SampleRange& a, const SampleRange& b) {
              return a.begin < b.begin;
            });
  // Compact merged ranges toward the front; the write cursor never passes
  // the read cursor, so the merge is safe in place.
  std::size_t w = 0;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const SampleRange r = ranges[i];
    if (r.end <= r.begin) continue;
    if (w > 0 && r.begin <= ranges[w - 1].end) {
      ranges[w - 1].end = std::max(ranges[w - 1].end, r.end);
    } else {
      ranges[w++] = r;
    }
  }
  ranges.resize(w);
  std::erase_if(ranges, [min_len](const SampleRange& r) {
    return r.end - r.begin < min_len;
  });
}

}  // namespace vibguard::core
