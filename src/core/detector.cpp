#include "core/detector.hpp"

#include "common/error.hpp"

namespace vibguard::core {

CorrelationDetector::CorrelationDetector(double threshold)
    : threshold_(threshold) {
  VIBGUARD_REQUIRE(threshold >= -1.0 && threshold <= 1.0,
                   "correlation threshold must be in [-1, 1]");
}

double CorrelationDetector::score(const dsp::Spectrogram& wearable,
                                  const dsp::Spectrogram& va) const {
  const dsp::Correlation2dResult r = dsp::correlation_2d_ex(wearable, va);
  // Degenerate feature pairs (empty overlap, zero variance, NaN/Inf
  // contamination) have no meaningful correlation: return the documented
  // sentinel rather than a fake 0, so a plain threshold comparison fails
  // closed and quality-aware callers can report "indeterminate".
  return r.degenerate ? kIndeterminateScore : r.value;
}

DetectionResult CorrelationDetector::detect(const dsp::Spectrogram& wearable,
                                            const dsp::Spectrogram& va) const {
  const double s = score(wearable, va);
  return DetectionResult{s, s < threshold_};
}

}  // namespace vibguard::core
