#include "core/detector.hpp"

#include "common/error.hpp"

namespace vibguard::core {

CorrelationDetector::CorrelationDetector(double threshold)
    : threshold_(threshold) {
  VIBGUARD_REQUIRE(threshold >= -1.0 && threshold <= 1.0,
                   "correlation threshold must be in [-1, 1]");
}

double CorrelationDetector::score(const dsp::Spectrogram& wearable,
                                  const dsp::Spectrogram& va) const {
  return dsp::correlation_2d(wearable, va);
}

DetectionResult CorrelationDetector::detect(const dsp::Spectrogram& wearable,
                                            const dsp::Spectrogram& va) const {
  const double s = score(wearable, va);
  return DetectionResult{s, s < threshold_};
}

}  // namespace vibguard::core
