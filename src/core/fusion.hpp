// Score-level fusion of the vibration-domain system with the audio-domain
// correlation (a "future work"-style extension): the two views fail in
// different ways — the audio domain keys on SNR, the vibration domain on
// the barrier's frequency selectivity — so a convex combination of their
// scores can only help when their errors are decorrelated.
#pragma once

#include "core/pipeline.hpp"

namespace vibguard::core {

struct FusionConfig {
  DefenseConfig base;          ///< shared device/sync/feature settings
  double vibration_weight = 0.8;  ///< weight of the full system's score
  double detection_threshold = 0.45;
};

/// Weighted fusion of the full vibration-domain pipeline and the
/// audio-domain baseline.
class FusionScorer {
 public:
  explicit FusionScorer(FusionConfig config = {});

  const FusionConfig& config() const { return config_; }

  /// Fused score: w * vibration_score + (1-w) * audio_score.
  double score(const Signal& va_recording, const Signal& wearable_recording,
               const Segmenter* segmenter, Rng& rng) const;

  DetectionResult detect(const Signal& va_recording,
                         const Signal& wearable_recording,
                         const Segmenter* segmenter, Rng& rng) const;

 private:
  FusionConfig config_;
  DefenseSystem vibration_;
  DefenseSystem audio_;
};

}  // namespace vibguard::core
