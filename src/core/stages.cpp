#include "core/stages.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/pipeline.hpp"

namespace vibguard::core {

const QualityStage& QualityStage::instance() {
  static const QualityStage stage;
  return stage;
}

void QualityStage::run(PipelineContext& ctx) const {
  Workspace& ws = *ctx.ws;
  assess_pair(*ctx.va_in, *ctx.wear_in, ctx.config->quality, ws.quality);
  if (!ws.quality.scoreable) ctx.halted = true;
  // Pass-through for the instrumentation dataflow chain: the inputs reach
  // the next stage unmodified.
  ctx.stage_samples_out = ctx.va_in->size() + ctx.wear_in->size();
}

const SyncStage& SyncStage::instance() {
  static const SyncStage stage;
  return stage;
}

void SyncStage::run(PipelineContext& ctx) const {
  Workspace& ws = *ctx.ws;
  ctx.delay_s = ctx.sync->synchronize_into(*ctx.va_in, *ctx.wear_in,
                                           ws.va_sync, ws.wear_sync,
                                           ws.scratch.corr);
  ctx.timeline_offset = static_cast<std::size_t>(
      std::max(0.0, std::round(ctx.delay_s * ctx.va_in->sample_rate())));
  ctx.cur_va = &ws.va_sync;
  ctx.cur_wear = &ws.wear_sync;
  if (ctx.trace != nullptr) {
    ctx.trace->estimated_delay_s = ctx.delay_s;
    // Baseline modes score the whole synchronized command; SegmentStage
    // narrows this in kFull mode.
    ctx.trace->segment_seconds = ws.va_sync.duration();
  }

  // Post-alignment quality flags, routed through the same gate as the raw
  // input assessment. A delay estimate pinned at the edge of the
  // cross-correlation search window usually means the true offset lies
  // beyond it (e.g. severe clock drift) and the "alignment" is arbitrary;
  // an overlap shorter than the minimum duration cannot carry a score.
  const QualityConfig& qcfg = ctx.config->quality;
  const double rate = ctx.va_in->sample_rate();
  std::uint32_t extra = 0;
  if (ws.va_sync.duration() < qcfg.min_duration_s) extra |= kIssueTooShort;
  if (rate > 0.0 &&
      std::abs(ctx.delay_s) >= ctx.sync->config().max_search_s - 1.5 / rate) {
    extra |= kIssueDesync;
  }
  if (extra != 0) {
    ws.quality.issues |= extra;
    apply_gate(qcfg, ws.quality);
    if (!ws.quality.scoreable) ctx.halted = true;
  }
  ctx.stage_samples_out = ws.va_sync.size() + ws.wear_sync.size();
}

const SegmentStage& SegmentStage::instance() {
  static const SegmentStage stage;
  return stage;
}

void SegmentStage::run(PipelineContext& ctx) const {
  Workspace& ws = *ctx.ws;
  ctx.segmenter->segment_into(*ctx.cur_va, ctx.timeline_offset, ws.ranges);
  if (ctx.trace != nullptr) ctx.trace->num_ranges = ws.ranges.size();
  extract_ranges_into(*ctx.cur_va, ws.ranges, ws.va_seg);
  // If segmentation found nothing, or the command is so short that the
  // sensitive segments cannot fill an analysis window, fall back to the
  // whole command rather than rejecting outright.
  if (ws.va_seg.duration() >= ctx.config->min_segment_seconds) {
    extract_ranges_into(*ctx.cur_wear, ws.ranges, ws.wear_seg);
    ctx.cur_va = &ws.va_seg;
    ctx.cur_wear = &ws.wear_seg;
  }
  if (ctx.trace != nullptr) {
    ctx.trace->segment_seconds = ctx.cur_va->duration();
  }
  ctx.stage_samples_out = ctx.cur_va->size() + ctx.cur_wear->size();
}

const VibrationCaptureStage& VibrationCaptureStage::instance() {
  static const VibrationCaptureStage stage;
  return stage;
}

void VibrationCaptureStage::run(PipelineContext& ctx) const {
  Workspace& ws = *ctx.ws;
  const DefenseConfig& cfg = *ctx.config;
  // VA stream first, wearable stream second — the rng draw order the
  // deterministic experiment runner depends on.
  if (cfg.user_activity.has_value()) {
    ctx.wearable->cross_domain_capture_into(
        *ctx.cur_va, *cfg.user_activity, *ctx.rng, ws.vib_va, ws.scratch);
    ctx.wearable->cross_domain_capture_into(*ctx.cur_wear, *cfg.user_activity,
                                            *ctx.rng, ws.vib_wear,
                                            ws.scratch);
  } else {
    ctx.wearable->cross_domain_capture_into(*ctx.cur_va, *ctx.rng, ws.vib_va,
                                            ws.scratch);
    ctx.wearable->cross_domain_capture_into(*ctx.cur_wear, *ctx.rng,
                                            ws.vib_wear, ws.scratch);
  }
  ctx.cur_va = &ws.vib_va;
  ctx.cur_wear = &ws.vib_wear;
  ctx.stage_samples_out = ws.vib_va.size() + ws.vib_wear.size();
}

const FeatureStage& FeatureStage::instance() {
  static const FeatureStage stage;
  return stage;
}

void FeatureStage::run(PipelineContext& ctx) const {
  Workspace& ws = *ctx.ws;
  ctx.extractor->extract_into(*ctx.cur_va, ws.feat_va, ws.scratch);
  ctx.extractor->extract_into(*ctx.cur_wear, ws.feat_wear, ws.scratch);
  ctx.stage_samples_out =
      ws.feat_va.values().size() + ws.feat_wear.values().size();
}

const AudioFeatureStage& AudioFeatureStage::instance() {
  static const AudioFeatureStage stage;
  return stage;
}

void AudioFeatureStage::run(PipelineContext& ctx) const {
  Workspace& ws = *ctx.ws;
  const DefenseConfig& cfg = *ctx.config;
  dsp::stft_power_into(*ctx.cur_va, cfg.audio_window, cfg.audio_hop,
                       ws.feat_va);
  dsp::stft_power_into(*ctx.cur_wear, cfg.audio_window, cfg.audio_hop,
                       ws.feat_wear);
  ws.feat_va.normalize_by_max();
  ws.feat_wear.normalize_by_max();
  ctx.stage_samples_out =
      ws.feat_va.values().size() + ws.feat_wear.values().size();
}

const CorrelateStage& CorrelateStage::instance() {
  static const CorrelateStage stage;
  return stage;
}

void CorrelateStage::run(PipelineContext& ctx) const {
  Workspace& ws = *ctx.ws;
  ctx.score = ctx.detector->score(ws.feat_wear, ws.feat_va);
  ctx.stage_samples_out = 1;
}

std::span<const Stage* const> stage_sequence(DefenseMode mode) {
  static const Stage* const kFullSequence[] = {
      &QualityStage::instance(),          &SyncStage::instance(),
      &SegmentStage::instance(),          &VibrationCaptureStage::instance(),
      &FeatureStage::instance(),          &CorrelateStage::instance(),
  };
  static const Stage* const kVibrationSequence[] = {
      &QualityStage::instance(), &SyncStage::instance(),
      &VibrationCaptureStage::instance(), &FeatureStage::instance(),
      &CorrelateStage::instance(),
  };
  static const Stage* const kAudioSequence[] = {
      &QualityStage::instance(), &SyncStage::instance(),
      &AudioFeatureStage::instance(), &CorrelateStage::instance(),
  };
  switch (mode) {
    case DefenseMode::kFull: return kFullSequence;
    case DefenseMode::kVibrationBaseline: return kVibrationSequence;
    case DefenseMode::kAudioBaseline: return kAudioSequence;
  }
  VIBGUARD_UNREACHABLE();
}

}  // namespace vibguard::core
