// Related-work comparators (paper Sec. VIII) and threshold calibration.
//
// Two prior wearable/second-factor verification approaches are implemented
// as baselines so their failure modes against thru-barrier attacks can be
// measured head-to-head with VibGuard:
//
//   WearIdVerifier  — WearID-style [30]: the wearable's accelerometer
//     directly captures the LIVE sound field (no replay); its vibration
//     features are compared with the VA recording converted to the
//     vibration domain. Works only when the user speaks close to the
//     wearable (<~30 cm per the paper) because airborne sound barely
//     shakes an accelerometer at distance.
//
//   TwoMicVerifier  — 2MA-style [27]: verifies the command's source
//     position from the level difference between the wearable's and the
//     VA's recordings (the user is expected near the wearable). Cheap, but
//     fooled by any attacker whose geometry mimics the expected level
//     ratio.
//
// ThresholdCalibrator picks an operating threshold from legitimate-only
// enrollment scores (the training-free deployment recipe: no attack data
// needed).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/signal.hpp"
#include "core/vibration_features.hpp"
#include "device/wearable.hpp"

namespace vibguard::core {

/// WearID-style direct vibration verification.
class WearIdVerifier {
 public:
  struct Config {
    device::WearableConfig wearable = device::fossil_gen5();
    VibrationFeatureConfig features;
  };

  WearIdVerifier();  // default configuration
  explicit WearIdVerifier(Config config);

  /// Similarity score: direct accelerometer capture of the sound field at
  /// the wearable vs. the VA recording converted through the replay path.
  /// Higher = more consistent = more likely legitimate.
  double score(const Signal& sound_at_wearable, const Signal& va_recording,
               Rng& rng) const;

 private:
  Config config_;
  device::Wearable wearable_;
  VibrationFeatureExtractor extractor_;
};

/// 2MA-style two-microphone level-difference verification.
class TwoMicVerifier {
 public:
  struct Config {
    /// Expected wearable-minus-VA level difference for a legitimate user
    /// (mouth ~0.4 m from the wrist vs ~2 m from the VA ≈ +14 dB).
    double expected_level_delta_db = 14.0;
    /// Gaussian tolerance around the expectation.
    double tolerance_db = 6.0;
  };

  TwoMicVerifier();  // default configuration
  explicit TwoMicVerifier(Config config);

  /// Score in (0, 1]: 1 when the observed level difference matches the
  /// expected geometry exactly, falling off with mismatch.
  double score(const Signal& wearable_recording,
               const Signal& va_recording) const;

 private:
  Config config_;
};

/// Picks a detection threshold from legitimate-only enrollment scores:
/// the q-quantile minus a safety margin. No attack data required.
class ThresholdCalibrator {
 public:
  explicit ThresholdCalibrator(double quantile = 0.05, double margin = 0.05);

  /// Returns the calibrated threshold; requires at least 5 scores.
  double calibrate(std::vector<double> legit_scores) const;

 private:
  double quantile_;
  double margin_;
};

}  // namespace vibguard::core
