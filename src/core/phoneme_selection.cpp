#include "core/phoneme_selection.hpp"

#include <algorithm>
#include <cmath>

#include "acoustics/propagation.hpp"
#include "common/db.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/spectral.hpp"

namespace vibguard::core {
namespace {

/// Fixed analysis grid for vibration spectra: 2 Hz spacing over [0, 100] Hz.
constexpr std::size_t kNumBins = 51;
constexpr double kMaxHz = 100.0;

std::vector<double> smooth(const std::vector<double>& xs, std::size_t width) {
  if (width <= 1) return xs;
  std::vector<double> out(xs.size(), 0.0);
  const auto half = static_cast<std::ptrdiff_t>(width / 2);
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(xs.size());
       ++i) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::ptrdiff_t j = i - half; j <= i + half; ++j) {
      if (j >= 0 && j < static_cast<std::ptrdiff_t>(xs.size())) {
        acc += xs[static_cast<std::size_t>(j)];
        ++n;
      }
    }
    out[static_cast<std::size_t>(i)] = acc / static_cast<double>(n);
  }
  return out;
}

}  // namespace

const PhonemeSelectionInfo& SelectionResult::info(
    const std::string& symbol) const {
  for (const auto& p : phonemes) {
    if (p.symbol == symbol) return p;
  }
  throw InvalidArgument("no selection info for phoneme: " + symbol);
}

PhonemeSelector::PhonemeSelector(SelectionConfig config,
                                 device::Wearable wearable)
    : config_(std::move(config)), wearable_(std::move(wearable)) {
  VIBGUARD_REQUIRE(config_.alpha > 0.0, "alpha must be positive");
  VIBGUARD_REQUIRE(!config_.spl_levels.empty(),
                   "at least one SPL level required");
}

double PhonemeSelector::calibrate_threshold(Rng& rng, double factor) const {
  // Capture the accelerometer's response to quiet ambient noise several
  // times and take the Q3 of the maximum FFT magnitudes over the evaluation
  // band, mirroring the paper's "empirically determined based on the FFT
  // magnitude of ambient noises". The sub-5 Hz artifact region is excluded,
  // as in select().
  const double bin_hz = kMaxHz / static_cast<double>(kNumBins - 1);
  const std::size_t first_bin =
      static_cast<std::size_t>(std::ceil(config_.min_eval_hz / bin_hz));
  std::vector<double> maxima;
  for (int i = 0; i < 20; ++i) {
    // Ambient at ~35 dB SPL: the quiet-room floor.
    Signal ambient(rng.gaussian_vector(16000, spl_to_rms(35.0)), 16000.0);
    const Signal recorded = wearable_.record(ambient, rng);
    const Signal vib = wearable_.cross_domain_capture(recorded, rng);
    auto mag = dsp::magnitude_spectrum_resampled(vib, kMaxHz, kNumBins);
    const double len_norm =
        std::sqrt(static_cast<double>(vib.size()) /
                  wearable_.accelerometer().config().sample_rate);
    for (double& v : mag) v *= len_norm;
    maxima.push_back(
        max_value(std::span<const double>(mag).subspan(first_bin)));
  }
  return factor * third_quartile(maxima);
}

std::vector<double> PhonemeSelector::q3_spectrum(
    const std::vector<speech::PhonemeSegment>& segments,
    const acoustics::Barrier* barrier, Rng& rng) const {
  // Per-bin collection across segments and SPL levels.
  std::vector<std::vector<double>> per_bin(kNumBins);
  for (const auto& seg : segments) {
    for (double spl : config_.spl_levels) {
      // Common gain (not per-segment normalization): playing "at 75 dB"
      // sets the level of an average phoneme while preserving natural
      // loudness differences — the property Criterion I keys on for loud
      // vowels like /aa/ and /ao/.
      Signal played = seg.audio;
      played.scale(spl_to_rms(spl) / kReferenceRms);
      if (barrier != nullptr) played = barrier->transmit(played);
      played = acoustics::propagate(played, config_.playback_distance_m);
      const Signal recorded = wearable_.record(played, rng);
      const Signal vib = wearable_.cross_domain_capture(recorded, rng);
      auto mag = dsp::magnitude_spectrum_resampled(vib, kMaxHz, kNumBins);
      // Length normalization to a 1 s reference: |X|/n underestimates the
      // noise floor of long captures relative to short ones (noise bins
      // scale as 1/sqrt(n)); scaling by sqrt(n/200) makes the noise floor
      // duration-invariant so short plosive bursts and long vowels are
      // thresholded on equal terms.
      const double len_norm = std::sqrt(
          static_cast<double>(vib.size()) /
          wearable_.accelerometer().config().sample_rate);
      for (std::size_t b = 0; b < kNumBins; ++b) {
        per_bin[b].push_back(mag[b] * len_norm);
      }
    }
  }
  std::vector<double> q3(kNumBins, 0.0);
  for (std::size_t b = 0; b < kNumBins; ++b) {
    if (!per_bin[b].empty()) q3[b] = third_quartile(per_bin[b]);
  }
  return smooth(q3, config_.smooth_bins);
}

SelectionResult PhonemeSelector::select(const speech::PhonemeCorpus& corpus,
                                        const acoustics::Barrier& barrier,
                                        Rng& rng) const {
  SelectionResult result;
  result.alpha = config_.alpha;
  result.bin_hz = kMaxHz / static_cast<double>(kNumBins - 1);

  const std::size_t first_bin = static_cast<std::size_t>(
      std::ceil(config_.min_eval_hz / result.bin_hz));

  for (const speech::Phoneme& p : speech::common_phonemes()) {
    const auto segments = corpus.segments(p.symbol);

    PhonemeSelectionInfo info;
    info.symbol = p.symbol;
    info.q3_with_barrier = q3_spectrum(segments, &barrier, rng);
    info.q3_without_barrier = q3_spectrum(segments, nullptr, rng);

    std::span<const double> adv(info.q3_with_barrier);
    std::span<const double> usr(info.q3_without_barrier);
    adv = adv.subspan(first_bin);
    usr = usr.subspan(first_bin);

    info.max_q3_with_barrier = max_value(adv);
    info.min_q3_without_barrier = min_value(usr);
    info.passes_criterion1 = info.max_q3_with_barrier < config_.alpha;
    info.passes_criterion2 = info.min_q3_without_barrier > config_.alpha;
    info.selected = info.passes_criterion1 && info.passes_criterion2;
    if (info.selected) result.sensitive.insert(p.symbol);
    result.phonemes.push_back(std::move(info));
  }
  return result;
}

}  // namespace vibguard::core
