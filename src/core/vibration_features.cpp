#include "core/vibration_features.hpp"

#include "common/error.hpp"
#include <algorithm>
#include <cmath>

#include "dsp/filter.hpp"

namespace vibguard::core {

VibrationFeatureExtractor::VibrationFeatureExtractor(
    VibrationFeatureConfig config)
    : config_(config) {
  VIBGUARD_REQUIRE(config_.window_size > 0 && config_.hop > 0,
                   "window and hop must be positive");
}

dsp::Spectrogram VibrationFeatureExtractor::extract(
    const Signal& vibration) const {
  dsp::Spectrogram out;
  dsp::Scratch scratch;
  extract_into(vibration, out, scratch);
  return out;
}

void VibrationFeatureExtractor::extract_into(const Signal& vibration,
                                             dsp::Spectrogram& out,
                                             dsp::Scratch& scratch) const {
  const Signal* input = &vibration;
  if (config_.highpass_hz > 0.0 && !vibration.empty()) {
    // Zero-phase FFT-domain high-pass: body motion (e.g. walking at 2 Hz)
    // can be 10-50x stronger than the acoustic vibration, and an IIR this
    // steep at 0.02*fs rings for hundreds of milliseconds; the frequency-
    // domain filter removes the interference without a transient.
    const double hp = config_.highpass_hz;
    dsp::apply_gain_curve(
        vibration,
        [hp](double f) {
          return 1.0 / (1.0 + std::pow(hp / std::max(f, 1e-6), 12.0));
        },
        scratch.filtered, scratch.cwork);
    input = &scratch.filtered;
  }
  dsp::stft_power_into(*input, config_.window_size, config_.hop, out,
                       config_.window);
  if (config_.crop_below_hz > 0.0) {
    out.crop_low_frequencies_in_place(config_.crop_below_hz);
  }
  if (config_.normalize) out.normalize_by_max();
}

StreamingVibrationFeatures::StreamingVibrationFeatures(
    VibrationFeatureConfig config)
    : config_(config) {
  VIBGUARD_REQUIRE(config_.window_size > 0 && config_.hop > 0,
                   "window and hop must be positive");
}

void StreamingVibrationFeatures::begin(double sample_rate) {
  stft_.reset(config_.window_size, config_.hop, config_.window);
  // Same crop rule as Spectrogram::crop_low_frequencies_in_place: drop
  // every bin whose center frequency (bin0 at 0 Hz) is <= the cutoff.
  drop_bins_ = 0;
  if (config_.crop_below_hz > 0.0 && sample_rate > 0.0) {
    const double bin_hz = sample_rate / static_cast<double>(config_.window_size);
    const std::size_t bins = config_.window_size / 2 + 1;
    while (drop_bins_ < bins &&
           static_cast<double>(drop_bins_) * bin_hz <= config_.crop_below_hz) {
      ++drop_bins_;
    }
  }
}

std::size_t StreamingVibrationFeatures::push(std::span<const double> samples) {
  return stft_.push(samples);
}

}  // namespace vibguard::core
