// The staged defense pipeline: composable stage graph + per-thread
// workspaces.
//
// DefenseSystem::score used to be one monolithic function; it is now a
// driver that walks a declarative sequence of Stage objects. Each stage
// reads and writes a PipelineContext — the inputs, collaborator components,
// dataflow cursors and scratch storage for one scored command — so stages
// are stateless singletons shared by every DefenseSystem instance
// (DefenseSystem itself stays copyable/movable).
//
// The three DefenseModes are stage sequences:
//
//   kFull              quality → sync → segment → vibration_capture →
//                      features → correlate
//   kVibrationBaseline quality → sync → vibration_capture → features →
//                      correlate
//   kAudioBaseline     quality → sync → audio_features → correlate
//
// QualityStage (core/quality.hpp) measures the raw input pair and — per the
// configured QualityConfig::Gate — may halt the run: the driver then skips
// the remaining stages and reports kIndeterminateScore instead of scoring
// garbage. SyncStage raises additional flags (too-short overlap, delay
// pinned at the search-window edge) through the same gate.
//
// A Workspace owns every reusable buffer one scoring thread needs. After a
// few warm-up commands all buffers reach their high-water capacity and
// repeated scoring performs zero steady-state heap allocations (measured by
// bench_score_batch via common/alloc_counter.hpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/signal.hpp"
#include "core/detector.hpp"
#include "core/quality.hpp"
#include "core/segmentation.hpp"
#include "core/trace.hpp"
#include "core/vibration_features.hpp"
#include "device/sync.hpp"
#include "device/wearable.hpp"
#include "dsp/scratch.hpp"
#include "dsp/stft.hpp"

namespace vibguard::core {

enum class DefenseMode;   // defined in core/pipeline.hpp
struct DefenseConfig;     // defined in core/pipeline.hpp

/// Reusable per-thread storage for the staged pipeline. Not thread-safe;
/// give each scoring thread its own instance. Every field is fully
/// overwritten before being read on each run, so a Workspace carries no
/// state between commands — only heap capacity.
struct Workspace {
  dsp::Scratch scratch;

  // SyncStage outputs: the delay-aligned equal-length recordings.
  Signal va_sync;
  Signal wear_sync;

  // SegmentStage outputs: sensitive-phoneme ranges and the concatenated
  // segment streams.
  std::vector<SampleRange> ranges;
  Signal va_seg;
  Signal wear_seg;

  // VibrationCaptureStage outputs: 200 Hz accelerometer captures.
  Signal vib_va;
  Signal vib_wear;

  // FeatureStage / AudioFeatureStage outputs.
  dsp::Spectrogram feat_va;
  dsp::Spectrogram feat_wear;

  // QualityStage output (SyncStage may add flags); cleared by the driver at
  // the start of every run.
  QualityReport quality;

  /// The stage currently executing (static name), for structured error
  /// reports when a stage throws. Maintained by the pipeline driver.
  const char* current_stage = "";

  /// Set by the driver when the run's Deadline expired at a stage boundary
  /// (cooperative cancellation); try_score maps it to
  /// ScoreStatus::kDeadlineExceeded. Cleared at the start of every run.
  bool deadline_expired = false;
};

/// Everything one pipeline run reads and writes. Collaborator pointers are
/// borrowed from the DefenseSystem for the duration of the run; dataflow
/// cursors (`cur_va` / `cur_wear`) point into the Workspace (or at the
/// inputs) and advance as stages execute.
struct PipelineContext {
  // Collaborators (set by the driver, never null during a run).
  const DefenseConfig* config = nullptr;
  const device::Wearable* wearable = nullptr;
  const device::SyncChannel* sync = nullptr;
  const VibrationFeatureExtractor* extractor = nullptr;
  const CorrelationDetector* detector = nullptr;

  // Inputs.
  const Signal* va_in = nullptr;
  const Signal* wear_in = nullptr;
  const Segmenter* segmenter = nullptr;  ///< required in kFull mode
  Rng* rng = nullptr;

  // Scratch storage.
  Workspace* ws = nullptr;

  // Optional trace sink (may be null).
  PipelineTrace* trace = nullptr;

  /// Optional per-run time budget (may be null = unbounded). The driver
  /// checks it at stage boundaries only — cooperative cancellation, never
  /// mid-stage — and a null deadline reads no clock at all.
  const Deadline* deadline = nullptr;

  // Dataflow cursors: the current (VA, wearable) signal pair.
  const Signal* cur_va = nullptr;
  const Signal* cur_wear = nullptr;

  /// Samples trimmed from the front of the VA recording by synchronization
  /// (the segmenters' timeline offset).
  std::size_t timeline_offset = 0;
  double delay_s = 0.0;

  /// The pipeline's result, written by CorrelateStage.
  double score = 0.0;

  /// Set by a stage when the quality gate decides the trial cannot be
  /// scored trustworthily; the driver stops executing stages and reports
  /// kIndeterminateScore (the structured reason lives in ws->quality).
  bool halted = false;

  /// Set by each stage for instrumentation: elements it produced. The
  /// driver feeds it forward as the next stage's samples_in.
  std::size_t stage_samples_out = 0;
};

/// A pipeline stage: a stateless transformation of the PipelineContext.
/// Implementations hold no per-run state, so one shared instance serves
/// every thread and every DefenseSystem.
class Stage {
 public:
  virtual ~Stage() = default;
  virtual const char* name() const = 0;
  virtual void run(PipelineContext& ctx) const = 0;
};

/// Signal-quality gate (see core/quality.hpp): measures both raw inputs
/// (clipping, gaps, DC offset, dead channels, non-finite contamination,
/// too-short captures) into Workspace::quality and halts the run when the
/// configured gate deems the pair unscoreable. Always first in every mode.
class QualityStage final : public Stage {
 public:
  const char* name() const override { return "quality"; }
  void run(PipelineContext& ctx) const override;
  static const QualityStage& instance();
};

/// Cross-device synchronization (paper Sec. VI-A): estimates the network
/// delay and aligns both recordings.
class SyncStage final : public Stage {
 public:
  const char* name() const override { return "sync"; }
  void run(PipelineContext& ctx) const override;
  static const SyncStage& instance();
};

/// Sensitive-phoneme segmentation (paper Sec. V): keeps only the
/// barrier-effect-sensitive ranges, falling back to the whole command when
/// the selection is shorter than DefenseConfig::min_segment_seconds.
class SegmentStage final : public Stage {
 public:
  const char* name() const override { return "segment"; }
  void run(PipelineContext& ctx) const override;
  static const SegmentStage& instance();
};

/// Cross-domain capture (paper Sec. IV-A): replays both streams through the
/// wearable's speaker and records the induced vibration at 200 Hz.
class VibrationCaptureStage final : public Stage {
 public:
  const char* name() const override { return "vib_capture"; }
  void run(PipelineContext& ctx) const override;
  static const VibrationCaptureStage& instance();
};

/// Vibration-domain feature extraction (paper Sec. VI-B).
class FeatureStage final : public Stage {
 public:
  const char* name() const override { return "features"; }
  void run(PipelineContext& ctx) const override;
  static const FeatureStage& instance();
};

/// Audio-domain spectrogram features (the paper's audio-only baseline).
class AudioFeatureStage final : public Stage {
 public:
  const char* name() const override { return "audio_features"; }
  void run(PipelineContext& ctx) const override;
  static const AudioFeatureStage& instance();
};

/// 2-D correlation scoring (paper Sec. VI-C, Eq. 6).
class CorrelateStage final : public Stage {
 public:
  const char* name() const override { return "correlate"; }
  void run(PipelineContext& ctx) const override;
  static const CorrelateStage& instance();
};

/// The declarative stage composition for `mode` (static storage; never
/// empty).
std::span<const Stage* const> stage_sequence(DefenseMode mode);

}  // namespace vibguard::core
