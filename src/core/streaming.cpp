#include "core/streaming.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/alloc_counter.hpp"
#include "common/error.hpp"

namespace vibguard::core {
namespace {

/// Fork label base for per-chunk capture rngs. Labeled by the absolute
/// capture-chunk index over the (segment-)stream, so the provisional
/// capture is a pure function of the block grid — invariant to how the
/// samples were chunked into pushes.
constexpr std::uint64_t kStreamBlockLabel = 0x53747242ULL;   // "StrB"

/// Fork label for the whole-prefix (coarse) checkpoint captures. Distinct
/// from the segment label so the two provisional evidence channels draw
/// independent capture-noise streams.
constexpr std::uint64_t kStreamCoarseLabel = 0x53747243ULL;  // "StrC"

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* stream_verdict_name(StreamVerdict verdict) {
  switch (verdict) {
    case StreamVerdict::kPending: return "pending";
    case StreamVerdict::kAttackEarly: return "attack_early";
    case StreamVerdict::kAcceptEarly: return "accept_early";
    case StreamVerdict::kFailedClosed: return "failed_closed";
    case StreamVerdict::kCompleted: return "completed";
  }
  VIBGUARD_UNREACHABLE();
}

namespace {

VibrationFeatureConfig provisional_features(const DefenseSystem& system,
                                            const StreamingConfig& config) {
  VibrationFeatureConfig f = system.config().features;
  f.window_size = config.provisional_window;
  f.hop = config.provisional_hop;
  return f;
}

}  // namespace

StreamingPipeline::StreamingPipeline(const DefenseSystem& system,
                                     StreamingConfig config)
    : system_(&system),
      config_(config),
      feats_va_(system.config().features),
      feats_wear_(system.config().features),
      prov_extractor_(provisional_features(system, config)) {
  VIBGUARD_REQUIRE(config_.block_samples > 0, "block size must be positive");
}

void StreamingPipeline::set_config(const StreamingConfig& config) {
  VIBGUARD_REQUIRE(!active_, "cannot reconfigure an active stream");
  VIBGUARD_REQUIRE(config.block_samples > 0, "block size must be positive");
  VIBGUARD_REQUIRE(config.provisional_window > 0 && config.provisional_hop > 0,
                   "provisional feature grid must be positive");
  config_ = config;
  prov_extractor_ =
      VibrationFeatureExtractor(provisional_features(*system_, config));
}

void StreamingPipeline::begin(double sample_rate, const Segmenter* segmenter,
                              const Rng& rng, PipelineTrace* trace,
                              const Deadline* deadline) {
  VIBGUARD_REQUIRE(sample_rate > 0.0, "sample rate must be positive");
  VIBGUARD_REQUIRE(
      system_->config().mode != DefenseMode::kFull || segmenter != nullptr,
      "full mode requires a segmenter");
  VIBGUARD_REQUIRE(!config_.stop.enabled || config_.stop.confidence != nullptr,
                   "an enabled stopping rule needs a ConfidenceModel");
  active_ = true;
  finalized_ = false;
  segmenter_ = segmenter;
  trace_ = trace;
  deadline_ = deadline;
  base_rng_ = rng;
  rate_ = sample_rate;
  min_gap_ = min_gap_samples(system_->config().quality, sample_rate);
  run_start_ns_ = now_ns();

  va_buf_.reset(sample_rate);
  wear_buf_.reset(sample_rate);
  census_va_.reset();
  census_wear_.reset();

  delay_estimated_ = false;
  delay_s_ = 0.0;
  va_begin_ = 0;
  wear_begin_ = 0;
  blocks_done_ = 0;
  pearson_.reset();
  paired_frames_ = 0;
  coarse_frames_ = 0;
  verdict_ = StreamVerdict::kPending;
  provisional_ = kIndeterminateScore;
  coarse_ = kIndeterminateScore;
  posterior_ = 0.0;
  streak_side_ = 0;
  streak_len_ = 0;
  evaluated_this_push_ = false;
  feats_started_ = false;
  seg_va_.reset(sample_rate);
  seg_wear_.reset(sample_rate);
  seg_captured_ = 0;
  seg_chunks_ = 0;
  if (system_->config().mode == DefenseMode::kAudioBaseline) {
    audio_va_.reset(system_->config().audio_window,
                    system_->config().audio_hop);
    audio_wear_.reset(system_->config().audio_window,
                      system_->config().audio_hop);
  }
  if (trace_ != nullptr) trace_->begin_run();
}

void StreamingPipeline::record_push(const char* name, std::uint64_t start_ns,
                                    std::uint64_t allocs_before,
                                    std::size_t samples_in,
                                    std::size_t samples_out) {
  if (trace_ == nullptr) return;
  StageTrace record;
  record.name = name;
  record.start_us = (start_ns - run_start_ns_) / 1000;
  record.wall_us = (now_ns() - start_ns) / 1000;
  record.samples_in = samples_in;
  record.samples_out = samples_out;
  record.allocations = allocation_count() - allocs_before;
  trace_->stages.push_back(record);
}

StreamStatus StreamingPipeline::push(std::span<const double> va,
                                     std::span<const double> wearable) {
  VIBGUARD_REQUIRE(active_, "push before begin()");
  // A zero-length push is a pure no-op: no census update, no trace record,
  // no deadline or block work — the stream state is exactly as if the call
  // never happened (callers polling with empty frames must not perturb the
  // per-push accounting).
  if (va.empty() && wearable.empty()) return status();
  evaluated_this_push_ = false;

  // Ingest: buffer everything (the exact finalize pass needs the complete
  // signals regardless of what the provisional path does) and advance the
  // running quality census.
  {
    const std::uint64_t t0 = now_ns();
    const std::uint64_t allocs = allocation_count();
    va_buf_.append(va);
    wear_buf_.append(wearable);
    census_va_.update(va, min_gap_);
    census_wear_.update(wearable, min_gap_);
    record_push("stream_ingest", t0, allocs, va.size() + wearable.size(),
                va_buf_.size() + wear_buf_.size());
  }

  if (verdict_ == StreamVerdict::kPending) {
    // Fail closed mid-stream on the one defect that is both fatal under
    // every gating level and monotone (more data can never cure it):
    // non-finite contamination. Everything else (too-short, low-signal,
    // clipping ratios...) can only be judged on the complete capture.
    const std::uint32_t fatal =
        fatal_issue_mask(system_->config().quality.gate);
    if ((fatal & kIssueNonFinite) != 0 &&
        (census_va_.non_finite > 0 || census_wear_.non_finite > 0)) {
      verdict_ = StreamVerdict::kFailedClosed;
    }
  }

  if (verdict_ == StreamVerdict::kPending &&
      (deadline_ == nullptr || !deadline_->expired())) {
    const std::size_t before = blocks_done_;
    const std::uint64_t t0 = now_ns();
    const std::uint64_t allocs = allocation_count();
    process_blocks();
    if (blocks_done_ != before) {
      record_push("stream_score", t0, allocs,
                  (blocks_done_ - before) * config_.block_samples,
                  paired_frames_);
    }
  }
  return status();
}

StreamStatus StreamingPipeline::status() const {
  StreamStatus s;
  s.verdict = verdict_;
  s.provisional_score = provisional_;
  s.coarse_score = coarse_;
  s.posterior_attack = posterior_;
  s.blocks = blocks_done_;
  s.paired_frames = paired_frames_;
  s.coarse_frames = coarse_frames_;
  s.evaluated_this_push = evaluated_this_push_;
  return s;
}

void StreamingPipeline::process_blocks() {
  // One-shot delay estimate over the warm-up prefix: the batch pipeline
  // cross-correlates the whole pair, which a stream cannot do; a prefix
  // longer than the sync search window captures the same lag peak.
  if (!delay_estimated_) {
    const auto warmup = static_cast<std::size_t>(
        std::max(1.0, config_.sync_warmup_s * rate_));
    if (va_buf_.size() < warmup || wear_buf_.size() < warmup) return;
    prefix_va_.assign_slice(va_buf_, 0, warmup);
    prefix_wear_.assign_slice(wear_buf_, 0, warmup);
    delay_s_ = device::SyncChannel(system_->config().sync)
                   .estimate_delay_s(prefix_va_, prefix_wear_,
                                     scratch_.corr);
    // Same trim rule as SyncChannel::synchronize_into: positive shift drops
    // the samples the wearable missed from the VA front.
    const auto shift =
        static_cast<std::ptrdiff_t>(std::llround(delay_s_ * rate_));
    if (shift > 0) {
      va_begin_ = static_cast<std::size_t>(shift);
    } else if (shift < 0) {
      wear_begin_ = static_cast<std::size_t>(-shift);
    }
    delay_estimated_ = true;
    if (trace_ != nullptr) trace_->estimated_delay_s = delay_s_;
  }

  const std::size_t avail_va =
      va_buf_.size() > va_begin_ ? va_buf_.size() - va_begin_ : 0;
  const std::size_t avail_wear =
      wear_buf_.size() > wear_begin_ ? wear_buf_.size() - wear_begin_ : 0;
  const std::size_t blocks =
      std::min(avail_va, avail_wear) / config_.block_samples;
  while (blocks_done_ < blocks && verdict_ == StreamVerdict::kPending) {
    if (deadline_ != nullptr && deadline_->expired()) return;
    process_one_block(blocks_done_);
    ++blocks_done_;
    evaluate_rule();
  }
}

void StreamingPipeline::process_one_block(std::size_t block) {
  const DefenseConfig& cfg = system_->config();
  const std::size_t b = config_.block_samples;
  const std::size_t va0 = va_begin_ + block * b;
  const std::size_t wear0 = wear_begin_ + block * b;

  if (cfg.mode == DefenseMode::kAudioBaseline) {
    // Audio features stream directly: the batch stage is STFT + per-operand
    // max-normalization, and Pearson is invariant to per-operand scale.
    audio_va_.push(va_buf_.samples().subspan(va0, b));
    audio_wear_.push(wear_buf_.samples().subspan(wear0, b));
  } else {
    // Vibration path. First the streaming counterpart of SegmentStage
    // (kFull only): query the segmenter over the trimmed VA prefix up to
    // this block's end and append the parts of the block that sensitive
    // phonemes cover to the concatenated segment streams. The prefix end is
    // fixed by the block grid, so the appended content — and everything
    // downstream — stays invariant to the push schedule. Unlike the batch
    // stage there is no whole-command fallback for sparse segmentations: a
    // stream cannot know the final segment total, so uncovered content
    // simply never reaches the capture (the rule waits for more frames).
    if (cfg.mode == DefenseMode::kFull) {
      prefix_va_.assign_slice(va_buf_, va_begin_, va0 + b);
      segmenter_->segment_into(prefix_va_, va_begin_, ranges_);
      // Only this block's slice of the coverage is appended: ranges over a
      // growing prefix only ever extend at the tail (the oracle clamps
      // alignment spans to the prefix), so earlier blocks already appended
      // everything before lo0.
      const std::size_t lo0 = block * b;
      for (const SampleRange& r : ranges_) {
        const std::size_t lo = std::max(r.begin, lo0);
        const std::size_t hi = std::min(r.end, lo0 + b);
        if (lo >= hi) continue;
        seg_va_.append(va_buf_.samples().subspan(va_begin_ + lo, hi - lo));
        seg_wear_.append(
            wear_buf_.samples().subspan(wear_begin_ + lo, hi - lo));
      }
    } else {
      seg_va_.append(va_buf_.samples().subspan(va0, b));
      seg_wear_.append(wear_buf_.samples().subspan(wear0, b));
    }

    const device::Wearable& wearable = system_->wearable();
    if (cfg.mode == DefenseMode::kFull) {
      // Checkpoint evaluation: once at least one more block's worth of
      // segment content has accumulated, run the batch capture/feature/
      // correlate stages over the WHOLE segment prefix with a fixed rng
      // fork. Fragmenting the cross-domain capture into per-chunk calls
      // corrupts the 200 Hz vibration stream with per-chunk resampler
      // transients and destroys the provisional score's discrimination, so
      // the full-mode provisional path trades a little recomputation
      // (the segment prefix is short) for batch-grade capture semantics.
      // The fork label is constant, so each checkpoint replays the same
      // draw stream over a longer input — a pure function of the segment
      // prefix, invariant to the push schedule.
      if (seg_va_.size() > seg_captured_) {
        seg_captured_ = seg_va_.size();
        Rng rb = base_rng_.fork(kStreamBlockLabel);
        Workspace& ws = workspace_;
        if (cfg.user_activity.has_value()) {
          wearable.cross_domain_capture_into(seg_va_, *cfg.user_activity, rb,
                                             ws.vib_va, scratch_);
          wearable.cross_domain_capture_into(seg_wear_, *cfg.user_activity,
                                             rb, ws.vib_wear, scratch_);
        } else {
          wearable.cross_domain_capture_into(seg_va_, rb, ws.vib_va,
                                             scratch_);
          wearable.cross_domain_capture_into(seg_wear_, rb, ws.vib_wear,
                                             scratch_);
        }
        prov_extractor_.extract_into(ws.vib_va, ws.feat_va, scratch_);
        prov_extractor_.extract_into(ws.vib_wear, ws.feat_wear, scratch_);
        provisional_ = system_->detector().score(ws.feat_wear, ws.feat_va);
        paired_frames_ =
            std::min(ws.feat_va.frames(), ws.feat_wear.frames());
      }

      // Coarse checkpoint: the same capture/feature/correlate chain over
      // the WHOLE aligned prefix, without phoneme selection — the
      // vibration-baseline view of the stream. It is weaker evidence per
      // frame (the paper's motivation for segmentation), but it does not
      // have to wait for sensitive phonemes, so it is what makes exits
      // possible before the command's sensitive content has been spoken.
      {
        prefix_wear_.assign_slice(wear_buf_, wear_begin_, wear0 + b);
        Rng rc = base_rng_.fork(kStreamCoarseLabel);
        Workspace& ws = workspace_;
        if (cfg.user_activity.has_value()) {
          wearable.cross_domain_capture_into(prefix_va_, *cfg.user_activity,
                                             rc, ws.vib_va, scratch_);
          wearable.cross_domain_capture_into(prefix_wear_, *cfg.user_activity,
                                             rc, ws.vib_wear, scratch_);
        } else {
          wearable.cross_domain_capture_into(prefix_va_, rc, ws.vib_va,
                                             scratch_);
          wearable.cross_domain_capture_into(prefix_wear_, rc, ws.vib_wear,
                                             scratch_);
        }
        prov_extractor_.extract_into(ws.vib_va, ws.feat_va, scratch_);
        prov_extractor_.extract_into(ws.vib_wear, ws.feat_wear, scratch_);
        coarse_ = system_->detector().score(ws.feat_wear, ws.feat_va);
        coarse_frames_ =
            std::min(ws.feat_va.frames(), ws.feat_wear.frames());
      }
      return;
    }

    // Baseline vibration mode: consume the aligned stream in fixed-size
    // chunks, capturing each through the wearable's cross-domain channel
    // with a fork labeled by the absolute chunk index (VA stream first,
    // wearable second — the batch stage's draw order) and feeding the
    // 200 Hz vibration samples to the online feature accumulators.
    while (seg_va_.size() - seg_captured_ >= b) {
      block_va_.assign_slice(seg_va_, seg_captured_, seg_captured_ + b);
      block_wear_.assign_slice(seg_wear_, seg_captured_, seg_captured_ + b);
      Rng rb = base_rng_.fork(kStreamBlockLabel + seg_chunks_);
      if (cfg.user_activity.has_value()) {
        wearable.cross_domain_capture_into(block_va_, *cfg.user_activity, rb,
                                           vib_block_, scratch_);
      } else {
        wearable.cross_domain_capture_into(block_va_, rb, vib_block_,
                                           scratch_);
      }
      if (!feats_started_) {
        feats_va_.begin(vib_block_.sample_rate());
        feats_wear_.begin(vib_block_.sample_rate());
        feats_started_ = true;
      }
      feats_va_.push(vib_block_.samples());
      if (cfg.user_activity.has_value()) {
        wearable.cross_domain_capture_into(block_wear_, *cfg.user_activity,
                                           rb, vib_block_, scratch_);
      } else {
        wearable.cross_domain_capture_into(block_wear_, rb, vib_block_,
                                           scratch_);
      }
      feats_wear_.push(vib_block_.samples());
      seg_captured_ += b;
      ++seg_chunks_;
    }
  }

  // Fold the newly paired feature frames into the running Pearson moments
  // (wearable operand first, matching CorrelateStage's argument order —
  // Pearson is symmetric, but keeping the order makes comparisons easy).
  if (cfg.mode == DefenseMode::kAudioBaseline) {
    const std::size_t bins = audio_va_.bins();
    const std::size_t paired =
        std::min(audio_va_.frames(), audio_wear_.frames());
    for (; paired_frames_ < paired; ++paired_frames_) {
      pearson_.add(audio_wear_.row(paired_frames_),
                   audio_va_.row(paired_frames_), bins);
    }
  } else if (feats_started_) {
    const std::size_t bins = feats_va_.bins();
    const std::size_t paired =
        std::min(feats_va_.frames(), feats_wear_.frames());
    for (; paired_frames_ < paired; ++paired_frames_) {
      pearson_.add(feats_wear_.row(paired_frames_),
                   feats_va_.row(paired_frames_), bins);
    }
  }
}

namespace {

/// Log-odds of a posterior, clamped away from the infinities a saturated
/// calibration produces.
double clamped_logit(double p) {
  p = std::clamp(p, 1e-12, 1.0 - 1e-12);
  return std::log(p / (1.0 - p));
}

/// Evidence weight of a correlation estimated from `frames` feature
/// frames: frames / (frames + prior), in [0, 1).
double evidence_weight(std::size_t frames, double prior) {
  if (prior <= 0.0) return 1.0;
  return static_cast<double>(frames) / (static_cast<double>(frames) + prior);
}

}  // namespace

void StreamingPipeline::evaluate_rule() {
  if (system_->config().mode != DefenseMode::kFull) {
    // Baseline modes read the online Pearson accumulator; full mode's
    // provisional_/coarse_ were refreshed by the last block's checkpoints.
    const dsp::Correlation2dResult r = pearson_.value();
    provisional_ = r.degenerate ? kIndeterminateScore : r.value;
  }
  evaluated_this_push_ = true;

  // Fuse the available calibrated evidence channels: sum of per-channel
  // log-odds, each shrunk toward even by its frame count. With one channel
  // and no shrinkage this degenerates to posterior_attack(provisional_).
  const StoppingRule& rule = config_.stop;
  const auto channel_logit = [&rule](double p) {
    double l = clamped_logit(p);
    if (rule.max_channel_logit > 0.0) {
      l = std::clamp(l, -rule.max_channel_logit, rule.max_channel_logit);
    }
    return l;
  };
  double logit = 0.0;
  bool have_evidence = false;
  if (rule.confidence != nullptr && !is_indeterminate_score(provisional_)) {
    logit += evidence_weight(paired_frames_, rule.frames_prior) *
             channel_logit(rule.confidence->posterior_attack(provisional_));
    have_evidence = true;
  }
  if (rule.coarse_confidence != nullptr && !is_indeterminate_score(coarse_)) {
    logit += evidence_weight(coarse_frames_, rule.frames_prior) *
             channel_logit(
                 rule.coarse_confidence->posterior_attack(coarse_));
    have_evidence = true;
  }
  if (!have_evidence) return;
  posterior_ = 1.0 / (1.0 + std::exp(-logit));

  // Gate on the EVIDENCE horizon — the end of this boundary's block on the
  // VA timeline — not on how many samples happen to be buffered. When the
  // sync warm-up releases several backlogged blocks inside one push, the
  // early boundaries carry early horizons and fail the gate individually;
  // a burst of correlated tiny-prefix checkpoints can never satisfy the
  // consecutive-boundary requirement by itself.
  const double evidence_s =
      static_cast<double>(va_begin_ + blocks_done_ * config_.block_samples) /
      rate_;
  if (evidence_s < rule.min_stream_s ||
      std::max(paired_frames_, coarse_frames_) < rule.min_frames) {
    return;
  }
  // Streak bookkeeping runs whether or not the rule is armed, so a sweep
  // replaying recorded posteriors sees exactly what a live rule would do.
  const int side = posterior_ >= rule.attack_confidence
                       ? 1
                       : (1.0 - posterior_ >= rule.accept_confidence ? -1 : 0);
  if (side != 0 && side == streak_side_) {
    ++streak_len_;
  } else {
    streak_side_ = side;
    streak_len_ = side != 0 ? 1 : 0;
  }
  if (!rule.enabled) return;
  if (side != 0 && streak_len_ >= rule.consecutive) {
    verdict_ = side > 0 ? StreamVerdict::kAttackEarly
                        : StreamVerdict::kAcceptEarly;
  }
}

StreamOutcome StreamingPipeline::finalize() {
  if (!active_) {
    // Idempotent: a second finalize() returns the cached outcome of the
    // first without re-running the batch rescore or appending anything to
    // the trace (which would double-count PipelineStats trials downstream).
    VIBGUARD_REQUIRE(finalized_, "finalize before begin()");
    return last_outcome_;
  }
  active_ = false;
  finalized_ = true;

  StreamOutcome out;
  out.verdict =
      verdict_ == StreamVerdict::kPending ? StreamVerdict::kCompleted
                                          : verdict_;
  out.early_exit = verdict_ == StreamVerdict::kAttackEarly ||
                   verdict_ == StreamVerdict::kAcceptEarly;
  out.provisional_score = provisional_;
  out.coarse_score = coarse_;
  out.posterior_attack = posterior_;
  out.pushed_va_samples = va_buf_.size();
  out.blocks = blocks_done_;

  const QualityConfig& qcfg = system_->config().quality;
  const bool exact_pass =
      !out.early_exit && (config_.finalize == StreamingConfig::Finalize::
                              kExactBatch ||
                          verdict_ == StreamVerdict::kFailedClosed);
  if (exact_pass) {
    // The batch-compatibility pass: re-score the accumulated buffers with
    // an untouched copy of the begin()-time rng. Bit-identical to batch
    // try_score on the same signals for any push schedule. A failed-closed
    // stream takes this path too — the batch quality gate halts before any
    // expensive stage and produces the authoritative structured report.
    Rng rng = base_rng_;
    out.outcome = system_->try_score(
        va_buf_, wear_buf_, segmenter_, rng, workspace_,
        trace_ != nullptr ? &finalize_trace_ : nullptr, deadline_);
    if (trace_ != nullptr) {
      // Fold the batch pass's records and artifacts after the accumulated
      // per-push records (finalize_trace_ begin_run()s itself inside
      // score(), which is why the stream cannot hand it the user trace).
      trace_->append(finalize_trace_);
      trace_->estimated_delay_s = finalize_trace_.estimated_delay_s;
      trace_->num_ranges = finalize_trace_.num_ranges;
      trace_->segment_seconds = finalize_trace_.segment_seconds;
      trace_->quality = finalize_trace_.quality;
      std::swap(trace_->features_va, finalize_trace_.features_va);
      std::swap(trace_->features_wearable, finalize_trace_.features_wearable);
    }
    last_outcome_ = out;
    return out;
  }

  // Anytime outcome (early exit or kProvisional finalize): report the
  // incremental score with a quality report from the running census.
  out.outcome.quality.clear();
  out.outcome.quality.va = census_va_.finalize(va_buf_, qcfg);
  out.outcome.quality.wearable = census_wear_.finalize(wear_buf_, qcfg);
  out.outcome.quality.issues =
      out.outcome.quality.va.issues | out.outcome.quality.wearable.issues;
  apply_gate(qcfg, out.outcome.quality);
  if (is_indeterminate_score(provisional_)) {
    out.outcome.status = ScoreStatus::kIndeterminate;
    out.outcome.reason = out.outcome.quality.scoreable
                             ? "degenerate_features"
                             : out.outcome.quality.reason;
    out.outcome.score = kIndeterminateScore;
  } else {
    out.outcome.status = ScoreStatus::kOk;
    out.outcome.score = provisional_;
  }
  if (trace_ != nullptr) trace_->quality = out.outcome.quality;
  last_outcome_ = out;
  return out;
}

}  // namespace vibguard::core
