#include "core/quality.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace vibguard::core {
namespace {

/// Amplitude below which a sample counts as "zero" for gap detection.
constexpr double kZeroEps = 1e-9;

struct IssueName {
  std::uint32_t flag;
  const char* name;
  const char* reason;  ///< phrasing used for QualityReport::reason
};

// Priority order: when several fatal issues are raised, the first match
// becomes the report's reason.
constexpr IssueName kIssueNames[] = {
    {kIssueNonFinite, "non_finite", "non_finite_samples"},
    {kIssueTooShort, "too_short", "too_short"},
    {kIssueLowSignal, "low_signal", "low_signal"},
    {kIssueDesync, "desync", "desync"},
    {kIssueClipping, "clipping", "clipping"},
    {kIssueGaps, "gaps", "gaps"},
    {kIssueStuck, "stuck", "stuck_sensor"},
    {kIssueDcOffset, "dc_offset", "dc_offset"},
};

}  // namespace

std::string quality_issue_names(std::uint32_t issues) {
  if (issues == 0) return "none";
  std::string out;
  for (const IssueName& entry : kIssueNames) {
    if ((issues & entry.flag) == 0) continue;
    if (!out.empty()) out += '+';
    out += entry.name;
  }
  return out.empty() ? "unknown" : out;
}

std::size_t min_gap_samples(const QualityConfig& cfg, double sample_rate) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.min_gap_s * sample_rate));
}

void StreamingCensus::update(std::span<const double> samples,
                             std::size_t min_gap) {
  // The loop body is the former assess_channel pass 1 verbatim, with its
  // state lifted into the struct: every accumulation is strictly
  // left-to-right, so any chunking of the input reproduces the whole-signal
  // walk bit for bit.
  for (const double x : samples) {
    ++total;
    if (!std::isfinite(x)) {
      ++non_finite;
      // A non-finite sample terminates both runs.
      if (zero_run >= min_gap) {
        gap_samples += zero_run;
        longest_gap = std::max(longest_gap, zero_run);
      }
      zero_run = 0;
      longest_const =
          std::max(longest_const, have_prev ? const_run : std::size_t{0});
      have_prev = false;
      continue;
    }
    ++finite_count;
    sum += x;
    sum_sq += x * x;
    peak = std::max(peak, std::abs(x));

    if (std::abs(x) <= kZeroEps) {
      ++zero_run;
    } else {
      if (zero_run >= min_gap) {
        gap_samples += zero_run;
        longest_gap = std::max(longest_gap, zero_run);
      }
      zero_run = 0;
    }

    if (have_prev && x == prev && std::abs(x) > kZeroEps) {
      ++const_run;
    } else {
      longest_const =
          std::max(longest_const, have_prev ? const_run : std::size_t{0});
      const_run = 1;
    }
    prev = x;
    have_prev = true;
  }
}

ChannelQuality StreamingCensus::finalize(const Signal& signal,
                                         const QualityConfig& cfg) const {
  ChannelQuality q;
  q.samples = signal.size();
  q.duration_s = signal.duration();
  q.non_finite = non_finite;
  if (signal.empty()) {
    q.issues |= kIssueTooShort | kIssueLowSignal;
    return q;
  }
  const double rate = signal.sample_rate();
  const std::size_t min_gap = min_gap_samples(cfg, rate);
  const std::size_t n = signal.size();

  // Close the trailing zero/constant runs on locals so the census itself
  // remains updatable (a provisional mid-stream report must not disturb the
  // carried state).
  std::size_t gaps = gap_samples, top_gap = longest_gap;
  if (zero_run >= min_gap) {
    gaps += zero_run;
    top_gap = std::max(top_gap, zero_run);
  }
  const std::size_t top_const =
      std::max(longest_const, have_prev ? const_run : std::size_t{0});

  if (finite_count > 0) {
    const double inv = 1.0 / static_cast<double>(finite_count);
    q.dc_offset = sum * inv;
    q.rms = std::sqrt(sum_sq * inv);
    q.peak = peak;
  }
  q.gap_ratio = static_cast<double>(gaps) / static_cast<double>(n);
  q.longest_gap_s = rate > 0.0 ? static_cast<double>(top_gap) / rate : 0.0;
  q.stuck_ratio = static_cast<double>(top_const) / static_cast<double>(n);

  // Pass 2: clipping census needs the peak from pass 1.
  if (peak > 0.0) {
    const double clip_level = cfg.clip_level_fraction * peak;
    std::size_t clipped = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = signal[i];
      if (std::isfinite(x) && std::abs(x) >= clip_level) ++clipped;
    }
    q.clip_ratio = static_cast<double>(clipped) / static_cast<double>(n);
  }

  if (q.non_finite > 0) q.issues |= kIssueNonFinite;
  if (q.duration_s < cfg.min_duration_s) q.issues |= kIssueTooShort;
  if (q.rms < cfg.min_rms) q.issues |= kIssueLowSignal;
  if (q.clip_ratio > cfg.max_clip_ratio) q.issues |= kIssueClipping;
  if (q.gap_ratio > cfg.max_gap_ratio) q.issues |= kIssueGaps;
  if (q.rms > 0.0 && std::abs(q.dc_offset) > cfg.max_dc_fraction * q.rms) {
    q.issues |= kIssueDcOffset;
  }
  if (q.stuck_ratio > cfg.max_stuck_ratio) q.issues |= kIssueStuck;
  return q;
}

ChannelQuality assess_channel(const Signal& signal, const QualityConfig& cfg) {
  StreamingCensus census;
  if (!signal.empty()) {
    census.update(signal.samples(),
                  min_gap_samples(cfg, signal.sample_rate()));
  }
  return census.finalize(signal, cfg);
}

std::uint32_t fatal_issue_mask(QualityConfig::Gate gate) {
  switch (gate) {
    case QualityConfig::Gate::kOff:
      return 0;
    case QualityConfig::Gate::kPermissive:
      return kIssueNonFinite | kIssueTooShort | kIssueLowSignal;
    case QualityConfig::Gate::kStrict:
      return ~std::uint32_t{0};
  }
  return ~std::uint32_t{0};
}

void apply_gate(const QualityConfig& cfg, QualityReport& report) {
  report.fatal = report.issues & fatal_issue_mask(cfg.gate);
  report.scoreable = report.fatal == 0;
  report.reason = "ok";
  if (report.scoreable) return;
  for (const IssueName& entry : kIssueNames) {
    if ((report.fatal & entry.flag) != 0) {
      report.reason = entry.reason;
      return;
    }
  }
  report.reason = "unscoreable";
}

void assess_pair(const Signal& va, const Signal& wearable,
                 const QualityConfig& cfg, QualityReport& report) {
  report.clear();
  report.va = assess_channel(va, cfg);
  report.wearable = assess_channel(wearable, cfg);
  report.issues = report.va.issues | report.wearable.issues;
  apply_gate(cfg, report);
}

void QualityReport::clear() {
  va = ChannelQuality{};
  wearable = ChannelQuality{};
  issues = 0;
  fatal = 0;
  scoreable = true;
  reason = "ok";
}

std::string QualityReport::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s (issues=%s) va[rms=%.3g clip=%.0f%% gap=%.0f%%] "
                "wear[rms=%.3g clip=%.0f%% gap=%.0f%%]",
                scoreable ? "scoreable" : reason,
                quality_issue_names(issues).c_str(), va.rms,
                100.0 * va.clip_ratio, 100.0 * va.gap_ratio, wearable.rms,
                100.0 * wearable.clip_ratio, 100.0 * wearable.gap_ratio);
  return buf;
}

}  // namespace vibguard::core
