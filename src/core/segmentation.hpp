// Barrier-effect-sensitive phoneme segmentation (paper Sec. V-B).
//
// Given a voice-command recording, produce the sample ranges occupied by
// barrier-effect-sensitive phonemes so only those are replayed for
// cross-domain sensing. Two implementations:
//
//   OracleSegmenter — uses ground-truth phoneme alignment (the synthetic
//   corpus's stand-in for "reusing intermediate results of the speech
//   recognition pipeline on the VA system", which the paper suggests).
//
//   BrnnSegmenter — the paper's learned detector: 14th-order MFCCs on
//   25 ms / 10 ms frames restricted to 0–900 Hz, classified per frame by a
//   bidirectional LSTM (64 units) into sensitive / other.
#pragma once

#include <cstddef>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/signal.hpp"
#include "dsp/mel.hpp"
#include "nn/brnn.hpp"
#include "speech/command.hpp"

namespace vibguard::core {

/// Half-open sample range [begin, end).
struct SampleRange {
  std::size_t begin;
  std::size_t end;
};

/// Interface for sensitive-phoneme segmentation of a recording.
/// `timeline_offset` is the number of samples trimmed from the front of
/// `audio` relative to the original utterance timeline (set by the
/// synchronization step); implementations with external alignment use it.
class Segmenter {
 public:
  virtual ~Segmenter() = default;
  virtual std::vector<SampleRange> segment(
      const Signal& audio, std::size_t timeline_offset) const = 0;

  /// Allocation-aware variant writing into `out` (cleared first, capacity
  /// reused). The default implementation delegates to segment();
  /// implementations whose work is cheap enough to matter (OracleSegmenter)
  /// override it to fill `out` directly.
  virtual void segment_into(const Signal& audio, std::size_t timeline_offset,
                            std::vector<SampleRange>& out) const {
    out = segment(audio, timeline_offset);
  }
};

/// Ground-truth-alignment segmenter.
class OracleSegmenter : public Segmenter {
 public:
  OracleSegmenter(std::vector<speech::PhonemeSpan> alignment,
                  std::set<std::string> sensitive);

  std::vector<SampleRange> segment(const Signal& audio,
                                   std::size_t timeline_offset) const override;

  void segment_into(const Signal& audio, std::size_t timeline_offset,
                    std::vector<SampleRange>& out) const override;

 private:
  std::vector<speech::PhonemeSpan> alignment_;
  std::set<std::string> sensitive_;
};

/// MFCC + BiLSTM learned segmenter.
class BrnnSegmenter : public Segmenter {
 public:
  struct Config {
    dsp::MfccConfig mfcc;          ///< paper defaults (Sec. V-B)
    nn::BrnnConfig brnn;           ///< in_dim must equal mfcc.num_coeffs
    double decision_threshold = 0.5;  ///< P(sensitive) per frame
    std::size_t min_run_frames = 2;   ///< suppress single-frame blips
  };

  BrnnSegmenter(Config config, std::uint64_t seed);

  /// Converts aligned utterances into frame-labeled training sequences
  /// (label 1 where a sensitive phoneme covers the majority of the frame).
  nn::LabeledSequence make_sequence(
      const Signal& audio, std::span<const speech::PhonemeSpan> alignment,
      const std::set<std::string>& sensitive) const;

  /// One training epoch over `data` in mini-batches; returns mean loss.
  double train_epoch(std::span<const nn::LabeledSequence> data,
                     std::size_t batch_size, Rng& rng);

  /// Frame-level accuracy on labeled data.
  double evaluate(std::span<const nn::LabeledSequence> data) const;

  /// Per-frame sensitive-phoneme probabilities for a recording.
  std::vector<double> frame_probabilities(const Signal& audio) const;

  std::vector<SampleRange> segment(const Signal& audio,
                                   std::size_t timeline_offset) const override;

  const Config& config() const { return config_; }
  const nn::Brnn& model() const { return brnn_; }

 private:
  Config config_;
  nn::Brnn brnn_;
};

/// Concatenates the selected ranges of `audio` into one signal. Ranges are
/// clamped to the signal length; empty output yields an empty signal at the
/// same rate.
Signal extract_ranges(const Signal& audio,
                      std::span<const SampleRange> ranges);

/// Allocation-free overload: concatenates into `out`, reusing its capacity.
/// `out` must not alias `audio`.
void extract_ranges_into(const Signal& audio,
                         std::span<const SampleRange> ranges, Signal& out);

/// Merges overlapping/adjacent ranges and drops ranges shorter than
/// `min_len` samples.
std::vector<SampleRange> normalize_ranges(std::vector<SampleRange> ranges,
                                          std::size_t min_len = 0);

/// In-place variant of normalize_ranges (no allocation).
void normalize_ranges_in_place(std::vector<SampleRange>& ranges,
                               std::size_t min_len = 0);

}  // namespace vibguard::core
