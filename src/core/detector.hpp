// Thru-barrier attack detector based on 2-D correlation (paper Sec. VI-C).
//
// The 2-D Pearson correlation between the wearable's and the VA device's
// vibration-domain features is high for legitimate speech (both convert to
// consistent vibrations) and low for thru-barrier attacks (low-frequency-
// dominated sound excites mostly amplifier noise, decorrelating the two
// captures). A fixed threshold turns the score into a decision — no
// training data is required.
#pragma once

#include "dsp/stft.hpp"

namespace vibguard::core {

struct DetectionResult {
  double score;     ///< 2-D correlation in [-1, 1]; higher = more legitimate
  bool is_attack;   ///< score fell below the threshold
};

class CorrelationDetector {
 public:
  /// `threshold` is the minimum correlation accepted as legitimate.
  explicit CorrelationDetector(double threshold = 0.50);

  double threshold() const { return threshold_; }

  /// Similarity score of two feature spectrograms (Eq. 6). Operands are
  /// compared over their overlapping frame range.
  double score(const dsp::Spectrogram& wearable,
               const dsp::Spectrogram& va) const;

  DetectionResult detect(const dsp::Spectrogram& wearable,
                         const dsp::Spectrogram& va) const;

 private:
  double threshold_;
};

}  // namespace vibguard::core
