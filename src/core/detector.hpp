// Thru-barrier attack detector based on 2-D correlation (paper Sec. VI-C).
//
// The 2-D Pearson correlation between the wearable's and the VA device's
// vibration-domain features is high for legitimate speech (both convert to
// consistent vibrations) and low for thru-barrier attacks (low-frequency-
// dominated sound excites mostly amplifier noise, decorrelating the two
// captures). A fixed threshold turns the score into a decision — no
// training data is required.
#pragma once

#include <cmath>

#include "dsp/stft.hpp"

namespace vibguard::core {

struct DetectionResult {
  double score;     ///< 2-D correlation in [-1, 1]; higher = more legitimate
  bool is_attack;   ///< score fell below the threshold
};

/// Sentinel returned by CorrelationDetector::score when no meaningful
/// correlation exists (empty features, zero variance, NaN/Inf-contaminated
/// input). It is finite and strictly below every valid correlation (and
/// every valid threshold), so naive threshold comparisons fail closed — a
/// degenerate trial reads as an attack, never as a legitimate command —
/// while quality-aware callers (DefenseSystem::try_score) detect it with
/// is_indeterminate_score and report the trial as unscoreable instead.
inline constexpr double kIndeterminateScore = -2.0;

/// True for the sentinel and for any non-finite value (defense in depth:
/// a NaN leaking from an unexpected path is also "not a real score").
/// Deliberately NOT a range check — floating-point rounding can push a
/// genuine correlation infinitesimally past ±1.
inline bool is_indeterminate_score(double score) {
  return score == kIndeterminateScore || !std::isfinite(score);
}

class CorrelationDetector {
 public:
  /// `threshold` is the minimum correlation accepted as legitimate.
  explicit CorrelationDetector(double threshold = 0.50);

  double threshold() const { return threshold_; }

  /// Similarity score of two feature spectrograms (Eq. 6). Operands are
  /// compared over their overlapping frame range. Returns
  /// kIndeterminateScore when the correlation is degenerate (empty overlap,
  /// zero variance, non-finite input) — see is_indeterminate_score.
  double score(const dsp::Spectrogram& wearable,
               const dsp::Spectrogram& va) const;

  DetectionResult detect(const dsp::Spectrogram& wearable,
                         const dsp::Spectrogram& va) const;

 private:
  double threshold_;
};

}  // namespace vibguard::core
