#include "core/fusion.hpp"

#include "common/error.hpp"

namespace vibguard::core {
namespace {

DefenseConfig with_mode(DefenseConfig cfg, DefenseMode mode) {
  cfg.mode = mode;
  return cfg;
}

}  // namespace

FusionScorer::FusionScorer(FusionConfig config)
    : config_(config),
      vibration_(with_mode(config.base, DefenseMode::kFull)),
      audio_(with_mode(config.base, DefenseMode::kAudioBaseline)) {
  VIBGUARD_REQUIRE(
      config_.vibration_weight >= 0.0 && config_.vibration_weight <= 1.0,
      "vibration weight must be in [0, 1]");
}

double FusionScorer::score(const Signal& va_recording,
                           const Signal& wearable_recording,
                           const Segmenter* segmenter, Rng& rng) const {
  const double v =
      vibration_.score(va_recording, wearable_recording, segmenter, rng);
  const double a =
      audio_.score(va_recording, wearable_recording, nullptr, rng);
  return config_.vibration_weight * v +
         (1.0 - config_.vibration_weight) * a;
}

DetectionResult FusionScorer::detect(const Signal& va_recording,
                                     const Signal& wearable_recording,
                                     const Segmenter* segmenter,
                                     Rng& rng) const {
  const double s =
      score(va_recording, wearable_recording, segmenter, rng);
  return DetectionResult{s, s < config_.detection_threshold};
}

}  // namespace vibguard::core
