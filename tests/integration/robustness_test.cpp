// Robustness/failure-injection tests: the pipeline must behave sensibly
// (defined scores or clean errors, never crashes or NaN) under degenerate
// and adversarially weird inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fusion.hpp"
#include "core/pipeline.hpp"
#include "dsp/generate.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

namespace vibguard {
namespace {

core::DefenseSystem make_system(core::DefenseMode mode) {
  core::DefenseConfig cfg;
  cfg.mode = mode;
  return core::DefenseSystem(cfg);
}

eval::TrialRecordings make_trial(std::uint64_t seed) {
  eval::ScenarioSimulator sim(eval::ScenarioConfig{}, seed);
  Rng rng(seed);
  const auto user = speech::sample_speaker(speech::Sex::kMale, rng);
  return sim.legitimate_trial(
      speech::command_by_text("turn on the lights"), user);
}

TEST(RobustnessTest, SilentRecordingsGiveDefinedScore) {
  auto system = make_system(core::DefenseMode::kVibrationBaseline);
  const Signal silence = Signal::zeros(16000, 16000.0);
  Rng rng(1);
  const double s = system.score(silence, silence, nullptr, rng);
  EXPECT_TRUE(std::isfinite(s));
}

TEST(RobustnessTest, PureNoiseRecordingsScoreLow) {
  auto system = make_system(core::DefenseMode::kVibrationBaseline);
  Rng rng(2);
  const Signal a = dsp::white_noise(1.0, 16000.0, 0.02, rng);
  const Signal b = dsp::white_noise(1.0, 16000.0, 0.02, rng);
  Rng score_rng(3);
  const double s = system.score(a, b, nullptr, score_rng);
  EXPECT_LT(s, 0.6);
}

TEST(RobustnessTest, GrosslyMismatchedLengthsHandled) {
  auto system = make_system(core::DefenseMode::kVibrationBaseline);
  const auto t = make_trial(4);
  Rng rng(5);
  const Signal tiny = t.wearable.slice(0, 2000);  // 125 ms
  const double s = system.score(t.va, tiny, nullptr, rng);
  EXPECT_TRUE(std::isfinite(s));
}

TEST(RobustnessTest, ClippedRecordingsStillSeparate) {
  // Hard-clipped input (overdriven mic) must not flip the decision.
  const auto t = make_trial(6);
  Signal clipped_va = t.va;
  const double limit = clipped_va.peak() * 0.3;
  for (double& v : clipped_va) {
    v = std::clamp(v, -limit, limit);
  }
  auto system = make_system(core::DefenseMode::kFull);
  core::OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Rng rng(7);
  const double s = system.score(clipped_va, t.wearable, &seg, rng);
  EXPECT_GT(s, 0.4);  // clipping distorts but preserves shared structure
}

TEST(RobustnessTest, DcOffsetDoesNotBreakPipeline) {
  const auto t = make_trial(8);
  Signal offset_va = t.va;
  for (double& v : offset_va) v += 0.1;
  auto system = make_system(core::DefenseMode::kFull);
  core::OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Rng rng(9);
  const double s = system.score(offset_va, t.wearable, &seg, rng);
  EXPECT_TRUE(std::isfinite(s));
  EXPECT_GT(s, 0.4);  // the crop removes DC
}

TEST(RobustnessTest, ExtremeDelayOutsideSearchWindowStillDefined) {
  const auto t = make_trial(10);
  // Chop far more than the sync search window from the wearable side.
  const auto chop = static_cast<std::size_t>(0.6 * 16000.0);
  if (t.wearable.size() > chop + 4000) {
    const Signal late = t.wearable.slice(chop, t.wearable.size());
    auto system = make_system(core::DefenseMode::kVibrationBaseline);
    Rng rng(11);
    EXPECT_TRUE(
        std::isfinite(system.score(t.va, late, nullptr, rng)));
  }
}

TEST(RobustnessTest, RandomSeedSweepNeverProducesNan) {
  auto system = make_system(core::DefenseMode::kFull);
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    const auto t = make_trial(seed);
    core::OracleSegmenter seg(t.alignment,
                              eval::reference_sensitive_set());
    Rng rng(seed * 3);
    const double s = system.score(t.va, t.wearable, &seg, rng);
    EXPECT_TRUE(std::isfinite(s)) << seed;
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(RobustnessTest, FusionHandlesDegenerateInputs) {
  core::FusionScorer fusion;
  const Signal silence = Signal::zeros(16000, 16000.0);
  Rng rng(12);
  // Baseline-mode components tolerate a null segmenter only when the
  // vibration path falls back; full mode requires one — feed a real trial.
  const auto t = make_trial(13);
  core::OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  EXPECT_TRUE(std::isfinite(fusion.score(t.va, t.wearable, &seg, rng)));
}

}  // namespace
}  // namespace vibguard
