// Integration tests: exercise the complete stack — synthesis, acoustics,
// sensors, devices, defense pipeline and evaluation metrics — and assert the
// paper's headline qualitative results on reduced trial counts.
#include <gtest/gtest.h>

#include "attacks/attack.hpp"
#include "common/db.hpp"
#include "core/phoneme_selection.hpp"
#include "core/pipeline.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "eval/scenario.hpp"

namespace vibguard {
namespace {

using attacks::AttackType;
using core::DefenseMode;

eval::ExperimentConfig config_for(const acoustics::RoomConfig& room) {
  eval::ExperimentConfig cfg;
  cfg.scenario.room = room;
  cfg.legit_trials = 14;
  cfg.attack_trials = 14;
  cfg.num_speakers = 4;
  return cfg;
}

TEST(EndToEndTest, DomainOrderingMatchesPaper) {
  // Paper Fig. 9: audio baseline < vibration baseline < full system.
  eval::ExperimentRunner runner(config_for(acoustics::room_a()), 42);
  const auto results = runner.run(
      AttackType::kReplay,
      {DefenseMode::kFull, DefenseMode::kVibrationBaseline,
       DefenseMode::kAudioBaseline});
  const double auc_full = results.at(DefenseMode::kFull).roc().auc;
  const double auc_vib =
      results.at(DefenseMode::kVibrationBaseline).roc().auc;
  const double auc_audio = results.at(DefenseMode::kAudioBaseline).roc().auc;
  EXPECT_GT(auc_full, 0.9);
  EXPECT_GT(auc_full, auc_audio);
  EXPECT_GT(auc_vib, auc_audio);
}

class AttackTypeEndToEnd : public ::testing::TestWithParam<AttackType> {};

TEST_P(AttackTypeEndToEnd, FullSystemDefendsAttack) {
  eval::ExperimentRunner runner(config_for(acoustics::room_a()), 7);
  const auto results = runner.run(GetParam(), {DefenseMode::kFull});
  const auto roc = results.at(DefenseMode::kFull).roc();
  EXPECT_GT(roc.auc, 0.85) << attacks::attack_name(GetParam());
  EXPECT_LT(roc.eer, 0.25) << attacks::attack_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllAttacks, AttackTypeEndToEnd,
                         ::testing::ValuesIn(attacks::all_attack_types()));

TEST(EndToEndTest, WorksAcrossBarrierMaterials) {
  // Paper Fig. 11(b): performance consistent for wood and glass.
  for (const auto& room : {acoustics::room_a(), acoustics::room_b()}) {
    eval::ExperimentRunner runner(config_for(room), 11);
    const auto results = runner.run(AttackType::kReplay,
                                    {DefenseMode::kFull});
    EXPECT_GT(results.at(DefenseMode::kFull).roc().auc, 0.85) << room.name;
  }
}

TEST(EndToEndTest, ThresholdFromOneRoomTransfersToAnother) {
  // Training-free claim: a threshold picked in Room A keeps errors low in
  // Room D without re-tuning.
  eval::ExperimentRunner cal(config_for(acoustics::room_a()), 13);
  const auto cal_roc = cal.run(AttackType::kReplay, {DefenseMode::kFull})
                           .at(DefenseMode::kFull)
                           .roc();
  eval::ExperimentRunner test(config_for(acoustics::room_d()), 17);
  const auto pops = test.run(AttackType::kReplay, {DefenseMode::kFull})
                        .at(DefenseMode::kFull);
  const double tdr =
      eval::true_detection_rate(pops.attack, cal_roc.eer_threshold);
  const double fdr =
      eval::false_detection_rate(pops.legit, cal_roc.eer_threshold);
  EXPECT_GT(tdr, 0.6);
  EXPECT_LT(fdr, 0.4);
}

TEST(EndToEndTest, BrickWallAttackBarelyAudible) {
  // Paper Sec. III-B: brick absorbs broadly; thru-wall attacks are
  // impractical — the received level is near the noise floor.
  eval::ScenarioConfig cfg;
  cfg.room = acoustics::room_a();
  cfg.room.barrier_material = acoustics::brick_wall();
  eval::ScenarioSimulator sim(cfg, 19);
  Rng rng(20);
  const auto victim = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto adv = speech::sample_speaker(speech::Sex::kFemale, rng);
  const auto t = sim.attack_trial(AttackType::kReplay,
                                  speech::command_by_text("stop"), victim,
                                  adv);
  // Attack through brick adds almost nothing over ambient noise.
  EXPECT_LT(t.va.rms(), 2.0 * spl_to_rms(cfg.room.ambient_noise_spl));
}

TEST(EndToEndTest, SelectionFeedsPipelineConsistently) {
  // The offline selection's sensitive set (reduced corpus) agrees with the
  // cached reference set on the paper-named exclusions.
  speech::CorpusConfig ccfg;
  ccfg.segments_per_phoneme = 12;
  speech::PhonemeCorpus corpus(ccfg, 42);
  core::PhonemeSelector selector(core::SelectionConfig{},
                                 device::Wearable{});
  acoustics::Barrier barrier(acoustics::glass_window());
  Rng rng(7);
  const auto result = selector.select(corpus, barrier, rng);
  EXPECT_FALSE(result.is_sensitive("aa"));
  EXPECT_FALSE(result.is_sensitive("ao"));
  // Strong obstruents and open vowels are stably selected even on this
  // reduced corpus (borderline phonemes like /ih/, /r/ need the full one).
  for (const char* sym : {"t", "s", "ae", "k", "ch"}) {
    EXPECT_EQ(result.is_sensitive(sym),
              eval::reference_sensitive_set().count(sym) > 0)
        << sym;
  }
}

}  // namespace
}  // namespace vibguard
