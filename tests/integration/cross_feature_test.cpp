// Cross-feature integration: the newer subsystems (WAV I/O, recognizer,
// serialization, session, fusion, motion, ambient noise) working together
// with the core pipeline, parameterized over attack types.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "acoustics/ambient.hpp"
#include "common/db.hpp"
#include "common/wav.hpp"
#include "core/fusion.hpp"
#include "core/session.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"
#include "nn/serialize.hpp"
#include "speech/recognizer.hpp"

namespace vibguard {
namespace {

class AttackSessionTest
    : public ::testing::TestWithParam<attacks::AttackType> {};

TEST_P(AttackSessionTest, SessionScoresAttackBelowTypicalLegit) {
  eval::ScenarioSimulator sim(eval::ScenarioConfig{}, 31);
  Rng rng(32);
  const auto user = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto adversary = speech::sample_speaker(speech::Sex::kFemale, rng);
  core::DefenseSession session;

  const auto& cmd = speech::command_by_text("disarm the security system");
  const auto legit = sim.legitimate_trial(cmd, user);
  const auto attack = sim.attack_trial(GetParam(), cmd, user, adversary);
  core::OracleSegmenter seg_l(legit.alignment,
                              eval::reference_sensitive_set());
  core::OracleSegmenter seg_a(attack.alignment,
                              eval::reference_sensitive_set());
  Rng r1(33), r2(34);
  const auto ok =
      session.process("legit", legit.va, legit.wearable, &seg_l, r1);
  const auto bad =
      session.process("attack", attack.va, attack.wearable, &seg_a, r2);
  EXPECT_GT(ok.score, bad.score) << attacks::attack_name(GetParam());
  EXPECT_EQ(session.stats().processed, 2u);
}

INSTANTIATE_TEST_SUITE_P(AllAttacks, AttackSessionTest,
                         ::testing::ValuesIn(attacks::all_attack_types()));

TEST(CrossFeatureTest, RecordingsSurviveWavRoundTripWithSameVerdict) {
  eval::ScenarioSimulator sim(eval::ScenarioConfig{}, 41);
  Rng rng(42);
  const auto user = speech::sample_speaker(speech::Sex::kFemale, rng);
  const auto trial = sim.legitimate_trial(
      speech::command_by_text("turn on the lights"), user);

  const auto dir = std::filesystem::temp_directory_path();
  const std::string va_path = (dir / "vg_va.wav").string();
  const std::string wr_path = (dir / "vg_wr.wav").string();
  // Scale into WAV range, round-trip, undo the scaling.
  const double gain = 0.5 / std::max(trial.va.peak(), trial.wearable.peak());
  Signal va = trial.va, wr = trial.wearable;
  va.scale(gain);
  wr.scale(gain);
  write_wav(va_path, va);
  write_wav(wr_path, wr);
  Signal va2 = read_wav(va_path);
  Signal wr2 = read_wav(wr_path);
  va2.scale(1.0 / gain);
  wr2.scale(1.0 / gain);

  core::DefenseSystem system{core::DefenseConfig{}};
  core::OracleSegmenter seg(trial.alignment,
                            eval::reference_sensitive_set());
  Rng r1(43), r2(43);
  const double original = system.score(trial.va, trial.wearable, &seg, r1);
  const double roundtrip = system.score(va2, wr2, &seg, r2);
  EXPECT_NEAR(roundtrip, original, 0.1);
  std::remove(va_path.c_str());
  std::remove(wr_path.c_str());
}

TEST(CrossFeatureTest, SerializedSegmenterSegmentsIdentically) {
  core::BrnnSegmenter::Config cfg;
  cfg.brnn.hidden_dim = 12;
  core::BrnnSegmenter segmenter(cfg, 7);
  eval::ScenarioSimulator sim(eval::ScenarioConfig{}, 44);
  Rng rng(45);
  const auto user = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto trial = sim.legitimate_trial(
      speech::command_by_text("play some music"), user);

  std::stringstream buffer;
  nn::save_brnn(segmenter.model(), buffer);
  const nn::Brnn loaded = nn::load_brnn(buffer);

  const auto probs_orig = segmenter.frame_probabilities(trial.va);
  // Rebuild a segmenter around the loaded weights via prediction parity.
  const auto features = dsp::compute_mfcc(trial.va, cfg.mfcc);
  const auto probs_loaded = loaded.predict(features);
  ASSERT_EQ(probs_orig.size(), probs_loaded.size());
  for (std::size_t t = 0; t < probs_orig.size(); ++t) {
    EXPECT_DOUBLE_EQ(probs_orig[t], probs_loaded[t][1]);
  }
}

TEST(CrossFeatureTest, WakeWordGateBeforeDefense) {
  // Realistic flow: the recognizer gates, then the defense verifies.
  eval::ScenarioSimulator sim(eval::ScenarioConfig{}, 46);
  Rng rng(47);
  const auto user = speech::sample_speaker(speech::Sex::kFemale, rng);
  speech::WakeWordRecognizer recognizer;
  speech::UtteranceBuilder builder;
  for (std::uint64_t i = 0; i < 3; ++i) {
    Rng r(50 + i);
    auto utt = builder.build(speech::command_by_text("ok google"), user, r);
    recognizer.enroll(utt.audio.scaled_to_rms(spl_to_rms(70.0)));
  }
  Rng r(60);
  auto wake = builder.build(speech::command_by_text("ok google"), user, r);
  EXPECT_TRUE(
      recognizer.match(wake.audio.scaled_to_rms(spl_to_rms(70.0))).matched);
}

TEST(CrossFeatureTest, BabbleAmbientRoomStillSeparates) {
  eval::ScenarioConfig scfg;
  scfg.room.ambient_kind = acoustics::AmbientKind::kBabble;
  scfg.room.ambient_noise_spl = 55.0;
  eval::ScenarioSimulator sim(scfg, 48);
  Rng rng(49);
  const auto user = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto adversary = speech::sample_speaker(speech::Sex::kFemale, rng);
  const auto& cmd = speech::command_by_text("unlock the front door");
  core::DefenseSystem system{core::DefenseConfig{}};
  const auto legit = sim.legitimate_trial(cmd, user);
  const auto attack = sim.attack_trial(attacks::AttackType::kHiddenVoice,
                                       cmd, user, adversary);
  core::OracleSegmenter seg_l(legit.alignment,
                              eval::reference_sensitive_set());
  core::OracleSegmenter seg_a(attack.alignment,
                              eval::reference_sensitive_set());
  Rng r1(50), r2(51);
  EXPECT_GT(system.score(legit.va, legit.wearable, &seg_l, r1),
            system.score(attack.va, attack.wearable, &seg_a, r2));
}

}  // namespace
}  // namespace vibguard
