// Deliberately naive spectral reference implementations.
//
// Everything in tests/reference trades speed for obviousness: O(n^2) DFT
// sums written straight from the textbook definition, no plans, no caches,
// no shared state. The differential fuzz driver (tests/fuzz) cross-checks
// the optimized kernels in src/dsp against these within tight tolerances,
// so a regression in the fast paths shows up as a numeric mismatch against
// code simple enough to audit by eye.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace vibguard::testing {

using Complex = std::complex<double>;

/// O(n^2) DFT by direct evaluation of X[k] = sum_n x[n] e^{-2*pi*i*k*n/N}.
/// `inverse` evaluates the inverse transform (conjugate kernel, scaled by
/// 1/N), matching the convention of dsp::fft / FftPlan::transform.
std::vector<Complex> naive_dft(std::span<const Complex> x, bool inverse);

/// One-sided spectrum X[0..n/2] (n/2 + 1 bins) of a real signal by direct
/// summation — the reference for dsp::rfft / FftPlan::rfft.
std::vector<Complex> naive_rfft(std::span<const double> x);

/// One-sided magnitude spectrum |X[k]|/n — the reference for
/// dsp::magnitude_spectrum and FftPlan::magnitude.
std::vector<double> naive_magnitude_spectrum(std::span<const double> x);

/// One-sided power spectrum (|X[k]|/n)^2 — the reference for
/// FftPlan::power / FftPlan::windowed_power.
std::vector<double> naive_power_spectrum(std::span<const double> x);

}  // namespace vibguard::testing
