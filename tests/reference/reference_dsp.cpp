#include "reference/reference_dsp.hpp"

#include <cmath>
#include <numbers>

#include "reference/reference_dft.hpp"

namespace vibguard::testing {

std::vector<double> naive_cross_correlate(std::span<const double> a,
                                          std::span<const double> b,
                                          std::size_t max_lag) {
  std::vector<double> out(2 * max_lag + 1, 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto lag = static_cast<std::ptrdiff_t>(i) -
                     static_cast<std::ptrdiff_t>(max_lag);
    double acc = 0.0;
    for (std::size_t n = 0; n < a.size(); ++n) {
      const auto m = static_cast<std::ptrdiff_t>(n) + lag;
      if (m >= 0 && m < static_cast<std::ptrdiff_t>(b.size())) {
        acc += a[n] * b[static_cast<std::size_t>(m)];
      }
    }
    out[i] = acc;
  }
  return out;
}

Signal naive_linear_resample(const Signal& in, double target_rate) {
  if (in.empty()) return Signal({}, target_rate);
  const double step = in.sample_rate() / target_rate;
  const auto out_len = static_cast<std::size_t>(
      std::floor(static_cast<double>(in.size()) / step));
  std::vector<double> out(out_len, 0.0);
  for (std::size_t i = 0; i < out_len; ++i) {
    const double pos = static_cast<double>(i) * step;
    auto lo = static_cast<std::size_t>(pos);
    std::size_t hi = lo + 1;
    if (hi >= in.size()) hi = lo;
    const double frac = pos - static_cast<double>(lo);
    out[i] = in[lo] * (1.0 - frac) + in[hi] * frac;
  }
  return Signal(std::move(out), target_rate);
}

std::vector<double> naive_fir_lowpass(double cutoff_hz, double sample_rate,
                                      std::size_t num_taps) {
  const double fc = cutoff_hz / sample_rate;
  const double mid = static_cast<double>(num_taps - 1) / 2.0;
  std::vector<double> taps(num_taps, 0.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double m = static_cast<double>(i) - mid;
    const double sinc =
        m == 0.0 ? 2.0 * fc
                 : std::sin(2.0 * std::numbers::pi * fc * m) /
                       (std::numbers::pi * m);
    const double hamming =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi *
                               static_cast<double>(i) /
                               static_cast<double>(num_taps - 1));
    taps[i] = sinc * hamming;
    sum += taps[i];
  }
  for (double& t : taps) t /= sum;
  return taps;
}

std::vector<double> naive_fir_filter(std::span<const double> x,
                                     std::span<const double> taps) {
  const std::size_t n = x.size();
  const std::size_t delay = (taps.size() - 1) / 2;
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t t = 0; t < taps.size(); ++t) {
      // Output i is convolution index i + delay (center-aligned FIR).
      const auto src = static_cast<std::ptrdiff_t>(i + delay) -
                       static_cast<std::ptrdiff_t>(t);
      if (src >= 0 && src < static_cast<std::ptrdiff_t>(n)) {
        acc += taps[t] * x[static_cast<std::size_t>(src)];
      }
    }
    y[i] = acc;
  }
  return y;
}

Signal naive_resample(const Signal& in, double target_rate) {
  if (in.empty() || target_rate == in.sample_rate()) {
    return Signal(std::vector<double>(in.begin(), in.end()),
                  in.empty() ? target_rate : in.sample_rate());
  }
  if (target_rate < in.sample_rate()) {
    const auto taps =
        naive_fir_lowpass(0.45 * target_rate, in.sample_rate(), 101);
    Signal filtered(naive_fir_filter(in.samples(), taps), in.sample_rate());
    return naive_linear_resample(filtered, target_rate);
  }
  return naive_linear_resample(in, target_rate);
}

std::vector<std::vector<double>> naive_stft_power(const Signal& signal,
                                                  std::size_t window_size,
                                                  std::size_t hop,
                                                  dsp::WindowType window) {
  std::vector<double> samples(signal.begin(), signal.end());
  if (!samples.empty() && samples.size() < window_size) {
    samples.resize(window_size, 0.0);  // pad short inputs to one frame
  }
  const std::size_t n = samples.size();
  const std::size_t frames =
      n >= window_size ? 1 + (n - window_size) / hop : 0;
  const auto win = dsp::make_window(window, window_size);
  std::vector<std::vector<double>> out;
  out.reserve(frames);
  std::vector<double> frame(window_size, 0.0);
  for (std::size_t f = 0; f < frames; ++f) {
    for (std::size_t i = 0; i < window_size; ++i) {
      frame[i] = samples[f * hop + i] * win[i];
    }
    out.push_back(naive_power_spectrum(frame));
  }
  return out;
}

double naive_pearson(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = a.size();
  if (n == 0) return 0.0;
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace vibguard::testing
