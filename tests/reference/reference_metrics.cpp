#include "reference/reference_metrics.hpp"

#include <algorithm>
#include <cstddef>

namespace vibguard::testing {
namespace {

double count_below(std::span<const double> xs, double threshold) {
  std::size_t n = 0;
  for (double x : xs) {
    if (x < threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

}  // namespace

NaiveRoc naive_roc(std::span<const double> attack_scores,
                   std::span<const double> legit_scores) {
  NaiveRoc roc;
  roc.thresholds.assign(attack_scores.begin(), attack_scores.end());
  roc.thresholds.insert(roc.thresholds.end(), legit_scores.begin(),
                        legit_scores.end());
  std::sort(roc.thresholds.begin(), roc.thresholds.end());
  roc.thresholds.erase(
      std::unique(roc.thresholds.begin(), roc.thresholds.end()),
      roc.thresholds.end());
  roc.thresholds.insert(roc.thresholds.begin(), roc.thresholds.front() - 1e-9);
  roc.thresholds.push_back(roc.thresholds.back() + 1e-9);

  for (double t : roc.thresholds) {
    roc.fdr.push_back(count_below(legit_scores, t));
    roc.tdr.push_back(count_below(attack_scores, t));
  }

  for (std::size_t i = 1; i < roc.thresholds.size(); ++i) {
    roc.auc += (roc.fdr[i] - roc.fdr[i - 1]) * 0.5 *
               (roc.tdr[i] + roc.tdr[i - 1]);
  }

  // EER: first adjacent pair where g = FDR - (1 - TDR) changes sign (g is
  // -1 at the low sentinel and +1 at the high one, so a crossing exists).
  for (std::size_t i = 1; i < roc.thresholds.size(); ++i) {
    const double g0 = roc.fdr[i - 1] - (1.0 - roc.tdr[i - 1]);
    const double g1 = roc.fdr[i] - (1.0 - roc.tdr[i]);
    if (g0 == 0.0) {
      roc.eer = roc.fdr[i - 1];
      roc.eer_threshold = roc.thresholds[i - 1];
      break;
    }
    if (g0 < 0.0 && g1 >= 0.0) {
      const double alpha = g1 == g0 ? 0.0 : -g0 / (g1 - g0);
      roc.eer = roc.fdr[i - 1] + alpha * (roc.fdr[i] - roc.fdr[i - 1]);
      roc.eer_threshold =
          roc.thresholds[i - 1] +
          alpha * (roc.thresholds[i] - roc.thresholds[i - 1]);
      break;
    }
  }
  return roc;
}

}  // namespace vibguard::testing
