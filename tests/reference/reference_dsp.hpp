// Naive time-domain references: direct cross-correlation, textbook linear
// resampling and FIR filtering, scalar STFT and Pearson correlation.
//
// See reference_dft.hpp for the philosophy: obviously-correct loops, no
// shared state, used by tests/fuzz to cross-check the optimized kernels.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/signal.hpp"
#include "dsp/window.hpp"

namespace vibguard::testing {

/// Direct cross-correlation for lags in [-max_lag, +max_lag]:
/// out[i] = sum_n a(n) * b(n + i - max_lag) over in-range indices.
/// Reference for dsp::cross_correlate (both its direct and FFT paths).
std::vector<double> naive_cross_correlate(std::span<const double> a,
                                          std::span<const double> b,
                                          std::size_t max_lag);

/// Textbook linear resampler: output sample i is the linear interpolation
/// of the input at position i * in_rate / target_rate. Reference for
/// dsp::decimate_alias / dsp::sample_linear.
Signal naive_linear_resample(const Signal& in, double target_rate);

/// Windowed-sinc low-pass taps (odd length, Hamming window, unity DC gain)
/// evaluated directly from the textbook formula.
std::vector<double> naive_fir_lowpass(double cutoff_hz, double sample_rate,
                                      std::size_t num_taps);

/// Zero-delay-compensated direct convolution with an odd-length FIR.
std::vector<double> naive_fir_filter(std::span<const double> x,
                                     std::span<const double> taps);

/// Band-limited resampler mirroring the documented dsp::resample contract:
/// anti-alias FIR (101 taps at 0.45 * target rate) before downsampling,
/// plain linear interpolation otherwise. Reference for dsp::resample.
Signal naive_resample(const Signal& in, double target_rate);

/// Power spectrogram by direct summation: each frame windowed with the
/// textbook periodic window formula, transformed with the O(n^2) DFT, and
/// squared ((|X|/n)^2, one-sided). Frames (rows) of window_size / 2 + 1
/// bins; short non-empty inputs are zero-padded to one frame, matching
/// dsp::stft_power.
std::vector<std::vector<double>> naive_stft_power(
    const Signal& signal, std::size_t window_size, std::size_t hop,
    dsp::WindowType window = dsp::WindowType::kHann);

/// Two-pass scalar Pearson correlation of two equal-length value arrays
/// (explicit mean pass, then centered moments). Reference for
/// dsp::correlation_2d applied to the overlapping frames.
double naive_pearson(std::span<const double> a, std::span<const double> b);

}  // namespace vibguard::testing
