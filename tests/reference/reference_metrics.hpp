// Brute-force ROC/EER reference (see reference_dft.hpp for the philosophy).
#pragma once

#include <span>
#include <vector>

namespace vibguard::testing {

/// ROC computed by brute force: per-threshold rates by direct counting,
/// AUC by trapezoid sums, EER by scanning every adjacent threshold pair
/// for the FDR / miss-rate sign change and solving the linear crossing.
struct NaiveRoc {
  std::vector<double> thresholds;  ///< ascending candidate grid
  std::vector<double> fdr;         ///< false detection rate per threshold
  std::vector<double> tdr;         ///< true detection rate per threshold
  double auc = 0.0;
  double eer = 1.0;
  double eer_threshold = 0.0;
};

/// Evaluates the ROC over every distinct score (plus sentinels just outside
/// the score range, the grid documented by eval::compute_roc). Scores below
/// a threshold count as detections, matching eval/metrics.hpp.
NaiveRoc naive_roc(std::span<const double> attack_scores,
                   std::span<const double> legit_scores);

}  // namespace vibguard::testing
