#include "reference/reference_dft.hpp"

#include <cmath>
#include <numbers>

namespace vibguard::testing {

std::vector<Complex> naive_dft(std::span<const Complex> x, bool inverse) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n, Complex(0.0, 0.0));
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t m = 0; m < n; ++m) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k) * static_cast<double>(m) /
                           static_cast<double>(n);
      acc += x[m] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

std::vector<Complex> naive_rfft(std::span<const double> x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n / 2 + 1, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < out.size(); ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t m = 0; m < n; ++m) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) *
                           static_cast<double>(m) / static_cast<double>(n);
      acc += x[m] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> naive_magnitude_spectrum(std::span<const double> x) {
  const auto spec = naive_rfft(x);
  std::vector<double> mag(spec.size(), 0.0);
  for (std::size_t k = 0; k < spec.size(); ++k) {
    mag[k] = std::abs(spec[k]) / static_cast<double>(x.size());
  }
  return mag;
}

std::vector<double> naive_power_spectrum(std::span<const double> x) {
  const auto mag = naive_magnitude_spectrum(x);
  std::vector<double> pow(mag.size(), 0.0);
  for (std::size_t k = 0; k < mag.size(); ++k) pow[k] = mag[k] * mag[k];
  return pow;
}

}  // namespace vibguard::testing
