// The remediation ladder end to end on a VirtualClock: a SLOW worker has
// its queue stolen by an idle peer, a WEDGED worker is quarantined and
// either recovers through the fresh-epoch probe or escalates to
// retirement, confirmed overload grows the fleet under K-of-N + cooldown
// hysteresis, the flap detector pins a resize loop (never more than one
// action per cooldown window), and malformed ladder configurations are
// rejected at construction.
#include "serving/supervisor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "attacks/attack.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/segmentation.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"
#include "serving/server.hpp"

namespace vibguard::serving {
namespace {

struct Population {
  struct Trial {
    eval::TrialRecordings recordings;
    std::unique_ptr<core::OracleSegmenter> segmenter;
  };
  std::vector<Trial> trials;

  static const Population& instance() {
    static Population* pop = [] {
      auto* p = new Population;
      eval::ScenarioSimulator sim(eval::ScenarioConfig{}, 371);
      Rng rng(372);
      const auto user = speech::sample_speaker(speech::Sex::kFemale, rng);
      const auto adv = speech::sample_speaker(speech::Sex::kMale, rng);
      const auto& cmd = speech::command_by_text("unlock the front door");
      for (int i = 0; i < 4; ++i) {
        Trial trial;
        trial.recordings =
            i % 2 == 0 ? sim.legitimate_trial(cmd, user)
                       : sim.attack_trial(attacks::AttackType::kReplay, cmd,
                                          user, adv);
        trial.segmenter = std::make_unique<core::OracleSegmenter>(
            trial.recordings.alignment, eval::reference_sensitive_set());
        p->trials.push_back(std::move(trial));
      }
      return p;
    }();
    return *pop;
  }
};

ServerConfig small_fleet(std::size_t workers) {
  ServerConfig config;
  config.workers = workers;
  config.shard.queue_capacity = 64;
  config.shard.batch_max = 4;
  config.shard.batch_window_us = 0;
  return config;
}

/// Thresholds with remediation enabled but every rung switched off; each
/// test turns on exactly the rung it exercises.
SupervisorConfig ladder() {
  SupervisorConfig config;
  config.slow_after_us = 10'000;
  config.wedged_after_us = 50'000;
  config.dead_after_us = 200'000;
  config.remediation.enabled = true;
  config.remediation.steal = false;
  config.remediation.quarantine = false;
  config.remediation.grow = false;
  return config;
}

void beat_all_except(Server& server, std::size_t skip) {
  for (std::size_t w = 0; w < server.workers(); ++w) {
    if (w != skip && server.worker_state(w) != WorkerState::kRetired) {
      server.shard(w).beat();
    }
  }
}

void beat_all(Server& server) { beat_all_except(server, SIZE_MAX); }

ServerRequest make_request(const Population& pop, std::size_t i) {
  const auto& trial = pop.trials[i % pop.trials.size()];
  ServerRequest request;
  request.va = &trial.recordings.va;
  request.wearable = &trial.recordings.wearable;
  request.segmenter = trial.segmenter.get();
  request.rng = Rng(910).fork(i);
  request.request_id = i;
  return request;
}

/// Opens up to `count` sessions currently owned by `owner`.
std::vector<std::pair<std::uint64_t, SessionHandle>> open_on(
    Server& server, std::size_t owner, std::size_t count) {
  std::vector<std::pair<std::uint64_t, SessionHandle>> out;
  for (std::uint64_t sid = 1; out.size() < count && sid < 10'000; ++sid) {
    if (server.shard_of(sid) == owner) {
      out.emplace_back(sid, server.open_session(sid));
    }
  }
  return out;
}

TEST(RemediationTest, IdlePeerStealsFromSlowWorker) {
  const Population& pop = Population::instance();
  VirtualClock clock;
  Server server(small_fleet(3), clock);
  SupervisorConfig config = ladder();
  config.remediation.steal = true;
  config.remediation.steal_min_depth = 1;
  config.remediation.steal_max_items = 8;
  Supervisor supervisor(server, config, clock);
  beat_all(server);

  const std::size_t victim = server.shard_of(1);
  auto sessions = open_on(server, victim, 1);
  ASSERT_FALSE(sessions.empty());
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(server.submit(sessions[0].first, sessions[0].second,
                            make_request(pop, i)),
              SubmitStatus::kQueued);
  }
  ASSERT_EQ(server.shard(victim).depth(), 3u);

  // The victim goes quiet past slow_after; everyone else stays fresh.
  clock.advance(20'000);
  beat_all_except(server, victim);

  std::vector<ServedResult> out;
  EXPECT_EQ(supervisor.poll(out), 0u);
  EXPECT_EQ(supervisor.health(victim), WorkerHealth::kSlow);
  EXPECT_EQ(supervisor.stats().steals, 1u);
  EXPECT_EQ(supervisor.stats().items_stolen, 3u);
  EXPECT_EQ(server.shard(victim).depth(), 0u);

  const RemediationLog& log = supervisor.remediation_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.events()[0].action, RemediationAction::kSteal);
  EXPECT_EQ(log.events()[0].worker, victim);
  EXPECT_NE(log.events()[0].peer, victim);
  EXPECT_EQ(log.events()[0].items, 3u);

  // The stolen items still get served — off the thief's shard, flagged.
  std::vector<ServedResult> served;
  server.drain(served);
  std::size_t stolen_served = 0;
  for (const ServedResult& r : served) {
    if (r.stolen) ++stolen_served;
  }
  EXPECT_EQ(served.size() + out.size(), 3u);
  EXPECT_EQ(stolen_served, 3u);
}

TEST(RemediationTest, ShallowVictimsAreLeftAlone) {
  const Population& pop = Population::instance();
  VirtualClock clock;
  Server server(small_fleet(3), clock);
  SupervisorConfig config = ladder();
  config.remediation.steal = true;
  config.remediation.steal_min_depth = 2;  // one queued item is not worth it
  Supervisor supervisor(server, config, clock);
  beat_all(server);

  const std::size_t victim = server.shard_of(1);
  auto sessions = open_on(server, victim, 1);
  ASSERT_FALSE(sessions.empty());
  ASSERT_EQ(server.submit(sessions[0].first, sessions[0].second,
                          make_request(pop, 0)),
            SubmitStatus::kQueued);

  clock.advance(20'000);
  beat_all_except(server, victim);
  std::vector<ServedResult> out;
  supervisor.poll(out);
  EXPECT_EQ(supervisor.health(victim), WorkerHealth::kSlow);
  EXPECT_EQ(supervisor.stats().steals, 0u);
  EXPECT_EQ(server.shard(victim).depth(), 1u);
}

TEST(RemediationTest, WedgedWorkerQuarantinesThenRecovers) {
  const Population& pop = Population::instance();
  VirtualClock clock;
  Server server(small_fleet(3), clock);
  SupervisorConfig config = ladder();
  config.remediation.quarantine = true;
  config.remediation.probe_timeout_us = 200'000;
  Supervisor supervisor(server, config, clock);
  beat_all(server);

  const std::size_t victim = server.shard_of(1);
  auto sessions = open_on(server, victim, 1);
  ASSERT_FALSE(sessions.empty());
  ASSERT_EQ(server.submit(sessions[0].first, sessions[0].second,
                          make_request(pop, 0)),
            SubmitStatus::kQueued);

  // Quiet past wedged_after (but short of dead_after): quarantine, not
  // failover.
  clock.advance(60'000);
  beat_all_except(server, victim);
  std::vector<ServedResult> out;
  EXPECT_EQ(supervisor.poll(out), 0u);
  EXPECT_EQ(server.worker_state(victim), WorkerState::kQuarantined);
  EXPECT_EQ(supervisor.health(victim), WorkerHealth::kQuarantined);
  EXPECT_EQ(supervisor.stats().quarantines, 1u);
  EXPECT_FALSE(server.worker_active(victim));
  // The fence drained the victim: its queued item lives on a peer now.
  EXPECT_EQ(server.shard(victim).depth(), 0u);
  EXPECT_EQ(supervisor.remediation_log().count(RemediationAction::kQuarantine),
            1u);

  // The restarted pump beats under the bumped epoch → the probe passes
  // and the worker is restored (its old ring arcs come back).
  clock.advance(20'000);
  server.shard(victim).beat();
  beat_all_except(server, victim);
  EXPECT_EQ(supervisor.poll(out), 0u);
  EXPECT_EQ(server.worker_state(victim), WorkerState::kActive);
  EXPECT_EQ(supervisor.health(victim), WorkerHealth::kHealthy);
  EXPECT_EQ(supervisor.stats().recoveries, 1u);
  EXPECT_EQ(supervisor.stats().failovers, 0u);
  EXPECT_EQ(supervisor.remediation_log().count(RemediationAction::kRecover),
            1u);

  // Nothing was lost across fence + restore.
  std::vector<ServedResult> served;
  server.drain(served);
  EXPECT_EQ(served.size() + out.size(), 1u);
}

TEST(RemediationTest, StaleEpochBeatsNeverFakeRecovery) {
  VirtualClock clock;
  Server server(small_fleet(3), clock);
  SupervisorConfig config = ladder();
  config.remediation.quarantine = true;
  config.remediation.probe_timeout_us = 200'000;
  Supervisor supervisor(server, config, clock);
  beat_all(server);

  const std::size_t victim = 1;
  const std::uint64_t old_epoch = server.shard(victim).epoch();
  clock.advance(60'000);
  beat_all_except(server, victim);
  std::vector<ServedResult> out;
  supervisor.poll(out);
  ASSERT_EQ(server.worker_state(victim), WorkerState::kQuarantined);
  ASSERT_GT(server.shard(victim).epoch(), old_epoch);

  // The wedged pre-restart thread twitches: its epoch-gated beat is
  // rejected, so the probe must NOT restore the worker.
  clock.advance(20'000);
  EXPECT_FALSE(server.shard(victim).beat(old_epoch));
  beat_all_except(server, victim);
  supervisor.poll(out);
  EXPECT_EQ(server.worker_state(victim), WorkerState::kQuarantined);
  EXPECT_EQ(supervisor.stats().recoveries, 0u);
}

TEST(RemediationTest, SilentQuarantineEscalatesToRetirement) {
  VirtualClock clock;
  Server server(small_fleet(3), clock);
  SupervisorConfig config = ladder();
  config.remediation.quarantine = true;
  config.remediation.probe_timeout_us = 100'000;
  Supervisor supervisor(server, config, clock);
  beat_all(server);

  const std::size_t victim = 1;
  clock.advance(60'000);
  beat_all_except(server, victim);
  std::vector<ServedResult> out;
  EXPECT_EQ(supervisor.poll(out), 0u);
  ASSERT_EQ(server.worker_state(victim), WorkerState::kQuarantined);

  // No fresh-epoch beat before the probe deadline: terminal.
  clock.advance(150'000);
  beat_all_except(server, victim);
  EXPECT_EQ(supervisor.poll(out), 1u);
  EXPECT_EQ(server.worker_state(victim), WorkerState::kRetired);
  EXPECT_EQ(supervisor.health(victim), WorkerHealth::kRetired);
  EXPECT_EQ(supervisor.stats().escalations, 1u);
  EXPECT_EQ(supervisor.stats().failovers, 1u);
  EXPECT_EQ(supervisor.remediation_log().count(RemediationAction::kEscalate),
            1u);

  // Terminal means terminal: later polls never resurrect it.
  clock.advance(50'000);
  beat_all(server);
  EXPECT_EQ(supervisor.poll(out), 0u);
  EXPECT_EQ(supervisor.health(victim), WorkerHealth::kRetired);
}

TEST(RemediationTest, ConfirmedOverloadGrowsTheFleet) {
  const Population& pop = Population::instance();
  VirtualClock clock;
  Server server(small_fleet(2), clock);
  SupervisorConfig config = ladder();
  config.remediation.grow = true;
  config.remediation.overload_window = 2;
  config.remediation.overload_confirm = 2;
  config.remediation.queue_age_threshold_us = 10'000;
  config.remediation.reject_rate_threshold = 2.0;  // age signal only
  config.remediation.cooldown_us = 30'000;
  config.remediation.max_workers = 3;
  Supervisor supervisor(server, config, clock);
  beat_all(server);

  const SessionHandle handle = server.open_session(5);
  ASSERT_EQ(server.submit(5, handle, make_request(pop, 0)),
            SubmitStatus::kQueued);

  std::vector<ServedResult> out;
  // One hot sample is not a confirmation (window of 2).
  clock.advance(20'000);
  beat_all(server);
  EXPECT_EQ(supervisor.poll(out), 0u);
  EXPECT_EQ(supervisor.stats().grows, 0u);
  EXPECT_EQ(server.workers(), 2u);

  // Second hot sample: K-of-N confirms and the fleet grows by one.
  clock.advance(20'000);
  beat_all(server);
  EXPECT_EQ(supervisor.poll(out), 0u);
  EXPECT_EQ(supervisor.stats().grows, 1u);
  EXPECT_EQ(server.workers(), 3u);
  EXPECT_TRUE(server.worker_active(2));
  EXPECT_EQ(supervisor.remediation_log().count(RemediationAction::kGrow), 1u);

  // Still hot and past cooldown, but at max_workers: the ceiling holds.
  clock.advance(40'000);
  beat_all(server);
  EXPECT_EQ(supervisor.poll(out), 0u);
  EXPECT_EQ(supervisor.stats().grows, 1u);
  EXPECT_EQ(server.workers(), 3u);
}

TEST(RemediationTest, FlapDetectorPinsTheFleetSize) {
  const Population& pop = Population::instance();
  VirtualClock clock;
  Server server(small_fleet(2), clock);
  SupervisorConfig config = ladder();
  config.remediation.grow = true;
  config.remediation.overload_window = 1;
  config.remediation.overload_confirm = 1;
  config.remediation.queue_age_threshold_us = 10'000;
  config.remediation.reject_rate_threshold = 2.0;
  config.remediation.cooldown_us = 40'000;
  config.remediation.max_workers = 16;
  config.remediation.flap_actions = 2;
  config.remediation.flap_window_us = 10'000'000;
  Supervisor supervisor(server, config, clock);
  beat_all(server);

  const SessionHandle handle = server.open_session(5);
  ASSERT_EQ(server.submit(5, handle, make_request(pop, 0)),
            SubmitStatus::kQueued);

  // A second of permanent overload polled at 20 ms: the ladder may grow
  // flap_actions times, then pins the fleet size for good.
  std::vector<ServedResult> out;
  for (int i = 0; i < 50; ++i) {
    clock.advance(20'000);
    beat_all(server);
    supervisor.poll(out);
  }
  EXPECT_EQ(supervisor.stats().grows, 2u);
  EXPECT_EQ(server.workers(), 4u);  // 2 + 2 grows, pinned thereafter
  EXPECT_GE(supervisor.stats().flap_suppressed, 1u);
  EXPECT_GE(supervisor.remediation_log().count(
                RemediationAction::kFlapSuppressed),
            1u);

  // Hysteresis: never two remediation actions inside one cooldown window.
  const auto& events = supervisor.remediation_log().events();
  ASSERT_GE(events.size(), 3u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].at_us - events[i - 1].at_us,
              config.remediation.cooldown_us)
        << "actions " << i - 1 << " and " << i << " flapped";
  }
}

TEST(RemediationTest, MalformedLadderConfigsAreRejected) {
  VirtualClock clock;
  Server server(small_fleet(2), clock);

  SupervisorConfig zero_band;
  zero_band.slow_after_us = 50'000;
  zero_band.wedged_after_us = 50'000;  // zero-width SLOW band
  EXPECT_THROW(Supervisor(server, zero_band, clock), InvalidArgument);

  SupervisorConfig inverted;
  inverted.wedged_after_us = 300'000;  // wedged past dead
  inverted.dead_after_us = 200'000;
  EXPECT_THROW(Supervisor(server, inverted, clock), InvalidArgument);

  SupervisorConfig bad_quorum;  // K > N can never confirm
  bad_quorum.remediation.enabled = true;
  bad_quorum.remediation.overload_window = 4;
  bad_quorum.remediation.overload_confirm = 5;
  EXPECT_THROW(Supervisor(server, bad_quorum, clock), InvalidArgument);

  SupervisorConfig bad_flap;
  bad_flap.remediation.enabled = true;
  bad_flap.remediation.flap_actions = 0;
  EXPECT_THROW(Supervisor(server, bad_flap, clock), InvalidArgument);

  // The same knobs are legal while remediation stays disabled — they are
  // simply never read.
  SupervisorConfig disabled;
  disabled.remediation.enabled = false;
  disabled.remediation.overload_confirm = 99;
  Supervisor ok(server, disabled, clock);
  EXPECT_EQ(ok.stats().polls, 0u);
}

}  // namespace
}  // namespace vibguard::serving
