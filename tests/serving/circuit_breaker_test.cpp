#include "serving/circuit_breaker.hpp"

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "common/error.hpp"

namespace vibguard::serving {
namespace {

constexpr BreakerConfig kConfig{/*failure_threshold=*/3,
                                /*cooldown_us=*/1000,
                                /*half_open_successes=*/1};

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(breaker_state_name(BreakerState::kClosed), "closed");
  EXPECT_STREQ(breaker_state_name(BreakerState::kOpen), "open");
  EXPECT_STREQ(breaker_state_name(BreakerState::kHalfOpen), "half_open");
}

TEST(CircuitBreakerTest, StartsClosedAndAllowsPrimary) {
  VirtualClock clock;
  CircuitBreaker breaker(kConfig, clock);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow_primary());
  EXPECT_EQ(breaker.trips(), 0u);
  EXPECT_EQ(breaker.tripped_stage(), "");
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresOfOneStage) {
  VirtualClock clock;
  CircuitBreaker breaker(kConfig, clock);
  breaker.record_failure("vib_capture");
  breaker.record_failure("vib_capture");
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.record_failure("vib_capture");
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow_primary());
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_EQ(breaker.tripped_stage(), "vib_capture");
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveCounts) {
  VirtualClock clock;
  CircuitBreaker breaker(kConfig, clock);
  breaker.record_failure("sync");
  breaker.record_failure("sync");
  breaker.record_success();
  breaker.record_failure("sync");
  breaker.record_failure("sync");
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, FailuresAcrossStagesDoNotPool) {
  VirtualClock clock;
  CircuitBreaker breaker(kConfig, clock);
  // The trip condition is per-stage: two stages each failing twice is four
  // failures but no stage has reached the threshold of three.
  breaker.record_failure("sync");
  breaker.record_failure("sync");
  breaker.record_failure("segment");
  breaker.record_failure("segment");
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.record_failure("segment");
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.tripped_stage(), "segment");
}

TEST(CircuitBreakerTest, CooldownLeadsToHalfOpenProbe) {
  VirtualClock clock;
  CircuitBreaker breaker(kConfig, clock);
  for (int i = 0; i < 3; ++i) breaker.record_failure("correlate");
  EXPECT_FALSE(breaker.allow_primary());
  clock.advance(kConfig.cooldown_us - 1);
  EXPECT_FALSE(breaker.allow_primary());
  clock.advance(1);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow_primary());  // the probe goes through
}

TEST(CircuitBreakerTest, ProbeSuccessCloses) {
  VirtualClock clock;
  CircuitBreaker breaker(kConfig, clock);
  for (int i = 0; i < 3; ++i) breaker.record_failure("correlate");
  clock.advance(kConfig.cooldown_us);
  ASSERT_TRUE(breaker.allow_primary());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow_primary());
  EXPECT_EQ(breaker.trips(), 1u);  // closing does not add a trip
}

TEST(CircuitBreakerTest, ProbeFailureReopensForFullCooldown) {
  VirtualClock clock;
  CircuitBreaker breaker(kConfig, clock);
  for (int i = 0; i < 3; ++i) breaker.record_failure("correlate");
  clock.advance(kConfig.cooldown_us);
  ASSERT_TRUE(breaker.allow_primary());
  breaker.record_failure("correlate");  // probe failed
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow_primary());
  clock.advance(kConfig.cooldown_us - 1);
  EXPECT_FALSE(breaker.allow_primary());
  clock.advance(1);
  EXPECT_TRUE(breaker.allow_primary());
}

TEST(CircuitBreakerTest, RequiresMultipleProbeSuccessesWhenConfigured) {
  VirtualClock clock;
  CircuitBreaker breaker({3, 1000, 2}, clock);
  for (int i = 0; i < 3; ++i) breaker.record_failure("sync");
  clock.advance(1000);
  ASSERT_TRUE(breaker.allow_primary());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  ASSERT_TRUE(breaker.allow_primary());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenAllowsOnlyOneOutstandingProbe) {
  VirtualClock clock;
  CircuitBreaker breaker(kConfig, clock);
  for (int i = 0; i < 3; ++i) breaker.record_failure("correlate");
  clock.advance(kConfig.cooldown_us);
  ASSERT_TRUE(breaker.allow_primary());  // the probe
  // A burst of further commands while the probe is outstanding must all
  // take the degraded route — they are not probes.
  EXPECT_FALSE(breaker.allow_primary());
  EXPECT_FALSE(breaker.allow_primary());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.record_success();  // probe outcome arrives
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, MultiStageFailureCountsAsOneProbeOutcome) {
  VirtualClock clock;
  CircuitBreaker breaker(kConfig, clock);
  for (int i = 0; i < 3; ++i) breaker.record_failure("correlate");
  clock.advance(kConfig.cooldown_us);
  ASSERT_TRUE(breaker.allow_primary());
  // The probe trial fails in two stages. The first report reopens the
  // breaker; the second is a stale report for the same trial and must not
  // restart the cooldown window.
  breaker.record_failure("sync");
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  clock.advance(kConfig.cooldown_us / 2);
  breaker.record_failure("segment");  // stale: same trial, later stage
  EXPECT_EQ(breaker.tripped_stage(), "sync");
  clock.advance(kConfig.cooldown_us / 2);
  // Full cooldown since the FIRST report has elapsed; if the stale report
  // had re-bumped opened_at the breaker would still refuse the probe here.
  EXPECT_TRUE(breaker.allow_primary());
}

TEST(CircuitBreakerTest, IndeterminateProbeDoesNotCloseBreaker) {
  VirtualClock clock;
  CircuitBreaker breaker(kConfig, clock);
  for (int i = 0; i < 3; ++i) breaker.record_failure("correlate");
  clock.advance(kConfig.cooldown_us);
  ASSERT_TRUE(breaker.allow_primary());
  breaker.record_indeterminate();  // probe was quality-gated: no verdict
  // Not closed (an indeterminate probe is not a success)...
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  // ...but the probe slot is released, so the next command probes again
  // instead of the breaker wedging in half-open forever.
  EXPECT_TRUE(breaker.allow_primary());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, IndeterminateWhileClosedKeepsFailureStreaks) {
  VirtualClock clock;
  CircuitBreaker breaker(kConfig, clock);
  breaker.record_failure("sync");
  breaker.record_failure("sync");
  breaker.record_indeterminate();  // neutral: no verdict either way
  breaker.record_failure("sync");  // third consecutive hard failure
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, RejectsDegenerateConfig) {
  VirtualClock clock;
  EXPECT_THROW(CircuitBreaker({0, 1000, 1}, clock), Error);
  EXPECT_THROW(CircuitBreaker({3, 1000, 0}, clock), Error);
}

}  // namespace
}  // namespace vibguard::serving
